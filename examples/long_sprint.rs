//! The paper's headline scenario end to end: a 15-minute workload burst
//! handled by SprintCon vs the SGCT baselines, with terminal charts.
//!
//! ```text
//! cargo run --release --example long_sprint
//! ```

use simkit::ascii_plot::multi_chart;
use simkit::{run_all, summary_table, Scenario};

fn main() {
    let scenario = Scenario::paper_default(2019);
    println!(
        "15-minute sprint: {} servers, {} rated breaker (overload 1.25x/150s), {} UPS\n",
        scenario.num_servers, scenario.breaker.rated, scenario.ups.capacity
    );

    let results = run_all(&scenario);

    // Power behaviour, one chart per policy (Fig. 6 at a glance).
    for run in &results {
        let (rec, summary) = (&run.recorder, &run.summary);
        let cb: Vec<f64> = rec.samples().iter().map(|s| s.cb_power.0).collect();
        let total: Vec<f64> = rec.samples().iter().map(|s| s.p_total.0).collect();
        println!(
            "{}",
            multi_chart(
                &format!(
                    "{} — trips {} / UPS {:.0} Wh",
                    summary.policy, summary.trips, summary.ups_energy_wh
                ),
                &[("CB", &cb), ("Total", &total)],
                72,
                9,
            )
        );
    }

    let summaries: Vec<_> = results.iter().map(|r| r.summary.clone()).collect();
    println!("{}", summary_table(&summaries));

    let sprintcon = &summaries[0];
    for other in &summaries[1..] {
        println!(
            "SprintCon vs {:<8}: {:+5.1}% computing capacity, {:+5.1}% less stored energy",
            other.policy,
            sprintcon.interactive_capacity_gain_over(other) * 100.0,
            (1.0 - sprintcon.ups_energy_wh / other.ups_energy_wh) * 100.0,
        );
    }
}
