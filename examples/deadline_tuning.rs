//! How SprintCon trades batch speed for stored energy as the deadline
//! moves — the §VII-D experiment as an interactive exploration.
//!
//! Sweeps the batch deadline from "barely feasible" to "relaxed" and
//! shows how the allocator's deadline floor reshapes the run: tighter
//! deadlines push batch cores faster (more UPS discharge), looser ones
//! let the DVFS floor and the free CB-overload headroom do the work.
//!
//! ```text
//! cargo run --release --example deadline_tuning
//! ```

use powersim::units::Seconds;
use simkit::{run_policy, sweep, PolicyKind, Scenario};

fn main() {
    let deadlines_min = [8.0, 9.0, 10.0, 12.0, 15.0];
    println!("SprintCon under a deadline sweep (same fixed batch workload):\n");
    println!(
        "{:>9} {:>11} {:>9} {:>8} {:>9} {:>7}",
        "deadline", "deadlines", "t_use", "f_batch", "UPS Wh", "DoD"
    );

    let rows = sweep(&deadlines_min, |&d| {
        let scenario = Scenario::paper_default(2019).with_deadline(Seconds::minutes(d));
        let run = run_policy(&scenario, PolicyKind::SprintCon);
        (d, run.summary)
    });

    for (d, s) in &rows {
        println!(
            "{:>8}m {:>7}/{:<3} {:>9.3} {:>8.2} {:>9.1} {:>6.1}%",
            d,
            s.deadlines_met,
            s.deadlines_total,
            s.normalized_time_use,
            s.avg_freq_batch,
            s.ups_energy_wh,
            s.dod * 100.0
        );
    }

    // The monotone trade the allocator implements: a tighter deadline
    // never uses less UPS energy than a looser one.
    for w in rows.windows(2) {
        let (d0, s0) = &w[0];
        let (d1, s1) = &w[1];
        assert!(
            s0.ups_energy_wh >= s1.ups_energy_wh - 3.0,
            "deadline {d0}m should need at least as much storage as {d1}m"
        );
    }
    println!("\ntighter deadline -> faster batch -> more stored energy spent, and vice versa.");
    println!("(the 8-minute case is near the feasibility edge: watch t_use approach 1.0)");
}
