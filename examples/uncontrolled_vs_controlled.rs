//! The safety story of the paper in one run each: what uncontrolled
//! sprinting does to a rack (Fig. 5) vs the same burst under SprintCon.
//!
//! ```text
//! cargo run --release --example uncontrolled_vs_controlled
//! ```

use simkit::ascii_plot::multi_chart;
use simkit::{run_policy, PolicyKind, Scenario};

fn main() {
    let scenario = Scenario::paper_default(2019);

    println!("=== uncontrolled sprinting (SGCT) ===\n");
    let run = run_policy(&scenario, PolicyKind::Sgct);
    let (rec, sgct) = (&run.recorder, &run.summary);
    let soc: Vec<f64> = rec.samples().iter().map(|s| s.ups_soc * 100.0).collect();
    let margin: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.breaker_margin * 100.0)
        .collect();
    println!(
        "{}",
        multi_chart(
            "UPS charge & breaker thermal margin (%)",
            &[("UPS SoC", &soc), ("CB heat", &margin)],
            72,
            10,
        )
    );
    println!("breaker trips      : {}", sgct.trips);
    println!(
        "rack blackout      : {}",
        sgct.shutdown_at
            .map_or("never".to_string(), |t| format!("at {t}"))
    );
    println!("interactive served : {:.1}%", sgct.service_ratio * 100.0);

    println!("\n=== the same burst under SprintCon ===\n");
    let run = run_policy(&scenario, PolicyKind::SprintCon);
    let (rec, sc) = (&run.recorder, &run.summary);
    let soc: Vec<f64> = rec.samples().iter().map(|s| s.ups_soc * 100.0).collect();
    let margin: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.breaker_margin * 100.0)
        .collect();
    println!(
        "{}",
        multi_chart(
            "UPS charge & breaker thermal margin (%)",
            &[("UPS SoC", &soc), ("CB heat", &margin)],
            72,
            10,
        )
    );
    println!("breaker trips      : {}", sc.trips);
    println!("rack blackout      : never");
    println!("interactive served : {:.1}%", sc.service_ratio * 100.0);
    println!(
        "UPS still holding  : {:.1}% of capacity",
        (1.0 - sc.dod) * 100.0
    );

    assert!(sgct.trips > 0 && sgct.shutdown);
    assert!(sc.trips == 0 && !sc.shutdown);
    println!("\nsame burst, same hardware: control is the difference between");
    println!("a sawtooth of trips ending in a blackout, and 15 quiet minutes.");
}
