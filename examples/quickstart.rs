//! Quickstart: build the paper's rack, attach SprintCon, sprint for two
//! minutes, and look at what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use powersim::units::Seconds;
use simkit::{RunSummary, Scenario, SprintConPolicy};

fn main() {
    // The §VI-A evaluation setup: 16 servers (8 cores each, half
    // interactive / half batch), a 3.2 kW breaker that tolerates 1.25×
    // overload for 150 s, a 400 Wh UPS, a Wikipedia-like interactive
    // burst, and SPEC-like batch jobs with a 12-minute deadline.
    let scenario = Scenario::paper_default(7);
    let mut sim = scenario.build();

    // SprintCon with the paper's controller parameters.
    let mut sprintcon = SprintConPolicy::paper_default();

    // Run two minutes of the sprint, one control period per step.
    let recording = sim.run(&mut sprintcon, Seconds::minutes(2.0));

    // What a control period looks like:
    let s = recording.samples().last().unwrap();
    println!("after {:.0} s:", s.t.0);
    println!("  rack power        : {}", s.p_total);
    println!(
        "  through breaker   : {}  (budget {:?})",
        s.cb_power, s.p_cb_target
    );
    println!(
        "  from UPS          : {}  (SoC {:.1}%)",
        s.ups_power,
        s.ups_soc * 100.0
    );
    println!(
        "  interactive cores : {:.2} of peak frequency",
        s.mean_freq_interactive
    );
    println!(
        "  batch cores       : {:.2} of peak frequency",
        s.mean_freq_batch
    );
    println!("  controller mode   : {}", s.mode_label);

    // Run-level summary.
    let summary = RunSummary::from_run("SprintCon", &sim, &recording);
    println!("\nsummary over {} samples:", recording.len());
    println!("  breaker trips     : {}", summary.trips);
    println!(
        "  UPS energy used   : {:.1} Wh (DoD {:.1}%)",
        summary.ups_energy_wh,
        summary.dod * 100.0
    );
    println!(
        "  interactive served: {:.1}%",
        summary.service_ratio * 100.0
    );

    assert_eq!(summary.trips, 0, "SprintCon never trips the breaker");
    println!("\nok: sprinting above the breaker rating, safely.");
}
