//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this repository is fully offline, so the real
//! `proptest` cannot be fetched from crates.io. This shim reimplements just
//! the API surface the workspace's property tests use, so the test sources
//! stay idiomatic proptest and can switch back to the real crate by editing
//! one line in the workspace manifest:
//!
//! * the `proptest! { ... }` macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * numeric range strategies (`0.2f64..=1.0`, `1usize..500`, `0u64..50`),
//! * `proptest::collection::vec(strategy, len_or_range)`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so every failure reproduces exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Run configuration — only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure payload carried out of a test case body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator; one instance per test function,
/// seeded from the test name, so runs are reproducible without any state
/// files.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The shim samples independently per case (no
/// shrinking), which is all the workspace's tests rely on.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against FP rounding landing exactly on the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        (lo + rng.next_f64() * (hi - lo)).clamp(lo.min(hi), hi.max(lo))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (*self).sample(rng)
    }
}

/// Boolean strategy (`proptest::bool::ANY`), mirroring the real crate's
/// module of the same name.
pub mod bool {
    /// Uniform true/false.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut crate::TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted as the length argument of [`vec()`](fn@vec): a fixed `usize` or a
    /// `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.max_exclusive > size.min, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the test files import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let ok: bool = $cond;
        if !ok {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let ok: bool = $cond;
        if !ok {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ...)` item
/// into a plain `#[test]` that samples its arguments `cases` times from a
/// deterministic RNG and runs the body as a `Result`-returning closure (so
/// `prop_assert!` can early-return a failure).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..10_000 {
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let g = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&g));
            let n = Strategy::sample(&(3usize..7), &mut rng);
            assert!((3..7).contains(&n));
            let v = crate::collection::vec(0.0f64..1.0, 2..5).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            let w = crate::collection::vec(0u64..9, 4).sample(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiline args, trailing comma, doc comments.
        #[test]
        fn macro_roundtrip(
            x in 0.0f64..10.0,
            ys in crate::collection::vec(1usize..5, 1..4),
        ) {
            prop_assert!(x < 10.0, "x={x}");
            prop_assert!(!ys.is_empty());
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(ys[0], 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}
