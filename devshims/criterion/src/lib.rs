//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment is offline, so the real `criterion` (and its large
//! dependency tree) cannot be fetched. This shim keeps the workspace's bench
//! sources compiling unchanged — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `criterion_group!` / `criterion_main!` — and implements a simple but
//! honest wall-clock harness:
//!
//! * each benchmark is warmed up (~50 ms), then timed over an
//!   iteration count calibrated to a ~300 ms measurement window,
//! * the mean, best and worst per-iteration times are printed in a
//!   criterion-like one-line format,
//! * a positional CLI argument filters benchmarks by substring, as with the
//!   real crate (`cargo bench -- qp`).
//!
//! There is no statistical regression machinery; for A/B comparisons run the
//! same bench twice and compare the printed means.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim times only the routine
/// (never the setup closure), so the variants differ only in batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing collected by one `Bencher` run.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    best: Duration,
    worst: Duration,
    iters: u64,
}

/// Handed to the benchmark closure; `iter`/`iter_batched` perform the
/// warmup + calibrated measurement and stash the result.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    max_iters: u64,
    result: Option<Measurement>,
}

impl Bencher {
    fn new(sample_scale: f64) -> Self {
        Bencher {
            warmup: Duration::from_millis(50),
            window: Duration::from_millis((300.0 * sample_scale) as u64),
            max_iters: 10_000_000,
            result: None,
        }
    }

    /// Time `f` in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until the warmup budget is spent, counting iterations
        // to calibrate the measurement loop.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let target =
            ((self.window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, self.max_iters);
        // Measure in 10 samples so best/worst mean something.
        let samples = 10u64.min(target);
        let chunk = (target / samples).max(1);
        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..chunk {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            let per = dt / chunk as u32;
            best = best.min(per);
            worst = worst.max(per);
            total += dt;
            iters += chunk;
        }
        self.result = Some(Measurement {
            mean: total / iters.max(1) as u32,
            best,
            worst,
            iters,
        });
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut routine_time = Duration::ZERO;
        while start.elapsed() < self.warmup {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            routine_time += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = routine_time.as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.window.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, self.max_iters.min(100_000));
        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            best = best.min(dt);
            worst = worst.max(dt);
            total += dt;
        }
        self.result = Some(Measurement {
            mean: total / target.max(1) as u32,
            best,
            worst,
            iters: target,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness handle. One per bench binary.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    ran: usize,
}

impl Criterion {
    /// Build from CLI args: flags (`--bench`, `--nocapture`, ...) are
    /// ignored; the first positional argument is a substring filter.
    pub fn from_args() -> Self {
        let mut filter = None;
        for a in std::env::args().skip(1) {
            if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Criterion { filter, ran: 0 }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, sample_scale: f64, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.matches(id) {
            return;
        }
        let mut b = Bencher::new(sample_scale);
        f(&mut b);
        self.ran += 1;
        match b.result {
            Some(m) => println!(
                "{id:<44} time: [{} {} {}]  ({} iters)",
                fmt_duration(m.best),
                fmt_duration(m.mean),
                fmt_duration(m.worst),
                m.iters
            ),
            None => println!("{id:<44} (no measurement recorded)"),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id, 1.0, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_scale: 1.0,
        }
    }

    pub fn final_summary(&self) {
        println!(
            "\n{} benchmark{} run",
            self.ran,
            if self.ran == 1 { "" } else { "s" }
        );
    }
}

/// A named group of benchmarks (`group/bench` ids, like real criterion).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_scale: f64,
}

impl BenchmarkGroup<'_> {
    /// Smaller sample counts shrink the measurement window proportionally.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_scale = (n as f64 / 100.0).clamp(0.05, 1.0);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let scale = self.sample_scale;
        self.criterion.run_one(&id, scale, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_a_measurement() {
        let mut b = Bencher::new(0.05);
        b.warmup = Duration::from_millis(5);
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        let m = b.result.expect("measurement");
        assert!(m.iters >= 1);
        assert!(m.best <= m.mean && m.mean <= m.worst);
    }

    #[test]
    fn bencher_iter_batched_records_a_measurement() {
        let mut b = Bencher::new(0.05);
        b.warmup = Duration::from_millis(5);
        b.iter_batched(
            || vec![1u64; 8],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.result.is_some());
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("qp".into()),
            ran: 0,
        };
        assert!(c.matches("qp/fista_64"));
        assert!(!c.matches("mpc/compute_8ch"));
        let open = Criterion::default();
        assert!(open.matches("anything"));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt_duration(Duration::from_nanos(120)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
