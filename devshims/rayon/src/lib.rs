//! Minimal, dependency-free stand-in for the `rayon` data-parallelism
//! crate.
//!
//! The build environment is offline, so the real `rayon` (and its
//! `rayon-core`/`crossbeam` dependency tree) cannot be fetched. This shim
//! keeps the workspace's execution layer compiling against the subset of
//! the rayon API it actually uses — `ThreadPoolBuilder`, `ThreadPool::
//! install`, `current_num_threads`, ordered `par_iter().map(..)
//! .collect::<Vec<_>>()` over slices, and `par_iter_mut().for_each(..)`
//! for in-place sharded stepping — implemented with
//! `std::thread::scope` workers over contiguous index chunks.
//!
//! Semantics preserved from the real crate, relied on by callers:
//!
//! * `collect` returns results in **input order**, regardless of which
//!   worker ran which item (rayon's `IndexedParallelIterator` contract);
//! * a pool built with `num_threads(1)` (or installing on a
//!   single-core host) degenerates to plain sequential iteration on the
//!   calling thread;
//! * worker threads are fresh OS threads: they do **not** inherit the
//!   caller's thread-locals, so thread-scoped state (e.g. telemetry
//!   collectors) never leaks across parallel items;
//! * panics in a worker propagate to the caller (via the scoped-thread
//!   join), matching rayon's panic-propagation behavior.
//!
//! Unlike the real crate there is no work stealing: items are statically
//! chunked. For the coarse-grained simulation runs this workspace fans
//! out (seconds per item, tens of items), static chunking is within noise
//! of a stealing scheduler.

use std::cell::Cell;
use std::num::NonZeroUsize;

/// Default parallelism when no pool is installed.
fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

thread_local! {
    /// Width installed by [`ThreadPool::install`] on this thread
    /// (0 = none installed, fall back to [`default_width`]).
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads the current scope's pool would use.
pub fn current_num_threads() -> usize {
    let w = INSTALLED_WIDTH.with(Cell::get);
    if w == 0 {
        default_width()
    } else {
        w
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The shim never actually
/// fails to build (threads are created lazily per `collect`), but the
/// type keeps call sites source-compatible with the real crate.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// `0` means "use the default parallelism", as in the real crate.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A logical pool: in this shim, a width that `install` scopes onto the
/// calling thread; workers are spawned per `collect` call.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Run `op` with this pool's width governing any parallel iterators
    /// it executes, restoring the previous width afterwards (re-entrant,
    /// panic-safe).
    pub fn install<R, F>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|w| w.set(self.0));
            }
        }
        let prev = INSTALLED_WIDTH.with(|w| {
            let prev = w.get();
            w.set(self.width);
            prev
        });
        let _restore = Restore(prev);
        op()
    }
}

/// Ordered parallel map over a slice: the work-horse behind `collect`.
fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n).max(1);
    if width <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(width);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (ci, slots) in out.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(&items[base + i]));
                }
            });
        }
    });
    out.into_iter()
        // Every slot is filled: the chunks tile `out` exactly and the
        // scope joins all workers (propagating their panics) first.
        .map(|r| r.expect("parallel slot filled"))
        .collect()
}

/// In-place parallel `for_each` over a mutable slice: each worker owns a
/// contiguous chunk, so items are mutated exactly once with no aliasing.
fn par_for_each_mut<T, F>(items: &mut [T], f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n).max(1);
    if width <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let chunk = n.div_ceil(width);
    std::thread::scope(|scope| {
        for slots in items.chunks_mut(chunk) {
            scope.spawn(move || {
                for item in slots.iter_mut() {
                    f(item);
                }
            });
        }
    });
}

pub mod iter {
    //! The fragment of `rayon::iter` the workspace uses.

    use super::{par_for_each_mut, par_map_slice};

    /// Borrowing conversion into a parallel iterator
    /// (`rayon::iter::IntoParallelRefIterator`).
    pub trait IntoParallelRefIterator<'data> {
        type Item: Sync + 'data;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator over `&[T]`, in index order.
    #[derive(Debug)]
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// The result of `par_iter().map(f)`; `collect` executes it.
    #[derive(Debug)]
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T, F> ParMap<'a, T, F>
    where
        T: Sync,
        F: Sync,
    {
        /// Execute and gather results **in input order**.
        pub fn collect<C, R>(self) -> C
        where
            R: Send,
            F: Fn(&'a T) -> R,
            C: FromOrderedParallel<R>,
        {
            C::from_ordered(par_map_slice(self.items, &self.f))
        }
    }

    /// Mutably-borrowing conversion into a parallel iterator
    /// (`rayon::iter::IntoParallelRefMutIterator`).
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: Send + 'data;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    /// Parallel iterator over `&mut [T]`: each item visited exactly once,
    /// workers owning disjoint contiguous chunks.
    #[derive(Debug)]
    pub struct ParIterMut<'a, T> {
        items: &'a mut [T],
    }

    impl<T: Send> ParIterMut<'_, T> {
        /// Run `f` on every item in place. Like the read-only `collect`,
        /// chunking is deterministic in the installed width, and workers
        /// are fresh threads that inherit no thread-locals.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            par_for_each_mut(self.items, &f);
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// Shim-local stand-in for `FromParallelIterator`, restricted to the
    /// ordered results `collect` produces.
    pub trait FromOrderedParallel<R> {
        fn from_ordered(items: Vec<R>) -> Self;
    }

    impl<R> FromOrderedParallel<R> for Vec<R> {
        fn from_ordered(items: Vec<R>) -> Self {
            items
        }
    }
}

pub mod prelude {
    //! `use rayon::prelude::*;` compatibility.
    pub use crate::iter::{
        FromOrderedParallel, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParIterMut, ParMap,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let items: Vec<u64> = (0..103).collect();
        let par: Vec<u64> = items.par_iter().map(|x| x * 3 + 1).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u64> = Vec::new();
        let out: Vec<u64> = none.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn pool_width_scopes_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outer = current_num_threads();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            let items = [0u8; 16];
            items
                .par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn workers_do_not_inherit_thread_locals() {
        thread_local! {
            static MARK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        MARK.with(|m| m.set(42));
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let marks: Vec<u32> = pool.install(|| {
            let items = [0u8; 8];
            items
                .par_iter()
                .map(|_| MARK.with(std::cell::Cell::get))
                .collect()
        });
        // With >1 worker at least the spawned threads see a fresh 0; on a
        // single-core host the inline path legitimately sees the caller's
        // value, so only assert when real workers ran.
        if current_num_threads() > 1 {
            assert!(marks.contains(&0));
        }
        assert_eq!(marks.len(), 8);
    }

    #[test]
    fn par_iter_mut_visits_every_item_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut items: Vec<u64> = (0..103).collect();
        pool.install(|| items.par_iter_mut().for_each(|x| *x = *x * 3 + 1));
        let expect: Vec<u64> = (0..103).map(|x| x * 3 + 1).collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn par_iter_mut_single_width_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let mut ids = vec![None; 7];
        pool.install(|| {
            ids.par_iter_mut()
                .for_each(|slot| *slot = Some(std::thread::current().id()))
        });
        assert!(ids.iter().all(|id| *id == Some(caller)));
    }

    #[test]
    fn par_iter_mut_empty_is_a_noop() {
        let mut none: Vec<u64> = Vec::new();
        none.par_iter_mut().for_each(|_| unreachable!());
    }

    #[test]
    fn par_iter_mut_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                let mut items: Vec<u32> = (0..8).collect();
                items
                    .par_iter_mut()
                    .for_each(|x| if *x == 5 { panic!("boom") } else { *x += 1 });
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                let items: Vec<u32> = (0..8).collect();
                let _: Vec<u32> = items
                    .par_iter()
                    .map(|x| if *x == 5 { panic!("boom") } else { *x })
                    .collect();
            })
        }));
        assert!(result.is_err());
    }
}
