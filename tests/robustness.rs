//! Robustness tests beyond the paper's nominal scenario: spikier
//! workloads, different schedule shapes, degraded sensors.

use powersim::units::{Seconds, Watts};
use simkit::{run_policy, PolicyKind, RunSummary, Scenario, SprintConPolicy};
use workloads::mmpp::MmppConfig;
use workloads::trace::Trace;

/// SprintCon rides Markov-modulated flash-crowd demand without tripping
/// or draining the battery: the regime switches are exactly what the UPS
/// controller's deadbeat law plus the allocator's headroom trim exist for.
#[test]
fn sprintcon_survives_regime_switching_demand() {
    let mut scenario = Scenario::paper_default(2019);
    let spiky = MmppConfig::spiky_default().generate(77);
    // Swap in the spiky trace via a custom wiki config is not possible —
    // inject directly through the built sim's tier.
    let mut sim = scenario.build();
    *sim.tier.demand_mut() = spiky;
    scenario.duration = Seconds::minutes(15.0);
    let mut policy = SprintConPolicy::paper_default();
    let rec = sim.run(&mut policy, scenario.duration);
    let s = RunSummary::from_run("SprintCon/mmpp", &sim, &rec);
    assert_eq!(s.trips, 0, "no trips under flash crowds");
    assert!(!s.shutdown);
    assert!(s.dod < 0.6, "battery must survive: DoD {}", s.dod);
    assert!((s.avg_freq_interactive - 1.0).abs() < 1e-9);
    assert!(s.service_ratio > 0.99, "interactive traffic fully served");
}

/// A 5-minute burst selects the *constant* overload schedule (§IV-A):
/// the breaker is overloaded for the whole burst, then released, and the
/// thermal budget is honored because the configured overload duration is
/// validated against the trip curve... but a 300 s constant overload at
/// 1.25× would trip a breaker whose curve allows only 150 s. SprintCon's
/// supervisor catches this: the trip-margin monitor forces recovery
/// before the trip (CbProtect), exactly the §IV-C escalation.
#[test]
fn constant_schedule_burst_is_protected_by_the_margin_monitor() {
    let mut scenario = Scenario::paper_default(2019);
    scenario.duration = Seconds::minutes(6.0);
    let mut sim = scenario.build();
    let mut cfg = sprintcon::SprintConConfig::paper_default();
    cfg.t_burst = Seconds::minutes(5.0); // → ScheduleKind::Constant
    let mut policy = simkit::SprintConPolicy::new(cfg);
    let rec = sim.run(&mut policy, scenario.duration);
    let s = RunSummary::from_run("SprintCon/constant", &sim, &rec);
    assert_eq!(s.trips, 0, "margin monitor must prevent the trip");
    assert!(!s.shutdown);
    // The run must actually have entered protection (the mode label
    // appears in the event log) — otherwise this test proves nothing.
    let protected = rec
        .events_where(|e| {
            matches!(
                e,
                simkit::SimEvent::ModeChange(simkit::ModeLabel::CbProtect)
            )
        })
        .count();
    assert!(protected >= 1, "CbProtect must have engaged");
    // And the breaker margin never reported beyond the stop threshold
    // by more than one control period's heating.
    for smp in rec.samples() {
        assert!(smp.breaker_margin <= 0.99, "margin {}", smp.breaker_margin);
    }
}

/// Ten times noisier power monitoring: SprintCon still never trips (the
/// margins absorb it), at the cost of some extra UPS energy.
#[test]
fn sprintcon_tolerates_a_degraded_power_monitor() {
    let mut scenario = Scenario::paper_default(2019);
    scenario.disturbances.monitor_rel_sigma = 0.05; // 5% relative noise
    scenario.disturbances.monitor_abs_sigma = 50.0;
    scenario.duration = Seconds::minutes(8.0);
    let run = run_policy(&scenario, PolicyKind::SprintCon);
    let (rec, s) = (&run.recorder, &run.summary);
    // The physical guarantee survives: the margins and the breaker's
    // thermal inertia absorb the sensor noise — no trips, no blackout.
    assert_eq!(s.trips, 0);
    assert!(!s.shutdown);
    assert!(s.dod < 0.6, "noise inflates UPS use but must stay bounded");
    // Excursions beyond ~3σ of the noise stay rare.
    let above = rec
        .samples()
        .iter()
        .filter(|x| x.cb_power.0 > x.p_cb_target.unwrap_or(Watts(1e9)).0 + 600.0)
        .count();
    assert!(
        above * 50 < rec.len(),
        "gross excursions must be rare: {above}"
    );
}

/// A flat (non-bursty) demand trace: the allocator gives batch the whole
/// headroom and the UPS barely discharges.
#[test]
fn flat_demand_spends_almost_no_stored_energy() {
    let mut scenario = Scenario::paper_default(2019);
    scenario.duration = Seconds::minutes(6.0);
    let mut sim = scenario.build();
    *sim.tier.demand_mut() = Trace::constant(Seconds(1.0), 0.35, 900);
    let mut policy = SprintConPolicy::paper_default();
    let rec = sim.run(&mut policy, scenario.duration);
    let s = RunSummary::from_run("SprintCon/flat", &sim, &rec);
    assert_eq!(s.trips, 0);
    // Low, steady interactive power → batch soaks the headroom and the
    // UPS mostly idles.
    assert!(
        s.ups_energy_wh < 25.0,
        "flat demand should barely touch the UPS: {} Wh",
        s.ups_energy_wh
    );
    assert!(s.avg_freq_batch > 0.5, "batch should enjoy the headroom");
}
