//! Execution-layer contract tests: the parallel campaign engine must be
//! bit-identical to sequential execution (including under active fault
//! injection), per-run telemetry must stay isolated across concurrent
//! runs, and sweeps must return results in input order. CI runs this
//! suite plus `bench_engine --check` on every push.

use powersim::faults::FaultPlan;
use powersim::units::Seconds;
use simkit::{run_digest, sweep_parallel, Campaign, ExecConfig, PolicyKind, Scenario};

fn short(mut sc: Scenario, secs: f64) -> Scenario {
    sc.duration = Seconds(secs);
    sc
}

/// A seeded campaign that includes a scenario with an *active* fault
/// plan: stochastic monitor dropouts driven by the scenario's seeded
/// RNG. Faults exercise the degraded-mode paths (measurement hold, PID
/// fallback), which must be just as deterministic as the happy path.
fn mixed_campaign() -> Campaign {
    let faulty = Scenario::builder(7)
        .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)))
        .build()
        .expect("fault scenario is valid");
    Campaign::new()
        .with_run(
            short(Scenario::paper_default(1), 25.0),
            PolicyKind::SprintCon,
        )
        .with_run(short(Scenario::paper_default(2), 25.0), PolicyKind::Sgct)
        .with_run(short(faulty.clone(), 40.0), PolicyKind::SprintCon)
        .with_run(short(faulty, 40.0), PolicyKind::Sgct)
}

#[test]
fn parallel_is_bit_identical_to_sequential_including_faults() {
    let c = mixed_campaign();
    let seq = c.run_sequential();
    for jobs in [2usize, 4] {
        let par = c.run_with(ExecConfig::jobs(jobs));
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.label, s.label, "{jobs} jobs: result order changed");
            assert_eq!(
                p.digest(),
                s.digest(),
                "{jobs} jobs: {} diverged from sequential",
                p.label
            );
        }
        // The digest covers samples/events/summary/metrics; spot-check
        // raw bit equality on the fault run's trajectory as well so a
        // digest bug cannot mask a divergence here.
        let (pf, sf) = (&par[2].output, &seq[2].output);
        assert_eq!(pf.recorder.samples().len(), sf.recorder.samples().len());
        for (a, b) in pf.recorder.samples().iter().zip(sf.recorder.samples()) {
            assert_eq!(a.p_total.0.to_bits(), b.p_total.0.to_bits());
            assert_eq!(a.ups_power.0.to_bits(), b.ups_power.0.to_bits());
        }
    }
}

#[test]
fn telemetry_counters_stay_isolated_across_concurrent_runs() {
    // Three runs of different lengths executing concurrently: each gets
    // its own thread-scoped collector, so `qp_solve_total` (one per MPC
    // control period) must scale with each run's own duration — and
    // match the sequential counts exactly. A leaked or shared collector
    // would merge the counts.
    let c = Campaign::new()
        .with_run(
            short(Scenario::paper_default(3), 20.0),
            PolicyKind::SprintCon,
        )
        .with_run(
            short(Scenario::paper_default(3), 40.0),
            PolicyKind::SprintCon,
        )
        .with_run(
            short(Scenario::paper_default(3), 60.0),
            PolicyKind::SprintCon,
        );
    let par = c.run_with(ExecConfig::jobs(3));
    let seq = c.run_sequential();
    let count = |r: &simkit::CampaignResult| r.output.metrics.counter("qp_solve_total");
    for (p, s) in par.iter().zip(&seq) {
        assert!(count(p) > 0, "{}: no QP solves recorded", p.label);
        assert_eq!(count(p), count(s), "{}: counter leaked", p.label);
    }
    // Different durations ⇒ strictly increasing per-run counts; equality
    // anywhere would mean two runs shared a collector.
    assert!(count(&par[0]) < count(&par[1]));
    assert!(count(&par[1]) < count(&par[2]));
}

#[test]
fn sweep_parallel_returns_results_in_input_order() {
    // Earlier items sleep longer, so completion order is roughly the
    // reverse of input order — results must come back in input order
    // regardless.
    let params: Vec<u64> = (0..8).collect();
    let out = sweep_parallel(&params, ExecConfig::jobs(4), |&i| {
        std::thread::sleep(std::time::Duration::from_millis((8 - i) * 3));
        i * 10
    });
    assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
}

#[test]
fn digest_is_stable_for_identical_runs_and_distinguishes_seeds() {
    let a = simkit::run_policy(
        &short(Scenario::paper_default(11), 20.0),
        PolicyKind::SprintCon,
    );
    let b = simkit::run_policy(
        &short(Scenario::paper_default(11), 20.0),
        PolicyKind::SprintCon,
    );
    let c = simkit::run_policy(
        &short(Scenario::paper_default(12), 20.0),
        PolicyKind::SprintCon,
    );
    assert_eq!(run_digest(&a), run_digest(&b));
    assert_ne!(run_digest(&a), run_digest(&c));
}
