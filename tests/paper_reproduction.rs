//! Integration tests asserting the paper's qualitative results end to
//! end across all crates (plant + workloads + controllers + engine).
//!
//! Full 15-minute, 16-server runs of the MPC-driven policy are exercised
//! by the figure binaries in release mode (`cargo run -p sprintcon-bench
//! --bin ...`); here the SprintCon runs use shortened windows or a scaled
//! rack so the suite stays fast in debug.

use powersim::units::Seconds;
use simkit::{run_policy, PolicyKind, Scenario};

/// Uncontrolled SGCT: the Fig. 5 failure sequence — trips inside the
/// first overload window, drains the UPS carrying the rack, browns out
/// for good mid-run.
#[test]
fn sgct_uncontrolled_trips_drains_and_dies() {
    let scenario = Scenario::paper_default(2019);
    let run = run_policy(&scenario, PolicyKind::Sgct);
    let (rec, summary) = (&run.recorder, &run.summary);
    assert!(summary.trips >= 1);
    let first_trip = rec.samples().iter().position(|s| s.tripped).unwrap();
    assert!(first_trip <= 150, "tripped at {first_trip}s");
    // After the trip the breaker is open and the UPS carries everything.
    let after = &rec.samples()[first_trip + 1];
    assert_eq!(after.cb_power.0, 0.0);
    assert!(after.ups_power.0 > 3000.0);
    // Eventually: blackout, frequencies to zero (Fig. 5(b)).
    assert!(summary.shutdown);
    let down_min = summary.shutdown_at.unwrap().as_minutes();
    assert!((8.0..=13.0).contains(&down_min), "down at {down_min} min");
    let last = rec.samples().last().unwrap();
    assert_eq!(last.mean_freq_interactive, 0.0);
    assert_eq!(last.mean_freq_batch, 0.0);
    // And the interactive tier lost a visible chunk of its traffic.
    assert!(summary.service_ratio < 0.9);
}

/// The idealized baselines keep their no-trip promise over the full run
/// and land their characteristic frequency split (Fig. 7(b)(c)).
#[test]
fn ideal_baselines_never_trip_and_split_frequencies() {
    let scenario = Scenario::paper_default(2019);
    let v1 = run_policy(&scenario, PolicyKind::SgctV1).summary;
    let v2 = run_policy(&scenario, PolicyKind::SgctV2).summary;
    assert_eq!(v1.trips, 0);
    assert_eq!(v2.trips, 0);
    assert!(!v1.shutdown && !v2.shutdown);
    // V1 (utilization ranking) favours batch; V2 flips it.
    assert!(v1.avg_freq_batch > v1.avg_freq_interactive);
    assert!(v2.avg_freq_interactive > v2.avg_freq_batch);
    assert!(v2.avg_freq_interactive > v1.avg_freq_interactive);
    // Both spend a similar, substantial amount of stored energy.
    assert!((v1.ups_energy_wh - v2.ups_energy_wh).abs() < 30.0);
    assert!(v1.ups_energy_wh > 80.0);
}

/// SprintCon on a shortened (4-minute) window covering one full
/// overload + recovery cycle: interactive pinned at peak, CB within
/// budget, no trips, batch frequency stepping with the phase.
#[test]
fn sprintcon_first_cycle_behaviour() {
    let mut scenario = Scenario::paper_default(2019);
    scenario.duration = Seconds::minutes(4.0);
    let run = run_policy(&scenario, PolicyKind::SprintCon);
    let (rec, summary) = (&run.recorder, &run.summary);
    assert_eq!(summary.trips, 0);
    assert!((summary.avg_freq_interactive - 1.0).abs() < 1e-9);
    // Budget discipline: excursions above the published CB budget are
    // rare one-period transients.
    let above = rec
        .samples()
        .iter()
        .filter(|s| s.cb_power.0 > s.p_cb_target.unwrap().0 + 60.0)
        .count();
    assert!(above * 100 < rec.len() * 5, "{above} excursions");
    // Phase structure: batch faster during the first overload window
    // than during the recovery that follows.
    let fb: Vec<f64> = rec.samples().iter().map(|s| s.mean_freq_batch).collect();
    let over: f64 = fb[30..145].iter().sum::<f64>() / 115.0;
    let recov: f64 = fb[180..235].iter().sum::<f64>() / 55.0;
    assert!(
        over > recov + 0.15,
        "overload {over:.2} vs recovery {recov:.2}"
    );
}

/// The headline comparison on a scaled rack (8 servers, proportionally
/// scaled breaker/UPS), full 15 minutes: SprintCon meets deadlines with
/// far less stored energy than the ideal baselines and no trips.
#[test]
fn scaled_rack_headline_ordering() {
    let scenario = Scenario::builder(2019)
        .num_servers(8)
        .breaker(powersim::breaker::BreakerSpec::calibrated(
            powersim::units::Watts(1600.0),
            1.25,
            Seconds(150.0),
            Seconds(300.0),
        ))
        .ups(powersim::ups::UpsSpec {
            capacity: powersim::units::WattHours(200.0),
            max_discharge: powersim::units::Watts(2400.0),
            ..powersim::ups::UpsSpec::paper_default()
        })
        .build()
        .expect("scaled rack is a valid scenario");
    // SprintCon needs a matching plant description.
    let (_, sc) = {
        let mut sim = scenario.build();
        let mut cfg = sprintcon::SprintConConfig::paper_default();
        cfg.num_servers = 8;
        cfg.breaker = scenario.breaker;
        cfg.ups = scenario.ups;
        let mut policy = simkit::SprintConPolicy::new(cfg);
        let rec = sim.run(&mut policy, scenario.duration);
        let s = simkit::RunSummary::from_run("SprintCon", &sim, &rec);
        (rec, s)
    };
    assert_eq!(sc.trips, 0, "no trips on the scaled rack");
    assert_eq!(sc.deadlines_met, sc.deadlines_total);
    assert!((sc.avg_freq_interactive - 1.0).abs() < 1e-9);
    assert!(sc.dod < 0.5, "stored energy stays bounded: {}", sc.dod);
}

/// Determinism across the whole stack: identical seeds give identical
/// runs, different seeds differ.
#[test]
fn end_to_end_determinism() {
    let mut scenario = Scenario::paper_default(5);
    scenario.duration = Seconds(90.0);
    let run_a = run_policy(&scenario, PolicyKind::SgctV1);
    let run_b = run_policy(&scenario, PolicyKind::SgctV1);
    let (rec_a, sum_a) = (&run_a.recorder, &run_a.summary);
    let (rec_b, sum_b) = (&run_b.recorder, &run_b.summary);
    assert_eq!(rec_a.len(), rec_b.len());
    for (a, b) in rec_a.samples().iter().zip(rec_b.samples()) {
        assert_eq!(a.p_total, b.p_total);
        assert_eq!(a.cb_power, b.cb_power);
    }
    assert_eq!(sum_a.ups_energy_wh, sum_b.ups_energy_wh);
    let mut other = scenario.clone();
    other.seed = 6;
    let rec_c = run_policy(&other, PolicyKind::SgctV1).recorder;
    assert!(rec_a
        .samples()
        .iter()
        .zip(rec_c.samples())
        .any(|(a, c)| a.p_total != c.p_total));
}

/// Energy conservation across the feed for a whole run: energy delivered
/// to the rack equals CB energy plus UPS energy; UPS energy matches the
/// battery's internal accounting (within discharge efficiency).
#[test]
fn run_level_energy_conservation() {
    let mut scenario = Scenario::paper_default(11);
    scenario.duration = Seconds::minutes(3.0);
    let mut sim = scenario.build();
    let mut policy = simkit::SgctSimPolicy::new(baselines::SgctVariant::V1Ideal);
    let rec = sim.run(&mut policy, scenario.duration);
    let dt = Seconds(1.0);
    let served: f64 = rec
        .samples()
        .iter()
        .map(|s| (s.cb_power + s.ups_power).over(dt).0)
        .collect::<Vec<f64>>()
        .iter()
        .sum();
    let demanded: f64 = rec
        .samples()
        .iter()
        .map(|s| s.p_total.over(dt).0 - s.shortfall.over(dt).0)
        .sum();
    assert!(
        (served - demanded).abs() < 1.0,
        "served {served} vs demanded {demanded}"
    );
    let cells = sim.feed.ups.total_cell_energy_out.0;
    let delivered = rec.ups_energy_wh();
    assert!((delivered - cells * sim.feed.ups.spec.discharge_efficiency).abs() < 0.5);
}
