//! Fault-injection integration tests: determinism of fault replay, the
//! zero-drift guarantee when faults are disabled, the mapping from each
//! fault class to its degraded-mode telemetry, and the headline
//! acceptance scenario (monitor dropout at 10% intensity).

use powersim::faults::{FaultKind, FaultPlan, StochasticFault};
use powersim::units::{Seconds, Watts};
use simkit::{run_policy, PolicyKind, Recorder, Scenario};

fn assert_bitwise_equal(a: &Recorder, b: &Recorder) {
    assert_eq!(a.samples().len(), b.samples().len());
    for (i, (x, y)) in a.samples().iter().zip(b.samples()).enumerate() {
        assert_eq!(
            x.p_total.0.to_bits(),
            y.p_total.0.to_bits(),
            "p_total diverges at sample {i}"
        );
        assert_eq!(
            x.p_measured.0.to_bits(),
            y.p_measured.0.to_bits(),
            "p_measured diverges at sample {i}"
        );
        assert_eq!(
            x.ups_power.0.to_bits(),
            y.ups_power.0.to_bits(),
            "ups_power diverges at sample {i}"
        );
        assert_eq!(
            x.breaker_margin.to_bits(),
            y.breaker_margin.to_bits(),
            "breaker_margin diverges at sample {i}"
        );
        assert_eq!(
            x.ups_soc.to_bits(),
            y.ups_soc.to_bits(),
            "ups_soc diverges at sample {i}"
        );
    }
}

fn busy_plan() -> FaultPlan {
    FaultPlan::none()
        .with_event(Seconds(60.0), Seconds(45.0), FaultKind::MonitorStuckAt)
        .with_event(
            Seconds(150.0),
            Seconds(60.0),
            FaultKind::ActuatorLag { tau: Seconds(4.0) },
        )
        .with_stochastic(StochasticFault {
            kind: FaultKind::MonitorDropout,
            start_rate: 0.02,
            mean_duration: Seconds(6.0),
        })
}

/// Same seed + same plan → bit-identical runs, even with stochastic
/// fault processes in the plan.
#[test]
fn fault_replay_is_bit_identical() {
    let scenario = Scenario::builder(7)
        .duration(Seconds::minutes(5.0))
        .deadline(Seconds::minutes(4.0))
        .faults(busy_plan())
        .build()
        .expect("valid scenario");
    let a = run_policy(&scenario, PolicyKind::SprintCon);
    let b = run_policy(&scenario, PolicyKind::SprintCon);
    assert_bitwise_equal(&a.recorder, &b.recorder);
    // The faults were actually live, not vacuously absent.
    assert!(a.metrics.counter("degraded.measurement_hold") > 0);
}

/// An empty fault plan is indistinguishable — bit for bit — from a plan
/// whose events never activate: the injector must not consume RNG or
/// perturb any state while idle.
#[test]
fn disabled_faults_cause_zero_drift() {
    let base = Scenario::builder(2019)
        .duration(Seconds::minutes(5.0))
        .deadline(Seconds::minutes(4.0))
        .build()
        .expect("valid scenario");
    let far_future = Scenario::builder(2019)
        .duration(Seconds::minutes(5.0))
        .deadline(Seconds::minutes(4.0))
        .faults(FaultPlan::none().with_event(
            Seconds(1e9),
            Seconds(60.0),
            FaultKind::MonitorDropout,
        ))
        .build()
        .expect("valid scenario");
    for kind in [PolicyKind::SprintCon, PolicyKind::Sgct] {
        let a = run_policy(&base, kind);
        let b = run_policy(&far_future, kind);
        assert_bitwise_equal(&a.recorder, &b.recorder);
        assert_eq!(a.metrics.counter("degraded.measurement_hold"), 0);
        assert_eq!(a.metrics.counter("server_ctrl_pid_fallback"), 0);
    }
}

/// Each fault class drives exactly the degraded-mode path built for it,
/// observable through the PR-1 telemetry counters.
#[test]
fn each_fault_class_hits_its_degraded_mode_counter() {
    // (fault, counter that must fire)
    let table: &[(FaultKind, &str)] = &[
        (FaultKind::MonitorDropout, "degraded.dropout"),
        (FaultKind::MonitorStuckAt, "degraded.stuck_sensor"),
        (
            FaultKind::MonitorSpike {
                magnitude: Watts(20_000.0),
            },
            "degraded.spike_rejected",
        ),
        (
            FaultKind::ActuatorLag { tau: Seconds(6.0) },
            "fault_active.actuator_lag",
        ),
        (
            FaultKind::ActuatorQuantize { step: 0.2 },
            "fault_active.actuator_quantize",
        ),
        (
            FaultKind::UpsCapacityFade { fraction: 0.4 },
            "fault_active.ups_capacity_fade",
        ),
        (
            FaultKind::UpsCurrentLimit {
                max_discharge: Watts(600.0),
            },
            "fault_active.ups_current_limit",
        ),
        (
            FaultKind::BreakerHeatPerturb { delta: 0.2 },
            "fault_active.breaker_heat_perturb",
        ),
        (
            FaultKind::ServerCrash { server: 0 },
            "fault_active.server_crash",
        ),
    ];
    for (kind, counter) in table {
        let scenario = Scenario::builder(11)
            .duration(Seconds::minutes(4.0))
            .deadline(Seconds::minutes(3.0))
            .faults(FaultPlan::none().with_event(Seconds(60.0), Seconds(90.0), *kind))
            .build()
            .expect("valid scenario");
        let out = run_policy(&scenario, PolicyKind::SprintCon);
        assert!(
            out.metrics.counter(counter) > 0,
            "{}: expected counter {counter} to fire\ncounters: {:?}",
            kind.label(),
            out.metrics
        );
        // Whatever the fault, the run itself must stay sane: no
        // brownout, all samples finite.
        assert!(!out.summary.shutdown, "{}: rack browned out", kind.label());
        for s in out.recorder.samples() {
            assert!(s.ups_power.0.is_finite() && s.cb_power.0.is_finite());
        }
    }
}

/// The acceptance scenario: with the power monitor dropping out 10% of
/// the time, SprintCon still completes the §VI-A sprint with zero
/// breaker trips, while the uncontrolled baseline trips.
#[test]
fn ten_percent_dropout_sprintcon_never_trips_uncontrolled_does() {
    let plan = FaultPlan::monitor_dropout(0.10, Seconds(8.0));
    let scenario = Scenario::builder(2019)
        .faults(plan)
        .build()
        .expect("valid scenario");

    let sprintcon = run_policy(&scenario, PolicyKind::SprintCon);
    assert_eq!(
        sprintcon.summary.trips, 0,
        "SprintCon must not trip under 10% monitor dropout"
    );
    assert!(!sprintcon.summary.shutdown);
    // The degradation ladder was exercised, not bypassed.
    assert!(sprintcon.metrics.counter("degraded.measurement_hold") > 0);

    let uncontrolled = run_policy(&scenario, PolicyKind::Sgct);
    assert!(
        uncontrolled.summary.trips >= 1,
        "uncontrolled sprinting should trip the breaker"
    );
}
