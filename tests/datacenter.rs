//! Datacenter-engine contract tests: sharded multi-rack execution must
//! be bit-identical to sequential execution (including under active
//! fault injection), the headroom market must conserve every tree
//! edge's budget at every supervisor boundary, and a single-rack
//! datacenter must reproduce the standalone engine's digest exactly.
//! CI runs this suite plus `bench_datacenter --check` on every push.

use powersim::datacenter::DatacenterTopology;
use powersim::faults::FaultPlan;
use powersim::grid::{GridEventKind, GridPlan};
use powersim::units::{Seconds, Watts};
use proptest::prelude::*;
use simkit::{
    run_datacenter, run_datacenter_with, run_digest, run_policy, DcRecordMode, DcScenario,
    ExecConfig, PolicyKind, Scenario,
};
use sprintcon::{
    allocate_headroom_two_level, allocate_headroom_two_level_with, HeadroomBid, MarketWorkspace,
};

/// A rack template with an *active* stochastic fault plan: monitor
/// dropouts force the degraded-mode supervisor paths, which must be just
/// as deterministic under sharded execution as the happy path.
fn faulty_base(seed: u64, secs: f64) -> Scenario {
    let mut sc = Scenario::builder(seed)
        .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)))
        .build()
        .expect("fault scenario is valid");
    sc.duration = Seconds(secs);
    sc
}

/// 2 PDUs × 3 racks with headroom for one overload swing per PDU and
/// three floor-wide — scarce enough that the market actually rations.
fn two_pdu_topo() -> DatacenterTopology {
    DatacenterTopology::uniform(
        2,
        3,
        Watts(3.0 * 3200.0 + 800.0),
        Watts(6.0 * 3200.0 + 3.0 * 800.0),
    )
    .expect("topology is valid")
}

#[test]
fn sharded_run_is_bit_identical_to_sequential_including_faults() {
    let dc = DcScenario::new(faulty_base(7, 90.0), two_pdu_topo()).unwrap();
    let seq = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
    for jobs in [2usize, 4] {
        let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).unwrap();
        assert_eq!(
            par.digest, seq.digest,
            "jobs={jobs}: datacenter digest diverged from sequential"
        );
        // The digest covers per-rack samples/events/summary/metrics plus
        // the market rounds; spot-check raw bit equality on one rack's
        // trajectory as well so a digest bug cannot mask a divergence.
        for (a, b) in par.racks[3]
            .recorder
            .samples()
            .iter()
            .zip(seq.racks[3].recorder.samples())
        {
            assert_eq!(a.p_total.0.to_bits(), b.p_total.0.to_bits());
            assert_eq!(a.cb_power.0.to_bits(), b.cb_power.0.to_bits());
        }
        for (ra, rb) in par.rounds.iter().zip(&seq.rounds) {
            for (ga, gb) in ra.grants.iter().zip(&rb.grants) {
                assert_eq!(ga.0.to_bits(), gb.0.to_bits());
            }
        }
    }
}

#[test]
fn single_rack_datacenter_matches_the_standalone_engine() {
    let mut base = Scenario::paper_default(42);
    base.duration = Seconds(90.0);
    // Edge rating = the overloaded draw: the feeder budget covers the
    // full overload swing, so every grant is bit-transparent.
    let topo = DatacenterTopology::single_rack(Watts(4000.0)).unwrap();
    let dc = DcScenario::new(base.clone(), topo).unwrap();
    let out = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    assert_eq!(
        run_digest(&out.racks[0]),
        run_digest(&standalone),
        "single-rack datacenter must reproduce the standalone digest"
    );
    // And the digest is itself reproducible across worker counts (one
    // rack: the pool degenerates, but the code path is exercised).
    let par = run_datacenter(&dc, ExecConfig::jobs(2)).unwrap();
    assert_eq!(out.digest, par.digest);
}

#[test]
fn rack_zero_matches_standalone_even_in_a_multi_rack_floor() {
    // Rack 0 runs the template seed verbatim; with ample headroom at
    // every edge, its grants stay bit-transparent even while five other
    // racks bid in the same market.
    let mut base = Scenario::paper_default(21);
    base.duration = Seconds(60.0);
    let topo = DatacenterTopology::uniform(2, 3, Watts(3.0 * 4000.0), Watts(6.0 * 4000.0)).unwrap();
    let dc = DcScenario::new(base.clone(), topo).unwrap();
    let out = run_datacenter(&dc, ExecConfig::jobs(3)).unwrap();
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    assert_eq!(run_digest(&out.racks[0]), run_digest(&standalone));
    // Sibling racks run different seeds, hence different trajectories.
    assert_ne!(run_digest(&out.racks[1]), run_digest(&out.racks[0]));
}

/// Workspace reuse across differently shaped auctions is a pure
/// optimization: a warm [`MarketWorkspace`] (scratch sized by earlier,
/// larger markets) must clear every auction bit-identically to a fresh
/// one and to the allocating Vec API. This is the integration-level
/// twin of the engine's internal per-epoch reuse — `market_conserves`
/// and the digest tests above only see the engine's own workspace, so
/// this drives the API shape directly.
#[test]
fn market_workspace_reuse_is_deterministic_across_shapes() {
    let auction = |n: usize, pdus: usize, salt: u64| {
        let bids: Vec<HeadroomBid> = (0..n)
            .map(|i| HeadroomBid {
                id: i,
                request: Watts(200.0 + ((i as u64 * 37 + salt * 11) % 700) as f64),
                priority: 0.1 + ((i as u64 * 13 + salt * 7) % 10) as f64 / 10.0,
            })
            .collect();
        let pdu_of: Vec<usize> = (0..n).map(|i| i % pdus).collect();
        let caps: Vec<Watts> = (0..pdus).map(|p| Watts(600.0 + 150.0 * p as f64)).collect();
        let budget = Watts(900.0 + 50.0 * salt as f64);
        (bids, pdu_of, caps, budget)
    };
    let mut warm = MarketWorkspace::new();
    // Warm the scratch on the largest shape first, then shrink — stale
    // capacity and stale contents must never leak into later clears.
    for (n, pdus, salt) in [(48, 6, 0u64), (9, 3, 1), (17, 4, 2), (3, 1, 3), (30, 5, 4)] {
        let (bids, pdu_of, caps, budget) = auction(n, pdus, salt);
        let warm_out = allocate_headroom_two_level_with(&mut warm, &bids, &pdu_of, &caps, budget);
        let mut fresh = MarketWorkspace::new();
        let fresh_out = allocate_headroom_two_level_with(&mut fresh, &bids, &pdu_of, &caps, budget);
        let vec_api = allocate_headroom_two_level(&bids, &pdu_of, &caps, budget);
        assert_eq!(warm_out.spent.0.to_bits(), fresh_out.spent.0.to_bits());
        assert_eq!(warm_out.granted, fresh_out.granted);
        assert_eq!(warm.grants().len(), n);
        for (i, (w, f)) in warm.grants().iter().zip(fresh.grants()).enumerate() {
            assert_eq!(
                w.0.to_bits(),
                f.0.to_bits(),
                "n={n} salt={salt}: warm grant {i} diverged from fresh"
            );
        }
        for (i, (w, v)) in warm.grants().iter().zip(&vec_api.grants).enumerate() {
            assert_eq!(
                w.0.to_bits(),
                v.0.to_bits(),
                "n={n} salt={salt}: workspace grant {i} diverged from Vec API"
            );
        }
    }
}

/// The grid-plan shapes the streaming≡full sweep cycles through — each
/// exercises a different supervisor escalation path during the run.
fn grid_variant(v: usize, secs: f64, racks: usize) -> GridPlan {
    let rated = racks as f64 * 3200.0;
    match v % 4 {
        0 => GridPlan::none(),
        1 => GridPlan::curtailment(
            Seconds(secs * 0.2),
            Seconds(secs * 0.5),
            Watts(rated * 0.95),
            Seconds(10.0),
        ),
        2 => GridPlan::none().with_event(
            Seconds(secs * 0.3),
            Seconds(secs * 0.4),
            GridEventKind::PriceSpike { multiplier: 3.0 },
        ),
        _ => GridPlan::none().with_event(
            Seconds(secs * 0.1),
            Seconds(secs * 0.6),
            GridEventKind::FreqRegulation {
                delta_w: Watts(-400.0),
                duration_s: Seconds(secs * 0.5),
            },
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation at every supervisor boundary, over random floor
    /// shapes and seeds: Σ rack grants never exceeds the feeder budget,
    /// and each PDU's member grants never exceed its cap.
    #[test]
    fn market_conserves_every_edge_budget(
        seed in 0u64..1_000,
        pdus in 1usize..4,
        racks_per_pdu in 1usize..4,
        pdu_swings in 1.0f64..3.0,
        feeder_frac in 0.2f64..1.0,
    ) {
        let mut base = Scenario::paper_default(seed);
        base.duration = Seconds(60.0);
        let pdu_rating = racks_per_pdu as f64 * 3200.0 + pdu_swings * 800.0;
        let n = (pdus * racks_per_pdu) as f64;
        // Feeder headroom: a fraction of the sum of PDU headrooms, so
        // the level-1 auction genuinely rations — but never below any
        // single PDU's rating (the topology validator rejects that).
        let feeder_rating =
            (n * 3200.0 + feeder_frac * pdus as f64 * pdu_swings * 800.0).max(pdu_rating);
        let topo = DatacenterTopology::uniform(
            pdus,
            racks_per_pdu,
            Watts(pdu_rating),
            Watts(feeder_rating),
        )
        .expect("generated topology is valid");
        let dc = DcScenario::new(base, topo).expect("scenario is valid");
        let out = run_datacenter(&dc, ExecConfig::jobs(2)).expect("tree carries rated draw");
        prop_assert!(!out.rounds.is_empty());
        for (i, round) in out.rounds.iter().enumerate() {
            let total: f64 = round.grants.iter().map(|g| g.0).sum();
            prop_assert!(
                total <= out.feeder_budget.0 + 1e-9,
                "round {i}: Σ grants {total} > feeder budget {}",
                out.feeder_budget
            );
            for (p, cap) in out.pdu_caps.iter().enumerate() {
                let pdu_sum: f64 = round
                    .grants
                    .iter()
                    .zip(&out.pdu_of)
                    .filter(|(_, &q)| q == p)
                    .map(|(g, _)| g.0)
                    .sum();
                prop_assert!(
                    pdu_sum <= cap.0 + 1e-9,
                    "round {i}: PDU {p} granted {pdu_sum} > cap {cap}"
                );
            }
            // Grants are non-negative and finite.
            for g in &round.grants {
                prop_assert!(g.0.is_finite() && g.0 >= 0.0, "bad grant {g}");
            }
        }
    }

    /// Streaming retention is a pure memory optimization: over random
    /// scenario shapes (seed, length, batch pressure), fault plans, grid
    /// plans, and worker counts, a streaming run must reproduce the
    /// full-retention run's digest and per-rack digests bit for bit —
    /// while actually discarding its per-period samples. (The datacenter
    /// engine pins the SprintCon policy per rack; `job_scale`/`deadline`
    /// vary the decisions it takes instead.)
    #[test]
    fn streaming_retention_reproduces_full_retention_digests(
        seed in 0u64..1_000,
        secs in 45.0f64..95.0,
        job_scale in 0.6f64..1.2,
        faulty_v in 0usize..2,
        grid_v in 0usize..4,
        jobs in 0usize..5,
    ) {
        let racks = 6;
        let mut builder = Scenario::builder(seed)
            .duration(Seconds(secs))
            .deadline(Seconds(secs * 0.8))
            .job_scale(job_scale)
            .grid(grid_variant(grid_v, secs, racks));
        let faulty = faulty_v == 1;
        if faulty {
            builder = builder.faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)));
        }
        let base = builder.build().expect("generated scenario is valid");
        let dc = DcScenario::new(base, two_pdu_topo()).expect("scenario is valid");
        let full = run_datacenter_with(&dc, ExecConfig::sequential(), DcRecordMode::Full)
            .expect("full run succeeds");
        let stream = run_datacenter_with(&dc, ExecConfig::jobs(jobs), DcRecordMode::Streaming)
            .expect("streaming run succeeds");
        prop_assert!(
            stream.digest == full.digest,
            "streaming digest diverged (seed {}, {:.0}s, faulty {}, grid {}, jobs {})",
            seed, secs, faulty, grid_v, jobs
        );
        prop_assert_eq!(&stream.rack_digests, &full.rack_digests);
        for (r, out) in stream.racks.iter().enumerate() {
            prop_assert!(
                out.recorder.samples().is_empty(),
                "streaming rack {r} retained {} samples",
                out.recorder.samples().len()
            );
        }
        for (r, out) in full.racks.iter().enumerate() {
            prop_assert!(
                !out.recorder.samples().is_empty(),
                "full-retention rack {r} kept no samples"
            );
        }
        // Market rounds are part of the digest, but compare them
        // directly too so a digest bug cannot mask a divergence.
        prop_assert_eq!(stream.rounds.len(), full.rounds.len());
        for (ra, rb) in stream.rounds.iter().zip(&full.rounds) {
            prop_assert_eq!(ra.spent.0.to_bits(), rb.spent.0.to_bits());
            for (ga, gb) in ra.grants.iter().zip(&rb.grants) {
                prop_assert_eq!(ga.0.to_bits(), gb.0.to_bits());
            }
        }
    }
}
