//! Datacenter-engine contract tests: sharded multi-rack execution must
//! be bit-identical to sequential execution (including under active
//! fault injection), the headroom market must conserve every tree
//! edge's budget at every supervisor boundary, and a single-rack
//! datacenter must reproduce the standalone engine's digest exactly.
//! CI runs this suite plus `bench_datacenter --check` on every push.

use powersim::datacenter::DatacenterTopology;
use powersim::faults::FaultPlan;
use powersim::units::{Seconds, Watts};
use proptest::prelude::*;
use simkit::{
    run_datacenter, run_digest, run_policy, DcScenario, ExecConfig, PolicyKind, Scenario,
};

/// A rack template with an *active* stochastic fault plan: monitor
/// dropouts force the degraded-mode supervisor paths, which must be just
/// as deterministic under sharded execution as the happy path.
fn faulty_base(seed: u64, secs: f64) -> Scenario {
    let mut sc = Scenario::builder(seed)
        .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)))
        .build()
        .expect("fault scenario is valid");
    sc.duration = Seconds(secs);
    sc
}

/// 2 PDUs × 3 racks with headroom for one overload swing per PDU and
/// three floor-wide — scarce enough that the market actually rations.
fn two_pdu_topo() -> DatacenterTopology {
    DatacenterTopology::uniform(
        2,
        3,
        Watts(3.0 * 3200.0 + 800.0),
        Watts(6.0 * 3200.0 + 3.0 * 800.0),
    )
    .expect("topology is valid")
}

#[test]
fn sharded_run_is_bit_identical_to_sequential_including_faults() {
    let dc = DcScenario::new(faulty_base(7, 90.0), two_pdu_topo()).unwrap();
    let seq = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
    for jobs in [2usize, 4] {
        let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).unwrap();
        assert_eq!(
            par.digest, seq.digest,
            "jobs={jobs}: datacenter digest diverged from sequential"
        );
        // The digest covers per-rack samples/events/summary/metrics plus
        // the market rounds; spot-check raw bit equality on one rack's
        // trajectory as well so a digest bug cannot mask a divergence.
        for (a, b) in par.racks[3]
            .recorder
            .samples()
            .iter()
            .zip(seq.racks[3].recorder.samples())
        {
            assert_eq!(a.p_total.0.to_bits(), b.p_total.0.to_bits());
            assert_eq!(a.cb_power.0.to_bits(), b.cb_power.0.to_bits());
        }
        for (ra, rb) in par.rounds.iter().zip(&seq.rounds) {
            for (ga, gb) in ra.grants.iter().zip(&rb.grants) {
                assert_eq!(ga.0.to_bits(), gb.0.to_bits());
            }
        }
    }
}

#[test]
fn single_rack_datacenter_matches_the_standalone_engine() {
    let mut base = Scenario::paper_default(42);
    base.duration = Seconds(90.0);
    // Edge rating = the overloaded draw: the feeder budget covers the
    // full overload swing, so every grant is bit-transparent.
    let topo = DatacenterTopology::single_rack(Watts(4000.0)).unwrap();
    let dc = DcScenario::new(base.clone(), topo).unwrap();
    let out = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    assert_eq!(
        run_digest(&out.racks[0]),
        run_digest(&standalone),
        "single-rack datacenter must reproduce the standalone digest"
    );
    // And the digest is itself reproducible across worker counts (one
    // rack: the pool degenerates, but the code path is exercised).
    let par = run_datacenter(&dc, ExecConfig::jobs(2)).unwrap();
    assert_eq!(out.digest, par.digest);
}

#[test]
fn rack_zero_matches_standalone_even_in_a_multi_rack_floor() {
    // Rack 0 runs the template seed verbatim; with ample headroom at
    // every edge, its grants stay bit-transparent even while five other
    // racks bid in the same market.
    let mut base = Scenario::paper_default(21);
    base.duration = Seconds(60.0);
    let topo = DatacenterTopology::uniform(2, 3, Watts(3.0 * 4000.0), Watts(6.0 * 4000.0)).unwrap();
    let dc = DcScenario::new(base.clone(), topo).unwrap();
    let out = run_datacenter(&dc, ExecConfig::jobs(3)).unwrap();
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    assert_eq!(run_digest(&out.racks[0]), run_digest(&standalone));
    // Sibling racks run different seeds, hence different trajectories.
    assert_ne!(run_digest(&out.racks[1]), run_digest(&out.racks[0]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation at every supervisor boundary, over random floor
    /// shapes and seeds: Σ rack grants never exceeds the feeder budget,
    /// and each PDU's member grants never exceed its cap.
    #[test]
    fn market_conserves_every_edge_budget(
        seed in 0u64..1_000,
        pdus in 1usize..4,
        racks_per_pdu in 1usize..4,
        pdu_swings in 1.0f64..3.0,
        feeder_frac in 0.2f64..1.0,
    ) {
        let mut base = Scenario::paper_default(seed);
        base.duration = Seconds(60.0);
        let pdu_rating = racks_per_pdu as f64 * 3200.0 + pdu_swings * 800.0;
        let n = (pdus * racks_per_pdu) as f64;
        // Feeder headroom: a fraction of the sum of PDU headrooms, so
        // the level-1 auction genuinely rations — but never below any
        // single PDU's rating (the topology validator rejects that).
        let feeder_rating =
            (n * 3200.0 + feeder_frac * pdus as f64 * pdu_swings * 800.0).max(pdu_rating);
        let topo = DatacenterTopology::uniform(
            pdus,
            racks_per_pdu,
            Watts(pdu_rating),
            Watts(feeder_rating),
        )
        .expect("generated topology is valid");
        let dc = DcScenario::new(base, topo).expect("scenario is valid");
        let out = run_datacenter(&dc, ExecConfig::jobs(2)).expect("tree carries rated draw");
        prop_assert!(!out.rounds.is_empty());
        for (i, round) in out.rounds.iter().enumerate() {
            let total: f64 = round.grants.iter().map(|g| g.0).sum();
            prop_assert!(
                total <= out.feeder_budget.0 + 1e-9,
                "round {i}: Σ grants {total} > feeder budget {}",
                out.feeder_budget
            );
            for (p, cap) in out.pdu_caps.iter().enumerate() {
                let pdu_sum: f64 = round
                    .grants
                    .iter()
                    .zip(&out.pdu_of)
                    .filter(|(_, &q)| q == p)
                    .map(|(g, _)| g.0)
                    .sum();
                prop_assert!(
                    pdu_sum <= cap.0 + 1e-9,
                    "round {i}: PDU {p} granted {pdu_sum} > cap {cap}"
                );
            }
            // Grants are non-negative and finite.
            for g in &round.grants {
                prop_assert!(g.0.is_finite() && g.0 >= 0.0, "bad grant {g}");
            }
        }
    }
}
