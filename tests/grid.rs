//! Grid-responsive scenario layer gates: the curtailment / price /
//! regulation subsystem must be invisible when unused and deterministic,
//! compliant, and fault-tolerant when active.
//!
//! * An **empty plan is bit-transparent**: wiring `GridPlan::none()`
//!   explicitly through the scenario builder reproduces every committed
//!   golden digest — the grid injector draws no RNG and perturbs no
//!   telemetry on the inactive path.
//! * **Active plans are deterministic**: campaigns mixing grid events
//!   with fault injection are bit-identical across worker counts.
//! * **Curtailment is complied with**: under SprintCon, grid-side draw
//!   (breaker power) is at or under the curtailed cap before the
//!   response deadline and stays there, with zero breaker trips.
//! * **Grid events compose with faults**: concurrent fault and grid
//!   plans produce finite, replayable trajectories.

use powersim::faults::{FaultKind, FaultPlan, StochasticFault};
use powersim::units::{Seconds, Watts};
use simkit::exec::run_digest;
use simkit::experiment::{run_policy, PolicyKind};
use simkit::{Campaign, ExecConfig, GridEventKind, GridPlan, Scenario};

/// The committed golden digests of `tests/soa_substrate.rs`. Duplicated
/// by value on purpose: this file proves an *explicitly wired* empty
/// grid plan reproduces them, so the constants must not be shared with
/// the file that defines them.
const GOLDEN_DIGESTS: [(&str, u64); 5] = [
    ("sprintcon_seed42_180s", 0xdc54fcfe56a09238),
    ("sgctv2_seed7_180s", 0x156f96be14939a36),
    ("sgct_seed3_120s", 0x7df9c1e370ccfc0c),
    ("sprintcon_faults_seed11_240s", 0xd2977a8f6598214e),
    ("sgctv1_faults_seed5_240s", 0x7a8855ae0bac74db),
];

fn golden_fault_plan() -> FaultPlan {
    FaultPlan::none()
        .with_event(Seconds(40.0), Seconds(30.0), FaultKind::MonitorStuckAt)
        .with_event(
            Seconds(90.0),
            Seconds(45.0),
            FaultKind::ActuatorLag { tau: Seconds(4.0) },
        )
        .with_event(
            Seconds(150.0),
            Seconds(30.0),
            FaultKind::ServerCrash { server: 3 },
        )
        .with_stochastic(StochasticFault {
            kind: FaultKind::MonitorDropout,
            start_rate: 40.0 / 3600.0,
            mean_duration: Seconds(5.0),
        })
}

fn golden_case(label: &str) -> (Scenario, PolicyKind) {
    let (seed, secs, deadline, faults, kind) = match label {
        "sprintcon_seed42_180s" => (42, 180.0, 150.0, false, PolicyKind::SprintCon),
        "sgctv2_seed7_180s" => (7, 180.0, 150.0, false, PolicyKind::SgctV2),
        "sgct_seed3_120s" => (3, 120.0, 100.0, false, PolicyKind::Sgct),
        "sprintcon_faults_seed11_240s" => (11, 240.0, 200.0, true, PolicyKind::SprintCon),
        "sgctv1_faults_seed5_240s" => (5, 240.0, 200.0, true, PolicyKind::SgctV1),
        other => panic!("unknown golden case {other}"),
    };
    let mut b = Scenario::builder(seed)
        .duration(Seconds(secs))
        .deadline(Seconds(deadline))
        // The point of this file: the empty plan is threaded explicitly.
        .grid(GridPlan::none());
    if faults {
        b = b.faults(golden_fault_plan());
    }
    (b.build().expect("golden scenario is valid"), kind)
}

/// A plan exercising all three event classes plus a stochastic stream.
fn busy_grid_plan() -> GridPlan {
    GridPlan::curtailment(Seconds(60.0), Seconds(120.0), Watts(3000.0), Seconds(30.0))
        .with_event(
            Seconds(20.0),
            Seconds(40.0),
            GridEventKind::PriceSpike { multiplier: 3.0 },
        )
        .with_event(
            Seconds(200.0),
            Seconds(30.0),
            GridEventKind::FreqRegulation {
                delta_w: Watts(-150.0),
                duration_s: Seconds(20.0),
            },
        )
}

#[test]
fn explicit_empty_grid_plan_reproduces_every_golden_digest() {
    for (label, want) in GOLDEN_DIGESTS {
        let (sc, kind) = golden_case(label);
        let got = run_digest(&run_policy(&sc, kind));
        assert_eq!(
            got, want,
            "{label}: digest 0x{got:016x} != golden 0x{want:016x} — \
             an inactive grid plan must be bit-transparent"
        );
    }
}

#[test]
fn active_grid_campaigns_are_bit_identical_across_workers() {
    let gridded = Scenario::builder(13)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(busy_grid_plan())
        .build()
        .expect("grid scenario is valid");
    let both = Scenario::builder(17)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(busy_grid_plan())
        .faults(golden_fault_plan())
        .build()
        .expect("grid+fault scenario is valid");
    let c = Campaign::new()
        .with_run(gridded.clone(), PolicyKind::SprintCon)
        .with_run(gridded, PolicyKind::Sgct)
        .with_run(both.clone(), PolicyKind::SprintCon)
        .with_run(both, PolicyKind::SgctV2);
    let seq = c.run_sequential();
    for jobs in [2usize, 4] {
        let par = c.run_with(ExecConfig::jobs(jobs));
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(
                p.digest(),
                s.digest(),
                "{jobs} jobs: {} diverged under an active grid plan",
                p.label
            );
        }
    }
}

#[test]
fn sprintcon_complies_with_curtailment_before_the_deadline() {
    // Curtail to 3 kW at t=60 with a 30 s response deadline: from t=90
    // until the event clears at t=180, grid-side draw must be at or
    // under the cap, with zero breaker trips anywhere in the run.
    let sc = Scenario::builder(42)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(GridPlan::curtailment(
            Seconds(60.0),
            Seconds(120.0),
            Watts(3000.0),
            Seconds(30.0),
        ))
        .build()
        .expect("curtailment scenario is valid");
    let out = run_policy(&sc, PolicyKind::SprintCon);
    let mut post_deadline = 0;
    for s in out.recorder.samples() {
        assert!(!s.tripped, "t={}: breaker tripped during curtailment", s.t);
        // Samples are stamped at period end; the tick starting at `now`
        // lands at t = now + dt.
        if s.t.0 > 90.0 + 1.0 && s.t.0 <= 180.0 {
            post_deadline += 1;
            assert!(
                s.cb_power.0 <= 3000.0 + 1e-6,
                "t={}: grid-side draw {} above the curtailed cap",
                s.t,
                s.cb_power
            );
        }
    }
    assert!(post_deadline > 80, "window under-sampled: {post_deadline}");
    assert_eq!(out.metrics.counter("grid.curtail_events"), 1);
    assert_eq!(
        out.metrics.counter("grid.compliance_violations"),
        0,
        "engine-side compliance counter must agree"
    );
    // The supervisor spent the event in its grid-curtail mode.
    assert!(
        out.recorder
            .samples()
            .iter()
            .any(|s| s.mode_label == simkit::ModeLabel::GridCurtail),
        "grid-curtail mode never engaged"
    );
}

#[test]
fn grid_events_and_faults_compose_deterministically() {
    let sc = Scenario::builder(23)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(busy_grid_plan())
        .faults(golden_fault_plan())
        .build()
        .expect("grid+fault scenario is valid");
    let a = run_policy(&sc, PolicyKind::SprintCon);
    let b = run_policy(&sc, PolicyKind::SprintCon);
    assert_eq!(run_digest(&a), run_digest(&b), "replay diverged");
    for s in a.recorder.samples() {
        assert!(
            s.p_total.0.is_finite() && s.cb_power.0.is_finite() && s.ups_soc.is_finite(),
            "t={}: non-finite trajectory under grid+faults",
            s.t
        );
    }
    // All three onset counters fired exactly once per scheduled event.
    assert_eq!(a.metrics.counter("grid.curtail_events"), 1);
    assert_eq!(a.metrics.counter("grid.price_events"), 1);
    assert_eq!(a.metrics.counter("grid.reg_events"), 1);
}
