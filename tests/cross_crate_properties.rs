//! Property-based tests on cross-crate invariants (proptest).

use powersim::breaker::{BreakerSpec, CircuitBreaker};
use powersim::topology::PowerFeed;
use powersim::units::{Seconds, Utilization, WattHours, Watts};
use powersim::ups::{UpsBattery, UpsSpec};
use proptest::prelude::*;
use sprint_control::mpc::{MpcConfig, MpcController};
use workloads::batch::BatchJob;
use workloads::progress_model::ProgressModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The feed conserves power: served = cb + ups, and served plus
    /// shortfall equals demand, for any demand/target sequence.
    #[test]
    fn feed_conserves_power(
        demands in proptest::collection::vec(0.0f64..6000.0, 1..120),
        targets in proptest::collection::vec(0.0f64..3000.0, 1..120),
    ) {
        let mut feed = PowerFeed::new(
            CircuitBreaker::new(BreakerSpec::paper_default()),
            UpsBattery::full(UpsSpec::paper_default()),
        );
        for (i, &d) in demands.iter().enumerate() {
            let t = targets[i % targets.len()];
            let out = feed.step(Watts(d), Watts(t), Seconds(1.0));
            prop_assert!((out.served.0 - (out.cb_power.0 + out.ups_power.0)).abs() < 1e-9);
            prop_assert!((out.served.0 + out.shortfall.0 - d).abs() < 1e-9);
            prop_assert!(out.ups_power.0 >= 0.0 && out.cb_power.0 >= 0.0);
        }
    }

    /// Battery accounting: SoC plus everything drawn from the cells is
    /// exactly the initial capacity, whatever the discharge pattern.
    #[test]
    fn battery_energy_balance(
        powers in proptest::collection::vec(0.0f64..6000.0, 1..200),
        dts in proptest::collection::vec(0.5f64..5.0, 1..200),
    ) {
        let mut b = UpsBattery::full(UpsSpec::paper_default());
        for (i, &p) in powers.iter().enumerate() {
            b.discharge(Watts(p), Seconds(dts[i % dts.len()]));
        }
        let total = b.soc() + b.total_cell_energy_out;
        prop_assert!((total.0 - 400.0).abs() < 1e-6, "total={total:?}");
        prop_assert!(b.depth_of_discharge() >= 0.0 && b.depth_of_discharge() <= 1.0);
        prop_assert!(b.max_dod >= b.depth_of_discharge() - 1e-12);
    }

    /// The breaker never trips while load stays at or below rated, and
    /// its trip margin is always within [0, 1].
    #[test]
    fn breaker_safe_at_or_below_rated(
        loads in proptest::collection::vec(0.0f64..3200.0, 1..500),
    ) {
        let mut cb = CircuitBreaker::new(BreakerSpec::paper_default());
        for &l in &loads {
            let out = cb.step(Watts(l), Seconds(1.0));
            prop_assert!(!out.tripped);
            prop_assert!(out.delivered == Watts(l));
            let m = cb.trip_margin();
            prop_assert!((0.0..=1.0).contains(&m));
        }
        prop_assert_eq!(cb.trip_count, 0);
    }

    /// MPC commands always respect the DVFS box, for arbitrary feedback,
    /// targets, weights and states.
    #[test]
    fn mpc_commands_always_in_bounds(
        p_fb in 0.0f64..5000.0,
        target in 0.0f64..5000.0,
        f_now in proptest::collection::vec(0.2f64..1.0, 8),
        weights in proptest::collection::vec(0.0f64..50.0, 8),
    ) {
        let mut ctrl = MpcController::new(
            MpcConfig::paper_default(),
            vec![15.0; 8],
            vec![0.2; 8],
            vec![1.0; 8],
        );
        ctrl.set_penalty_weights(&weights);
        let d = ctrl.compute(p_fb, target, &f_now);
        for f in &d.freqs {
            prop_assert!((0.2..=1.0 + 1e-9).contains(f), "f={f}");
        }
        prop_assert!(d.predicted_power.is_finite());
    }

    /// Batch-job execution: progress is monotone, never exceeds 1 for
    /// non-repeating jobs, and higher frequency never yields less
    /// progress.
    #[test]
    fn job_progress_monotone_in_frequency(
        mb in 0.0f64..0.9,
        work in 10.0f64..1000.0,
        f_lo in 0.2f64..0.9,
        df in 0.01f64..0.5,
        steps in 1usize..500,
    ) {
        let f_hi = (f_lo + df).min(1.0);
        let mk = || BatchJob::new("p", ProgressModel::new(mb), work, Seconds(1e9));
        let mut slow = mk();
        let mut fast = mk();
        let mut prev = 0.0;
        for _ in 0..steps {
            slow.step(f_lo, Seconds(1.0));
            fast.step(f_hi, Seconds(1.0));
            prop_assert!(slow.progress() >= prev - 1e-12);
            prev = slow.progress();
        }
        prop_assert!(fast.progress() >= slow.progress() - 1e-12);
        prop_assert!(slow.progress() <= 1.0 && fast.progress() <= 1.0);
    }

    /// The control weight is finite, non-negative, and capped, whatever
    /// the job state and query time.
    #[test]
    fn control_weight_bounded(
        mb in 0.0f64..0.9,
        work in 10.0f64..500.0,
        deadline in 50.0f64..2000.0,
        run_f in 0.0f64..1.0,
        run_s in 0usize..1500,
        query in 0.0f64..3000.0,
    ) {
        let mut j = BatchJob::new("w", ProgressModel::new(mb), work, Seconds(deadline));
        for _ in 0..run_s {
            j.step(run_f, Seconds(1.0));
        }
        let w = j.control_weight(Seconds(query));
        prop_assert!(w.is_finite());
        prop_assert!((0.0..=100.0).contains(&w), "w={w}");
    }

    /// Interactive-tier conservation under arbitrary demand/frequency
    /// schedules: arrived = served + shed + queued.
    #[test]
    fn tier_conserves_work(
        demand in proptest::collection::vec(0.0f64..1.0, 10..200),
        freqs in proptest::collection::vec(0.2f64..1.0, 4),
    ) {
        use workloads::interactive::InteractiveTier;
        use workloads::trace::Trace;
        use powersim::units::NormFreq;
        let mut tier = InteractiveTier::new(
            Trace::new(Seconds(1.0), demand.clone()),
            freqs.len(),
        );
        for k in 0..demand.len() {
            let fs: Vec<NormFreq> = (0..freqs.len())
                .map(|s| NormFreq(freqs[(k + s) % freqs.len()]))
                .collect();
            tier.step(
                Seconds(k as f64),
                Seconds(1.0),
                &fs,
                &vec![true; freqs.len()],
            );
        }
        // Weighted per-server backlogs make exact accounting a weighted
        // sum; the tier tracks the rack-mean, so allow a small epsilon.
        let accounted = tier.served_total + tier.shed_total + tier.mean_backlog();
        prop_assert!(
            (tier.arrived - accounted).abs() < 1e-6 * (1.0 + tier.arrived),
            "arrived {} vs accounted {}",
            tier.arrived,
            accounted
        );
    }

    /// Utilization stays physical in the engine for arbitrary fixed
    /// policies.
    #[test]
    fn engine_utilizations_stay_physical(
        batch_f in 0.2f64..1.0,
        inter_f in 0.2f64..1.0,
        ups in 0.0f64..2000.0,
        seed in 0u64..50,
    ) {
        use simkit::policy::tests_support::FixedPolicy;
        use powersim::units::NormFreq;
        let mut scenario = simkit::Scenario::paper_default(seed);
        scenario.duration = Seconds(20.0);
        let mut sim = scenario.build();
        let mut p = FixedPolicy::new(NormFreq(inter_f), batch_f, Watts(ups));
        let rec = sim.run(&mut p, scenario.duration);
        for s in rec.samples() {
            prop_assert!(s.p_total.0 >= 0.0 && s.p_total.0 < 6000.0);
            prop_assert!((0.0..=1.0).contains(&s.ups_soc));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s.mean_freq_batch));
        }
        let _ = WattHours(rec.ups_energy_wh());
    }
}

/// Non-proptest cross-crate check: the calibrated linear models and the
/// nonlinear plant stay within the gain-error band the §V-C stability
/// analysis certifies.
#[test]
fn model_error_within_certified_stability_band() {
    use sprint_control::stability::{max_gain_ratio, LoopParams};
    let cfg = sprintcon::SprintConConfig::paper_default();
    let ctrl = sprintcon::ServerPowerController::new(&cfg);
    // Model aggregate gain.
    let k_model: f64 = ctrl.batch_models().iter().map(|m| m.k).sum();
    // Plant aggregate gain: finite-difference of true power in the mean
    // batch frequency around mid-range.
    let mut rack = powersim::rack::Rack::builder()
        .server(cfg.server.clone())
        .num_servers(cfg.num_servers)
        .interactive_cores_per_server(cfg.interactive_cores_per_server)
        .build()
        .expect("paper config is a valid rack");
    for id in rack.cores_with_role(powersim::cpu::CoreRole::Batch) {
        rack.set_util(id, Utilization(0.95));
    }
    let probe = |f: f64| {
        let mut r = rack.clone();
        r.set_freq_scale(powersim::cpu::FreqScale::continuous());
        r.set_role_freq(powersim::cpu::CoreRole::Batch, powersim::units::NormFreq(f));
        r.power().0
    };
    let k_plant = (probe(0.8) - probe(0.4)) / 0.4;
    let gamma = k_plant / k_model;
    let params = LoopParams {
        lp: cfg.mpc.lp,
        q: cfg.mpc.q,
        r: cfg.mpc.r_scale,
        kappa: k_model,
        alpha: (-cfg.control_period.0 / cfg.mpc.tau_r).exp(),
    };
    let gmax = max_gain_ratio(params);
    assert!(
        gamma > 0.3 && gamma < gmax,
        "plant/model gain ratio {gamma:.2} must sit inside (0, {gmax:.2})"
    );
}
