//! Contract tests for the typed workload-source API.
//!
//! The redesign swapped `ScenarioBuilder::wiki(..)` for
//! `workload(WorkloadSource)` and added the open-loop request-queueing
//! path. Three things must hold:
//!
//! * the `UtilTrace` path is *bit-identical* to the pre-redesign
//!   behavior — pinned here against a golden digest captured before the
//!   API changed, and the deprecated `wiki()` shim must route to the
//!   same trajectory;
//! * the open-loop queueing model conserves requests exactly
//!   (arrivals = completed + dropped + still queued) for any seed,
//!   frequency, and duration;
//! * open-loop runs are bit-identical between sequential and parallel
//!   execution, both in the campaign engine and the datacenter engine.

use powersim::datacenter::DatacenterTopology;
use powersim::faults::FaultPlan;
use powersim::units::{NormFreq, Seconds, Watts};
use proptest::prelude::*;
use simkit::engine::TierState;
use simkit::{
    qos_report, run_datacenter, run_digest, run_policy, Campaign, DcScenario, DemandModel,
    ExecConfig, PolicyKind, Scenario, WorkloadSource,
};
use workloads::wiki_trace::WikiTraceConfig;

/// The golden trajectory from `tests/soa_substrate.rs`, rebuilt through
/// the *new* `workload(..)` entry point: the typed API must reproduce
/// the pre-redesign digest bit for bit, faults, telemetry and all.
#[test]
fn util_trace_via_new_api_reproduces_the_golden_digest() {
    let sc = Scenario::builder(42)
        .duration(Seconds(180.0))
        .deadline(Seconds(150.0))
        .workload(WorkloadSource::UtilTrace(DemandModel::Wiki(
            WikiTraceConfig::paper_default(),
        )))
        .build()
        .unwrap();
    let got = run_digest(&run_policy(&sc, PolicyKind::SprintCon));
    assert_eq!(
        got, 0xdc54fcfe56a09238,
        "UtilTrace through workload() changed the trajectory: 0x{got:016x}"
    );
}

/// The deprecated `wiki()` shim and the typed `workload()` call build
/// identical scenarios — same digest, faults included.
#[test]
#[allow(deprecated)]
fn deprecated_wiki_shim_is_digest_identical_to_workload() {
    let build = |via_shim: bool| {
        let b = Scenario::builder(11)
            .duration(Seconds(120.0))
            .deadline(Seconds(100.0))
            .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)));
        let b = if via_shim {
            b.wiki(WikiTraceConfig::paper_default())
        } else {
            b.workload(WorkloadSource::UtilTrace(DemandModel::Wiki(
                WikiTraceConfig::paper_default(),
            )))
        };
        b.build().unwrap()
    };
    let a = run_digest(&run_policy(&build(true), PolicyKind::SprintCon));
    let b = run_digest(&run_policy(&build(false), PolicyKind::SprintCon));
    assert_eq!(a, b, "wiki() shim diverged from workload()");
}

/// Scenario validation surfaces workload errors instead of panicking.
#[test]
fn invalid_workload_fails_scenario_validation() {
    let mut bad = WorkloadSource::open_loop_wiki();
    match &mut bad {
        WorkloadSource::OpenLoop { service, .. } => service.service_time_s = 0.0,
        _ => unreachable!(),
    }
    let err = Scenario::builder(1)
        .workload(bad)
        .build()
        .expect_err("zero service time must be rejected");
    assert!(
        err.to_string().contains("service time"),
        "unhelpful error: {err}"
    );
}

fn open_loop_scenario(seed: u64, secs: f64) -> Scenario {
    let mut sc = Scenario::paper_default(seed);
    sc.workload = WorkloadSource::open_loop_wiki();
    sc.duration = Seconds(secs);
    sc
}

/// Open-loop runs populate the request-tail fields of the QoS report
/// and the queue columns of the recording; closed-loop runs don't.
#[test]
fn open_loop_runs_surface_tail_metrics_and_closed_loop_stays_clean() {
    let ol = run_policy(&open_loop_scenario(5, 90.0), PolicyKind::SprintCon);
    let q = qos_report(&ol.recorder, &[0.25, 1.0]);
    assert!(q.request_p99_s.expect("open loop reports p99") > 0.0);
    assert!(q.drop_fraction.is_some());
    assert_eq!(q.per_slo.len(), 2);
    assert!(ol.recorder.samples().iter().all(|s| s.queue.is_some()));

    let cl = run_policy(&Scenario::paper_default(5), PolicyKind::SprintCon);
    let qc = qos_report(&cl.recorder, &[0.25]);
    assert_eq!(qc.request_p99_s, None);
    assert_eq!(qc.drop_fraction, None);
    assert!(cl.recorder.samples().iter().all(|s| s.queue.is_none()));
}

/// Open-loop campaigns are bit-identical between sequential and
/// parallel execution — the queueing state is rack-private, so the
/// sharded schedule cannot perturb it.
#[test]
fn open_loop_campaign_parallel_matches_sequential() {
    let mut c = Campaign::new();
    c.add(open_loop_scenario(1, 60.0), PolicyKind::SprintCon);
    c.add(open_loop_scenario(2, 60.0), PolicyKind::Sgct);
    c.add(open_loop_scenario(3, 45.0), PolicyKind::SgctV2);
    let seq = c.run_sequential();
    for jobs in [2usize, 4, 0] {
        let par = c.run_with(ExecConfig::jobs(jobs));
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(
                p.digest(),
                s.digest(),
                "jobs={jobs}: {} diverged with queueing enabled",
                p.label
            );
        }
    }
}

/// Same contract through the datacenter engine: a floor of racks all
/// serving open-loop traffic shards bit-identically.
#[test]
fn open_loop_datacenter_parallel_matches_sequential() {
    let topo = DatacenterTopology::uniform(
        2,
        2,
        Watts(2.0 * 3200.0 + 800.0),
        Watts(4.0 * 3200.0 + 2.0 * 800.0),
    )
    .unwrap();
    let dc = DcScenario::new(open_loop_scenario(7, 60.0), topo).unwrap();
    let seq = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
    for jobs in [2usize, 4] {
        let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).unwrap();
        assert_eq!(
            par.digest, seq.digest,
            "jobs={jobs}: datacenter digest diverged with queueing enabled"
        );
        for (a, b) in par.racks[1]
            .recorder
            .samples()
            .iter()
            .zip(seq.racks[1].recorder.samples())
        {
            let (qa, qb) = (a.queue.unwrap(), b.queue.unwrap());
            assert_eq!(qa.depth.to_bits(), qb.depth.to_bits());
            assert_eq!(qa.p99_s.to_bits(), qb.p99_s.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Request conservation: whatever the seed, run length, and fixed
    /// frequency command, every arrived request is accounted for as
    /// completed, dropped, or still queued at the end of the run.
    #[test]
    fn open_loop_conserves_requests(
        seed in 0u64..10_000,
        secs in 30.0f64..120.0,
        f in 0.2f64..1.0,
        batch in 0.0f64..1.0,
    ) {
        use simkit::policy::tests_support::FixedPolicy;
        let sc = open_loop_scenario(seed, secs);
        let mut sim = sc.build();
        let mut p = FixedPolicy::new(NormFreq(f), batch, Watts(900.0));
        let _rec = sim.run(&mut p, sc.duration);
        let tier = match &sim.tier {
            TierState::OpenLoop(t) => t,
            TierState::Util(_) => unreachable!("scenario is open-loop"),
        };
        let balance = tier.arrived - (tier.completed + tier.dropped + tier.queued());
        prop_assert!(
            balance.abs() <= 1e-6 * tier.arrived.max(1.0),
            "seed {seed}: {} arrived vs {} completed + {} dropped + {} queued",
            tier.arrived, tier.completed, tier.dropped, tier.queued()
        );
    }
}
