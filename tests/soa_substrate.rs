//! Digest and tolerance gates for the batched SoA rack substrate.
//!
//! The substrate rework (role-partitioned SoA slabs, one-pass batched
//! stepping, multirate electrical substepping) is allowed to change *how*
//! the plant is computed but not *what* it computes:
//!
//! * Where the batched path claims exactness, these tests pin the 64-bit
//!   FNV run digest — captured on the pre-rework scalar substrate — and
//!   property-test the batched pass against the retained scalar reference
//!   path ([`RackSim::set_reference_stepping`]) over random scenarios,
//!   policies, and fault plans.
//! * Where multirate substepping approximates (electrical transients),
//!   trajectories are gated by tolerance instead: quiescent runs must stay
//!   bit-identical, overload runs must agree on trip timing and energy
//!   accounting.
//!
//! `.cargo/config.toml` relies on this file: the committed `target-cpu`
//! rustflags are only acceptable because these digests prove codegen
//! changes leave every trajectory bit-identical.

use powersim::faults::{FaultKind, FaultPlan, StochasticFault};
use powersim::units::{NormFreq, Seconds, Watts};
use proptest::prelude::*;
use simkit::engine::Substepping;
use simkit::exec::run_digest;
use simkit::experiment::{run_policy, PolicyKind, RunOutput};
use simkit::metrics::RunSummary;
use simkit::policy::tests_support::FixedPolicy;
use simkit::{with_collector, Collector, NullSink, Scenario};
use std::sync::Arc;

/// The fault plan the fault-injected golden digests were captured with.
fn golden_fault_plan() -> FaultPlan {
    FaultPlan::none()
        .with_event(Seconds(40.0), Seconds(30.0), FaultKind::MonitorStuckAt)
        .with_event(
            Seconds(90.0),
            Seconds(45.0),
            FaultKind::ActuatorLag { tau: Seconds(4.0) },
        )
        .with_event(
            Seconds(150.0),
            Seconds(30.0),
            FaultKind::ServerCrash { server: 3 },
        )
        .with_stochastic(StochasticFault {
            kind: FaultKind::MonitorDropout,
            start_rate: 40.0 / 3600.0,
            mean_duration: Seconds(5.0),
        })
}

/// Golden digests pinning whole-run trajectories. The SGCT digests date
/// from the pre-rework (scalar, AoS) substrate and have survived every
/// refactor since. The SprintCon digests were re-captured when the
/// structured QP solver gained cross-period warm starts: carrying the
/// coupling root between control periods changes the bisection's
/// floating-point trajectory (fewer, differently-placed evaluations), so
/// MPC outputs move at the ulp level while the KKT certificate — checked
/// by `control/tests/properties.rs` — is preserved. Any *other* change
/// to these values means a trajectory changed, which is a model change,
/// not a refactor, and needs its own justification.
const GOLDEN_DIGESTS: [(&str, u64); 5] = [
    ("sprintcon_seed42_180s", 0xdc54fcfe56a09238),
    ("sgctv2_seed7_180s", 0x156f96be14939a36),
    ("sgct_seed3_120s", 0x7df9c1e370ccfc0c),
    ("sprintcon_faults_seed11_240s", 0xd2977a8f6598214e),
    ("sgctv1_faults_seed5_240s", 0x7a8855ae0bac74db),
];

fn golden_case(label: &str) -> (Scenario, PolicyKind) {
    match label {
        "sprintcon_seed42_180s" => (
            Scenario::builder(42)
                .duration(Seconds(180.0))
                .deadline(Seconds(150.0))
                .build()
                .unwrap(),
            PolicyKind::SprintCon,
        ),
        "sgctv2_seed7_180s" => (
            Scenario::builder(7)
                .duration(Seconds(180.0))
                .deadline(Seconds(150.0))
                .build()
                .unwrap(),
            PolicyKind::SgctV2,
        ),
        "sgct_seed3_120s" => (
            Scenario::builder(3)
                .duration(Seconds(120.0))
                .deadline(Seconds(100.0))
                .build()
                .unwrap(),
            PolicyKind::Sgct,
        ),
        "sprintcon_faults_seed11_240s" => (
            Scenario::builder(11)
                .duration(Seconds(240.0))
                .deadline(Seconds(200.0))
                .faults(golden_fault_plan())
                .build()
                .unwrap(),
            PolicyKind::SprintCon,
        ),
        "sgctv1_faults_seed5_240s" => (
            Scenario::builder(5)
                .duration(Seconds(240.0))
                .deadline(Seconds(200.0))
                .faults(golden_fault_plan())
                .build()
                .unwrap(),
            PolicyKind::SgctV1,
        ),
        other => panic!("unknown golden case {other}"),
    }
}

/// The batched SoA substrate reproduces the pre-rework scalar substrate
/// bit for bit on every committed golden trajectory, faults included.
#[test]
fn golden_digests_unchanged() {
    for (label, want) in GOLDEN_DIGESTS {
        let (sc, kind) = golden_case(label);
        let got = run_digest(&run_policy(&sc, kind));
        assert_eq!(
            got, want,
            "{label}: digest 0x{got:016x} != golden 0x{want:016x} — \
             the substrate changed a trajectory"
        );
    }
}

/// Run `kind` over `sc` through either the batched slab pass or the
/// scalar per-core reference path, reproducing the instrumented run body
/// (`run_policy`) so the digests cover the telemetry snapshot too.
fn digest_with_stepping(sc: &Scenario, kind: PolicyKind, reference: bool) -> u64 {
    let collector = Arc::new(Collector::new(Box::new(NullSink)));
    let out = with_collector(Arc::clone(&collector), || {
        let mut sim = sc.build();
        sim.set_reference_stepping(reference);
        let mut policy = kind.build();
        let recorder = sim.run(policy.as_mut(), sc.duration);
        let summary = RunSummary::from_run(kind.name(), &sim, &recorder);
        collector.flush();
        RunOutput {
            recorder,
            summary,
            metrics: collector.snapshot(),
        }
    });
    run_digest(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary scenarios, policies, and fault plans, the batched
    /// SoA power pass and the scalar per-core reference path produce
    /// bit-identical run digests (samples, events, summary, telemetry).
    #[test]
    fn batched_pass_matches_scalar_reference(
        seed in 0u64..10_000,
        dur in 60.0f64..150.0,
        kind_idx in 0usize..4,
        fault_idx in 0usize..5,
        t0 in 5.0f64..50.0,
        d0 in 5.0f64..40.0,
        t1 in 55.0f64..110.0,
        d1 in 5.0f64..40.0,
        server in 0usize..16,
        tau in 0.5f64..8.0,
        spike in 50.0f64..600.0,
        rate in 0.001f64..0.05,
    ) {
        let plan = match fault_idx {
            0 => FaultPlan::none(),
            1 => FaultPlan::none()
                .with_event(Seconds(t0), Seconds(d0), FaultKind::MonitorStuckAt)
                .with_event(
                    Seconds(t1),
                    Seconds(d1),
                    FaultKind::MonitorSpike { magnitude: Watts(spike) },
                ),
            2 => FaultPlan::none()
                .with_event(
                    Seconds(t0),
                    Seconds(d0),
                    FaultKind::ActuatorLag { tau: Seconds(tau) },
                )
                .with_event(
                    Seconds(t1),
                    Seconds(d1),
                    FaultKind::ActuatorQuantize { step: 0.25 },
                ),
            3 => FaultPlan::none()
                .with_event(Seconds(t0), Seconds(d0), FaultKind::ServerCrash { server })
                .with_event(
                    Seconds(t1),
                    Seconds(d1),
                    FaultKind::UpsCurrentLimit { max_discharge: Watts(800.0) },
                ),
            _ => FaultPlan::none().with_stochastic(StochasticFault {
                kind: FaultKind::MonitorDropout,
                start_rate: rate,
                mean_duration: Seconds(5.0),
            }),
        };
        let sc = Scenario::builder(seed)
            .duration(Seconds(dur))
            .deadline(Seconds(dur * 0.8))
            .faults(plan)
            .build()
            .unwrap();
        let kind = PolicyKind::ALL[kind_idx];
        let batched = digest_with_stepping(&sc, kind, false);
        let reference = digest_with_stepping(&sc, kind, true);
        prop_assert!(
            batched == reference,
            "seed {seed} {kind:?} faults#{fault_idx}: batched digest \
             0x{batched:016x} != reference 0x{reference:016x}"
        );
    }
}

/// Quiescent multirate runs (never above rated, never tripping) take the
/// single exact feed step every period, so whole trajectories stay
/// bit-identical to [`Substepping::Exact`] through the scenario builder.
#[test]
fn multirate_quiescent_is_bit_identical() {
    let exact = Scenario::builder(42)
        .duration(Seconds(120.0))
        .deadline(Seconds(100.0))
        .build()
        .unwrap();
    let multi = Scenario::builder(42)
        .duration(Seconds(120.0))
        .deadline(Seconds(100.0))
        .substepping(Substepping::Multirate { substeps: 8 })
        .build()
        .unwrap();
    // Modest frequencies keep total power well below the 3200 W rating,
    // so the transient trigger must never arm.
    let run = |sc: &Scenario| {
        let mut sim = sc.build();
        let mut p = FixedPolicy::new(NormFreq(0.4), 0.2, Watts::ZERO);
        sim.run(&mut p, sc.duration)
    };
    let ra = run(&exact);
    let rb = run(&multi);
    let peak = ra.samples().iter().fold(0.0f64, |m, s| m.max(s.p_total.0));
    assert!(
        peak < 3200.0,
        "run not quiescent: peak {peak} W above rated"
    );
    assert_eq!(ra.samples().len(), rb.samples().len());
    for (a, b) in ra.samples().iter().zip(rb.samples()) {
        assert_eq!(a.p_total.0.to_bits(), b.p_total.0.to_bits(), "t={}", a.t);
        assert_eq!(a.cb_power.0.to_bits(), b.cb_power.0.to_bits(), "t={}", a.t);
        assert_eq!(a.ups_soc.to_bits(), b.ups_soc.to_bits(), "t={}", a.t);
    }
}

/// Overload tolerance gate: under a sustained ~1.5x breaker overload the
/// multirate path resolves the transient with finer substeps, so it may
/// deviate from the exact path — but only within tolerance. The plant
/// side stays bit-identical until the first trip, the trip lands within
/// a few control periods of the reference, and the UPS energy accounting
/// agrees at the end of the run.
#[test]
fn multirate_overload_within_tolerance() {
    let duration = Seconds(240.0);
    let exact_sc = Scenario::builder(9)
        .duration(duration)
        .deadline(Seconds(200.0))
        .build()
        .unwrap();
    let multi_sc = Scenario::builder(9)
        .duration(duration)
        .deadline(Seconds(200.0))
        .substepping(Substepping::Multirate { substeps: 8 })
        .build()
        .unwrap();
    // Full rack at peak frequency and full batch load draws well above
    // the 3200 W breaker rating, so the transient trigger arms early and
    // the breaker trips mid-run.
    let overload = || FixedPolicy::new(NormFreq::PEAK, 1.0, Watts(600.0));

    let ra = {
        let mut sim = exact_sc.build();
        let mut p = overload();
        sim.run(&mut p, duration)
    };
    let collector = Arc::new(Collector::new(Box::new(NullSink)));
    let rb = with_collector(Arc::clone(&collector), || {
        let mut sim = multi_sc.build();
        let mut p = overload();
        sim.run(&mut p, duration)
    });

    // The fast path must actually have engaged.
    let fast_periods = collector
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "multirate.fast_periods")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(fast_periods > 0, "multirate trigger never armed");

    let trip_at = |rec: &simkit::Recorder| {
        rec.samples()
            .iter()
            .find(|s| s.tripped)
            .map(|s| s.t.0)
            .expect("sustained overload must trip the breaker")
    };
    let (ta, tb) = (trip_at(&ra), trip_at(&rb));
    assert!(
        (ta - tb).abs() <= 5.0,
        "trip times diverged: exact {ta}s vs multirate {tb}s"
    );

    // Up to the earlier trip, the plant (servers + fan) is untouched by
    // the substepping scheme: bit-identical power trajectories.
    let pre_trip = ta.min(tb) as usize - 1;
    for (a, b) in ra.samples()[..pre_trip]
        .iter()
        .zip(&rb.samples()[..pre_trip])
    {
        assert_eq!(
            a.p_total.0.to_bits(),
            b.p_total.0.to_bits(),
            "plant diverged pre-trip at t={}",
            a.t
        );
    }

    // Energy accounting agrees at the end of the run: the UPS state of
    // charge (a time integral over the whole trajectory) stays close.
    let soc = |rec: &simkit::Recorder| rec.samples().last().unwrap().ups_soc;
    let (sa, sb) = (soc(&ra), soc(&rb));
    assert!(
        (sa - sb).abs() < 0.02,
        "final UPS SoC diverged: exact {sa} vs multirate {sb}"
    );
}
