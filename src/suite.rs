pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}
