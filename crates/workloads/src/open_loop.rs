//! Open-loop request queueing and the typed workload-source API.
//!
//! The closed-loop [`crate::interactive`] tier clips demand into core
//! utilization, so overload is invisible: the served fraction drops but
//! nothing *waits*. Real serving is open loop — requests keep arriving
//! whether or not the tier keeps up, overload shows up as queueing, and
//! the quantity an operator watches is tail latency. This module adds
//! that path behind a typed [`WorkloadSource`]:
//!
//! * [`WorkloadSource::UtilTrace`] — today's behavior: a normalized
//!   demand trace executed by [`crate::interactive::InteractiveTier`]
//!   (bit-identical to the pre-redesign engine);
//! * [`WorkloadSource::OpenLoop`] — a deterministic request-level
//!   queueing model ([`OpenLoopTier`]): arrivals from a scaled demand
//!   generator ([`DemandModel`]), per-core service rates scaled by DVFS
//!   frequency through [`ProgressModel`], a bounded FIFO queue with
//!   tail-drop accounting, and streaming latency quantile sketches
//!   ([`LatencySketch`]) so p50/p95/p99 are computed without storing
//!   individual requests.
//!
//! ## Fluid FIFO model
//!
//! Requests are fluid (`f64` counts): within one control period,
//! arrivals spread uniformly over the tick and service drains the FIFO
//! at `cores · rate(f) / service_time` requests per second. Each served
//! slice's sojourn is the horizontal distance between the arrival and
//! completion curves plus the current service duration, observed into
//! the sketches as a linear latency ramp. Conservation holds exactly
//! (to float rounding): `arrived = completed + dropped + queued`.
//!
//! ## Determinism contract
//!
//! The tier is a pure function of its configuration, the seed, and the
//! per-tick inputs: no wall clock, no global state, no RNG beyond the
//! seeded demand generator. The sketch uses fixed log-spaced bins and a
//! fixed accumulation order, so whole-run quantiles are bit-identical
//! across sequential and parallel campaign execution — the same FNV
//! digest contract the closed-loop path satisfies.

use crate::interactive::server_weights;
use crate::mmpp::MmppConfig;
use crate::progress_model::ProgressModel;
use crate::trace::Trace;
use crate::wiki_trace::WikiTraceConfig;
use powersim::units::{NormFreq, Seconds, Utilization};
use std::collections::VecDeque;

/// Count below which a fluid batch is considered empty.
const EPS: f64 = 1e-9;

/// Why a workload source failed validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Per-request service time must be positive and finite.
    InvalidServiceTime(f64),
    /// Per-server queue bound must be positive and finite.
    InvalidQueueCap(f64),
    /// The demand → request-rate scale must be positive and finite.
    InvalidPeakRate(f64),
    /// An explicit demand trace must be non-empty with a positive period.
    EmptyDemandTrace,
    /// Regime switching needs at least two MMPP states.
    TooFewMmppStates(usize),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidServiceTime(v) => {
                write!(f, "service time must be positive and finite, got {v}")
            }
            WorkloadError::InvalidQueueCap(v) => {
                write!(f, "queue capacity must be positive and finite, got {v}")
            }
            WorkloadError::InvalidPeakRate(v) => {
                write!(
                    f,
                    "peak requests/s per core must be positive and finite, got {v}"
                )
            }
            WorkloadError::EmptyDemandTrace => {
                write!(f, "demand trace is empty or has a non-positive period")
            }
            WorkloadError::TooFewMmppStates(n) => {
                write!(f, "MMPP demand needs at least two states, got {n}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A normalized-demand generator in `[0, 1]` peak-core units: the
/// smooth Wikipedia-like generator, the regime-switching MMPP, or an
/// explicit trace (e.g. streamed in through [`crate::trace_io`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DemandModel {
    Wiki(WikiTraceConfig),
    Mmpp(MmppConfig),
    Trace(Trace),
}

impl DemandModel {
    /// Materialize the demand trace under `seed` (ignored for an
    /// explicit trace). For [`DemandModel::Wiki`] this is exactly the
    /// stream the pre-redesign engine generated, so `UtilTrace` runs
    /// stay bit-identical.
    pub fn generate(&self, seed: u64) -> Trace {
        match self {
            DemandModel::Wiki(cfg) => cfg.generate(seed),
            DemandModel::Mmpp(cfg) => cfg.generate(seed),
            DemandModel::Trace(t) => t.clone(),
        }
    }

    /// Check the structural constraints a generator would otherwise
    /// assert at generation time.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            DemandModel::Wiki(_) => Ok(()),
            DemandModel::Mmpp(cfg) => {
                if cfg.states.len() < 2 {
                    Err(WorkloadError::TooFewMmppStates(cfg.states.len()))
                } else {
                    Ok(())
                }
            }
            DemandModel::Trace(t) => {
                if t.values.is_empty() || !(t.dt.0 > 0.0 && t.dt.0.is_finite()) {
                    Err(WorkloadError::EmptyDemandTrace)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// The arrival side of an open-loop workload: a demand generator plus
/// the scale that turns normalized demand into a request rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    /// Normalized demand intensity in `[0, 1]`.
    pub demand: DemandModel,
    /// Requests per second per interactive core that demand `1.0` maps
    /// to. With the paper-default service model this is sized so demand
    /// `1.0` is exactly offered load ρ = 1 at peak frequency.
    pub peak_rps_per_core: f64,
}

impl ArrivalProcess {
    pub fn new(demand: DemandModel, peak_rps_per_core: f64) -> Self {
        ArrivalProcess {
            demand,
            peak_rps_per_core,
        }
    }

    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.peak_rps_per_core > 0.0 && self.peak_rps_per_core.is_finite()) {
            return Err(WorkloadError::InvalidPeakRate(self.peak_rps_per_core));
        }
        self.demand.validate()
    }
}

/// The service side: per-request work, how DVFS frequency scales the
/// service rate, and the per-server queue bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    /// Mean per-request service time at peak frequency, seconds.
    pub service_time_s: f64,
    /// Frequency → execution-rate model; a core at normalized frequency
    /// `f` serves `rate(f) / service_time_s` requests per second.
    pub progress: ProgressModel,
    /// Per-server queue bound in requests (waiting + in service);
    /// arrivals beyond it are tail-dropped and counted.
    pub queue_cap: f64,
}

impl ServiceModel {
    /// Interactive serving defaults: 20 ms requests, mildly
    /// memory-bound (mb = 0.15), and a queue bound equivalent to the
    /// closed-loop tier's 3.0-second backlog cap at peak service rate
    /// (4 cores × 50 req/s × 3 s = 600 requests).
    pub fn paper_default() -> Self {
        ServiceModel {
            service_time_s: 0.02,
            progress: ProgressModel::new(0.15),
            queue_cap: 600.0,
        }
    }

    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.service_time_s > 0.0 && self.service_time_s.is_finite()) {
            return Err(WorkloadError::InvalidServiceTime(self.service_time_s));
        }
        if !(self.queue_cap > 0.0 && self.queue_cap.is_finite()) {
            return Err(WorkloadError::InvalidQueueCap(self.queue_cap));
        }
        Ok(())
    }
}

/// The typed workload-facing API: what drives the interactive tier.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// Closed-loop utilization trace — today's behavior, executed by
    /// [`crate::interactive::InteractiveTier`]. Bit-identical to the
    /// pre-redesign engine when the demand model is
    /// [`DemandModel::Wiki`].
    UtilTrace(DemandModel),
    /// Open-loop request queueing, executed by [`OpenLoopTier`].
    OpenLoop {
        arrivals: ArrivalProcess,
        service: ServiceModel,
    },
}

impl WorkloadSource {
    /// The §VI-A default: the Wikipedia-like utilization trace.
    pub fn paper_default() -> Self {
        WorkloadSource::UtilTrace(DemandModel::Wiki(WikiTraceConfig::paper_default()))
    }

    /// Open-loop serving of the Wikipedia-like demand with the
    /// paper-default service model, sized so demand 1.0 saturates the
    /// interactive cores at peak frequency (ρ = 1).
    pub fn open_loop_wiki() -> Self {
        WorkloadSource::OpenLoop {
            arrivals: ArrivalProcess::new(
                DemandModel::Wiki(WikiTraceConfig::paper_default()),
                50.0,
            ),
            service: ServiceModel::paper_default(),
        }
    }

    /// Open-loop serving of the spiky regime-switching demand — the
    /// flash-crowd scenario the tail-latency benchmark drives.
    pub fn open_loop_flash_crowd() -> Self {
        WorkloadSource::OpenLoop {
            arrivals: ArrivalProcess::new(DemandModel::Mmpp(MmppConfig::spiky_default()), 50.0),
            service: ServiceModel::paper_default(),
        }
    }

    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            WorkloadSource::UtilTrace(dm) => dm.validate(),
            WorkloadSource::OpenLoop { arrivals, service } => {
                arrivals.validate()?;
                service.validate()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Streaming latency quantile sketch
// ---------------------------------------------------------------------

/// Number of log-spaced latency bins.
const BINS: usize = 128;
/// Sketch range: 0.1 ms … 1000 s of sojourn time.
const L_MIN: f64 = 1e-4;
const L_MAX: f64 = 1e3;

/// A streaming latency quantile sketch over fixed log-spaced bins.
///
/// Observations are weighted fluid counts; a served slice whose
/// latencies ramp linearly over `[lo, hi]` is spread across the bins it
/// overlaps in proportion to overlap length, so the sketch is exact for
/// the fluid model up to bin resolution (bins are ~5.5% wide across
/// seven decades). Quantile queries interpolate geometrically within a
/// bin. Everything is plain f64 arithmetic in a fixed order —
/// bit-deterministic and mergeable-free by construction (one sketch per
/// rack, owned by its shard).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySketch {
    counts: Vec<f64>,
    total: f64,
    max_seen: f64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    pub fn new() -> Self {
        LatencySketch {
            counts: vec![0.0; BINS],
            total: 0.0,
            max_seen: 0.0,
        }
    }

    pub fn reset(&mut self) {
        self.counts.fill(0.0);
        self.total = 0.0;
        self.max_seen = 0.0;
    }

    /// Total observed weight (requests).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Largest latency observed.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    fn bin_of(x: f64) -> usize {
        let x = x.max(L_MIN);
        let pos = (x / L_MIN).ln() / (L_MAX / L_MIN).ln() * BINS as f64;
        (pos as usize).min(BINS - 1)
    }

    /// Lower bound of bin `i`.
    fn bin_lo(i: usize) -> f64 {
        L_MIN * (L_MAX / L_MIN).powf(i as f64 / BINS as f64)
    }

    /// Observe `weight` requests at latency `l`.
    pub fn observe(&mut self, l: f64, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.counts[Self::bin_of(l)] += weight;
        self.total += weight;
        if l > self.max_seen {
            self.max_seen = l;
        }
    }

    /// Observe `weight` requests whose latencies ramp linearly from
    /// `lo` to `hi` (a served fluid slice).
    pub fn observe_range(&mut self, lo: f64, hi: f64, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        if hi - lo < 1e-12 {
            self.observe(lo, weight);
            return;
        }
        let span = hi - lo;
        let (b0, b1) = (Self::bin_of(lo), Self::bin_of(hi));
        for b in b0..=b1 {
            let (blo, bhi) = (Self::bin_lo(b), Self::bin_lo(b + 1));
            let overlap = (hi.min(bhi) - lo.max(blo)).max(0.0);
            if overlap > 0.0 {
                self.counts[b] += weight * overlap / span;
            }
        }
        self.total += weight;
        if hi > self.max_seen {
            self.max_seen = hi;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of observed latency, or 0.0
    /// if nothing was observed.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.total;
        let mut cum = 0.0;
        for (b, &c) in self.counts.iter().enumerate() {
            if c <= 0.0 {
                continue;
            }
            if cum + c >= target {
                let frac = ((target - cum) / c).clamp(0.0, 1.0);
                let (blo, bhi) = (Self::bin_lo(b), Self::bin_lo(b + 1));
                return (blo * (bhi / blo).powf(frac)).min(self.max_seen.max(blo));
            }
            cum += c;
        }
        self.max_seen
    }
}

// ---------------------------------------------------------------------
// The open-loop tier
// ---------------------------------------------------------------------

/// One fluid batch of queued requests: `count` requests whose arrival
/// times spread uniformly over `[t0, t1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Batch {
    t0: f64,
    t1: f64,
    count: f64,
}

/// Per-server result of one open-loop step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopLoad {
    /// Core utilization (busy fraction of this tick's service capacity).
    pub util: Utilization,
    /// Requests completed this tick.
    pub completed: f64,
    /// Requests dropped this tick (tail drop or power loss).
    pub dropped: f64,
    /// Queue depth after the step, requests.
    pub queue_len: f64,
}

/// One tick's aggregate queue observation — what the supervisor and the
/// recorder see (telemetry-free: plain data, no counters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueObservation {
    /// Mean queue depth per server after the tick, requests.
    pub depth: f64,
    /// This tick's sojourn-time quantiles, seconds.
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    /// Requests arrived / completed / dropped this tick (rack total).
    pub arrived: f64,
    pub completed: f64,
    pub dropped: f64,
}

/// Whole-run tail summary from the cumulative sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSummary {
    /// Run-level sojourn-time quantiles, seconds.
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
    /// Request totals over the run.
    pub arrived: f64,
    pub completed: f64,
    pub dropped: f64,
    /// `dropped / arrived` (0 when nothing arrived).
    pub drop_fraction: f64,
}

/// The open-loop interactive tier: per-server bounded FIFO queues fed
/// by a scaled demand trace, drained at DVFS-dependent service rates.
#[derive(Debug, Clone)]
pub struct OpenLoopTier {
    /// Normalized arrival-intensity trace.
    pub demand: Trace,
    /// Per-server demand weights, mean 1.0 (same imperfect front-end
    /// balancing as the closed-loop tier).
    pub weights: Vec<f64>,
    service: ServiceModel,
    peak_rps_per_core: f64,
    cores_per_server: usize,
    queues: Vec<VecDeque<Batch>>,
    qlen: Vec<f64>,
    /// Run totals, requests.
    pub arrived: f64,
    pub completed: f64,
    pub dropped: f64,
    run_sketch: LatencySketch,
    tick_sketch: LatencySketch,
    last_tick: QueueObservation,
}

impl OpenLoopTier {
    /// Build the tier from an arrival process and service model;
    /// `seed` drives the demand generator (same stream position the
    /// closed-loop tier's generator uses).
    pub fn new(
        arrivals: &ArrivalProcess,
        service: &ServiceModel,
        num_servers: usize,
        cores_per_server: usize,
        seed: u64,
    ) -> Self {
        assert!(num_servers > 0 && cores_per_server > 0);
        OpenLoopTier {
            demand: arrivals.demand.generate(seed),
            weights: server_weights(num_servers, 0.12),
            service: service.clone(),
            peak_rps_per_core: arrivals.peak_rps_per_core,
            cores_per_server,
            queues: vec![VecDeque::new(); num_servers],
            qlen: vec![0.0; num_servers],
            arrived: 0.0,
            completed: 0.0,
            dropped: 0.0,
            run_sketch: LatencySketch::new(),
            tick_sketch: LatencySketch::new(),
            last_tick: QueueObservation {
                depth: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                arrived: 0.0,
                completed: 0.0,
                dropped: 0.0,
            },
        }
    }

    pub fn num_servers(&self) -> usize {
        self.weights.len()
    }

    /// Advance one tick reading the demand level from the owned trace.
    pub fn step_into(
        &mut self,
        t: Seconds,
        dt: Seconds,
        freqs: &[NormFreq],
        powered: &[bool],
        out: &mut Vec<OpenLoopLoad>,
    ) {
        let level = self.demand.at(t);
        self.step_with_demand_into(level, t, dt, freqs, powered, out);
    }

    /// Advance one tick with an externally supplied demand level — the
    /// streaming-ingestion path: a full-day CSV can be fed chunk by
    /// chunk through [`crate::trace_io::TraceReader`] without ever
    /// materializing the whole trace.
    pub fn step_with_demand_into(
        &mut self,
        level: f64,
        t: Seconds,
        dt: Seconds,
        freqs: &[NormFreq],
        powered: &[bool],
        out: &mut Vec<OpenLoopLoad>,
    ) {
        let n = self.weights.len();
        assert_eq!(freqs.len(), n);
        assert_eq!(powered.len(), n);
        out.clear();
        out.reserve(n);
        self.tick_sketch.reset();
        let level = if level.is_finite() {
            level.max(0.0)
        } else {
            0.0
        };
        let cores = self.cores_per_server as f64;
        let (mut t_arr, mut t_done, mut t_drop) = (0.0, 0.0, 0.0);
        for s in 0..n {
            let arr = level * self.weights[s] * self.peak_rps_per_core * cores * dt.0;
            self.arrived += arr;
            t_arr += arr;
            if !powered[s] {
                // Power loss: the queue and everything arriving is lost.
                let lost = arr + self.qlen[s];
                self.dropped += lost;
                t_drop += lost;
                self.queues[s].clear();
                self.qlen[s] = 0.0;
                out.push(OpenLoopLoad {
                    util: Utilization::IDLE,
                    completed: 0.0,
                    dropped: lost,
                    queue_len: 0.0,
                });
                continue;
            }
            // Enqueue with tail drop at the queue bound; the kept head
            // of the arrival batch spans proportionally less of the
            // tick (uniform arrival density).
            let free = (self.service.queue_cap - self.qlen[s]).max(0.0);
            let accepted = arr.min(free);
            let dropped_here = arr - accepted;
            if accepted > EPS {
                let span = dt.0 * (accepted / arr);
                self.queues[s].push_back(Batch {
                    t0: t.0,
                    t1: t.0 + span,
                    count: accepted,
                });
                self.qlen[s] += accepted;
            }
            self.dropped += dropped_here;
            t_drop += dropped_here;

            // Serve FIFO at the DVFS-scaled rate. `rate` requires a
            // strictly positive frequency; a stopped core serves nothing.
            let f = freqs[s].0;
            let (cap, svc) = if f > EPS {
                let rate = self.service.progress.rate(f.min(1.0));
                (
                    cores * rate * dt.0 / self.service.service_time_s,
                    self.service.service_time_s / rate,
                )
            } else {
                (0.0, f64::INFINITY)
            };
            let mut served = 0.0;
            if cap > EPS {
                let mut remaining = cap.min(self.qlen[s]);
                while remaining > EPS {
                    let Some(front) = self.queues[s].front_mut() else {
                        break;
                    };
                    let m = front.count.min(remaining);
                    // Completion window: service spreads over the tick
                    // in proportion to capacity used so far.
                    let c0 = t.0 + dt.0 * (served / cap);
                    let c1 = t.0 + dt.0 * ((served + m) / cap);
                    // Arrival window of the served slice.
                    let a0 = front.t0;
                    let a1 = front.t0 + (front.t1 - front.t0) * (m / front.count);
                    let l0 = (c0 - a0).max(0.0) + svc;
                    let l1 = (c1 - a1).max(0.0) + svc;
                    self.run_sketch.observe_range(l0, l1, m);
                    self.tick_sketch.observe_range(l0, l1, m);
                    served += m;
                    remaining -= m;
                    if m + EPS >= front.count {
                        self.queues[s].pop_front();
                    } else {
                        front.t0 = a1;
                        front.count -= m;
                    }
                }
                self.qlen[s] = (self.qlen[s] - served).max(0.0);
            }
            self.completed += served;
            t_done += served;
            let util = if cap > 0.0 {
                Utilization((served / cap).clamp(0.0, 1.0))
            } else {
                Utilization::IDLE
            };
            out.push(OpenLoopLoad {
                util,
                completed: served,
                dropped: dropped_here,
                queue_len: self.qlen[s],
            });
        }
        self.last_tick = QueueObservation {
            depth: self.qlen.iter().sum::<f64>() / n as f64,
            p50_s: self.tick_sketch.quantile(0.50),
            p95_s: self.tick_sketch.quantile(0.95),
            p99_s: self.tick_sketch.quantile(0.99),
            arrived: t_arr,
            completed: t_done,
            dropped: t_drop,
        };
    }

    /// The most recent tick's aggregate observation.
    pub fn last_tick(&self) -> QueueObservation {
        self.last_tick
    }

    /// Whole-run tail summary from the cumulative sketch.
    pub fn tail_summary(&self) -> TailSummary {
        TailSummary {
            p50_s: self.run_sketch.quantile(0.50),
            p95_s: self.run_sketch.quantile(0.95),
            p99_s: self.run_sketch.quantile(0.99),
            max_s: self.run_sketch.max(),
            arrived: self.arrived,
            completed: self.completed,
            dropped: self.dropped,
            drop_fraction: if self.arrived > 0.0 {
                self.dropped / self.arrived
            } else {
                0.0
            },
        }
    }

    /// Requests currently queued across all servers.
    pub fn queued(&self) -> f64 {
        self.qlen.iter().sum()
    }

    /// Mean queued work per interactive core, seconds at peak service
    /// rate — the open-loop counterpart of the closed-loop tier's
    /// backlog proxy, so QoS analytics stay comparable.
    pub fn queued_seconds_per_core(&self) -> f64 {
        self.queued() * self.service.service_time_s
            / (self.weights.len() * self.cores_per_server) as f64
    }

    /// Fraction of arrived requests completed so far.
    pub fn service_ratio(&self) -> f64 {
        if self.arrived <= 0.0 {
            1.0
        } else {
            (self.completed / self.arrived).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(level: f64, servers: usize) -> OpenLoopTier {
        let arrivals = ArrivalProcess::new(
            DemandModel::Trace(Trace::constant(Seconds(1.0), level, 2000)),
            50.0,
        );
        let mut t = OpenLoopTier::new(&arrivals, &ServiceModel::paper_default(), servers, 4, 0);
        t.weights = vec![1.0; servers]; // uniform for exactness
        t
    }

    fn run(t: &mut OpenLoopTier, ticks: usize, f: f64, powered: bool) {
        let n = t.num_servers();
        let mut out = Vec::new();
        for k in 0..ticks {
            t.step_into(
                Seconds(k as f64),
                Seconds(1.0),
                &vec![NormFreq(f); n],
                &vec![powered; n],
                &mut out,
            );
        }
    }

    #[test]
    fn underload_latency_is_the_service_time() {
        let mut t = tier(0.5, 2);
        run(&mut t, 50, 1.0, true);
        let tail = t.tail_summary();
        // ρ = 0.5 at peak: no queueing, sojourn ≈ 20 ms service time
        // (within bin resolution).
        assert!(tail.p99_s < 0.05, "p99={}", tail.p99_s);
        assert!(tail.p50_s > 0.015, "p50={}", tail.p50_s);
        assert_eq!(tail.dropped, 0.0);
        assert!((t.service_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overload_queues_then_drops_at_the_cap() {
        let mut t = tier(0.9, 1);
        // Capacity at f=0.4: rate = 1/(0.15 + 0.85/0.4) ≈ 0.44 —
        // well under the 0.9 offered load, so the queue must grow to
        // the cap and then tail-drop.
        run(&mut t, 600, 0.4, true);
        let tail = t.tail_summary();
        assert!(t.queued() > 500.0, "queue should sit at the cap");
        assert!(tail.dropped > 0.0);
        assert!(tail.drop_fraction > 0.1, "{}", tail.drop_fraction);
        // Sojourn is dominated by the full queue ahead: seconds, not ms.
        assert!(tail.p99_s > 1.0, "p99={}", tail.p99_s);
    }

    #[test]
    fn conservation_exact() {
        let mut t = tier(0.8, 3);
        let freqs = [0.3, 1.0, 0.55];
        let mut out = Vec::new();
        for k in 0..500 {
            let fs: Vec<NormFreq> = (0..3).map(|s| NormFreq(freqs[(k + s) % 3])).collect();
            let powered = [true, true, k % 7 != 0];
            t.step_into(Seconds(k as f64), Seconds(1.0), &fs, &powered, &mut out);
        }
        let accounted = t.completed + t.dropped + t.queued();
        assert!(
            (t.arrived - accounted).abs() < 1e-6 * t.arrived.max(1.0),
            "arrived={} accounted={accounted}",
            t.arrived
        );
    }

    #[test]
    fn powered_off_server_drops_everything() {
        let mut t = tier(0.7, 2);
        let mut out = Vec::new();
        t.step_into(
            Seconds(0.0),
            Seconds(1.0),
            &[NormFreq::PEAK, NormFreq::PEAK],
            &[true, false],
            &mut out,
        );
        assert!(out[0].completed > 0.0);
        assert_eq!(out[1].completed, 0.0);
        assert!(out[1].dropped > 0.0);
        assert_eq!(out[1].util, Utilization::IDLE);
    }

    #[test]
    fn throttling_raises_p99_monotonically() {
        let mut fast = tier(0.6, 2);
        let mut slow = tier(0.6, 2);
        run(&mut fast, 120, 1.0, true);
        run(&mut slow, 120, 0.5, true);
        assert!(
            slow.tail_summary().p99_s > fast.tail_summary().p99_s,
            "slow p99 {} must exceed fast p99 {}",
            slow.tail_summary().p99_s,
            fast.tail_summary().p99_s
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let arrivals = ArrivalProcess::new(DemandModel::Mmpp(MmppConfig::spiky_default()), 50.0);
        let svc = ServiceModel::paper_default();
        let mut a = OpenLoopTier::new(&arrivals, &svc, 4, 4, 9);
        let mut b = OpenLoopTier::new(&arrivals, &svc, 4, 4, 9);
        run(&mut a, 300, 0.8, true);
        run(&mut b, 300, 0.8, true);
        let (ta, tb) = (a.tail_summary(), b.tail_summary());
        assert_eq!(ta.p99_s.to_bits(), tb.p99_s.to_bits());
        assert_eq!(ta.completed.to_bits(), tb.completed.to_bits());
        assert_eq!(a.queued().to_bits(), b.queued().to_bits());
    }

    #[test]
    fn streaming_step_matches_trace_step() {
        // step_into(t) == step_with_demand_into(demand.at(t)) — the
        // contract the TraceReader streaming path relies on.
        let mut a = tier(0.7, 2);
        let mut b = tier(0.7, 2);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for k in 0..50 {
            let t = Seconds(k as f64);
            let level = a.demand.at(t);
            a.step_into(t, Seconds(1.0), &[NormFreq(0.6); 2], &[true; 2], &mut out_a);
            b.step_with_demand_into(
                level,
                t,
                Seconds(1.0),
                &[NormFreq(0.6); 2],
                &[true; 2],
                &mut out_b,
            );
            assert_eq!(out_a, out_b);
        }
        assert_eq!(a.completed.to_bits(), b.completed.to_bits());
    }

    #[test]
    fn sketch_quantiles_bracket_observations() {
        let mut s = LatencySketch::new();
        for k in 1..=1000 {
            s.observe(k as f64 * 1e-3, 1.0); // 1 ms … 1 s uniform
        }
        let (p50, p99) = (s.quantile(0.50), s.quantile(0.99));
        assert!((p50 - 0.5).abs() < 0.05, "p50={p50}");
        assert!((p99 - 0.99).abs() < 0.08, "p99={p99}");
        assert!(s.quantile(1.0) <= s.max() + 1e-12);
        assert_eq!(LatencySketch::new().quantile(0.99), 0.0);
    }

    #[test]
    fn sketch_range_observation_spreads_weight() {
        let mut ranged = LatencySketch::new();
        ranged.observe_range(0.01, 0.1, 100.0);
        assert!((ranged.total() - 100.0).abs() < 1e-9);
        // The median of a uniform ramp [10ms, 100ms] is ~55 ms
        // (log-bin quantization allows a few percent).
        let p50 = ranged.quantile(0.5);
        assert!((0.04..0.08).contains(&p50), "p50={p50}");
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let bad_service = ServiceModel {
            service_time_s: 0.0,
            ..ServiceModel::paper_default()
        };
        assert!(matches!(
            bad_service.validate(),
            Err(WorkloadError::InvalidServiceTime(_))
        ));
        let bad_cap = ServiceModel {
            queue_cap: f64::NAN,
            ..ServiceModel::paper_default()
        };
        assert!(matches!(
            bad_cap.validate(),
            Err(WorkloadError::InvalidQueueCap(_))
        ));
        let bad_rate =
            ArrivalProcess::new(DemandModel::Wiki(WikiTraceConfig::paper_default()), -1.0);
        assert!(matches!(
            bad_rate.validate(),
            Err(WorkloadError::InvalidPeakRate(_))
        ));
        let empty = DemandModel::Trace(Trace::new(Seconds(1.0), Vec::new()));
        assert!(matches!(
            empty.validate(),
            Err(WorkloadError::EmptyDemandTrace)
        ));
        assert!(WorkloadSource::paper_default().validate().is_ok());
        assert!(WorkloadSource::open_loop_wiki().validate().is_ok());
        assert!(WorkloadSource::open_loop_flash_crowd().validate().is_ok());
    }
}
