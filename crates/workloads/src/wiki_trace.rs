//! Synthetic Wikipedia-like interactive load generator.
//!
//! The paper generates its interactive workload from Wikipedia data-center
//! request traces \[31\]. Those traces are not redistributable, so we
//! synthesize an arrival-rate process with the properties the controllers
//! actually react to (documented in DESIGN.md §3):
//!
//! * a slow diurnal/half-hour drift (the trace window sits somewhere on
//!   the daily curve),
//! * a pronounced *burst* — the event-driven surge that motivates
//!   sprinting — with a fast ramp, a plateau, and a decay,
//! * autocorrelated second-scale fluctuation (users arrive in clumps, so
//!   rack-level load "fluctuates dramatically and frequently", §IV-B), and
//! * occasional short spikes.
//!
//! Output is a normalized demand trace in peak-core units per interactive
//! core: `1.0` means the interactive tier needs every interactive core at
//! peak frequency to keep up.

use crate::trace::Trace;
use powersim::noise::NoiseSource;
use powersim::units::Seconds;

/// Parameters of the synthetic interactive trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WikiTraceConfig {
    /// Trace duration.
    pub duration: Seconds,
    /// Sampling period.
    pub dt: Seconds,
    /// Baseline demand before the burst, in `[0, 1]`.
    pub base_level: f64,
    /// Demand plateau during the burst, in `[0, 1]`.
    pub burst_level: f64,
    /// When the burst begins.
    pub burst_start: Seconds,
    /// Ramp-up time from base to plateau.
    pub ramp: Seconds,
    /// How long the plateau lasts (the `T_burst` of §IV-A).
    pub burst_duration: Seconds,
    /// Standard deviation of the autocorrelated fluctuation.
    pub wobble_sigma: f64,
    /// Correlation time of the fluctuation, seconds.
    pub wobble_tau: f64,
    /// Expected number of short spikes over the whole trace.
    pub spikes: f64,
    /// Spike amplitude added on top of the local level.
    pub spike_amp: f64,
}

impl WikiTraceConfig {
    /// The evaluation scenario: 15-minute window that is bursty from the
    /// start (the paper sprints for the full window), moderate baseline,
    /// high plateau with visible fluctuation.
    pub fn paper_default() -> Self {
        WikiTraceConfig {
            duration: Seconds::minutes(15.0),
            dt: Seconds(1.0),
            base_level: 0.38,
            burst_level: 0.60,
            burst_start: Seconds(0.0),
            ramp: Seconds(30.0),
            burst_duration: Seconds::minutes(15.0),
            wobble_sigma: 0.09,
            wobble_tau: 20.0,
            spikes: 6.0,
            spike_amp: 0.15,
        }
    }

    /// Deterministic envelope (no noise): base → ramp → plateau → decay.
    pub fn envelope_at(&self, t: Seconds) -> f64 {
        let t = t.0;
        let start = self.burst_start.0;
        let ramp_end = start + self.ramp.0;
        let plateau_end = start + self.burst_duration.0;
        let decay_end = plateau_end + self.ramp.0;
        if t < start {
            self.base_level
        } else if t < ramp_end {
            let x = (t - start) / self.ramp.0.max(1e-9);
            // Smoothstep ramp: workload surges are fast but not square.
            let s = x * x * (3.0 - 2.0 * x);
            self.base_level + (self.burst_level - self.base_level) * s
        } else if t < plateau_end {
            self.burst_level
        } else if t < decay_end {
            let x = (t - plateau_end) / self.ramp.0.max(1e-9);
            let s = 1.0 - x * x * (3.0 - 2.0 * x);
            self.base_level + (self.burst_level - self.base_level) * s
        } else {
            self.base_level
        }
    }

    /// Generate the demand trace with the given seed.
    pub fn generate(&self, seed: u64) -> Trace {
        let n = (self.duration.0 / self.dt.0).round() as usize;
        assert!(n > 0, "trace must contain at least one sample");
        let mut noise = NoiseSource::new(seed);
        // AR(1) wobble with the requested sigma and correlation time.
        let alpha = (-self.dt.0 / self.wobble_tau.max(1e-9)).exp();
        let drive = self.wobble_sigma * (1.0 - alpha * alpha).sqrt();
        let mut wobble = 0.0;
        // Pre-draw spike times (Poisson-ish: uniform positions).
        let n_spikes = self.spikes.round() as usize;
        let mut spike_at: Vec<usize> = (0..n_spikes)
            .map(|_| (noise.uniform() * n as f64) as usize)
            .collect();
        spike_at.sort_unstable();
        let spike_width = (8.0 / self.dt.0).ceil() as usize;

        let mut values = Vec::with_capacity(n);
        for k in 0..n {
            let t = Seconds(k as f64 * self.dt.0);
            wobble = alpha * wobble + drive * noise.gaussian();
            let mut v = self.envelope_at(t) + wobble;
            for &s in &spike_at {
                if k >= s && k < s + spike_width {
                    let x = (k - s) as f64 / spike_width as f64;
                    v += self.spike_amp * (1.0 - x);
                }
            }
            values.push(v.clamp(0.0, 1.0));
        }
        Trace::new(self.dt, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WikiTraceConfig {
        WikiTraceConfig::paper_default()
    }

    #[test]
    fn trace_has_expected_shape() {
        let tr = cfg().generate(1);
        assert_eq!(tr.len(), 900);
        assert_eq!(tr.dt, Seconds(1.0));
        // All samples in the valid range.
        assert!(tr.min() >= 0.0 && tr.max() <= 1.0);
        // Mean near the plateau (the paper scenario bursts from t=0).
        let m = tr.mean();
        assert!((0.5..0.75).contains(&m), "mean={m}");
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = cfg().generate(7);
        let b = cfg().generate(7);
        let c = cfg().generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn envelope_ramps_then_plateaus() {
        let mut c = cfg();
        c.burst_start = Seconds(100.0);
        c.ramp = Seconds(50.0);
        c.burst_duration = Seconds(300.0);
        assert!((c.envelope_at(Seconds(0.0)) - c.base_level).abs() < 1e-12);
        assert!(
            (c.envelope_at(Seconds(125.0)) - (c.base_level + c.burst_level) / 2.0).abs() < 1e-9
        );
        assert!((c.envelope_at(Seconds(200.0)) - c.burst_level).abs() < 1e-12);
        // After decay, back at base.
        assert!((c.envelope_at(Seconds(500.0)) - c.base_level).abs() < 1e-12);
    }

    #[test]
    fn fluctuation_is_really_there() {
        // §IV-B leans on interactive load fluctuating "dramatically and
        // frequently": the plateau samples must not be flat.
        let tr = cfg().generate(3);
        let plateau: Vec<f64> = tr.values[60..840].to_vec();
        let mean = plateau.iter().sum::<f64>() / plateau.len() as f64;
        let sd =
            (plateau.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / plateau.len() as f64).sqrt();
        assert!(sd > 0.04, "plateau too flat: sd={sd}");
    }

    #[test]
    fn fluctuation_is_autocorrelated() {
        let tr = cfg().generate(5);
        let v = &tr.values;
        let n = v.len() - 1;
        let mean = tr.mean();
        let var: f64 = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        let lag1: f64 = (0..n)
            .map(|i| (v[i] - mean) * (v[i + 1] - mean))
            .sum::<f64>()
            / n as f64;
        assert!(lag1 / var > 0.5, "lag-1 autocorrelation too low");
    }

    #[test]
    fn spikes_raise_the_p99() {
        let mut quiet = cfg();
        quiet.spikes = 0.0;
        quiet.wobble_sigma = 0.0;
        let base = quiet.generate(9);
        let mut spiky = quiet.clone();
        spiky.spikes = 12.0;
        let sp = spiky.generate(9);
        assert!(sp.percentile(99.0) > base.percentile(99.0) + 0.05);
    }
}
