//! Batch-job execution model with deadlines.
//!
//! A batch job owns one core (§IV-D assumes per-core independent
//! workloads). It carries a total amount of work measured in
//! *peak-core-seconds* — the time it would take at peak frequency — and
//! advances at the rate the [`ProgressModel`] gives for the core's current
//! frequency. Deadlines are in terms of hours/days normally, but the
//! evaluation deliberately postpones them into minutes (§VII-D), so the
//! job tracks enough state to answer the allocator's two questions:
//! *will I miss my deadline at the current pace?* and *what rate do I need
//! from here on?* It also computes the MPC control-penalty weight `R_ij`
//! of §V-B.

use crate::progress_model::ProgressModel;
use powersim::units::Seconds;

/// A batch job bound to one core.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// Display name (from the benchmark profile).
    pub name: String,
    /// Frequency-scaling model.
    pub model: ProgressModel,
    /// Total work in peak-core-seconds.
    pub total_work: f64,
    /// Absolute deadline (simulation time).
    pub deadline: Seconds,
    /// If true, the job restarts immediately on completion (§VI-A: batch
    /// workloads are "processed repeatedly and continuously").
    pub repeat: bool,
    /// Work completed in the current run, peak-core-seconds.
    done_work: f64,
    /// Simulation time the job has been running (including repeats).
    elapsed: Seconds,
    /// Completed runs (only grows with `repeat`).
    pub completions: usize,
    /// Time the *first* run completed, if it has.
    pub first_completion: Option<Seconds>,
}

impl BatchJob {
    pub fn new(
        name: impl Into<String>,
        model: ProgressModel,
        total_work: f64,
        deadline: Seconds,
    ) -> Self {
        assert!(total_work > 0.0, "job must contain work");
        BatchJob {
            name: name.into(),
            model,
            total_work,
            deadline,
            repeat: false,
            done_work: 0.0,
            elapsed: Seconds::ZERO,
            completions: 0,
            first_completion: None,
        }
    }

    pub fn repeating(mut self) -> Self {
        self.repeat = true;
        self
    }

    /// Fraction of the current run completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.done_work / self.total_work).clamp(0.0, 1.0)
    }

    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// The first run has finished.
    pub fn is_done(&self) -> bool {
        self.first_completion.is_some()
    }

    /// Whether the first run completed by its deadline (false while
    /// still running past the deadline, true while running before it —
    /// i.e. "not yet violated").
    pub fn deadline_met(&self, now: Seconds) -> bool {
        match self.first_completion {
            Some(t) => t.0 <= self.deadline.0,
            None => now.0 <= self.deadline.0,
        }
    }

    /// Remaining work of the current run, peak-core-seconds.
    pub fn remaining_work(&self) -> f64 {
        (self.total_work - self.done_work).max(0.0)
    }

    /// Predicted remaining execution time if the core runs at normalized
    /// frequency `f` from now on.
    pub fn remaining_time_at(&self, f: f64) -> Seconds {
        Seconds(self.remaining_work() * self.model.time_scale(f))
    }

    /// The execution *rate* (in peak-core units) needed from `now` to
    /// finish exactly at the deadline; `None` once the deadline has
    /// passed with work outstanding (no finite rate suffices) or the job
    /// is done (no rate needed).
    pub fn required_rate(&self, now: Seconds) -> Option<f64> {
        // The deadline governs the *first* completion (§VI-A repeats jobs
        // only to keep the 15-minute trace busy); once met, re-runs carry
        // no pressure.
        if self.is_done() {
            return Some(0.0);
        }
        let left = Seconds(self.deadline.0 - now.0);
        if left.0 <= 0.0 {
            return if self.remaining_work() > 0.0 {
                None
            } else {
                Some(0.0)
            };
        }
        Some(self.remaining_work() / left.0)
    }

    /// The frequency needed to finish exactly at the deadline, clamped to
    /// `[0, 1]`-representable rates; `None` if even peak frequency cannot
    /// make it (or the deadline already passed with work left).
    pub fn required_freq(&self, now: Seconds) -> Option<f64> {
        let rate = self.required_rate(now)?;
        self.model
            .freq_for_rate(rate.min(1.0 + 1e-12).min(1.0))
            .filter(|_| rate <= 1.0 + 1e-9)
    }

    /// The MPC control-penalty weight of §V-B:
    /// `R = remaining_progress / (remaining_time / (elapsed + remaining_time))`.
    ///
    /// The paper's worked example: 80% executed, 6 minutes used, 4 left →
    /// `R = 0.2 / (4/10) = 0.5`. Falls back to a large weight when the
    /// deadline has passed with work outstanding.
    pub fn control_weight(&self, now: Seconds) -> f64 {
        const OVERDUE_WEIGHT: f64 = 100.0;
        if self.is_done() {
            // First run met (or at least finished): repeats are pure
            // background work with no urgency.
            return 0.0;
        }
        let remaining_t = self.deadline.0 - now.0;
        if remaining_t <= 0.0 {
            return if self.remaining_work() > 0.0 {
                OVERDUE_WEIGHT
            } else {
                0.0
            };
        }
        let denom = remaining_t / (self.elapsed.0 + remaining_t);
        let w = (1.0 - self.progress()) / denom.max(1e-9);
        w.min(OVERDUE_WEIGHT)
    }

    /// Advance the job by `dt` at normalized frequency `f`. Returns the
    /// number of runs completed during this step (0 or more; >1 only for
    /// absurdly small repeating jobs).
    pub fn step(&mut self, f: f64, dt: Seconds) -> usize {
        assert!(dt.0 > 0.0);
        self.elapsed += dt;
        if f <= 0.0 || (self.is_done() && !self.repeat) {
            return 0; // powered off, fully throttled, or already finished
        }
        let mut advanced = self.model.rate(f) * dt.0;
        let mut completed = 0;
        loop {
            let room = self.total_work - self.done_work;
            if advanced < room {
                self.done_work += advanced;
                break;
            }
            advanced -= room;
            completed += 1;
            if self.first_completion.is_none() {
                self.first_completion = Some(self.elapsed);
            }
            self.completions += 1;
            if self.repeat {
                self.done_work = 0.0;
            } else {
                self.done_work = self.total_work;
                break;
            }
        }
        completed
    }
}

/// Size a job so that running at constant frequency `f_ref` finishes
/// exactly at `deadline` — the knob the evaluation uses to make deadlines
/// "relatively tight" (§VII-D).
pub fn sized_for_deadline(
    name: impl Into<String>,
    model: ProgressModel,
    deadline: Seconds,
    f_ref: f64,
) -> BatchJob {
    let work = model.rate(f_ref) * deadline.0;
    BatchJob::new(name, model, work, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> BatchJob {
        // 300 peak-core-seconds, 10-minute deadline, mb = 0.25.
        BatchJob::new("test", ProgressModel::new(0.25), 300.0, Seconds(600.0))
    }

    #[test]
    fn completes_at_peak_frequency_in_total_work_seconds() {
        let mut j = job();
        let mut t: f64 = 0.0;
        while !j.is_done() {
            j.step(1.0, Seconds(1.0));
            t += 1.0;
            assert!(t < 1000.0);
        }
        assert!((t - 300.0).abs() < 1.0);
        assert_eq!(j.completions, 1);
        assert!(j.deadline_met(Seconds(t)));
    }

    #[test]
    fn lower_frequency_slows_progress_per_model() {
        let mut a = job();
        let mut b = job();
        for _ in 0..100 {
            a.step(1.0, Seconds(1.0));
            b.step(0.5, Seconds(1.0));
        }
        let expected_ratio = ProgressModel::new(0.25).rate(0.5);
        assert!((b.progress() / a.progress() - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn zero_frequency_freezes_progress_but_not_time() {
        let mut j = job();
        j.step(0.0, Seconds(50.0));
        assert_eq!(j.progress(), 0.0);
        assert_eq!(j.elapsed(), Seconds(50.0));
    }

    #[test]
    fn paper_control_weight_example() {
        // 80% executed, 6 minutes elapsed, 4 minutes to deadline → R = 0.5.
        let mut j = BatchJob::new("ex", ProgressModel::new(0.0), 100.0, Seconds(600.0));
        // Run at a pace that lands exactly 80% done at t = 360 s:
        // rate = 80 work / 360 s.
        let f = 80.0 / 360.0;
        for _ in 0..360 {
            j.step(f, Seconds(1.0));
        }
        assert!((j.progress() - 0.8).abs() < 1e-6);
        let r = j.control_weight(Seconds(360.0));
        assert!((r - 0.5).abs() < 1e-6, "R={r}");
    }

    #[test]
    fn control_weight_grows_when_behind() {
        // Two jobs at the same wall-clock instant: the one that ran slower
        // (less progress, same elapsed) must carry the bigger weight.
        let mut slow = job();
        let mut fast = job();
        for _ in 0..200 {
            slow.step(0.25, Seconds(1.0));
            fast.step(1.0, Seconds(1.0));
        }
        let now = Seconds(200.0);
        assert!(slow.control_weight(now) > fast.control_weight(now));
        // And the same job's weight grows as its deadline nears without
        // progress (elapsed keeps accumulating).
        let w_early = slow.control_weight(now);
        for _ in 0..300 {
            slow.step(0.0, Seconds(1.0)); // starved: time passes, no work
        }
        let w_late = slow.control_weight(Seconds(500.0));
        assert!(w_late > w_early, "late={w_late} early={w_early}");
        // Overdue with work left → the large fallback weight.
        assert!(slow.control_weight(Seconds(601.0)) >= 100.0);
    }

    #[test]
    fn required_rate_and_freq() {
        let mut j = job();
        // Do half the work in 150 s at peak.
        for _ in 0..150 {
            j.step(1.0, Seconds(1.0));
        }
        // 150 work left, 450 s to deadline → rate 1/3.
        let rate = j.required_rate(Seconds(150.0)).unwrap();
        assert!((rate - 150.0 / 450.0).abs() < 1e-6);
        let f = j.required_freq(Seconds(150.0)).unwrap();
        // Check the inversion: rate(f) == required rate.
        assert!((j.model.rate(f) - rate).abs() < 1e-6);
        // Hopeless deadlines return None.
        assert!(j.required_rate(Seconds(599.999)).is_some());
        assert!(j.required_rate(Seconds(600.1)).is_none());
    }

    #[test]
    fn required_freq_none_when_even_peak_insufficient() {
        let j = job(); // 300 work
                       // 10 s before deadline, 300 work left → rate 30: impossible.
        assert!(j.required_freq(Seconds(590.0)).is_none());
    }

    #[test]
    fn repeating_job_counts_completions() {
        let mut j = BatchJob::new("r", ProgressModel::new(0.0), 10.0, Seconds(1e9)).repeating();
        for _ in 0..95 {
            j.step(1.0, Seconds(1.0));
        }
        assert_eq!(j.completions, 9);
        assert!((j.progress() - 0.5).abs() < 1e-9);
        assert!(j.first_completion.is_some());
    }

    #[test]
    fn one_huge_step_completes_multiple_repeats() {
        let mut j = BatchJob::new("r", ProgressModel::new(0.0), 10.0, Seconds(1e9)).repeating();
        let completed = j.step(1.0, Seconds(35.0));
        assert_eq!(completed, 3);
        assert!((j.progress() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sized_for_deadline_finishes_exactly_on_time_at_ref_freq() {
        let m = ProgressModel::new(0.3);
        let mut j = sized_for_deadline("s", m, Seconds(600.0), 0.55);
        let mut t: f64 = 0.0;
        while !j.is_done() {
            j.step(0.55, Seconds(1.0));
            t += 1.0;
            assert!(t <= 601.0);
        }
        assert!((t - 600.0).abs() <= 1.0);
    }

    #[test]
    fn non_repeating_job_clamps_at_done() {
        let mut j = BatchJob::new("n", ProgressModel::new(0.0), 5.0, Seconds(100.0));
        j.step(1.0, Seconds(50.0));
        assert!(j.is_done());
        assert_eq!(j.progress(), 1.0);
        assert_eq!(j.completions, 1);
        j.step(1.0, Seconds(50.0));
        assert_eq!(j.completions, 1, "finished job must not re-run");
        assert_eq!(j.required_rate(Seconds(99.0)), Some(0.0));
    }
}
