//! # workloads — interactive and batch workload models
//!
//! Substitutes for the paper's proprietary inputs (Wikipedia traces, SPEC
//! CPU2006 binaries) built so the controllers see the same signals:
//!
//! * [`trace`] — fixed-rate time series and sliding windows.
//! * [`wiki_trace`] — synthetic Wikipedia-like interactive demand
//!   (diurnal envelope + burst + autocorrelated wobble + spikes).
//! * [`interactive`] — the interactive tier: demand → utilization and
//!   queueing given per-server frequencies.
//! * [`open_loop`] — the typed [`open_loop::WorkloadSource`] API and the
//!   open-loop request-queueing tier with streaming latency sketches.
//! * [`mmpp`] — Markov-modulated demand (regime-switching flash crowds).
//! * [`spec_profiles`] — SPEC-CPU2006-like counter signatures, plus the
//!   six sprinting workloads of Fig. 1.
//! * [`progress_model`] — CoScale-style frequency → execution-rate model.
//! * [`batch`] — deadline-carrying batch jobs with the paper's `R_ij`
//!   control weights.
//!
//! Everything is deterministic under an explicit seed.

#![forbid(unsafe_code)]

pub mod batch;
pub mod interactive;
pub mod mmpp;
pub mod open_loop;
pub mod progress_model;
pub mod spec_profiles;
pub mod trace;
pub mod trace_io;
pub mod wiki_trace;

pub use batch::{sized_for_deadline, BatchJob};
pub use interactive::{InteractiveLoad, InteractiveTier};
pub use mmpp::{DemandState, MmppConfig};
pub use open_loop::{
    ArrivalProcess, DemandModel, LatencySketch, OpenLoopLoad, OpenLoopTier, QueueObservation,
    ServiceModel, TailSummary, WorkloadError, WorkloadSource,
};
pub use progress_model::ProgressModel;
pub use spec_profiles::{cfp2006, cint2006, paper_batch_mix, sprint_six, BenchProfile};
pub use trace::{SlidingWindow, Trace};
pub use trace_io::{read_trace, read_trace_file, write_trace_file, TraceIoError, TraceReader};
pub use wiki_trace::WikiTraceConfig;
