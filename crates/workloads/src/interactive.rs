//! Interactive-tier execution model.
//!
//! The interactive demand trace (see [`crate::wiki_trace`]) gives, per
//! second, the normalized work arriving per interactive core. A core
//! running at normalized frequency `f` can serve `f` peak-core units per
//! second; demand above that queues. Utilization — what the paper's
//! monitors feed into Eq. (5) — is the served fraction of capacity:
//! `u = served / f`.
//!
//! The model deliberately makes slow interactive cores *look busier*:
//! that is how SGCT's utilization-ranked sprinting (§VI-B) ends up giving
//! batch cores priority, and why SGCT-V2 overrides the ranking.

use crate::trace::Trace;
use powersim::units::{NormFreq, Seconds, Utilization};

/// Per-server weights spreading rack demand unevenly (real front-end load
/// balancing is never perfect). Deterministic, mean 1.0.
pub fn server_weights(n: usize, spread: f64) -> Vec<f64> {
    assert!(n > 0 && (0.0..1.0).contains(&spread));
    let raw: Vec<f64> = (0..n)
        .map(|i| 1.0 + spread * ((i as f64 * 2.399_963).sin()))
        .collect();
    let mean = raw.iter().sum::<f64>() / n as f64;
    raw.into_iter().map(|w| w / mean).collect()
}

/// State of the interactive tier across the rack.
#[derive(Debug, Clone)]
pub struct InteractiveTier {
    /// Normalized per-core demand trace (peak-core units per second).
    pub demand: Trace,
    /// Per-server demand weights, mean 1.0.
    pub weights: Vec<f64>,
    /// Per-server queued backlog, in peak-core-seconds per core.
    backlog: Vec<f64>,
    /// Backlog cap; beyond it requests are shed (timeouts) and counted.
    pub backlog_cap: f64,
    /// Total demand that arrived, peak-core-seconds per core, rack-mean.
    pub arrived: f64,
    /// Total demand served.
    pub served_total: f64,
    /// Total demand shed at the backlog cap.
    pub shed_total: f64,
}

/// Per-server result of one interactive step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractiveLoad {
    /// Core utilization to apply to this server's interactive cores.
    pub util: Utilization,
    /// Work served this step, peak-core-seconds per core.
    pub served: f64,
    /// Instantaneous demand (incl. backlog drain), peak-core units.
    pub offered: f64,
    /// Queued backlog after the step, peak-core-seconds per core.
    pub backlog: f64,
}

impl InteractiveTier {
    pub fn new(demand: Trace, num_servers: usize) -> Self {
        InteractiveTier {
            demand,
            weights: server_weights(num_servers, 0.12),
            backlog: vec![0.0; num_servers],
            backlog_cap: 3.0,
            arrived: 0.0,
            served_total: 0.0,
            shed_total: 0.0,
        }
    }

    /// Advance the tier by `dt` with per-server interactive frequencies
    /// `freqs` (length = number of servers). `powered[s] == false` means
    /// the server is shut down (brownout): nothing is served and arriving
    /// demand is shed.
    pub fn step(
        &mut self,
        t: Seconds,
        dt: Seconds,
        freqs: &[NormFreq],
        powered: &[bool],
    ) -> Vec<InteractiveLoad> {
        let mut out = Vec::with_capacity(freqs.len());
        self.step_into(t, dt, freqs, powered, &mut out);
        out
    }

    /// [`InteractiveTier::step`] writing into a caller-owned buffer
    /// (cleared first) — no per-tick allocation once `out` has capacity.
    pub fn step_into(
        &mut self,
        t: Seconds,
        dt: Seconds,
        freqs: &[NormFreq],
        powered: &[bool],
        out: &mut Vec<InteractiveLoad>,
    ) {
        assert_eq!(freqs.len(), self.weights.len());
        assert_eq!(powered.len(), self.weights.len());
        let base = self.demand.at(t);
        out.clear();
        out.reserve(freqs.len());
        for s in 0..freqs.len() {
            let demand = base * self.weights[s];
            self.arrived += demand * dt.0 / self.weights.len() as f64;
            if !powered[s] {
                // Shut down: everything arriving (and queued) is lost.
                self.shed_total += (demand * dt.0 + self.backlog[s]) / self.weights.len() as f64;
                self.backlog[s] = 0.0;
                out.push(InteractiveLoad {
                    util: Utilization::IDLE,
                    served: 0.0,
                    offered: demand,
                    backlog: 0.0,
                });
                continue;
            }
            let capacity = freqs[s].0.max(0.0); // peak-core units/second
            let offered = demand + self.backlog[s] / dt.0;
            let served_rate = offered.min(capacity);
            let served = served_rate * dt.0;
            let mut backlog = self.backlog[s] + (demand - served_rate) * dt.0;
            if backlog < 0.0 {
                backlog = 0.0;
            }
            if backlog > self.backlog_cap {
                self.shed_total += (backlog - self.backlog_cap) / self.weights.len() as f64;
                backlog = self.backlog_cap;
            }
            self.backlog[s] = backlog;
            self.served_total += served / self.weights.len() as f64;
            let util = if capacity > 0.0 {
                Utilization((served_rate / capacity).clamp(0.0, 1.0))
            } else {
                Utilization::IDLE
            };
            out.push(InteractiveLoad {
                util,
                served,
                offered,
                backlog,
            });
        }
    }

    /// Fraction of arrived work served so far (quality-of-service proxy).
    pub fn service_ratio(&self) -> f64 {
        if self.arrived <= 0.0 {
            1.0
        } else {
            (self.served_total / self.arrived).clamp(0.0, 1.0)
        }
    }

    /// Mean queued backlog across servers, peak-core-seconds per core.
    pub fn mean_backlog(&self) -> f64 {
        self.backlog.iter().sum::<f64>() / self.backlog.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(demand: f64, servers: usize) -> InteractiveTier {
        let mut t = InteractiveTier::new(Trace::constant(Seconds(1.0), demand, 1000), servers);
        t.weights = vec![1.0; servers]; // uniform for exactness in tests
        t
    }

    #[test]
    fn weights_mean_one_and_spread() {
        let w = server_weights(16, 0.12);
        assert_eq!(w.len(), 16);
        let mean = w.iter().sum::<f64>() / 16.0;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(w.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 1.05);
        assert!(w.iter().cloned().fold(f64::INFINITY, f64::min) < 0.95);
    }

    #[test]
    fn underload_at_peak_gives_util_equal_demand() {
        let mut tier = tier(0.6, 4);
        let loads = tier.step(Seconds(0.0), Seconds(1.0), &[NormFreq::PEAK; 4], &[true; 4]);
        for l in loads {
            assert!((l.util.0 - 0.6).abs() < 1e-9);
            assert!((l.served - 0.6).abs() < 1e-9);
            assert_eq!(l.backlog, 0.0);
        }
        assert!((tier.service_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slow_core_saturates_and_queues() {
        let mut tier = tier(0.6, 1);
        let loads = tier.step(Seconds(0.0), Seconds(1.0), &[NormFreq(0.4)], &[true]);
        let l = loads[0];
        // Demand 0.6 at capacity 0.4 → fully utilized, 0.2 queued.
        assert_eq!(l.util, Utilization::FULL);
        assert!((l.served - 0.4).abs() < 1e-9);
        assert!((l.backlog - 0.2).abs() < 1e-9);
        assert!(tier.service_ratio() < 1.0);
    }

    #[test]
    fn backlog_drains_when_capacity_returns() {
        let mut tier = tier(0.5, 1);
        tier.step(Seconds(0.0), Seconds(1.0), &[NormFreq(0.2)], &[true]);
        assert!(tier.mean_backlog() > 0.0);
        // Plenty of capacity now: backlog drains and util reflects the
        // extra work being chewed through.
        let loads = tier.step(Seconds(1.0), Seconds(1.0), &[NormFreq::PEAK], &[true]);
        assert!(loads[0].served > 0.5);
        assert_eq!(tier.mean_backlog(), 0.0);
    }

    #[test]
    fn backlog_cap_sheds_load() {
        let mut tier = tier(0.9, 1);
        for k in 0..200 {
            tier.step(Seconds(k as f64), Seconds(1.0), &[NormFreq(0.2)], &[true]);
        }
        assert!((tier.mean_backlog() - tier.backlog_cap).abs() < 1e-9);
        assert!(tier.shed_total > 0.0);
        // Conservation: arrived = served + shed + still-queued.
        let accounted = tier.served_total + tier.shed_total + tier.mean_backlog();
        assert!((tier.arrived - accounted).abs() < 1e-6);
    }

    #[test]
    fn powered_off_server_serves_nothing() {
        let mut tier = tier(0.7, 2);
        let loads = tier.step(
            Seconds(0.0),
            Seconds(1.0),
            &[NormFreq::PEAK, NormFreq::PEAK],
            &[true, false],
        );
        assert!(loads[0].served > 0.0);
        assert_eq!(loads[1].served, 0.0);
        assert_eq!(loads[1].util, Utilization::IDLE);
        assert!(tier.shed_total > 0.0);
    }

    #[test]
    fn conservation_under_random_schedule() {
        let mut tier = tier(0.8, 3);
        let freqs = [0.3, 1.0, 0.55];
        for k in 0..500 {
            let fs: Vec<NormFreq> = (0..3).map(|s| NormFreq(freqs[(k + s) % 3])).collect();
            tier.step(Seconds(k as f64), Seconds(1.0), &fs, &[true; 3]);
        }
        let accounted = tier.served_total + tier.shed_total + tier.mean_backlog();
        assert!(
            (tier.arrived - accounted).abs() < 1e-6,
            "arrived={} accounted={}",
            tier.arrived,
            accounted
        );
    }
}
