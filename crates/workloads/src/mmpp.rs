//! Markov-modulated demand generator — a second, spikier interactive
//! workload class.
//!
//! The Wikipedia-like generator ([`crate::wiki_trace`]) produces smooth
//! diurnal + burst traffic. Real interactive tiers also see *regime
//! switching*: flash crowds, retry storms, upstream failovers — demand
//! that jumps between discrete levels with exponentially-distributed
//! holding times. A Markov-modulated process captures that: a small
//! continuous-time Markov chain over demand states, with AR(1) wobble
//! inside each state. SprintCon's UPS controller and allocator must ride
//! these regime switches; the robustness tests drive them with this
//! generator.

use crate::trace::Trace;
use powersim::noise::NoiseSource;
use powersim::units::Seconds;

/// One demand regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandState {
    /// Demand level in `[0, 1]` (peak-core units per interactive core).
    pub level: f64,
    /// Mean holding time in this state, seconds.
    pub mean_dwell_s: f64,
}

/// Markov-modulated demand process.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppConfig {
    pub duration: Seconds,
    pub dt: Seconds,
    /// The regimes; transitions pick a uniformly random *other* state.
    pub states: Vec<DemandState>,
    /// Within-state AR(1) wobble amplitude.
    pub wobble_sigma: f64,
    /// Wobble correlation time, seconds.
    pub wobble_tau: f64,
}

impl MmppConfig {
    /// A spiky three-regime tier: calm → busy → flash-crowd.
    pub fn spiky_default() -> Self {
        MmppConfig {
            duration: Seconds::minutes(15.0),
            dt: Seconds(1.0),
            states: vec![
                DemandState {
                    level: 0.35,
                    mean_dwell_s: 90.0,
                },
                DemandState {
                    level: 0.60,
                    mean_dwell_s: 120.0,
                },
                DemandState {
                    level: 0.85,
                    mean_dwell_s: 40.0,
                },
            ],
            wobble_sigma: 0.05,
            wobble_tau: 10.0,
        }
    }

    /// Generate the demand trace.
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(
            self.states.len() >= 2,
            "regime switching needs at least two states"
        );
        assert!(self
            .states
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.level) && s.mean_dwell_s > 0.0));
        let n = (self.duration.0 / self.dt.0).round() as usize;
        let mut noise = NoiseSource::new(seed);
        let mut state = 0usize;
        let mut dwell_left = sample_exp(&mut noise, self.states[state].mean_dwell_s);
        let alpha = (-self.dt.0 / self.wobble_tau.max(1e-9)).exp();
        let drive = self.wobble_sigma * (1.0 - alpha * alpha).sqrt();
        let mut wobble = 0.0;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            dwell_left -= self.dt.0;
            if dwell_left <= 0.0 {
                // Jump to a uniformly random other state.
                let mut next = (noise.uniform() * (self.states.len() - 1) as f64) as usize;
                if next >= state {
                    next += 1;
                }
                state = next.min(self.states.len() - 1);
                dwell_left = sample_exp(&mut noise, self.states[state].mean_dwell_s);
            }
            wobble = alpha * wobble + drive * noise.gaussian();
            values.push((self.states[state].level + wobble).clamp(0.0, 1.0));
        }
        Trace::new(self.dt, values)
    }
}

fn sample_exp(noise: &mut NoiseSource, mean: f64) -> f64 {
    let u = noise.uniform().max(1e-12);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MmppConfig {
        MmppConfig::spiky_default()
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(cfg().generate(3), cfg().generate(3));
        assert_ne!(cfg().generate(3), cfg().generate(4));
    }

    #[test]
    fn values_stay_in_range() {
        let t = cfg().generate(1);
        assert_eq!(t.len(), 900);
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
    }

    #[test]
    fn visits_multiple_regimes() {
        let t = cfg().generate(7);
        // The trace must spend time near each configured level.
        for s in &cfg().states {
            let near = t
                .values
                .iter()
                .filter(|&&v| (v - s.level).abs() < 0.12)
                .count();
            assert!(
                near > 20,
                "regime at {} barely visited ({near} samples)",
                s.level
            );
        }
    }

    #[test]
    fn switches_are_abrupt_compared_to_wiki_wobble() {
        // Regime switches create jumps the smooth generator never makes.
        let t = cfg().generate(11);
        let max_jump = t
            .values
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_jump > 0.15, "max jump {max_jump}");
    }

    #[test]
    fn dwell_times_scale_with_configuration() {
        // Long-dwell states dominate occupancy.
        let mut c = cfg();
        c.states = vec![
            DemandState {
                level: 0.2,
                mean_dwell_s: 500.0,
            },
            DemandState {
                level: 0.9,
                mean_dwell_s: 10.0,
            },
        ];
        c.wobble_sigma = 0.0;
        let t = c.generate(5);
        let low = t.values.iter().filter(|&&v| v < 0.5).count();
        assert!(
            low > t.len() * 2 / 3,
            "long-dwell regime should dominate: {low}/{}",
            t.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least two states")]
    fn rejects_single_state() {
        let mut c = cfg();
        c.states.truncate(1);
        c.generate(1);
    }
}
