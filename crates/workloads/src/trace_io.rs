//! CSV import/export for demand traces.
//!
//! The generators in this crate are substitutes for the paper's
//! proprietary Wikipedia traces (DESIGN.md §3); a user who *has* real
//! request-rate data can feed it straight in. The format is
//! deliberately minimal: one or two comma-separated columns, optional
//! header, either `value` rows at a caller-given period or `t_s,value`
//! rows from which the period is inferred.

use crate::trace::Trace;
use powersim::units::Seconds;
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Line number (1-based) and message.
    Parse(usize, String),
    Empty,
    /// Timestamps are not uniformly spaced.
    IrregularSampling {
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            TraceIoError::Empty => write!(f, "trace file contains no samples"),
            TraceIoError::IrregularSampling { line } => {
                write!(f, "line {line}: timestamps are not uniformly spaced")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Parse a trace from a reader.
///
/// * one column → values sampled at `default_dt`;
/// * two columns (`t_s,value`) → the sampling period is inferred from
///   the first two rows and every subsequent row must stay on the grid
///   (±1% of the period).
///
/// A non-numeric first line is treated as a header and skipped. Blank
/// lines and `#` comments are ignored.
pub fn read_trace<R: BufRead>(reader: R, default_dt: Seconds) -> Result<Trace, TraceIoError> {
    assert!(default_dt.0 > 0.0);
    let mut values = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    let mut two_col = None;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let cols: Vec<&str> = body.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = cols.iter().map(|c| c.parse::<f64>()).collect();
        let nums = match parsed {
            Ok(n) => n,
            Err(e) => {
                if values.is_empty() && times.is_empty() {
                    continue; // header line
                }
                return Err(TraceIoError::Parse(lineno, format!("{e}: {body:?}")));
            }
        };
        match (two_col, nums.len()) {
            (None, 1) => {
                two_col = Some(false);
                values.push(nums[0]);
            }
            (None, 2) => {
                two_col = Some(true);
                times.push(nums[0]);
                values.push(nums[1]);
            }
            (Some(false), 1) => values.push(nums[0]),
            (Some(true), 2) => {
                times.push(nums[0]);
                values.push(nums[1]);
            }
            (_, n) => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("expected a consistent 1- or 2-column layout, got {n} columns"),
                ))
            }
        }
    }
    if values.is_empty() {
        return Err(TraceIoError::Empty);
    }
    let dt = if two_col == Some(true) && times.len() >= 2 {
        let dt = times[1] - times[0];
        if dt <= 0.0 {
            return Err(TraceIoError::Parse(2, "non-increasing timestamps".into()));
        }
        for (k, w) in times.windows(2).enumerate() {
            let step = w[1] - w[0];
            if (step - dt).abs() > dt * 0.01 {
                return Err(TraceIoError::IrregularSampling { line: k + 2 });
            }
        }
        Seconds(dt)
    } else {
        default_dt
    };
    Ok(Trace::new(dt, values))
}

/// Read a trace from a file path.
pub fn read_trace_file(path: &Path, default_dt: Seconds) -> Result<Trace, TraceIoError> {
    let f = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(f), default_dt)
}

/// Write a trace as two-column `t_s,value` CSV.
pub fn write_trace_file(path: &Path, trace: &Trace) -> Result<(), TraceIoError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "t_s,value")?;
    for (k, v) in trace.values.iter().enumerate() {
        writeln!(out, "{:.3},{v:.6}", k as f64 * trace.dt.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn dt1() -> Seconds {
        Seconds(1.0)
    }

    #[test]
    fn single_column_uses_default_dt() {
        let t = read_trace(Cursor::new("0.5\n0.6\n0.7\n"), Seconds(2.0)).unwrap();
        assert_eq!(t.dt, Seconds(2.0));
        assert_eq!(t.values, vec![0.5, 0.6, 0.7]);
    }

    #[test]
    fn two_column_infers_period() {
        let t = read_trace(Cursor::new("0,0.5\n5,0.6\n10,0.7\n"), dt1()).unwrap();
        assert_eq!(t.dt, Seconds(5.0));
        assert_eq!(t.values, vec![0.5, 0.6, 0.7]);
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let src = "t_s,value\n# a comment\n\n0,0.1\n1,0.2 # trailing comment\n";
        let t = read_trace(Cursor::new(src), dt1()).unwrap();
        assert_eq!(t.values, vec![0.1, 0.2]);
        assert_eq!(t.dt, Seconds(1.0));
    }

    #[test]
    fn irregular_sampling_is_rejected() {
        let err = read_trace(Cursor::new("0,1\n1,2\n3,3\n"), dt1()).unwrap_err();
        assert!(matches!(err, TraceIoError::IrregularSampling { line: 3 }));
    }

    #[test]
    fn garbage_mid_file_is_an_error_with_line_number() {
        let err = read_trace(Cursor::new("1.0\npotato\n"), dt1()).unwrap_err();
        match err {
            TraceIoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn column_count_must_stay_consistent() {
        let err = read_trace(Cursor::new("0,1\n2\n"), dt1()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(
            read_trace(Cursor::new("# nothing\n"), dt1()),
            Err(TraceIoError::Empty)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sprintcon_trace_io");
        let path = dir.join("t.csv");
        let orig = Trace::new(Seconds(2.0), vec![0.25, 0.5, 0.75, 1.0]);
        write_trace_file(&path, &orig).unwrap();
        let back = read_trace_file(&path, Seconds(99.0)).unwrap();
        assert_eq!(back.dt, orig.dt);
        for (a, b) in back.values.iter().zip(&orig.values) {
            assert!((a - b).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
