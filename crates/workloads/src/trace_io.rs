//! CSV import/export for demand traces.
//!
//! The generators in this crate are substitutes for the paper's
//! proprietary Wikipedia traces (DESIGN.md §3); a user who *has* real
//! request-rate data can feed it straight in. The format is
//! deliberately minimal: one or two comma-separated columns, optional
//! header, either `value` rows at a caller-given period or `t_s,value`
//! rows from which the period is inferred.

use crate::trace::Trace;
use powersim::units::Seconds;
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    Io(std::io::Error),
    /// Line number (1-based) and message.
    Parse(usize, String),
    Empty,
    /// Timestamps are not uniformly spaced.
    IrregularSampling {
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            TraceIoError::Empty => write!(f, "trace file contains no samples"),
            TraceIoError::IrregularSampling { line } => {
                write!(f, "line {line}: timestamps are not uniformly spaced")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// A streaming, chunked trace parser.
///
/// [`read_trace`] materializes the whole trace; for a full-day CSV
/// feeding an open-loop arrival process that is unnecessary — the tier
/// consumes one demand level per tick. `TraceReader` is an iterator of
/// `Result<Vec<f64>, TraceIoError>` chunks (at most
/// [`TraceReader::chunk_size`] values each) that applies exactly the
/// same format rules as `read_trace`: 1- or 2-column layout lock,
/// header/comment/blank skipping, grid-checked period inference (±1%).
/// Layout and grid violations surface with the same line numbering as
/// the batch parser. After an error the iterator is fused (yields
/// `None` forever); values parsed before the failing line within the
/// same chunk are discarded.
///
/// The inferred sampling period is available from [`TraceReader::dt`]
/// once at least two 2-column rows have been consumed (before that, or
/// for 1-column input, it reports the `default_dt`).
pub struct TraceReader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    default_dt: Seconds,
    chunk: usize,
    two_col: Option<bool>,
    dt: Option<f64>,
    prev_time: Option<f64>,
    rows: usize,
    done: bool,
}

impl<R: BufRead> TraceReader<R> {
    pub fn new(reader: R, default_dt: Seconds) -> Self {
        assert!(default_dt.0 > 0.0);
        TraceReader {
            lines: reader.lines().enumerate(),
            default_dt,
            chunk: 4096,
            two_col: None,
            dt: None,
            prev_time: None,
            rows: 0,
            done: false,
        }
    }

    /// Set the maximum number of values yielded per chunk.
    pub fn chunk_size(mut self, n: usize) -> Self {
        assert!(n > 0, "chunk size must be positive");
        self.chunk = n;
        self
    }

    /// The sampling period: inferred from the timestamps consumed so
    /// far, or the `default_dt` for 1-column input.
    pub fn dt(&self) -> Seconds {
        self.dt.map_or(self.default_dt, Seconds)
    }

    /// Data rows consumed so far (headers/comments/blanks excluded).
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<Vec<f64>, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut out = Vec::new();
        while out.len() < self.chunk {
            let Some((i, line)) = self.lines.next() else {
                break;
            };
            let lineno = i + 1;
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            let body = line.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let cols: Vec<&str> = body.split(',').map(str::trim).collect();
            let parsed: Result<Vec<f64>, _> = cols.iter().map(|c| c.parse::<f64>()).collect();
            let nums = match parsed {
                Ok(n) => n,
                Err(e) => {
                    if self.rows == 0 {
                        continue; // header line
                    }
                    self.done = true;
                    return Some(Err(TraceIoError::Parse(lineno, format!("{e}: {body:?}"))));
                }
            };
            let value = match (self.two_col, nums.len()) {
                (None, 1) => {
                    self.two_col = Some(false);
                    nums[0]
                }
                (None, 2) => {
                    self.two_col = Some(true);
                    self.prev_time = Some(nums[0]);
                    nums[1]
                }
                (Some(false), 1) => nums[0],
                (Some(true), 2) => {
                    let t = nums[0];
                    let prev = self.prev_time.expect("two-column rows record a time");
                    let step = t - prev;
                    match self.dt {
                        None => {
                            if step <= 0.0 {
                                self.done = true;
                                return Some(Err(TraceIoError::Parse(
                                    2,
                                    "non-increasing timestamps".into(),
                                )));
                            }
                            self.dt = Some(step);
                        }
                        Some(dt) => {
                            if (step - dt).abs() > dt * 0.01 {
                                self.done = true;
                                // Same numbering as the batch parser:
                                // the offending *data row*, 1-based.
                                return Some(Err(TraceIoError::IrregularSampling {
                                    line: self.rows + 1,
                                }));
                            }
                        }
                    }
                    self.prev_time = Some(t);
                    nums[1]
                }
                (_, n) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Parse(
                        lineno,
                        format!("expected a consistent 1- or 2-column layout, got {n} columns"),
                    )));
                }
            };
            self.rows += 1;
            out.push(value);
        }
        if out.is_empty() {
            self.done = true;
            None
        } else {
            Some(Ok(out))
        }
    }
}

/// Parse a trace from a reader.
///
/// * one column → values sampled at `default_dt`;
/// * two columns (`t_s,value`) → the sampling period is inferred from
///   the first two rows and every subsequent row must stay on the grid
///   (±1% of the period).
///
/// A non-numeric first line is treated as a header and skipped. Blank
/// lines and `#` comments are ignored. This is the materializing
/// wrapper over [`TraceReader`].
pub fn read_trace<R: BufRead>(reader: R, default_dt: Seconds) -> Result<Trace, TraceIoError> {
    let mut r = TraceReader::new(reader, default_dt);
    let mut values = Vec::new();
    for chunk in &mut r {
        values.extend(chunk?);
    }
    if values.is_empty() {
        return Err(TraceIoError::Empty);
    }
    Ok(Trace::new(r.dt(), values))
}

/// Read a trace from a file path.
pub fn read_trace_file(path: &Path, default_dt: Seconds) -> Result<Trace, TraceIoError> {
    let f = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(f), default_dt)
}

/// Write a trace as two-column `t_s,value` CSV.
pub fn write_trace_file(path: &Path, trace: &Trace) -> Result<(), TraceIoError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "t_s,value")?;
    for (k, v) in trace.values.iter().enumerate() {
        writeln!(out, "{:.3},{v:.6}", k as f64 * trace.dt.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn dt1() -> Seconds {
        Seconds(1.0)
    }

    #[test]
    fn single_column_uses_default_dt() {
        let t = read_trace(Cursor::new("0.5\n0.6\n0.7\n"), Seconds(2.0)).unwrap();
        assert_eq!(t.dt, Seconds(2.0));
        assert_eq!(t.values, vec![0.5, 0.6, 0.7]);
    }

    #[test]
    fn two_column_infers_period() {
        let t = read_trace(Cursor::new("0,0.5\n5,0.6\n10,0.7\n"), dt1()).unwrap();
        assert_eq!(t.dt, Seconds(5.0));
        assert_eq!(t.values, vec![0.5, 0.6, 0.7]);
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let src = "t_s,value\n# a comment\n\n0,0.1\n1,0.2 # trailing comment\n";
        let t = read_trace(Cursor::new(src), dt1()).unwrap();
        assert_eq!(t.values, vec![0.1, 0.2]);
        assert_eq!(t.dt, Seconds(1.0));
    }

    #[test]
    fn irregular_sampling_is_rejected() {
        let err = read_trace(Cursor::new("0,1\n1,2\n3,3\n"), dt1()).unwrap_err();
        assert!(matches!(err, TraceIoError::IrregularSampling { line: 3 }));
    }

    #[test]
    fn garbage_mid_file_is_an_error_with_line_number() {
        let err = read_trace(Cursor::new("1.0\npotato\n"), dt1()).unwrap_err();
        match err {
            TraceIoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn column_count_must_stay_consistent() {
        let err = read_trace(Cursor::new("0,1\n2\n"), dt1()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(
            read_trace(Cursor::new("# nothing\n"), dt1()),
            Err(TraceIoError::Empty)
        ));
    }

    #[test]
    fn streaming_reader_chunks_and_matches_batch() {
        let src: String = (0..100)
            .map(|k| format!("{k},{}\n", k as f64 * 0.01))
            .collect();
        let batch = read_trace(Cursor::new(src.clone()), dt1()).unwrap();
        let mut r = TraceReader::new(Cursor::new(src), dt1()).chunk_size(7);
        let mut streamed = Vec::new();
        let mut chunks = 0;
        for chunk in &mut r {
            let chunk = chunk.unwrap();
            assert!(chunk.len() <= 7);
            streamed.extend(chunk);
            chunks += 1;
        }
        assert_eq!(chunks, 15); // ceil(100 / 7)
        assert_eq!(streamed, batch.values);
        assert_eq!(r.dt(), batch.dt);
        assert_eq!(r.rows(), 100);
    }

    #[test]
    fn streaming_reader_is_fused_after_an_error() {
        let mut r = TraceReader::new(Cursor::new("0,1\n1,2\n3,3\n4,4\n"), dt1()).chunk_size(1);
        assert_eq!(r.next().unwrap().unwrap(), vec![1.0]);
        assert_eq!(r.next().unwrap().unwrap(), vec![2.0]);
        assert!(matches!(
            r.next().unwrap().unwrap_err(),
            TraceIoError::IrregularSampling { line: 3 }
        ));
        assert!(r.next().is_none());
        assert!(r.next().is_none());
    }

    #[test]
    fn streaming_reader_dt_defaults_until_inferred() {
        let mut r = TraceReader::new(Cursor::new("0,0.5\n2,0.6\n"), Seconds(9.0)).chunk_size(1);
        assert_eq!(r.dt(), Seconds(9.0));
        r.next().unwrap().unwrap();
        assert_eq!(r.dt(), Seconds(9.0)); // one row: period not yet known
        r.next().unwrap().unwrap();
        assert_eq!(r.dt(), Seconds(2.0));
    }

    #[test]
    fn lines_split_across_tiny_buffer_refills_parse_identically() {
        // A pathologically small BufReader capacity forces every line to
        // be reassembled from several fill_buf() calls, so records are
        // split mid-number at arbitrary byte boundaries.
        let src: String = (0..50)
            .map(|k| format!("{k},{}\n", k as f64 * 0.1))
            .collect();
        let batch = read_trace(Cursor::new(src.clone()), dt1()).unwrap();
        let tiny = std::io::BufReader::with_capacity(3, Cursor::new(src));
        let mut r = TraceReader::new(tiny, dt1()).chunk_size(4);
        let mut streamed = Vec::new();
        for chunk in &mut r {
            streamed.extend(chunk.unwrap());
        }
        assert_eq!(streamed, batch.values);
        assert_eq!(r.dt(), batch.dt);
    }

    #[test]
    fn trailing_record_without_newline_is_kept() {
        let src = "0,0.5\n1,0.6\n2,0.7"; // no trailing newline
        let batch = read_trace(Cursor::new(src), dt1()).unwrap();
        assert_eq!(batch.values, vec![0.5, 0.6, 0.7]);
        let mut r = TraceReader::new(Cursor::new(src), dt1()).chunk_size(2);
        let streamed: Vec<f64> = (&mut r).flat_map(|c| c.unwrap()).collect();
        assert_eq!(streamed, batch.values);
        assert_eq!(r.rows(), 3);
    }

    #[test]
    fn trailing_partial_record_is_a_parse_error_on_both_paths() {
        // The writer died mid-record: the value column is missing. Both
        // parsers must report the same line with a parse error rather
        // than silently dropping the tail.
        let src = "0,0.5\n1,0.6\n2,";
        let eager = read_trace(Cursor::new(src), dt1()).unwrap_err();
        let TraceIoError::Parse(line, _) = eager else {
            panic!("wrong eager error {eager:?}");
        };
        assert_eq!(line, 3);
        let mut r = TraceReader::new(Cursor::new(src), dt1()).chunk_size(1);
        let last = (&mut r).last().expect("an error chunk");
        assert!(matches!(last, Err(TraceIoError::Parse(3, _))));
        assert!(r.next().is_none(), "reader must be fused after the error");
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        for src in ["", "# only a comment\n", "t_s,value\n\n"] {
            let mut r = TraceReader::new(Cursor::new(src), dt1());
            assert!(r.next().is_none(), "{src:?} produced a chunk");
            assert_eq!(r.rows(), 0);
            assert_eq!(r.dt(), dt1());
            // The materializing wrapper turns the same input into Empty.
            assert!(matches!(
                read_trace(Cursor::new(src), dt1()),
                Err(TraceIoError::Empty)
            ));
        }
    }

    #[test]
    fn error_on_a_chunk_boundary_discards_nothing_already_yielded() {
        // Two good rows then a grid violation. With chunk_size 2 the good
        // rows are yielded as a complete chunk before the error; with
        // chunk_size 3 they fall in the failing chunk and are discarded
        // (the documented contract).
        let src = "0,1\n1,2\n5,3\n";
        let mut r2 = TraceReader::new(Cursor::new(src), dt1()).chunk_size(2);
        assert_eq!(r2.next().unwrap().unwrap(), vec![1.0, 2.0]);
        assert!(r2.next().unwrap().is_err());
        assert!(r2.next().is_none());
        let mut r3 = TraceReader::new(Cursor::new(src), dt1()).chunk_size(3);
        assert!(r3.next().unwrap().is_err());
        assert!(r3.next().is_none());
    }

    #[test]
    fn error_paths_match_the_eager_parser() {
        // Every malformed fixture must produce the same rendered error
        // from the streaming path (regardless of chunk size) as from
        // read_trace.
        let fixtures = [
            "0,1\n1,2\n3,3\n", // irregular sampling
            "1.0\npotato\n",   // garbage mid-file
            "0,1\n2\n",        // column-count flip
            "0,1\n1,2\n1,3\n", // non-increasing would need dt first; grid violation
            "5,1\n4,2\n",      // non-increasing timestamps
            "0,1,9\n",         // three columns on the first data row
        ];
        for src in fixtures {
            let eager = read_trace(Cursor::new(src), dt1()).unwrap_err().to_string();
            for chunk_size in [1, 2, 4096] {
                let mut streamed = None;
                let mut r = TraceReader::new(Cursor::new(src), dt1()).chunk_size(chunk_size);
                for chunk in &mut r {
                    if let Err(e) = chunk {
                        streamed = Some(e.to_string());
                        break;
                    }
                }
                assert_eq!(
                    streamed.as_deref(),
                    Some(eager.as_str()),
                    "{src:?} with chunk_size {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sprintcon_trace_io");
        let path = dir.join("t.csv");
        let orig = Trace::new(Seconds(2.0), vec![0.25, 0.5, 0.75, 1.0]);
        write_trace_file(&path, &orig).unwrap();
        let back = read_trace_file(&path, Seconds(99.0)).unwrap();
        assert_eq!(back.dt, orig.dt);
        for (a, b) in back.values.iter().zip(&orig.values) {
            assert!((a - b).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
