//! Synthetic stand-ins for the paper's benchmark suites.
//!
//! §VI-A runs SPEC CPU2006: CINT 400.perlbench / 401.bzip2 / 403.gcc /
//! 429.mcf on one server, CFP 433.milc / 444.namd / 447.dealII /
//! 450.soplex on the other. SPEC binaries are licensed, so we substitute
//! profiles whose *performance-counter signatures* (core CPI, cache misses
//! per instruction) span the published behaviour of those benchmarks —
//! mcf/milc notoriously memory-bound, namd/perlbench compute-bound. The
//! controller only ever consumes these counters through
//! [`ProgressModel`], so matching the signature matches the behaviour.
//!
//! Fig. 1's six sprinting workloads (from the mobile testbed of \[4\]:
//! sobel, disparity, segment, kmeans, texture, feature) are modelled the
//! same way for the motivation experiment.

use crate::progress_model::ProgressModel;

/// A synthetic benchmark profile: the counter signature the paper's
/// short-term profiling would collect, plus a nominal job size.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchProfile {
    /// Display name, e.g. `"429.mcf"`.
    pub name: &'static str,
    /// Cycles per instruction when not stalled on memory.
    pub cpi_core: f64,
    /// Last-level-cache misses per instruction.
    pub miss_per_instr: f64,
    /// Miss penalty in core cycles at peak frequency.
    pub miss_latency_cycles: f64,
    /// Nominal single-run execution time at peak frequency, seconds.
    /// (SPEC ref runs are minutes-long; §VI-A repeats them to fill the
    /// 15-minute trace.)
    pub nominal_runtime_s: f64,
}

impl BenchProfile {
    /// The derived frequency-scaling model.
    pub fn progress_model(&self) -> ProgressModel {
        ProgressModel::from_counters(self.cpi_core, self.miss_per_instr, self.miss_latency_cycles)
    }

    /// Memory-bound fraction (at peak frequency) of this profile.
    pub fn memory_bound(&self) -> f64 {
        self.progress_model().memory_bound
    }
}

const fn p(
    name: &'static str,
    cpi_core: f64,
    miss_per_instr: f64,
    miss_latency_cycles: f64,
    nominal_runtime_s: f64,
) -> BenchProfile {
    BenchProfile {
        name,
        cpi_core,
        miss_per_instr,
        miss_latency_cycles,
        nominal_runtime_s,
    }
}

/// The four CINT2006 stand-ins run on the first server (§VI-A).
pub fn cint2006() -> Vec<BenchProfile> {
    vec![
        // perlbench: branchy interpreter, cache-friendly.
        p("400.perlbench", 0.95, 0.0006, 180.0, 420.0),
        // bzip2: compression, moderate locality.
        p("401.bzip2", 0.85, 0.0011, 180.0, 380.0),
        // gcc: pointer-chasing compiler, mixed.
        p("403.gcc", 1.00, 0.0022, 180.0, 340.0),
        // mcf: network simplex, famously memory-bound.
        p("429.mcf", 0.75, 0.0052, 190.0, 460.0),
    ]
}

/// The four CFP2006 stand-ins run on the second server (§VI-A).
pub fn cfp2006() -> Vec<BenchProfile> {
    vec![
        // milc: lattice QCD, streaming memory-bound.
        p("433.milc", 0.80, 0.0040, 190.0, 430.0),
        // namd: molecular dynamics, compute-dense.
        p("444.namd", 0.90, 0.0004, 180.0, 400.0),
        // dealII: finite elements, moderate.
        p("447.dealII", 0.95, 0.0013, 180.0, 360.0),
        // soplex: LP solver, memory-heavy.
        p("450.soplex", 0.85, 0.0033, 190.0, 390.0),
    ]
}

/// The paper's full batch mix: CINT on odd servers, CFP on even servers,
/// one benchmark per batch core, cycled to cover `batch_cores_per_server`.
pub fn paper_batch_mix(
    num_servers: usize,
    batch_cores_per_server: usize,
) -> Vec<Vec<BenchProfile>> {
    let cint = cint2006();
    let cfp = cfp2006();
    (0..num_servers)
        .map(|s| {
            let suite = if s % 2 == 0 { &cint } else { &cfp };
            (0..batch_cores_per_server)
                .map(|c| suite[c % suite.len()].clone())
                .collect()
        })
        .collect()
}

/// Fig. 1's six sprinting workloads from the testbed of \[4\], spanning the
/// compute-bound → memory-bound range.
pub fn sprint_six() -> Vec<BenchProfile> {
    vec![
        p("sobel", 0.90, 0.0008, 180.0, 20.0),
        p("disparity", 0.85, 0.0024, 185.0, 25.0),
        p("segment", 0.80, 0.0038, 190.0, 30.0),
        p("kmeans", 0.85, 0.0030, 185.0, 22.0),
        p("texture", 0.95, 0.0012, 180.0, 18.0),
        p("feature", 0.90, 0.0018, 182.0, 24.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_four_benchmarks_each() {
        assert_eq!(cint2006().len(), 4);
        assert_eq!(cfp2006().len(), 4);
        assert_eq!(sprint_six().len(), 6);
    }

    #[test]
    fn memory_boundedness_spans_a_wide_range() {
        let all: Vec<BenchProfile> = cint2006().into_iter().chain(cfp2006()).collect();
        let mbs: Vec<f64> = all.iter().map(|b| b.memory_bound()).collect();
        let min = mbs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = mbs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // perlbench/namd-like lows, mcf/milc-like highs.
        assert!(min < 0.12, "min mb={min}");
        assert!(max > 0.45, "max mb={max}");
    }

    #[test]
    fn mcf_is_the_most_memory_bound_int() {
        let cint = cint2006();
        let mcf = cint.iter().find(|b| b.name == "429.mcf").unwrap();
        for b in &cint {
            assert!(b.memory_bound() <= mcf.memory_bound());
        }
    }

    #[test]
    fn paper_mix_alternates_suites() {
        let mix = paper_batch_mix(16, 4);
        assert_eq!(mix.len(), 16);
        assert!(mix.iter().all(|s| s.len() == 4));
        assert_eq!(mix[0][0].name, "400.perlbench");
        assert_eq!(mix[1][0].name, "433.milc");
        // Cycling covers more cores than the suite size.
        let wide = paper_batch_mix(1, 6);
        assert_eq!(wide[0][4].name, "400.perlbench");
    }

    #[test]
    fn all_models_valid() {
        for b in cint2006().iter().chain(&cfp2006()).chain(&sprint_six()) {
            let m = b.progress_model();
            assert!(m.memory_bound >= 0.0 && m.memory_bound < 1.0);
            assert!(b.nominal_runtime_s > 0.0);
        }
    }
}
