//! Frequency → execution-progress model (the progress model of CoScale
//! \[12\] that the power load allocator uses, §IV-B).
//!
//! Execution time splits into a compute-bound part that scales with
//! `1/f` and a memory-bound part that does not scale with core frequency.
//! With `mb` the memory-bound fraction of execution time *at peak
//! frequency*, the normalized execution rate at normalized frequency `f`
//! is
//!
//! ```text
//! rate(f) = 1 / (mb + (1 − mb)/f),     rate(1) = 1
//! ```
//!
//! The model's inputs come from short-term profiling: used CPU cycles and
//! cache misses over millisecond windows (§IV-B), which we expose through
//! [`ProgressModel::from_counters`].

/// Per-workload execution-rate model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressModel {
    /// Fraction of execution time stalled on memory at peak frequency,
    /// in `[0, 1)`.
    pub memory_bound: f64,
}

impl ProgressModel {
    pub fn new(memory_bound: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&memory_bound),
            "memory-bound fraction must be in [0, 1)"
        );
        ProgressModel { memory_bound }
    }

    /// Estimate the memory-bound fraction from performance counters: core
    /// cycles-per-instruction when not stalled, misses per instruction,
    /// and the miss penalty in cycles.
    ///
    /// `mb = stall_cycles / (compute_cycles + stall_cycles)` per
    /// instruction.
    pub fn from_counters(cpi_core: f64, miss_per_instr: f64, miss_latency_cycles: f64) -> Self {
        assert!(cpi_core > 0.0 && miss_per_instr >= 0.0 && miss_latency_cycles >= 0.0);
        let stall = miss_per_instr * miss_latency_cycles;
        Self::new(stall / (cpi_core + stall))
    }

    /// Normalized execution rate at normalized frequency `f`;
    /// `rate(1) = 1`, and `rate` is increasing and concave in `f`.
    pub fn rate(&self, f: f64) -> f64 {
        assert!(f > 0.0, "frequency must be positive");
        1.0 / (self.memory_bound + (1.0 - self.memory_bound) / f)
    }

    /// Execution-time multiplier at frequency `f` relative to peak:
    /// `time(f) = 1 / rate(f)`.
    pub fn time_scale(&self, f: f64) -> f64 {
        1.0 / self.rate(f)
    }

    /// Speedup of running at `to` instead of `from`.
    pub fn speedup(&self, from: f64, to: f64) -> f64 {
        self.rate(to) / self.rate(from)
    }

    /// The frequency needed to achieve a target normalized rate, or `None`
    /// if the rate is unreachable even at peak (rate > 1 is impossible;
    /// rate below the memory-bound asymptote needs f ≤ 0).
    pub fn freq_for_rate(&self, rate: f64) -> Option<f64> {
        if rate <= 0.0 {
            return Some(0.0);
        }
        if rate > 1.0 + 1e-12 {
            return None;
        }
        // rate = 1/(mb + (1-mb)/f)  ⇒  f = (1-mb) / (1/rate − mb)
        let denom = 1.0 / rate - self.memory_bound;
        if denom <= 0.0 {
            None
        } else {
            Some((1.0 - self.memory_bound) / denom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rate_is_one() {
        for mb in [0.0, 0.2, 0.5, 0.9] {
            assert!((ProgressModel::new(mb).rate(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let m = ProgressModel::new(0.0);
        assert!((m.rate(0.5) - 0.5).abs() < 1e-12);
        assert!((m.rate(0.2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_damps_scaling() {
        // The Fig. 1 argument: memory-bound work gains less from
        // frequency, so per-watt speedup decays faster.
        let light = ProgressModel::new(0.1);
        let heavy = ProgressModel::new(0.5);
        assert!(light.speedup(0.2, 1.0) > heavy.speedup(0.2, 1.0));
        // Heavy memory-bound: 5× frequency gives exactly 3× speedup
        // (time at 0.2 is 0.5 + 0.5/0.2 = 3.0), far below the 5× a
        // compute-bound job would get.
        assert!((heavy.speedup(0.2, 1.0) - 3.0).abs() < 1e-9);
        assert!((light.speedup(0.2, 1.0) - 4.6).abs() < 1e-9);
    }

    #[test]
    fn rate_monotone_and_concave() {
        let m = ProgressModel::new(0.3);
        let fs: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let rates: Vec<f64> = fs.iter().map(|&f| m.rate(f)).collect();
        for w in rates.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Concavity: increments shrink.
        for w in rates.windows(3) {
            assert!(w[2] - w[1] < w[1] - w[0] + 1e-12);
        }
    }

    #[test]
    fn freq_for_rate_inverts_rate() {
        let m = ProgressModel::new(0.35);
        for &f in &[0.2, 0.4, 0.7, 1.0] {
            let r = m.rate(f);
            let back = m.freq_for_rate(r).unwrap();
            assert!((back - f).abs() < 1e-9, "f={f} back={back}");
        }
        assert!(m.freq_for_rate(1.2).is_none());
        assert_eq!(m.freq_for_rate(0.0), Some(0.0));
    }

    #[test]
    fn counter_estimation() {
        // 1.0 core CPI, 0.005 misses/instr at 200-cycle penalty →
        // stall = 1.0 cycles/instr → mb = 0.5.
        let m = ProgressModel::from_counters(1.0, 0.005, 200.0);
        assert!((m.memory_bound - 0.5).abs() < 1e-12);
        // No misses → fully compute bound.
        let c = ProgressModel::from_counters(0.8, 0.0, 200.0);
        assert_eq!(c.memory_bound, 0.0);
    }

    #[test]
    fn time_scale_reciprocal() {
        let m = ProgressModel::new(0.25);
        assert!((m.time_scale(0.5) * m.rate(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "memory-bound fraction")]
    fn rejects_mb_one() {
        ProgressModel::new(1.0);
    }
}
