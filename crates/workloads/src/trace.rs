//! Fixed-rate time-series containers used for workload traces.
//!
//! The paper drives its simulation from 15-minute execution-data traces
//! (§VI-A). A [`Trace`] stores samples at a fixed period and offers the
//! interpolation/resampling and summary statistics the generators, the
//! allocator, and the metrics code all need.

use powersim::units::Seconds;

/// A uniformly-sampled time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Sampling period.
    pub dt: Seconds,
    /// Samples; `values[k]` is the value on `[k·dt, (k+1)·dt)`.
    pub values: Vec<f64>,
}

impl Trace {
    pub fn new(dt: Seconds, values: Vec<f64>) -> Self {
        assert!(dt.0 > 0.0, "trace needs a positive sampling period");
        Trace { dt, values }
    }

    /// A constant trace of `n` samples.
    pub fn constant(dt: Seconds, value: f64, n: usize) -> Self {
        Trace::new(dt, vec![value; n])
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration.
    pub fn duration(&self) -> Seconds {
        Seconds(self.dt.0 * self.values.len() as f64)
    }

    /// Zero-order-hold sample at time `t`; clamps to the last sample
    /// beyond the end (traces are "held" like the paper's repeated batch
    /// workloads).
    pub fn at(&self, t: Seconds) -> f64 {
        assert!(!self.is_empty(), "sampling an empty trace");
        let idx = (t.0 / self.dt.0).floor();
        let idx = (idx.max(0.0) as usize).min(self.values.len() - 1);
        self.values[idx]
    }

    /// Linear interpolation at time `t` (clamped at both ends).
    pub fn lerp(&self, t: Seconds) -> f64 {
        assert!(!self.is_empty(), "sampling an empty trace");
        let x = (t.0 / self.dt.0).max(0.0);
        let i = x.floor() as usize;
        if i + 1 >= self.values.len() {
            // Non-empty: asserted on entry.
            return *self.values.last().expect("non-empty trace");
        }
        let frac = x - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }

    /// Resample onto a new period via zero-order hold.
    pub fn resample(&self, new_dt: Seconds) -> Trace {
        assert!(new_dt.0 > 0.0);
        let n = (self.duration().0 / new_dt.0).ceil() as usize;
        Trace::new(
            new_dt,
            (0..n)
                .map(|k| self.at(Seconds(k as f64 * new_dt.0)))
                .collect(),
        )
    }

    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Inclusive percentile in `[0, 100]` (nearest-rank on a sorted copy).
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        assert!(!self.is_empty());
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in trace"));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Fraction of samples strictly above `threshold` — the allocator's
    /// "more than 90% of the time" test (§IV-B factor 2).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v > threshold).count() as f64 / self.len() as f64
    }

    /// Map every sample.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Trace {
        Trace::new(self.dt, self.values.iter().map(|&v| f(v)).collect())
    }

    /// Pointwise combination of two equally-sampled traces.
    pub fn zip_with(&self, other: &Trace, f: impl Fn(f64, f64) -> f64) -> Trace {
        assert_eq!(self.dt, other.dt, "traces must share a sampling period");
        assert_eq!(self.len(), other.len(), "traces must share a length");
        Trace::new(
            self.dt,
            self.values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Trapezoid-free integral (sum of sample × dt); for power traces this
    /// is energy in watt-seconds.
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.dt.0
    }
}

/// Sliding-window history with a fixed capacity — used by the allocator to
/// remember recent interactive power samples.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    cap: usize,
    buf: Vec<f64>,
    head: usize,
    filled: bool,
}

impl SlidingWindow {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        SlidingWindow {
            cap,
            buf: Vec::with_capacity(cap),
            head: 0,
            filled: false,
        }
    }

    pub fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
            if self.buf.len() == self.cap {
                self.filled = true;
            }
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window has seen `cap` samples.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        self.buf.iter().filter(|&&v| v > threshold).count() as f64 / self.buf.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Trace {
        Trace::new(Seconds(1.0), vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn zero_order_hold_sampling() {
        let tr = t();
        assert_eq!(tr.at(Seconds(0.0)), 1.0);
        assert_eq!(tr.at(Seconds(0.99)), 1.0);
        assert_eq!(tr.at(Seconds(1.0)), 2.0);
        // Clamps beyond the end.
        assert_eq!(tr.at(Seconds(100.0)), 4.0);
    }

    #[test]
    fn linear_interpolation() {
        let tr = t();
        assert!((tr.lerp(Seconds(0.5)) - 1.5).abs() < 1e-12);
        assert!((tr.lerp(Seconds(2.25)) - 3.25).abs() < 1e-12);
        assert_eq!(tr.lerp(Seconds(99.0)), 4.0);
    }

    #[test]
    fn resample_downsamples_by_hold() {
        let tr = t();
        let r = tr.resample(Seconds(2.0));
        assert_eq!(r.values, vec![1.0, 3.0]);
        let up = tr.resample(Seconds(0.5));
        assert_eq!(up.len(), 8);
        assert_eq!(up.values[0], 1.0);
        assert_eq!(up.values[1], 1.0);
        assert_eq!(up.values[2], 2.0);
    }

    #[test]
    fn stats() {
        let tr = t();
        assert!((tr.mean() - 2.5).abs() < 1e-12);
        assert_eq!(tr.min(), 1.0);
        assert_eq!(tr.max(), 4.0);
        assert_eq!(tr.percentile(0.0), 1.0);
        assert_eq!(tr.percentile(100.0), 4.0);
        assert_eq!(tr.percentile(50.0), 3.0); // nearest rank of 1.5 → idx 2
        assert!((tr.fraction_above(2.5) - 0.5).abs() < 1e-12);
        assert!((tr.integral() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn duration_and_constant() {
        let c = Trace::constant(Seconds(2.0), 7.0, 5);
        assert_eq!(c.duration(), Seconds(10.0));
        assert_eq!(c.mean(), 7.0);
    }

    #[test]
    fn map_and_zip() {
        let tr = t();
        let doubled = tr.map(|v| v * 2.0);
        assert_eq!(doubled.values, vec![2.0, 4.0, 6.0, 8.0]);
        let s = tr.zip_with(&doubled, |a, b| b - a);
        assert_eq!(s.values, tr.values);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn zip_length_mismatch_panics() {
        let a = Trace::constant(Seconds(1.0), 0.0, 3);
        let b = Trace::constant(Seconds(1.0), 0.0, 4);
        a.zip_with(&b, |x, _| x);
    }

    #[test]
    fn sliding_window_wraps() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        w.push(1.0);
        assert!(!w.is_full());
        w.push(2.0);
        w.push(3.0);
        assert!(w.is_full());
        assert!((w.mean() - 2.0).abs() < 1e-12);
        w.push(10.0); // evicts 1.0
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert_eq!(w.len(), 3);
        assert!((w.fraction_above(2.5) - 2.0 / 3.0).abs() < 1e-12);
    }
}
