//! Property-based tests for the power-infrastructure models.

use powersim::breaker::{BreakerSpec, CircuitBreaker};
use powersim::cpu::FreqScale;
use powersim::rack::{CoreId, Rack};
use powersim::server::{LinearServerModel, Server, ServerSpec};
use powersim::supercap::{HybridStorage, Supercap, SupercapSpec};
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use powersim::ups::{DutyCycleDischarger, UpsBattery, UpsSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Server power is always inside the calibrated [idle, full] envelope
    /// and monotone under a uniform frequency raise.
    #[test]
    fn server_power_envelope_and_monotonicity(
        freqs in proptest::collection::vec(0.2f64..=1.0, 8),
        utils in proptest::collection::vec(0.0f64..=1.0, 8),
        bump in 0.0f64..0.3,
    ) {
        let spec = ServerSpec::paper_default();
        let mut s = Server::new(spec, 4);
        for (i, (&f, &u)) in freqs.iter().zip(&utils).enumerate() {
            s.spec.freq_scale = FreqScale::continuous();
            s.set_core_freq(i, NormFreq(f));
            s.cores[i].util = Utilization(u);
        }
        let p = s.power().0;
        prop_assert!((150.0 - 1e-9..=300.0 + 1e-9).contains(&p), "p={p}");
        // Raise every core's frequency: power must not decrease.
        let mut s2 = s.clone();
        for i in 0..8 {
            let f = s2.cores[i].freq.0;
            s2.set_core_freq(i, NormFreq((f + bump).min(1.0)));
        }
        prop_assert!(s2.power().0 >= p - 1e-9);
    }

    /// The linear controller model brackets the plant within a bounded
    /// relative error across the whole DVFS range at its fit utilization.
    #[test]
    fn linear_model_error_bounded(f in 0.2f64..=1.0) {
        let spec = ServerSpec::paper_default();
        let m = LinearServerModel::fit(&spec, 4, Utilization(0.95));
        let pred = m.predict(NormFreq(f)).0;
        prop_assert!(pred > 0.0);
        // The §V-C stability margin tolerates up to ~3× gain error; the
        // static fit is far inside that.
        let k_local = m.k;
        prop_assert!(k_local > 20.0 && k_local < 120.0, "k={k_local}");
    }

    /// Breaker trip time is antitone in overload and the thermal state
    /// machine is consistent with the closed-form curve.
    #[test]
    fn breaker_trip_time_matches_state_machine(o in 1.02f64..3.0) {
        let spec = BreakerSpec::paper_default();
        let closed_form = spec.trip_time(o).0;
        let mut cb = CircuitBreaker::new(spec);
        let mut t = 0.0;
        let dt = 0.25;
        loop {
            if cb.step(Watts(3200.0 * o), Seconds(dt)).tripped {
                break;
            }
            t += dt;
            prop_assert!(t < closed_form + 5.0, "state machine slower than curve");
        }
        prop_assert!((t + dt - closed_form).abs() <= dt + 1e-6,
            "tripped at {t} vs curve {closed_form}");
    }

    /// Duty-cycle realization error is bounded by half a duty step of the
    /// total power, always.
    #[test]
    fn duty_cycle_error_bound(
        target in 0.0f64..6000.0,
        total in 1.0f64..6000.0,
        step in 0.001f64..0.2,
    ) {
        let d = DutyCycleDischarger::new(step);
        let got = d.realize(Watts(target), Watts(total));
        let capped = target.min(total);
        prop_assert!(got.0 >= 0.0 && got.0 <= total + 1e-9);
        prop_assert!((got.0 - capped).abs() <= total * step / 2.0 + 1e-9);
    }

    /// Hybrid storage never creates energy: battery cells + cap draw
    /// always cover what was delivered (efficiencies only lose).
    #[test]
    fn hybrid_storage_first_law(
        demands in proptest::collection::vec(0.0f64..3000.0, 1..300),
    ) {
        let mut h = HybridStorage::new(
            UpsBattery::full(UpsSpec::paper_default()),
            Supercap::full(SupercapSpec::paper_default()),
        );
        let mut delivered = 0.0;
        for &d in &demands {
            let out = h.discharge(Watts(d), Seconds(1.0));
            prop_assert!(out.delivered.0 <= d + 1e-9);
            delivered += out.delivered.over(Seconds(1.0)).0;
        }
        let sourced = h.battery.total_cell_energy_out.0 + h.cap.total_out.0;
        prop_assert!(sourced >= delivered - 1e-6,
            "sourced {sourced} must cover delivered {delivered}");
    }

    /// The batched SoA power pass is bit-identical to the pre-rework
    /// AoS path: per-server `Server` models built from the same lane
    /// state, summed in server order.
    #[test]
    fn rack_power_is_bit_identical_to_aos_servers(
        utils in proptest::collection::vec(0.0f64..=1.0, 32),
        freqs in proptest::collection::vec(0.2f64..=1.0, 32),
    ) {
        let mut rack = Rack::builder()
            .server(ServerSpec::paper_default())
            .num_servers(4)
            .interactive_cores_per_server(4)
            .build()
            .unwrap();
        rack.set_freq_scale(FreqScale::continuous());
        for s in 0..4 {
            for c in 0..8 {
                let id = CoreId { server: s, core: c };
                let i = s * 8 + c;
                rack.set_freq(id, NormFreq(freqs[i]));
                rack.set_util(id, Utilization(utils[i]));
            }
        }
        let total = rack.power().0;
        // Mirror the lanes into AoS servers and sum — the old substrate.
        let mut by_server = Watts::ZERO;
        for s in 0..4 {
            let mut srv = Server::new(rack.spec().clone(), 4);
            for c in 0..8 {
                let id = CoreId { server: s, core: c };
                srv.cores[c].freq = rack.freq(id);
                srv.cores[c].util = rack.util(id);
            }
            by_server += srv.power();
        }
        prop_assert_eq!(total.to_bits(), by_server.0.to_bits());
        // And the retained scalar reference agrees bitwise too.
        prop_assert_eq!(total.to_bits(), rack.power_reference().0.to_bits());
    }

    /// Frequency quantization always lands on a representable state
    /// inside the ladder, at most half a step from the clamped request.
    #[test]
    fn quantization_contract(f in -0.5f64..1.5) {
        let scale = FreqScale::paper_default();
        let q = scale.quantize(NormFreq(f)).0;
        prop_assert!(q >= scale.min.0 - 1e-12 && q <= scale.max.0 + 1e-12);
        let steps = (q - scale.min.0) / scale.step;
        prop_assert!((steps - steps.round()).abs() < 1e-9, "off-ladder {q}");
        let clamped = f.clamp(scale.min.0, scale.max.0);
        prop_assert!((q - clamped).abs() <= scale.step / 2.0 + 1e-12);
    }
}
