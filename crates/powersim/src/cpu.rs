//! Per-core CPU model: DVFS frequency scale, core roles, and the cubic
//! core-power law that underlies the server-level measurement model.
//!
//! SprintCon (§IV-D) adapts each core with DVFS. The paper's testbed spans
//! 400 MHz – 2.0 GHz; we model the scale as a quantized ladder of P-states
//! (real governors cannot set arbitrary frequencies), normalized so that
//! `NormFreq(1.0)` is the peak.

use crate::units::{NormFreq, Utilization};

/// Which workload class a core is currently serving.
///
/// SprintCon treats the two classes asymmetrically: interactive cores are
/// pinned at peak frequency during a sprint, batch cores are the actuator
/// of the server power controller (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreRole {
    /// Latency-critical interactive/streaming work; runs at peak frequency
    /// during a sprint.
    Interactive,
    /// Deferrable throughput work with a deadline; DVFS-throttled by the
    /// server power controller.
    Batch,
}

/// A quantized DVFS frequency ladder.
///
/// Frequencies are normalized to the peak; `step` is the granularity in
/// normalized units (e.g. 0.05 ≙ 100 MHz steps on a 2 GHz part).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqScale {
    pub min: NormFreq,
    pub max: NormFreq,
    pub step: f64,
    /// Platform peak frequency in MHz (for reporting only; the models are
    /// all in normalized units).
    pub peak_mhz: f64,
}

impl FreqScale {
    /// The paper's testbed ladder: 400 MHz – 2.0 GHz in 100 MHz steps.
    pub fn paper_default() -> Self {
        FreqScale {
            min: NormFreq(0.2),
            max: NormFreq(1.0),
            step: 0.05,
            peak_mhz: 2000.0,
        }
    }

    /// A continuous scale (no quantization) — used by tests and by the
    /// idealized SGCT-V1 baseline, which assumes perfect actuation.
    pub fn continuous() -> Self {
        FreqScale {
            min: NormFreq(0.2),
            max: NormFreq(1.0),
            step: 0.0,
            peak_mhz: 2000.0,
        }
    }

    /// Snap a requested frequency to the nearest representable P-state,
    /// clamping into `[min, max]`.
    pub fn quantize(&self, f: NormFreq) -> NormFreq {
        let clamped = f.clamp(self.min, self.max);
        if self.step <= 0.0 {
            return clamped;
        }
        let steps = ((clamped.0 - self.min.0) / self.step).round();
        NormFreq((self.min.0 + steps * self.step).min(self.max.0))
    }

    /// Number of representable P-states on this ladder.
    pub fn num_states(&self) -> usize {
        if self.step <= 0.0 {
            return usize::MAX;
        }
        (((self.max.0 - self.min.0) / self.step).round() as usize) + 1
    }

    /// All representable P-states, ascending.
    pub fn states(&self) -> Vec<NormFreq> {
        if self.step <= 0.0 {
            return vec![self.min, self.max];
        }
        let n = self.num_states();
        (0..n)
            .map(|i| NormFreq((self.min.0 + i as f64 * self.step).min(self.max.0)))
            .collect()
    }
}

/// Dynamic power law of a single core.
///
/// CPU power under DVFS is cubic in frequency (`P ∝ C·V²·f` with `V ∝ f`),
/// plus a leakage floor that scales only weakly with frequency. We blend
/// the two with `cubic_fraction`: the fraction of the core's peak *active*
/// power that follows the cubic term; the remainder is linear (clock tree,
/// uncore share). §V-A notes the *server*-level aggregate is approximately
/// linear in frequency — that emerges from this per-core law plus the
/// non-CPU power in [`crate::server`]; the controller's linear model is an
/// approximation the plant does not share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerLaw {
    /// Active power of one core at peak frequency and 100% utilization, W.
    pub peak_active_watts: f64,
    /// Fraction of active power following `f³`; the rest follows `f`.
    pub cubic_fraction: f64,
    /// Leakage/idle power of the core when clock-gated, W.
    pub idle_watts: f64,
}

impl CorePowerLaw {
    /// Active power drawn by the core at normalized frequency `f` and
    /// utilization `u` (on top of the idle floor).
    pub fn active_power(&self, f: NormFreq, u: Utilization) -> f64 {
        let fh = f.0.clamp(0.0, 1.0);
        let shape = self.cubic_fraction * fh.powi(3) + (1.0 - self.cubic_fraction) * fh;
        self.peak_active_watts * shape * u.0.clamp(0.0, 1.0)
    }

    /// Total core power including the idle floor.
    pub fn power(&self, f: NormFreq, u: Utilization) -> f64 {
        self.idle_watts + self.active_power(f, u)
    }
}

/// Mutable state of one core inside the simulated plant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreState {
    pub role: CoreRole,
    /// Commanded (and, after quantization, actual) frequency.
    pub freq: NormFreq,
    /// Fraction of cycles doing useful work in the last period.
    pub util: Utilization,
}

impl CoreState {
    pub fn new(role: CoreRole) -> Self {
        CoreState {
            role,
            freq: NormFreq::PEAK,
            util: Utilization::IDLE,
        }
    }

    /// Effective compute throughput of this core, in peak-core units:
    /// a fully-utilized core at peak frequency scores 1.0.
    pub fn throughput(&self) -> f64 {
        self.freq.0 * self.util.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_has_17_states() {
        let s = FreqScale::paper_default();
        // 400..=2000 MHz in 100 MHz steps → 17 P-states.
        assert_eq!(s.num_states(), 17);
        let states = s.states();
        assert_eq!(states.len(), 17);
        assert_eq!(states[0], NormFreq(0.2));
        assert!((states[16].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_snaps_to_nearest() {
        let s = FreqScale::paper_default();
        // 0.52 is between 0.50 and 0.55; nearer to 0.50.
        assert!((s.quantize(NormFreq(0.52)).0 - 0.50).abs() < 1e-12);
        assert!((s.quantize(NormFreq(0.53)).0 - 0.55).abs() < 1e-12);
        // Clamping.
        assert_eq!(s.quantize(NormFreq(0.0)), NormFreq(0.2));
        assert_eq!(s.quantize(NormFreq(2.0)), NormFreq(1.0));
    }

    #[test]
    fn continuous_scale_does_not_quantize() {
        let s = FreqScale::continuous();
        assert_eq!(s.quantize(NormFreq(0.512345)), NormFreq(0.512345));
    }

    #[test]
    fn core_power_is_monotone_in_freq_and_util() {
        let law = CorePowerLaw {
            peak_active_watts: 15.0,
            cubic_fraction: 0.7,
            idle_watts: 1.0,
        };
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = NormFreq(0.2 + 0.08 * i as f64);
            let p = law.power(f, Utilization::FULL);
            assert!(p > prev, "power must increase with frequency");
            prev = p;
        }
        let p_half = law.power(NormFreq::PEAK, Utilization(0.5));
        let p_full = law.power(NormFreq::PEAK, Utilization::FULL);
        assert!(p_half < p_full);
        // Idle floor present at zero utilization.
        assert!((law.power(NormFreq::PEAK, Utilization::IDLE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn core_power_superlinear_at_high_freq() {
        // The per-watt-speedup argument of Fig. 1 rests on power growing
        // faster than frequency near the top of the DVFS range.
        let law = CorePowerLaw {
            peak_active_watts: 15.0,
            cubic_fraction: 0.7,
            idle_watts: 1.0,
        };
        let p_08 = law.active_power(NormFreq(0.8), Utilization::FULL);
        let p_10 = law.active_power(NormFreq(1.0), Utilization::FULL);
        // +25% frequency must cost more than +25% power.
        assert!(p_10 / p_08 > 1.25);
    }

    #[test]
    fn throughput_definition() {
        let mut c = CoreState::new(CoreRole::Batch);
        c.freq = NormFreq(0.5);
        c.util = Utilization(0.8);
        assert!((c.throughput() - 0.4).abs() < 1e-12);
    }
}
