//! Server-level power models.
//!
//! Two distinct model classes coexist by design (§V-A, §VI-A of the paper):
//!
//! * [`ServerSpec`]/[`Server`] — the *plant*: a nonlinear
//!   Horvath–Skadron-style measurement model (power as a function of both
//!   per-core frequency **and** utilization, with a cubic CPU component and
//!   throughput-coupled non-CPU power). This is what the simulated power
//!   monitor reports.
//! * [`LinearServerModel`] / [`InteractivePowerModel`] — the *controller's*
//!   linearized models (Eq. (1)–(5) of the paper), fitted against the plant.
//!   The controller never sees the plant equations; the gap between the two
//!   is the modeling error the feedback design must absorb.

use crate::cpu::{CorePowerLaw, CoreRole, CoreState, FreqScale};
use crate::units::{NormFreq, Utilization, Watts};

/// Static description of one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Total CPU cores (the paper's testbed: two 4-core CPUs → 8).
    pub num_cores: usize,
    /// Power with every core idle, W (paper: 150 W).
    pub idle_watts: f64,
    /// Power with every core at peak frequency and 100% utilization, W
    /// (paper: 300 W).
    pub full_watts: f64,
    /// Fraction of the idle→full dynamic range attributed to non-CPU
    /// hardware (memory, disk, NIC) whose power follows delivered
    /// throughput rather than frequency.
    pub noncpu_fraction: f64,
    /// Per-core active power law; `peak_active_watts` is derived from the
    /// other fields by [`ServerSpec::paper_default`]-style constructors.
    pub core_law: CorePowerLaw,
    /// DVFS ladder for every core on this server.
    pub freq_scale: FreqScale,
}

impl ServerSpec {
    /// The paper's evaluation server: 8 cores, 150 W idle, 300 W full,
    /// 400 MHz–2 GHz DVFS.
    pub fn paper_default() -> Self {
        Self::calibrated(8, 150.0, 300.0, 0.35, 0.7, FreqScale::paper_default())
    }

    /// Build a spec whose plant model hits `idle_watts` exactly when idle
    /// and `full_watts` exactly at peak-frequency full load.
    ///
    /// `noncpu_fraction` of the dynamic range goes to throughput-coupled
    /// non-CPU power; the rest is split across cores with `cubic_fraction`
    /// of it following the cubic DVFS law.
    pub fn calibrated(
        num_cores: usize,
        idle_watts: f64,
        full_watts: f64,
        noncpu_fraction: f64,
        cubic_fraction: f64,
        freq_scale: FreqScale,
    ) -> Self {
        assert!(num_cores > 0, "server must have at least one core");
        assert!(full_watts > idle_watts, "full power must exceed idle power");
        assert!((0.0..1.0).contains(&noncpu_fraction));
        let dynamic = full_watts - idle_watts;
        let cpu_dynamic = dynamic * (1.0 - noncpu_fraction);
        ServerSpec {
            num_cores,
            idle_watts,
            full_watts,
            noncpu_fraction,
            core_law: CorePowerLaw {
                peak_active_watts: cpu_dynamic / num_cores as f64,
                cubic_fraction,
                // Core leakage is folded into `idle_watts`; the law's own
                // idle term stays zero so calibration is exact.
                idle_watts: 0.0,
            },
            freq_scale,
        }
    }

    /// Non-CPU dynamic power at a given normalized throughput (mean core
    /// throughput in `[0,1]`). Mildly concave: storage/memory power rises
    /// quickly once any work flows, then saturates.
    pub fn noncpu_power(&self, mean_throughput: f64) -> f64 {
        let x = mean_throughput.clamp(0.0, 1.0);
        let dynamic = self.full_watts - self.idle_watts;
        dynamic * self.noncpu_fraction * x.powf(0.8)
    }
}

/// One simulated server: a spec plus mutable per-core state.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    pub spec: ServerSpec,
    pub cores: Vec<CoreState>,
}

impl Server {
    /// Create a server with `interactive` cores of the first role and the
    /// remainder batch (the paper's mixed-placement case runs 4 + 4).
    pub fn new(spec: ServerSpec, interactive_cores: usize) -> Self {
        assert!(interactive_cores <= spec.num_cores);
        let cores = (0..spec.num_cores)
            .map(|i| {
                CoreState::new(if i < interactive_cores {
                    CoreRole::Interactive
                } else {
                    CoreRole::Batch
                })
            })
            .collect();
        Server { spec, cores }
    }

    /// Plant power model: Horvath–Skadron-style, frequency × utilization.
    ///
    /// This is what the simulated rack power monitor measures; it is
    /// deliberately *not* the linear model the controller uses.
    pub fn power(&self) -> Watts {
        let cpu_active: f64 = self
            .cores
            .iter()
            .map(|c| self.spec.core_law.active_power(c.freq, c.util))
            .sum();
        let mean_tp =
            self.cores.iter().map(|c| c.throughput()).sum::<f64>() / self.spec.num_cores as f64;
        Watts(self.spec.idle_watts + cpu_active + self.spec.noncpu_power(mean_tp))
    }

    /// Indices of cores with the given role.
    pub fn cores_with_role(&self, role: CoreRole) -> impl Iterator<Item = usize> + '_ {
        self.cores
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.role == role)
            .map(|(i, _)| i)
    }

    pub fn count_role(&self, role: CoreRole) -> usize {
        self.cores.iter().filter(|c| c.role == role).count()
    }

    /// Set (and quantize) the frequency of one core.
    pub fn set_core_freq(&mut self, core: usize, f: NormFreq) {
        let q = self.spec.freq_scale.quantize(f);
        self.cores[core].freq = q;
    }

    /// Set every core of `role` to frequency `f`.
    pub fn set_role_freq(&mut self, role: CoreRole, f: NormFreq) {
        let q = self.spec.freq_scale.quantize(f);
        for c in self.cores.iter_mut().filter(|c| c.role == role) {
            c.freq = q;
        }
    }

    /// Mean frequency over cores of `role` (the `f_i` of Eq. (2));
    /// `None` if the server has no such cores.
    pub fn mean_freq(&self, role: CoreRole) -> Option<NormFreq> {
        let (sum, n) = self
            .cores
            .iter()
            .filter(|c| c.role == role)
            .fold((0.0, 0usize), |(s, n), c| (s + c.freq.0, n + 1));
        (n > 0).then(|| NormFreq(sum / n as f64))
    }

    /// Mean utilization over cores of `role` (the `u_i` of Eq. (5)).
    pub fn mean_util(&self, role: CoreRole) -> Option<Utilization> {
        let (sum, n) = self
            .cores
            .iter()
            .filter(|c| c.role == role)
            .fold((0.0, 0usize), |(s, n), c| (s + c.util.0, n + 1));
        (n > 0).then(|| Utilization(sum / n as f64))
    }
}

/// The controller's linear batch-power model, Eq. (2): `p_i = K_i·f_i + C_i`.
///
/// `f_i` is the mean frequency of the batch cores of server *i*. Fitted by
/// least squares against the plant at an assumed operating utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearServerModel {
    /// Watts per unit normalized frequency (the `K_i` of Eq. (2)).
    pub k: f64,
    /// Frequency-independent batch-attributed power, W (the `C_i`).
    pub c: f64,
}

impl LinearServerModel {
    /// Fit `p = k·f + c` to the plant's *batch-attributable* power at the
    /// assumed utilization, sampling the DVFS range.
    ///
    /// Batch-attributable power is the increase of server power over the
    /// same server with batch cores idle, plus the batch cores' share of
    /// static power — mirroring how an operator would calibrate Eq. (2)
    /// from wall-power measurements.
    pub fn fit(spec: &ServerSpec, batch_cores: usize, assumed_util: Utilization) -> Self {
        assert!(batch_cores <= spec.num_cores);
        let mut pts: Vec<(f64, f64)> = Vec::new();
        let mut probe = Server::new(spec.clone(), spec.num_cores - batch_cores);
        // Interactive cores silent during calibration.
        for c in probe.cores.iter_mut() {
            c.util = Utilization::IDLE;
        }
        let baseline = probe.power().0;
        let static_share = spec.idle_watts * batch_cores as f64 / spec.num_cores as f64;
        for f in sample_freqs(&spec.freq_scale) {
            for ci in probe.cores_with_role(CoreRole::Batch).collect::<Vec<_>>() {
                probe.cores[ci].freq = f;
                probe.cores[ci].util = assumed_util;
            }
            let p_batch = probe.power().0 - baseline + static_share;
            pts.push((f.0, p_batch));
        }
        let (k, c) = least_squares_line(&pts);
        LinearServerModel { k, c }
    }

    pub fn predict(&self, f: NormFreq) -> Watts {
        Watts(self.k * f.0 + self.c)
    }

    /// Invert the model: frequency that would draw `p` watts, unclamped.
    pub fn freq_for_power(&self, p: Watts) -> NormFreq {
        NormFreq((p.0 - self.c) / self.k)
    }
}

/// The controller's interactive-power model, Eq. (5): `p = K'·u + C'`,
/// valid while interactive cores run at peak frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractivePowerModel {
    pub k: f64,
    pub c: f64,
}

impl InteractivePowerModel {
    /// Fit `p = k·u + c` for the whole server with batch cores held at a
    /// nominal operating point, sweeping interactive utilization at peak
    /// frequency.
    ///
    /// The fitted model predicts the *interactive-attributable* component
    /// used in Eq. (6): `p_fb = p_total − p_inter`.
    pub fn fit(spec: &ServerSpec, interactive_cores: usize) -> Self {
        let mut probe = Server::new(spec.clone(), interactive_cores);
        // Batch cores idle during calibration; their power is accounted by
        // the batch model.
        for ci in probe.cores_with_role(CoreRole::Batch).collect::<Vec<_>>() {
            probe.cores[ci].util = Utilization::IDLE;
        }
        let mut pts = Vec::new();
        let baseline = {
            let mut p = probe.clone();
            for ci in p.cores_with_role(CoreRole::Interactive).collect::<Vec<_>>() {
                p.cores[ci].util = Utilization::IDLE;
            }
            p.power().0
        };
        let static_share = spec.idle_watts * interactive_cores as f64 / spec.num_cores as f64;
        for step in 0..=10 {
            let u = Utilization(step as f64 / 10.0);
            for ci in probe
                .cores_with_role(CoreRole::Interactive)
                .collect::<Vec<_>>()
            {
                probe.cores[ci].freq = NormFreq::PEAK;
                probe.cores[ci].util = u;
            }
            pts.push((u.0, probe.power().0 - baseline + static_share));
        }
        let (k, c) = least_squares_line(&pts);
        InteractivePowerModel { k, c }
    }

    pub fn predict(&self, u: Utilization) -> Watts {
        Watts(self.k * u.0 + self.c)
    }
}

fn sample_freqs(scale: &FreqScale) -> Vec<NormFreq> {
    let n = 16;
    (0..=n)
        .map(|i| NormFreq(scale.min.0 + (scale.max.0 - scale.min.0) * i as f64 / n as f64))
        .collect()
}

/// Ordinary least squares for `y = k·x + c` over `(x, y)` points.
fn least_squares_line(pts: &[(f64, f64)]) -> (f64, f64) {
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two points to fit a line");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values in line fit");
    let k = (n * sxy - sx * sy) / denom;
    let c = (sy - k * sx) / n;
    (k, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServerSpec {
        ServerSpec::paper_default()
    }

    #[test]
    fn calibration_hits_paper_endpoints() {
        let mut s = Server::new(spec(), 4);
        // All idle → exactly 150 W.
        assert!((s.power().0 - 150.0).abs() < 1e-9);
        // All cores peak frequency, fully utilized → exactly 300 W.
        for c in s.cores.iter_mut() {
            c.freq = NormFreq::PEAK;
            c.util = Utilization::FULL;
        }
        assert!((s.power().0 - 300.0).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_batch_freq() {
        let mut s = Server::new(spec(), 4);
        for c in s.cores.iter_mut() {
            c.util = Utilization(0.9);
        }
        let mut prev = 0.0;
        for i in 0..=8 {
            let f = NormFreq(0.2 + 0.1 * i as f64);
            s.set_role_freq(CoreRole::Batch, f);
            let p = s.power().0;
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn role_partition() {
        let s = Server::new(spec(), 4);
        assert_eq!(s.count_role(CoreRole::Interactive), 4);
        assert_eq!(s.count_role(CoreRole::Batch), 4);
        assert_eq!(s.cores_with_role(CoreRole::Interactive).count(), 4);
    }

    #[test]
    fn freq_quantization_applied_on_set() {
        let mut s = Server::new(spec(), 4);
        s.set_core_freq(5, NormFreq(0.63));
        // 0.63 snaps to 0.65 on the 0.05 ladder.
        assert!((s.cores[5].freq.0 - 0.65).abs() < 1e-12);
    }

    #[test]
    fn mean_freq_and_util() {
        let mut s = Server::new(spec(), 4);
        s.set_role_freq(CoreRole::Batch, NormFreq(0.5));
        s.set_role_freq(CoreRole::Interactive, NormFreq::PEAK);
        for ci in s.cores_with_role(CoreRole::Interactive).collect::<Vec<_>>() {
            s.cores[ci].util = Utilization(0.6);
        }
        assert!((s.mean_freq(CoreRole::Batch).unwrap().0 - 0.5).abs() < 1e-12);
        assert!((s.mean_util(CoreRole::Interactive).unwrap().0 - 0.6).abs() < 1e-12);
        let none = Server::new(spec(), 0);
        assert!(none.mean_freq(CoreRole::Interactive).is_none());
    }

    #[test]
    fn linear_fit_is_a_reasonable_approximation() {
        let sp = spec();
        let m = LinearServerModel::fit(&sp, 4, Utilization(0.9));
        assert!(m.k > 0.0, "power must increase with frequency");
        // Prediction error vs the plant stays within ~12% of the batch
        // dynamic range across the DVFS span — the modeling error MPC must
        // tolerate, not a perfect fit.
        let mut probe = Server::new(sp.clone(), 4);
        for c in probe.cores.iter_mut() {
            c.util = Utilization::IDLE;
        }
        let baseline = probe.power().0;
        let static_share = sp.idle_watts * 0.5;
        for i in 0..=8 {
            let f = NormFreq(0.2 + 0.1 * i as f64);
            for ci in probe.cores_with_role(CoreRole::Batch).collect::<Vec<_>>() {
                probe.cores[ci].freq = f;
                probe.cores[ci].util = Utilization(0.9);
            }
            let actual = probe.power().0 - baseline + static_share;
            let pred = m.predict(f).0;
            assert!(
                (actual - pred).abs() < 12.0,
                "fit error too large at f={f:?}: actual={actual:.1} pred={pred:.1}"
            );
        }
    }

    #[test]
    fn linear_model_inversion_round_trips() {
        let m = LinearServerModel { k: 80.0, c: 20.0 };
        let f = m.freq_for_power(Watts(60.0));
        assert!((m.predict(f).0 - 60.0).abs() < 1e-9);
    }

    #[test]
    fn interactive_fit_monotone() {
        let m = InteractivePowerModel::fit(&spec(), 4);
        assert!(m.k > 0.0);
        assert!(m.predict(Utilization::FULL).0 > m.predict(Utilization::IDLE).0);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (k, c) = least_squares_line(&pts);
        assert!((k - 3.0).abs() < 1e-9);
        assert!((c - 7.0).abs() < 1e-9);
    }
}
