//! Hybrid energy storage: battery + supercapacitor.
//!
//! The paper's UPS actuation cites Zheng/Ma/Wang's hybrid design \[24\]:
//! a supercapacitor absorbs the fast, shallow power fluctuation while the
//! battery supplies the slow component. For an LFP pack this matters
//! economically — every watt-second the supercap absorbs is cycling the
//! battery does not see (see [`crate::battery_life`]). This module models
//! that split so the `ablation_hybrid_storage` bench can quantify it for
//! SprintCon's UPS controller.
//!
//! The supercap is modelled as a small, high-power, lossy-ish buffer with
//! its own state of charge; the [`HybridStorage::discharge`] policy sends
//! the high-frequency component (demand above a slow EWMA of itself) to
//! the supercap when it has charge, and the rest to the battery. During
//! lulls (demand below the EWMA) the battery recharges the supercap at a
//! bounded rate, keeping it ready for the next swing.

use crate::units::{Seconds, WattHours, Watts, SECONDS_PER_HOUR};
use crate::ups::UpsBattery;

/// Supercapacitor bank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupercapSpec {
    /// Usable energy (supercaps store little — tens of watt-hours).
    pub capacity: WattHours,
    /// Maximum charge/discharge power (supercaps are power-dense).
    pub max_power: Watts,
    /// Round-trip-half efficiency of a discharge.
    pub efficiency: f64,
}

impl SupercapSpec {
    /// A rack-scale bank: 20 Wh, 4.8 kW, 98% efficient.
    pub fn paper_default() -> Self {
        SupercapSpec {
            capacity: WattHours(20.0),
            max_power: Watts(4800.0),
            efficiency: 0.98,
        }
    }
}

/// A stateful supercapacitor bank.
#[derive(Debug, Clone, PartialEq)]
pub struct Supercap {
    pub spec: SupercapSpec,
    soc: WattHours,
    /// Total energy the cap has delivered (cycling it is ~free).
    pub total_out: WattHours,
}

impl Supercap {
    pub fn full(spec: SupercapSpec) -> Self {
        Supercap {
            soc: spec.capacity,
            spec,
            total_out: WattHours::ZERO,
        }
    }

    pub fn soc_fraction(&self) -> f64 {
        (self.soc / self.spec.capacity).clamp(0.0, 1.0)
    }

    /// Deliver up to `requested` for `dt`; returns actual power.
    pub fn discharge(&mut self, requested: Watts, dt: Seconds) -> Watts {
        if requested.0 <= 0.0 || self.soc.0 <= 1e-12 {
            return Watts::ZERO;
        }
        let want = requested.min(self.spec.max_power);
        let max_by_energy = Watts(self.soc.0 * SECONDS_PER_HOUR / dt.0 * self.spec.efficiency);
        let delivered = want.min(max_by_energy);
        let drawn = Watts(delivered.0 / self.spec.efficiency).over(dt);
        self.soc = WattHours((self.soc.0 - drawn.0).max(0.0));
        self.total_out += drawn;
        delivered
    }

    /// Absorb up to `offered` charging power; returns what was taken.
    pub fn charge(&mut self, offered: Watts, dt: Seconds) -> Watts {
        if offered.0 <= 0.0 {
            return Watts::ZERO;
        }
        let room = WattHours(self.spec.capacity.0 - self.soc.0);
        if room.0 <= 1e-12 {
            return Watts::ZERO;
        }
        let want = offered.min(self.spec.max_power);
        let max_by_room = Watts(room.0 * SECONDS_PER_HOUR / dt.0 / self.spec.efficiency);
        let taken = want.min(max_by_room);
        self.soc =
            (self.soc + Watts(taken.0 * self.spec.efficiency).over(dt)).min(self.spec.capacity);
        taken
    }
}

/// Battery + supercap behind one discharge command.
#[derive(Debug, Clone)]
pub struct HybridStorage {
    pub battery: UpsBattery,
    pub cap: Supercap,
    /// EWMA time constant separating "slow" from "fast" demand, seconds.
    pub split_tau: f64,
    /// Battery power reserved for recharging the cap during lulls.
    pub recharge_power: Watts,
    slow_estimate: f64,
}

/// One step's source breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridOutcome {
    pub delivered: Watts,
    pub from_battery: Watts,
    pub from_cap: Watts,
    /// Battery power diverted into the cap this step.
    pub cap_recharge: Watts,
}

impl HybridStorage {
    pub fn new(battery: UpsBattery, cap: Supercap) -> Self {
        HybridStorage {
            battery,
            cap,
            split_tau: 30.0,
            recharge_power: Watts(200.0),
            slow_estimate: 0.0,
        }
    }

    /// The slow component the battery is asked to follow.
    pub fn slow_estimate(&self) -> Watts {
        Watts(self.slow_estimate)
    }

    /// Serve a discharge demand, splitting slow → battery, fast → cap.
    pub fn discharge(&mut self, demand: Watts, dt: Seconds) -> HybridOutcome {
        assert!(dt.0 > 0.0 && demand.0 >= 0.0);
        // EWMA tracks the slow component of the demand itself.
        let alpha = 1.0 - (-dt.0 / self.split_tau.max(1e-9)).exp();
        self.slow_estimate += alpha * (demand.0 - self.slow_estimate);

        let slow = self.slow_estimate.min(demand.0).max(0.0);
        let fast = demand.0 - slow;
        // Battery covers the slow part; cap covers the fast part; each
        // backstops the other when depleted/limited.
        let mut from_battery = self.battery.discharge(Watts(slow), dt);
        let mut from_cap = self.cap.discharge(Watts(fast), dt);
        let shortfall = demand.0 - from_battery.0 - from_cap.0;
        if shortfall > 1e-9 {
            let extra_b = self.battery.discharge(Watts(shortfall), dt);
            from_battery += extra_b;
            let rest = shortfall - extra_b.0;
            if rest > 1e-9 {
                from_cap += self.cap.discharge(Watts(rest), dt);
            }
        }
        // During lulls, trickle battery energy into the cap.
        let mut cap_recharge = Watts::ZERO;
        if demand.0 < self.slow_estimate * 0.8 && self.cap.soc_fraction() < 0.95 {
            let offered = self.recharge_power;
            let drawn = self.battery.discharge(offered, dt);
            cap_recharge = self.cap.charge(drawn, dt);
            // Losses between battery and cap are accounted inside each
            // model; any unabsorbed remainder is simply not drawn again.
        }
        HybridOutcome {
            delivered: from_battery + from_cap,
            from_battery,
            from_cap,
            cap_recharge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ups::UpsSpec;

    fn hybrid() -> HybridStorage {
        HybridStorage::new(
            UpsBattery::full(UpsSpec::paper_default()),
            Supercap::full(SupercapSpec::paper_default()),
        )
    }

    #[test]
    fn supercap_round_trip() {
        let mut c = Supercap::full(SupercapSpec::paper_default());
        let out = c.discharge(Watts(2400.0), Seconds(10.0));
        assert_eq!(out, Watts(2400.0));
        // 2400 W for 10 s = 6.67 Wh delivered → 6.8 Wh drawn at 98%.
        assert!((c.soc_fraction() - (20.0 - 6.8027) / 20.0).abs() < 1e-3);
        let taken = c.charge(Watts(2400.0), Seconds(10.0));
        assert!(taken.0 > 0.0);
        assert!(c.soc_fraction() > 0.95);
    }

    #[test]
    fn supercap_limits() {
        let mut c = Supercap::full(SupercapSpec::paper_default());
        // Power limit.
        assert_eq!(c.discharge(Watts(10_000.0), Seconds(1.0)), Watts(4800.0));
        // Energy limit: drain everything.
        while c.soc_fraction() > 0.0 {
            if c.discharge(Watts(4800.0), Seconds(5.0)).0 == 0.0 {
                break;
            }
        }
        assert_eq!(c.discharge(Watts(100.0), Seconds(1.0)), Watts::ZERO);
        // Can't overcharge.
        let mut full = Supercap::full(SupercapSpec::paper_default());
        assert_eq!(full.charge(Watts(1000.0), Seconds(1.0)), Watts::ZERO);
    }

    #[test]
    fn fast_swings_hit_the_cap_not_the_battery() {
        let mut h = hybrid();
        // Settle the EWMA at 500 W.
        for _ in 0..300 {
            h.discharge(Watts(500.0), Seconds(1.0));
        }
        let bat_before = h.battery.total_cell_energy_out;
        let cap_before = h.cap.total_out;
        // A 30-second 1.5 kW spike: ~1 kW of it is "fast".
        let mut cap_served = 0.0;
        for _ in 0..30 {
            let out = h.discharge(Watts(1500.0), Seconds(1.0));
            assert!((out.delivered.0 - 1500.0).abs() < 1e-6);
            cap_served += out.from_cap.0;
        }
        let bat_delta = (h.battery.total_cell_energy_out - bat_before).0;
        let cap_delta = (h.cap.total_out - cap_before).0;
        assert!(cap_served > 0.0, "cap must serve the fast component");
        assert!(
            cap_delta > bat_delta * 0.4,
            "spike energy should land mostly outside the battery: cap {cap_delta:.2} vs bat {bat_delta:.2}"
        );
    }

    #[test]
    fn cap_recharges_during_lulls() {
        let mut h = hybrid();
        for _ in 0..120 {
            h.discharge(Watts(800.0), Seconds(1.0));
        }
        // Big spike drains the cap...
        for _ in 0..60 {
            h.discharge(Watts(2500.0), Seconds(1.0));
        }
        let low = h.cap.soc_fraction();
        // ...then a deep lull refills it from the battery.
        for _ in 0..600 {
            h.discharge(Watts(100.0), Seconds(1.0));
        }
        assert!(
            h.cap.soc_fraction() > low + 0.2,
            "cap must recover: {low:.2} -> {:.2}",
            h.cap.soc_fraction()
        );
    }

    #[test]
    fn hybrid_never_over_delivers() {
        let mut h = hybrid();
        for k in 0..500 {
            let d = 300.0 + 2200.0 * ((k as f64) * 0.23).sin().abs();
            let out = h.discharge(Watts(d), Seconds(1.0));
            assert!(out.delivered.0 <= d + 1e-9);
            assert!((out.delivered.0 - out.from_battery.0 - out.from_cap.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hybrid_reduces_battery_throughput_on_fluctuating_demand() {
        // The [24] claim this module exists for: same fluctuating demand,
        // with and without the cap — the battery sees less energy with it.
        let demand = |k: usize| 600.0 + 500.0 * ((k as f64) * 0.5).sin().max(0.0);
        let mut plain = UpsBattery::full(UpsSpec::paper_default());
        let mut h = hybrid();
        for k in 0..600 {
            plain.discharge(Watts(demand(k)), Seconds(1.0));
            h.discharge(Watts(demand(k)), Seconds(1.0));
        }
        let plain_bat = plain.total_cell_energy_out.0;
        let hybrid_bat = h.battery.total_cell_energy_out.0;
        assert!(
            hybrid_bat < plain_bat,
            "hybrid battery throughput {hybrid_bat:.1} must beat plain {plain_bat:.1}"
        );
        // And the *depth* of battery discharge is shallower too.
        assert!(h.battery.max_dod <= plain.max_dod + 1e-9);
    }
}
