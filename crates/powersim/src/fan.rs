//! Cooling-fan power disturbance.
//!
//! §V-A singles out fan power as a rack-level load that depends on the
//! server power, the temperature set point, *and* the ambient temperature
//! — a systematic error no static server model captures, and one of the
//! stated reasons SprintCon uses feedback control. We model fan power with
//! the cube law of fan affinity (power ∝ speed³) where the commanded speed
//! follows the thermal load, plus an ambient-temperature random walk.

use crate::noise::OrnsteinUhlenbeck;
use crate::units::{Seconds, Watts};

/// Rack cooling-fan model.
#[derive(Debug, Clone)]
pub struct FanModel {
    /// Fan power at minimum speed, W.
    pub base_watts: f64,
    /// Fan power at maximum speed, W.
    pub max_watts: f64,
    /// Ambient temperature process, °C.
    ambient: OrnsteinUhlenbeck,
    /// Temperature set point of the rack inlet, °C.
    pub setpoint_c: f64,
}

impl FanModel {
    /// A rack-level fan bank: 40 W floor, 160 W ceiling, ambient wandering
    /// around 25 °C.
    pub fn paper_default(seed: u64) -> Self {
        FanModel {
            base_watts: 40.0,
            max_watts: 160.0,
            ambient: OrnsteinUhlenbeck::new(seed, 25.0, 0.02, 0.05),
            setpoint_c: 27.0,
        }
    }

    /// A disturbance-free fan (constant ambient), for tests.
    pub fn constant_ambient(base: f64, max: f64, ambient_c: f64, setpoint_c: f64) -> Self {
        FanModel {
            base_watts: base,
            max_watts: max,
            ambient: OrnsteinUhlenbeck::new(0, ambient_c, 1.0, 0.0),
            setpoint_c,
        }
    }

    pub fn ambient_c(&self) -> f64 {
        self.ambient.value()
    }

    /// Advance the ambient process and return fan power for this step.
    ///
    /// `load_fraction` is rack power over rack max power, in `[0, 1]`:
    /// the heat the fans must move. Hotter ambient shrinks the margin to
    /// the set point and pushes fan speed up.
    pub fn step(&mut self, load_fraction: f64, dt: Seconds) -> Watts {
        let ambient = self.ambient.step(dt.0);
        // Thermal pressure: 1.0 when ambient is 8 °C below set point,
        // rising as the margin closes.
        let margin = (self.setpoint_c - ambient).max(0.5);
        let pressure = (8.0 / margin).clamp(0.5, 2.0);
        let speed = (load_fraction.clamp(0.0, 1.0) * pressure).clamp(0.0, 1.0);
        Watts(self.base_watts + (self.max_watts - self.base_watts) * speed.powi(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_power_bounded() {
        let mut fan = FanModel::paper_default(11);
        for i in 0..1000 {
            let lf = (i % 11) as f64 / 10.0;
            let p = fan.step(lf, Seconds(1.0)).0;
            assert!((40.0 - 1e-9..=160.0 + 1e-9).contains(&p), "p={p}");
        }
    }

    #[test]
    fn fan_power_increases_with_load() {
        let mut fan = FanModel::constant_ambient(40.0, 160.0, 25.0, 27.0);
        let lo = fan.step(0.2, Seconds(1.0)).0;
        let hi = fan.step(0.9, Seconds(1.0)).0;
        assert!(hi > lo);
    }

    #[test]
    fn hot_ambient_costs_more_fan_power() {
        let mut cool = FanModel::constant_ambient(40.0, 160.0, 18.0, 27.0);
        let mut hot = FanModel::constant_ambient(40.0, 160.0, 26.0, 27.0);
        let pc = cool.step(0.6, Seconds(1.0)).0;
        let ph = hot.step(0.6, Seconds(1.0)).0;
        assert!(ph > pc, "hot={ph} cool={pc}");
    }

    #[test]
    fn cube_law_shape() {
        // Doubling speed should much more than double the dynamic part.
        let mut fan = FanModel::constant_ambient(0.0, 100.0, 17.0, 27.0);
        // pressure = 8/10 = 0.8 at this ambient.
        let p1 = fan.step(0.25, Seconds(1.0)).0;
        let p2 = fan.step(0.5, Seconds(1.0)).0;
        assert!(p2 / p1 > 4.0);
    }
}
