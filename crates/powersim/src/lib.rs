//! # powersim — data-center power-infrastructure models
//!
//! The physical substrate of the SprintCon reproduction: everything the
//! controllers act on but do not contain. All models are deterministic
//! given their seeds, allocation-light, and free of I/O, so they can run
//! inside tight simulation loops and property tests.
//!
//! Modules:
//!
//! * [`units`] — strongly-typed watts / watt-hours / seconds / normalized
//!   frequency / utilization.
//! * [`cpu`] — DVFS ladders, core roles, per-core cubic power law.
//! * [`server`] — the nonlinear plant power model and the controller's
//!   fitted linear models (Eq. (1)–(5) of the paper).
//! * [`rack`] — a rack of servers as SoA slabs (batched stepping, role
//!   views, builder) plus a noisy power monitor.
//! * [`breaker`] — inverse-time circuit-breaker trip model (Fig. 2).
//! * [`ups`] — UPS battery with duty-cycled discharge circuit.
//! * [`battery_life`] — LFP cycle-life vs depth-of-discharge (§VII-D).
//! * [`supercap`] — hybrid battery + supercapacitor storage (\[24\]).
//! * [`thermal`] — lumped RC processor thermal model (the original
//!   sprinting limiter of \[1\]/\[4\], behind Fig. 3's duty cycle).
//! * [`fan`] — cooling-fan power disturbance (§V-A).
//! * [`topology`] — breaker + UPS feed serving a rack (Fig. 4).
//! * [`datacenter`] — feeder → PDU → rack tree with breakers on every
//!   shared edge (the cross-rack headroom market's substrate).
//! * [`noise`] — seeded noise sources used by the above.
//! * [`faults`] — deterministic fault injection (sensor, actuator,
//!   storage, breaker, server faults) replayed from a [`faults::FaultPlan`].
//! * [`grid`] — deterministic grid-signal injection (curtailment, price
//!   spikes, frequency regulation) replayed from a [`grid::GridPlan`].

#![forbid(unsafe_code)]

pub mod battery_life;
pub mod breaker;
pub mod cpu;
pub mod datacenter;
pub mod fan;
pub mod faults;
pub mod grid;
pub mod noise;
pub mod rack;
pub mod server;
pub mod supercap;
pub mod thermal;
pub mod topology;
pub mod units;
pub mod ups;

pub use breaker::{BreakerSpec, CircuitBreaker};
pub use cpu::{CoreRole, FreqScale};
pub use datacenter::{Datacenter, DatacenterOutcome, DatacenterTopology, PduSpec, TopologyError};
pub use faults::{ActiveFaults, FaultEvent, FaultInjector, FaultKind, FaultPlan, StochasticFault};
pub use grid::{
    ActiveGrid, GridEvent, GridEventKind, GridInjector, GridPlan, GridPlanError,
    StochasticGridEvent,
};
pub use rack::{
    CoreId, PowerMonitor, Rack, RackBuilder, RackConfigError, RackState, RoleView, RoleViewMut,
};
pub use server::{InteractivePowerModel, LinearServerModel, Server, ServerSpec};
pub use supercap::{HybridStorage, Supercap, SupercapSpec};
pub use thermal::{periodic_sprint_duty, ThermalModel};
pub use topology::{FeedOutcome, PowerFeed};
pub use units::{NormFreq, Seconds, Utilization, WattHours, Watts};
pub use ups::{UpsBattery, UpsSpec};
