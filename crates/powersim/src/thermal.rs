//! Processor thermal model — the physics that originally defined
//! computational sprinting \[1\], \[4\].
//!
//! Sprinting exists because a chip can dissipate far more power than its
//! *sustained* thermal design point for as long as its thermal mass is
//! absorbing the heat. The classic lumped RC model captures it:
//!
//! ```text
//! C·dT/dt = P − (T − T_amb)/R
//! ```
//!
//! with thermal capacitance `C` (J/°C), resistance to ambient `R`
//! (°C/W). Sprinting at power `P_sprint` heats the die toward
//! `T_amb + R·P_sprint`; if that exceeds the throttle limit, the sprint
//! must end when `T` reaches it — giving the sprint-duration /
//! cool-down-duration pair behind Fig. 3's ~18-second period. The rack
//! experiments of the paper are breaker-limited rather than
//! thermally-limited, but the model completes the substrate and lets the
//! Fig. 3 harness derive its duty cycle from physics.

use crate::units::Seconds;

/// Lumped RC thermal model of one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Thermal capacitance, J/°C.
    pub capacitance: f64,
    /// Thermal resistance junction→ambient, °C/W.
    pub resistance: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Junction temperature at which the chip must throttle, °C.
    pub throttle_c: f64,
    /// Current junction temperature, °C.
    temp_c: f64,
}

impl ThermalModel {
    /// A mobile-class sprinting chip in the spirit of \[1\]/\[4\]: small
    /// thermal mass, tight limit — sustains ~10 W but sprints at 50 W for
    /// a handful of seconds.
    pub fn sprint_testbed() -> Self {
        ThermalModel::new(6.0, 5.0, 25.0, 85.0)
    }

    /// A server-class part: big heatsink, high sustained power.
    pub fn server_class() -> Self {
        ThermalModel::new(60.0, 0.45, 25.0, 95.0)
    }

    pub fn new(capacitance: f64, resistance: f64, ambient_c: f64, throttle_c: f64) -> Self {
        assert!(capacitance > 0.0 && resistance > 0.0);
        assert!(throttle_c > ambient_c, "throttle limit must exceed ambient");
        ThermalModel {
            capacitance,
            resistance,
            ambient_c,
            throttle_c,
            temp_c: ambient_c,
        }
    }

    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Is the chip at/over its throttle limit?
    pub fn throttled(&self) -> bool {
        self.temp_c >= self.throttle_c - 1e-9
    }

    /// Thermal time constant `τ = R·C`, seconds.
    pub fn tau(&self) -> Seconds {
        Seconds(self.resistance * self.capacitance)
    }

    /// Steady-state temperature at constant power `p` watts.
    pub fn steady_temp(&self, p: f64) -> f64 {
        self.ambient_c + self.resistance * p
    }

    /// The maximum power sustainable forever without throttling (TDP).
    pub fn sustainable_power(&self) -> f64 {
        (self.throttle_c - self.ambient_c) / self.resistance
    }

    /// Advance by `dt` while dissipating `p` watts (exact exponential
    /// integration of the RC dynamics — stable for any `dt`).
    pub fn step(&mut self, p: f64, dt: Seconds) -> f64 {
        assert!(dt.0 > 0.0 && p >= 0.0);
        let target = self.steady_temp(p);
        let a = (-dt.0 / self.tau().0).exp();
        self.temp_c = target + (self.temp_c - target) * a;
        self.temp_c
    }

    /// How long the chip can sprint at `p_sprint` starting from its
    /// current temperature before hitting the throttle limit.
    /// `None` if `p_sprint` is sustainable (never throttles).
    pub fn sprint_budget(&self, p_sprint: f64) -> Option<Seconds> {
        let target = self.steady_temp(p_sprint);
        if target <= self.throttle_c {
            return None;
        }
        if self.temp_c >= self.throttle_c {
            return Some(Seconds::ZERO);
        }
        // T(t) = target + (T0 − target)·e^(−t/τ) = throttle  ⇒
        // t = τ·ln((target − T0)/(target − throttle))
        let t = self.tau().0 * ((target - self.temp_c) / (target - self.throttle_c)).ln();
        Some(Seconds(t))
    }

    /// How long a cool-down at `p_rest` takes to bring the die back to
    /// within `margin_c` of its rest steady state.
    pub fn cooldown_time(&self, p_rest: f64, margin_c: f64) -> Seconds {
        assert!(margin_c > 0.0);
        let rest = self.steady_temp(p_rest);
        if self.temp_c <= rest + margin_c {
            return Seconds::ZERO;
        }
        Seconds(self.tau().0 * ((self.temp_c - rest) / margin_c).ln())
    }
}

/// Derive the steady periodic-sprint duty cycle for a chip: sprint at
/// `p_sprint` from the restart temperature (`throttle − restart_margin_c`)
/// up to the throttle limit, then rest at `p_rest` until the die cools
/// back to the restart temperature. Returns `(sprint_s, rest_s)`.
///
/// This is where Fig. 3's ~18-second period comes from: the \[4\]-class
/// testbed re-sprints as soon as the die has shed a fixed amount of
/// heat, it does not wait for a full cooldown.
pub fn periodic_sprint_duty(
    model: &ThermalModel,
    p_sprint: f64,
    p_rest: f64,
    restart_margin_c: f64,
) -> (f64, f64) {
    assert!(restart_margin_c > 0.0);
    let tau = model.tau().0;
    let t_hi = model.throttle_c;
    let t_restart = t_hi - restart_margin_c;
    let hot_ss = model.steady_temp(p_sprint);
    assert!(
        hot_ss > t_hi,
        "sprint power must be unsustainable for a periodic cycle"
    );
    let rest_ss = model.steady_temp(p_rest);
    assert!(
        rest_ss < t_restart,
        "rest power must cool below the restart temperature"
    );
    let sprint = tau * ((hot_ss - t_restart) / (hot_ss - t_hi)).ln();
    let rest = tau * ((t_hi - rest_ss) / (t_restart - rest_ss)).ln();
    (sprint, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_and_tdp() {
        let m = ThermalModel::sprint_testbed();
        // τ = 30 s; TDP = 60/5 = 12 W.
        assert!((m.tau().0 - 30.0).abs() < 1e-12);
        assert!((m.sustainable_power() - 12.0).abs() < 1e-12);
        assert!((m.steady_temp(10.0) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn exact_integration_matches_closed_form() {
        let mut m = ThermalModel::sprint_testbed();
        m.step(50.0, Seconds(10.0));
        // T = 275 + (25−275)e^(−1/3).
        let expect = 275.0 - 250.0 * (-1.0f64 / 3.0).exp();
        assert!((m.temperature_c() - expect).abs() < 1e-9);
        // Step size independence: 10 × 1 s equals 1 × 10 s.
        let mut m2 = ThermalModel::sprint_testbed();
        for _ in 0..10 {
            m2.step(50.0, Seconds(1.0));
        }
        assert!((m2.temperature_c() - m.temperature_c()).abs() < 1e-9);
    }

    #[test]
    fn sprint_budget_consistency() {
        let m = ThermalModel::sprint_testbed();
        let budget = m.sprint_budget(50.0).expect("50 W unsustainable");
        // Simulate: the limit must be hit at the predicted time ± a step.
        let mut sim = m;
        let dt = 0.01;
        let mut t = 0.0;
        while !sim.throttled() {
            sim.step(50.0, Seconds(dt));
            t += dt;
            assert!(t < budget.0 + 1.0);
        }
        assert!(
            (t - budget.0).abs() < 0.05,
            "hit at {t} vs predicted {}",
            budget.0
        );
    }

    #[test]
    fn sustainable_power_never_throttles() {
        let mut m = ThermalModel::sprint_testbed();
        assert!(m.sprint_budget(11.0).is_none());
        for _ in 0..10_000 {
            m.step(11.0, Seconds(1.0));
        }
        assert!(!m.throttled());
    }

    #[test]
    fn hot_chip_has_zero_budget() {
        let mut m = ThermalModel::sprint_testbed();
        m.step(50.0, Seconds(1e6)); // cook it to steady state (clamped by test only)
        assert!(m.throttled());
        assert_eq!(m.sprint_budget(50.0), Some(Seconds::ZERO));
    }

    #[test]
    fn cooldown_time_is_consistent() {
        let mut m = ThermalModel::sprint_testbed();
        m.step(50.0, Seconds(8.0)); // heat up
        let t_cool = m.cooldown_time(2.0, 1.0);
        let mut sim = m;
        sim.step(2.0, t_cool);
        let rest = sim.steady_temp(2.0);
        assert!((sim.temperature_c() - rest) <= 1.0 + 1e-9);
    }

    #[test]
    fn duty_cycle_matches_the_fig3_period() {
        // The [4]-class testbed: ~50 W sprints over a ~12 W TDP chip with
        // a 20 °C restart band reproduce Fig. 3's ~18 s period.
        let (sprint, rest) = periodic_sprint_duty(&ThermalModel::sprint_testbed(), 50.0, 2.0, 20.0);
        let period = sprint + rest;
        assert!(sprint > 1.0 && sprint < 10.0, "sprint={sprint}");
        assert!((14.0..24.0).contains(&period), "period={period}");
    }

    #[test]
    fn duty_cycle_is_self_consistent() {
        // Simulating the derived schedule really oscillates between the
        // restart temperature and the throttle limit.
        let m = ThermalModel::sprint_testbed();
        let (sprint, rest) = periodic_sprint_duty(&m, 50.0, 2.0, 20.0);
        let mut sim = m;
        // Enter the cycle: heat from ambient to throttle once.
        let warmup = sim.sprint_budget(50.0).unwrap();
        sim.step(50.0, warmup);
        for _ in 0..10 {
            sim.step(2.0, Seconds(rest));
            assert!(
                (sim.temperature_c() - (m.throttle_c - 20.0)).abs() < 0.5,
                "restart temp {}",
                sim.temperature_c()
            );
            sim.step(50.0, Seconds(sprint));
            assert!(
                (sim.temperature_c() - m.throttle_c).abs() < 0.5,
                "peak temp {}",
                sim.temperature_c()
            );
        }
    }

    #[test]
    fn server_class_sustains_much_more() {
        let m = ThermalModel::server_class();
        assert!(m.sustainable_power() > 150.0);
        // And a 1.2× excursion lasts minutes, not seconds.
        let budget = m.sprint_budget(m.sustainable_power() * 1.2).unwrap();
        assert!(budget.0 > 20.0);
    }

    #[test]
    #[should_panic(expected = "throttle limit must exceed ambient")]
    fn rejects_inverted_limits() {
        ThermalModel::new(1.0, 1.0, 50.0, 40.0);
    }
}
