//! Circuit-breaker model: inverse-time trip curve, thermal accumulator,
//! trip and reclose state machine.
//!
//! Fig. 2 of the paper shows the Bulletin 1489-A curve: trip time is a
//! nonlinear decreasing function of the overload degree. We reproduce that
//! shape with the classic thermal (I²t) model: heat accumulates at rate
//! `o^p − 1` while overloaded (`o = delivered / rated > 1`), dissipates at
//! a constant cooling rate otherwise, and the breaker trips when the
//! accumulated heat reaches a budget `H`. Calibrated to the paper's
//! operating point from \[2\]: overload degree 1.25 trips after 150 s, and
//! recovery from near-trip takes at most 300 s.

use crate::units::{Seconds, Watts};

/// Static parameters of a breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSpec {
    /// Rated (continuous) capacity, W.
    pub rated: Watts,
    /// Exponent of the heating law (2.0 for the classic I²t model).
    pub exponent: f64,
    /// Heat budget at which the breaker trips (unitless heat-seconds).
    pub trip_heat: f64,
    /// Heat dissipated per second when not overloaded.
    pub cool_rate: f64,
    /// Time the breaker stays open after a trip before it can re-close.
    pub reclose_delay: Seconds,
}

impl BreakerSpec {
    /// Calibrate the thermal model so that a constant overload of
    /// `overload_degree` trips after exactly `trip_after`, and a breaker at
    /// the trip threshold fully recovers within `recovery`.
    pub fn calibrated(
        rated: Watts,
        overload_degree: f64,
        trip_after: Seconds,
        recovery: Seconds,
    ) -> Self {
        assert!(overload_degree > 1.0, "calibration point must overload");
        assert!(trip_after.0 > 0.0 && recovery.0 > 0.0);
        let exponent = 2.0;
        let trip_heat = (overload_degree.powf(exponent) - 1.0) * trip_after.0;
        BreakerSpec {
            rated,
            exponent,
            trip_heat,
            cool_rate: trip_heat / recovery.0,
            reclose_delay: recovery,
        }
    }

    /// The paper's breaker: 3.2 kW rated, 1.25 overload for 150 s,
    /// ≤ 300 s recovery (§VI-A, numbers shared with \[2\]).
    pub fn paper_default() -> Self {
        Self::calibrated(Watts(3200.0), 1.25, Seconds(150.0), Seconds(300.0))
    }

    /// Time to trip under a constant overload degree `o` starting from
    /// cold. Infinite for `o ≤ 1`. This is the Fig. 2 curve.
    pub fn trip_time(&self, o: f64) -> Seconds {
        if o <= 1.0 {
            Seconds(f64::INFINITY)
        } else {
            Seconds(self.trip_heat / (o.powf(self.exponent) - 1.0))
        }
    }

    /// Time for the accumulator to cool from `heat` to zero at rated load
    /// or below.
    pub fn recovery_time_from(&self, heat: f64) -> Seconds {
        Seconds((heat.max(0.0)) / self.cool_rate)
    }

    /// Heating rate (heat-units per second) at overload degree `o`;
    /// negative means cooling.
    pub fn heat_rate(&self, o: f64) -> f64 {
        if o > 1.0 {
            o.powf(self.exponent) - 1.0
        } else {
            -self.cool_rate
        }
    }
}

/// Breaker operating state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Conducting; `heat` is the thermal accumulator in `[0, trip_heat]`.
    Closed { heat: f64 },
    /// Tripped open; `remaining` until it may re-close.
    Open { remaining: Seconds },
}

/// What happened during one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerOutcome {
    /// Power actually delivered through the breaker this step.
    pub delivered: Watts,
    /// The breaker tripped during this step.
    pub tripped: bool,
}

/// A stateful circuit breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    pub spec: BreakerSpec,
    pub state: BreakerState,
    /// Cumulative number of trips (a safety metric in the evaluation).
    pub trip_count: usize,
}

impl CircuitBreaker {
    pub fn new(spec: BreakerSpec) -> Self {
        CircuitBreaker {
            spec,
            state: BreakerState::Closed { heat: 0.0 },
            trip_count: 0,
        }
    }

    pub fn is_closed(&self) -> bool {
        matches!(self.state, BreakerState::Closed { .. })
    }

    /// Fraction of the trip budget consumed, in `[0, 1]`; 1.0 while open.
    pub fn trip_margin(&self) -> f64 {
        match self.state {
            BreakerState::Closed { heat } => (heat / self.spec.trip_heat).clamp(0.0, 1.0),
            BreakerState::Open { .. } => 1.0,
        }
    }

    /// Advance the breaker by `dt` while `load` is requested through it.
    ///
    /// While closed, the breaker delivers the full requested load (breakers
    /// do not limit current below the trip point) and integrates heat; it
    /// trips when the accumulator reaches the budget. While open it
    /// delivers nothing and counts down to re-close (re-closing with a cold
    /// accumulator).
    pub fn step(&mut self, load: Watts, dt: Seconds) -> BreakerOutcome {
        assert!(dt.0 > 0.0, "breaker step needs positive dt");
        assert!(load.0 >= 0.0 && load.is_finite(), "invalid breaker load");
        match self.state {
            BreakerState::Closed { heat } => {
                let o = load / self.spec.rated;
                let new_heat = (heat + self.spec.heat_rate(o) * dt.0).max(0.0);
                if new_heat >= self.spec.trip_heat {
                    self.trip_count += 1;
                    self.state = BreakerState::Open {
                        remaining: self.spec.reclose_delay,
                    };
                    // The trip interrupts the circuit during this step; we
                    // conservatively report the step's load as delivered
                    // (the trip happens at the step boundary).
                    BreakerOutcome {
                        delivered: load,
                        tripped: true,
                    }
                } else {
                    self.state = BreakerState::Closed { heat: new_heat };
                    BreakerOutcome {
                        delivered: load,
                        tripped: false,
                    }
                }
            }
            BreakerState::Open { remaining } => {
                let left = Seconds(remaining.0 - dt.0);
                if left.0 <= 0.0 {
                    self.state = BreakerState::Closed { heat: 0.0 };
                } else {
                    self.state = BreakerState::Open { remaining: left };
                }
                BreakerOutcome {
                    delivered: Watts::ZERO,
                    tripped: false,
                }
            }
        }
    }

    /// Reset to a cold, closed breaker (keeps the trip counter).
    pub fn reset(&mut self) {
        self.state = BreakerState::Closed { heat: 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BreakerSpec {
        BreakerSpec::paper_default()
    }

    #[test]
    fn calibration_point_trips_at_150s() {
        let t = spec().trip_time(1.25);
        assert!((t.0 - 150.0).abs() < 1e-9);
    }

    #[test]
    fn trip_curve_is_nonlinear_decreasing() {
        let s = spec();
        // Fig. 2: strictly decreasing, convex-ish in overload.
        let os = [1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 6.0];
        let mut prev = f64::INFINITY;
        for &o in &os {
            let t = s.trip_time(o).0;
            assert!(t < prev, "trip time must decrease with overload");
            prev = t;
        }
        // Nonlinearity: halving the margin-to-rated does not halve time.
        let t_125 = s.trip_time(1.25).0;
        let t_150 = s.trip_time(1.5).0;
        assert!(t_150 < t_125 / 2.0 + 1e-9);
    }

    #[test]
    fn no_trip_at_or_below_rated() {
        let s = spec();
        assert!(s.trip_time(1.0).0.is_infinite());
        assert!(s.trip_time(0.5).0.is_infinite());
        let mut cb = CircuitBreaker::new(s);
        for _ in 0..10_000 {
            let out = cb.step(Watts(3200.0), Seconds(1.0));
            assert!(!out.tripped);
            assert_eq!(out.delivered, Watts(3200.0));
        }
        assert_eq!(cb.trip_count, 0);
    }

    #[test]
    fn sustained_overload_trips_on_schedule() {
        let mut cb = CircuitBreaker::new(spec());
        let load = Watts(3200.0 * 1.25);
        let mut t: f64 = 0.0;
        loop {
            let out = cb.step(load, Seconds(1.0));
            t += 1.0;
            if out.tripped {
                break;
            }
            assert!(t < 200.0, "should have tripped by now");
        }
        // 1 s integration: trips at 150 s ± one step.
        assert!((t - 150.0).abs() <= 1.0, "tripped at {t}");
        assert_eq!(cb.trip_count, 1);
        assert!(!cb.is_closed());
    }

    #[test]
    fn open_breaker_delivers_nothing_then_recloses() {
        let mut cb = CircuitBreaker::new(spec());
        // Force a trip quickly with a big overload.
        while !cb.step(Watts(3200.0 * 3.0), Seconds(1.0)).tripped {}
        let mut open_seconds: f64 = 0.0;
        loop {
            let out = cb.step(Watts(3000.0), Seconds(1.0));
            if cb.is_closed() {
                break;
            }
            assert_eq!(out.delivered, Watts::ZERO);
            open_seconds += 1.0;
            assert!(open_seconds < 400.0);
        }
        // Re-closes after the 300 s reclose delay.
        assert!(
            (open_seconds - 300.0).abs() <= 1.0,
            "open for {open_seconds}"
        );
        // And is cold again.
        assert!(cb.trip_margin() < 0.05);
    }

    #[test]
    fn recovery_cools_the_accumulator() {
        let s = spec();
        let mut cb = CircuitBreaker::new(s);
        // Overload for 100 s (does not trip), then run at rated.
        for _ in 0..100 {
            cb.step(Watts(4000.0), Seconds(1.0));
        }
        let hot = cb.trip_margin();
        assert!(hot > 0.6 && hot < 0.7, "margin={hot}");
        for _ in 0..300 {
            cb.step(Watts(3200.0), Seconds(1.0));
        }
        assert!(cb.trip_margin() < 1e-9, "should be fully cold");
    }

    #[test]
    fn recovery_time_matches_spec() {
        let s = spec();
        // From the brink of tripping, full recovery takes the calibrated
        // 300 s.
        let t = s.recovery_time_from(s.trip_heat);
        assert!((t.0 - 300.0).abs() < 1e-9);
        assert_eq!(s.recovery_time_from(0.0).0, 0.0);
    }

    #[test]
    fn alternating_overload_recovery_never_trips() {
        // SprintCon's periodic schedule: 150 s at 1.25 then 300 s at rated
        // would trip exactly at the boundary; with a 2% safety margin the
        // breaker survives indefinitely.
        let mut cb = CircuitBreaker::new(spec());
        for _cycle in 0..20 {
            for _ in 0..147 {
                let out = cb.step(Watts(4000.0), Seconds(1.0));
                assert!(!out.tripped);
            }
            for _ in 0..300 {
                cb.step(Watts(3200.0), Seconds(1.0));
            }
            assert!(cb.trip_margin() < 0.05);
        }
        assert_eq!(cb.trip_count, 0);
    }

    #[test]
    fn margin_monotone_under_overload() {
        let mut cb = CircuitBreaker::new(spec());
        let mut prev = cb.trip_margin();
        for _ in 0..100 {
            cb.step(Watts(4000.0), Seconds(1.0));
            let m = cb.trip_margin();
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    #[should_panic(expected = "invalid breaker load")]
    fn rejects_negative_load() {
        CircuitBreaker::new(spec()).step(Watts(-1.0), Seconds(1.0));
    }
}
