//! Deterministic fault injection for the simulated plant.
//!
//! Real racks misbehave: power monitors drop samples, stick, or spike;
//! DVFS actuators lag and quantize; UPS strings fade and hit discharge
//! current limits; breakers carry unknown thermal preload; servers crash.
//! A [`FaultPlan`] describes such disturbances — as a schedule of
//! [`FaultEvent`]s and/or stochastic on/off processes — and a
//! [`FaultInjector`] replays them tick by tick inside the simulation
//! loop, seed-reproducibly.
//!
//! Two invariants matter:
//!
//! * **Determinism.** All randomness comes from one dedicated
//!   [`NoiseSource`] owned by the injector, so the same seed and the same
//!   plan replay bit-identically and never perturb the plant's own noise
//!   streams (monitor, fan, workload).
//! * **Zero drift when empty.** An empty plan consumes no random numbers
//!   and applies no transformations: a simulation built with
//!   [`FaultPlan::none`] is bit-identical to one built before this module
//!   existed.

use crate::noise::NoiseSource;
use crate::units::{Seconds, Watts};

/// One class of disturbance. Parameters describe the fault's *severity*;
/// its timing comes from the enclosing [`FaultEvent`] or
/// [`StochasticFault`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The power monitor returns no sample (reads as NaN downstream).
    MonitorDropout,
    /// The power monitor repeats its last pre-fault reading.
    MonitorStuckAt,
    /// The power monitor reads high by `magnitude` (EMI burst, clamp
    /// misread). Positive so a plausibility bound can catch it.
    MonitorSpike { magnitude: Watts },
    /// First-order actuator lag: applied frequency approaches the
    /// command with time constant `tau` instead of stepping instantly.
    ActuatorLag { tau: Seconds },
    /// Coarse DVFS quantization: commands snap to multiples of `step`
    /// (e.g. 0.25 → only 5 distinct frequencies).
    ActuatorQuantize { step: f64 },
    /// Permanent loss of a fraction of UPS capacity (cell fade). Applied
    /// once at fault onset; never restored.
    UpsCapacityFade { fraction: f64 },
    /// Discharge-current limit: while active, the UPS cannot deliver
    /// more than `max_discharge` regardless of its spec.
    UpsCurrentLimit { max_discharge: Watts },
    /// One-shot thermal preload: at onset the breaker's accumulated heat
    /// jumps by `delta` × trip budget (hot neighbour, miscalibration).
    BreakerHeatPerturb { delta: f64 },
    /// Server `server` loses power for the fault window and recovers
    /// when it closes (unless the rack browned out meanwhile).
    ServerCrash { server: usize },
}

impl FaultKind {
    /// Stable telemetry / reporting label for the fault class.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::MonitorDropout => "monitor_dropout",
            FaultKind::MonitorStuckAt => "monitor_stuck_at",
            FaultKind::MonitorSpike { .. } => "monitor_spike",
            FaultKind::ActuatorLag { .. } => "actuator_lag",
            FaultKind::ActuatorQuantize { .. } => "actuator_quantize",
            FaultKind::UpsCapacityFade { .. } => "ups_capacity_fade",
            FaultKind::UpsCurrentLimit { .. } => "ups_current_limit",
            FaultKind::BreakerHeatPerturb { .. } => "breaker_heat_perturb",
            FaultKind::ServerCrash { .. } => "server_crash",
        }
    }
}

/// A scheduled fault: `kind` is active on `start <= t < start + duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub start: Seconds,
    pub duration: Seconds,
    pub kind: FaultKind,
}

impl FaultEvent {
    pub fn new(start: Seconds, duration: Seconds, kind: FaultKind) -> Self {
        FaultEvent {
            start,
            duration,
            kind,
        }
    }

    fn active_at(&self, t: Seconds) -> bool {
        t.0 >= self.start.0 && t.0 < self.start.0 + self.duration.0
    }
}

/// A stochastic on/off fault process (a two-state Markov chain in
/// continuous time): while inactive the fault starts with probability
/// `start_rate`·dt per tick; once started it stays active for an
/// exponentially distributed time with mean `mean_duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticFault {
    pub kind: FaultKind,
    /// Activations per second while inactive.
    pub start_rate: f64,
    pub mean_duration: Seconds,
}

/// The disturbance schedule for one run: deterministic events plus
/// stochastic processes. Cheap to clone; owned RNG state lives in the
/// per-run [`FaultInjector`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
    pub stochastic: Vec<StochasticFault>,
}

impl FaultPlan {
    /// No disturbances (the nominal scenario).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.stochastic.is_empty()
    }

    /// Add a scheduled fault window.
    pub fn with_event(mut self, start: Seconds, duration: Seconds, kind: FaultKind) -> Self {
        self.events.push(FaultEvent::new(start, duration, kind));
        self
    }

    /// Add a stochastic on/off fault process.
    pub fn with_stochastic(mut self, fault: StochasticFault) -> Self {
        self.stochastic.push(fault);
        self
    }

    /// Random power-monitor dropouts covering `intensity` (0..1) of the
    /// run in expectation, in outages of mean length `mean_outage`.
    ///
    /// The on/off process spends `rate·mean / (1 + rate·mean)` of its
    /// time active, so the start rate is solved from the requested duty.
    pub fn monitor_dropout(intensity: f64, mean_outage: Seconds) -> Self {
        assert!(
            (0.0..1.0).contains(&intensity),
            "dropout intensity must be in [0, 1): {intensity}"
        );
        assert!(mean_outage.0 > 0.0, "mean outage must be positive");
        if intensity == 0.0 {
            return FaultPlan::none();
        }
        let start_rate = intensity / ((1.0 - intensity) * mean_outage.0);
        FaultPlan::none().with_stochastic(StochasticFault {
            kind: FaultKind::MonitorDropout,
            start_rate,
            mean_duration: mean_outage,
        })
    }
}

/// Everything the simulation engine needs to know about the faults that
/// are active this tick. Onset-edge actions (`ups_capacity_fade`,
/// `breaker_heat_delta`) appear exactly once, at the tick the fault
/// starts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActiveFaults {
    pub monitor_dropout: bool,
    /// The reading the monitor is stuck at (captured at onset).
    pub monitor_stuck_at: Option<Watts>,
    /// Sum of active spike magnitudes added to the measurement.
    pub monitor_spike: Option<Watts>,
    /// Slowest active lag time constant.
    pub actuator_lag: Option<Seconds>,
    /// Coarsest active quantization step.
    pub actuator_quantize: Option<f64>,
    /// Tightest active discharge-current limit.
    pub ups_current_limit: Option<Watts>,
    /// Capacity fraction lost *this tick* (onset edge, applied once).
    pub ups_capacity_fade: Option<f64>,
    /// Breaker heat jump *this tick*, as a fraction of the trip budget
    /// (onset edge, applied once).
    pub breaker_heat_delta: Option<f64>,
    /// Servers without power this tick.
    pub crashed_servers: Vec<usize>,
}

impl ActiveFaults {
    pub fn any(&self) -> bool {
        self.monitor_dropout
            || self.monitor_stuck_at.is_some()
            || self.monitor_spike.is_some()
            || self.actuator_lag.is_some()
            || self.actuator_quantize.is_some()
            || self.ups_current_limit.is_some()
            || self.ups_capacity_fade.is_some()
            || self.breaker_heat_delta.is_some()
            || !self.crashed_servers.is_empty()
    }

    pub fn any_actuator(&self) -> bool {
        self.actuator_lag.is_some() || self.actuator_quantize.is_some()
    }

    /// Telemetry labels of every fault class active this tick.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.monitor_dropout {
            out.push("monitor_dropout");
        }
        if self.monitor_stuck_at.is_some() {
            out.push("monitor_stuck_at");
        }
        if self.monitor_spike.is_some() {
            out.push("monitor_spike");
        }
        if self.actuator_lag.is_some() {
            out.push("actuator_lag");
        }
        if self.actuator_quantize.is_some() {
            out.push("actuator_quantize");
        }
        if self.ups_capacity_fade.is_some() {
            out.push("ups_capacity_fade");
        }
        if self.ups_current_limit.is_some() {
            out.push("ups_current_limit");
        }
        if self.breaker_heat_delta.is_some() {
            out.push("breaker_heat_perturb");
        }
        if !self.crashed_servers.is_empty() {
            out.push("server_crash");
        }
        out
    }

    fn merge(&mut self, kind: FaultKind, onset: bool, last_measured: Watts) {
        match kind {
            FaultKind::MonitorDropout => self.monitor_dropout = true,
            FaultKind::MonitorStuckAt => {
                // The stuck value is latched by the injector at onset;
                // `merge` only sees a placeholder when the latch is
                // installed elsewhere. Default: stick at the last
                // reported measurement.
                if self.monitor_stuck_at.is_none() {
                    self.monitor_stuck_at = Some(last_measured);
                }
            }
            FaultKind::MonitorSpike { magnitude } => {
                let prev = self.monitor_spike.map_or(0.0, |w| w.0);
                self.monitor_spike = Some(Watts(prev + magnitude.0));
            }
            FaultKind::ActuatorLag { tau } => {
                let cur = self.actuator_lag.map_or(0.0, |t| t.0);
                self.actuator_lag = Some(Seconds(cur.max(tau.0)));
            }
            FaultKind::ActuatorQuantize { step } => {
                let cur = self.actuator_quantize.unwrap_or(0.0);
                self.actuator_quantize = Some(cur.max(step));
            }
            FaultKind::UpsCapacityFade { fraction } => {
                if onset {
                    let cur = self.ups_capacity_fade.unwrap_or(0.0);
                    self.ups_capacity_fade = Some((cur + fraction).min(1.0));
                }
            }
            FaultKind::UpsCurrentLimit { max_discharge } => {
                let cur = self.ups_current_limit.map_or(f64::INFINITY, |w| w.0);
                self.ups_current_limit = Some(Watts(cur.min(max_discharge.0)));
            }
            FaultKind::BreakerHeatPerturb { delta } => {
                if onset {
                    let cur = self.breaker_heat_delta.unwrap_or(0.0);
                    self.breaker_heat_delta = Some(cur + delta);
                }
            }
            FaultKind::ServerCrash { server } => {
                if !self.crashed_servers.contains(&server) {
                    self.crashed_servers.push(server);
                }
            }
        }
    }
}

/// Per-run replay state for a [`FaultPlan`]. Owned by the simulation;
/// advanced once per tick *before* the plant is evaluated.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    noise: NoiseSource,
    /// Was each scheduled event active last tick (onset-edge detection)?
    event_was_active: Vec<bool>,
    /// Remaining active time per stochastic process (`None` = inactive).
    stoch_remaining: Vec<Option<Seconds>>,
    /// Was each stochastic process active last tick?
    stoch_was_active: Vec<bool>,
    /// Latched reading for any active stuck-at fault.
    stuck_value: Option<Watts>,
}

impl FaultInjector {
    /// `seed` must be dedicated to fault injection (the scenario builder
    /// derives it from the scenario seed with a fixed offset).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let n_events = plan.events.len();
        let n_stoch = plan.stochastic.len();
        FaultInjector {
            plan,
            noise: NoiseSource::new(seed),
            event_was_active: vec![false; n_events],
            stoch_remaining: vec![None; n_stoch],
            stoch_was_active: vec![false; n_stoch],
            stuck_value: None,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance one tick and resolve the set of active faults.
    /// `last_measured` is the previous tick's reported measurement — the
    /// value a stuck sensor latches onto.
    pub fn advance(&mut self, now: Seconds, dt: Seconds, last_measured: Watts) -> ActiveFaults {
        let mut active = ActiveFaults::default();
        if self.plan.is_empty() {
            // Fast path: no RNG draws, no state churn, zero drift.
            return active;
        }

        // Scheduled events.
        for i in 0..self.plan.events.len() {
            let ev = self.plan.events[i];
            let is_active = ev.active_at(now);
            let onset = is_active && !self.event_was_active[i];
            self.event_was_active[i] = is_active;
            if is_active {
                active.merge(ev.kind, onset, last_measured);
            }
        }

        // Stochastic processes. Each inactive process draws exactly one
        // uniform per tick (the Bernoulli start trial) and one more at
        // activation (the exponential duration), keeping the stream
        // aligned regardless of what other processes do.
        for i in 0..self.plan.stochastic.len() {
            let sf = self.plan.stochastic[i];
            let state = &mut self.stoch_remaining[i];
            match state {
                Some(remaining) => {
                    remaining.0 -= dt.0;
                    if remaining.0 <= 0.0 {
                        *state = None;
                    }
                }
                None => {
                    let u = self.noise.uniform();
                    if u < sf.start_rate * dt.0 {
                        // Exponential duration, at least one full tick.
                        let draw = self.noise.uniform().max(f64::MIN_POSITIVE);
                        let len = (-draw.ln() * sf.mean_duration.0).max(dt.0);
                        *state = Some(Seconds(len));
                    }
                }
            }
            let is_active = self.stoch_remaining[i].is_some();
            let onset = is_active && !self.stoch_was_active[i];
            self.stoch_was_active[i] = is_active;
            if is_active {
                active.merge(sf.kind, onset, last_measured);
            }
        }

        // Stuck-at latching: capture the last reported reading when the
        // fault first engages; release the latch when it clears.
        if active.monitor_stuck_at.is_some() {
            let latched = *self.stuck_value.get_or_insert(last_measured);
            active.monitor_stuck_at = Some(latched);
        } else {
            self.stuck_value = None;
        }

        active
    }

    /// Apply the active monitor faults to a raw measurement.
    /// Precedence: dropout (no sample) > stuck-at > spike.
    pub fn corrupt_measurement(&self, raw: Watts, active: &ActiveFaults) -> Watts {
        if active.monitor_dropout {
            return Watts(f64::NAN);
        }
        if let Some(stuck) = active.monitor_stuck_at {
            return stuck;
        }
        if let Some(spike) = active.monitor_spike {
            return Watts(raw.0 + spike.0);
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        for k in 0..100 {
            let af = inj.advance(Seconds(k as f64), Seconds(1.0), Watts(4000.0));
            assert!(!af.any());
            assert_eq!(af, ActiveFaults::default());
        }
        // The injector's RNG was never touched: a fresh source produces
        // the same next value.
        assert_eq!(inj.noise.uniform(), NoiseSource::new(7).uniform());
    }

    #[test]
    fn scheduled_event_windows_are_half_open() {
        let plan =
            FaultPlan::none().with_event(Seconds(10.0), Seconds(5.0), FaultKind::MonitorDropout);
        let mut inj = FaultInjector::new(plan, 1);
        for k in 0..30 {
            let t = Seconds(k as f64);
            let af = inj.advance(t, Seconds(1.0), Watts(4000.0));
            let expect = (10.0..15.0).contains(&t.0);
            assert_eq!(af.monitor_dropout, expect, "t={k}");
        }
    }

    #[test]
    fn onset_edges_fire_once() {
        let plan = FaultPlan::none().with_event(
            Seconds(5.0),
            Seconds(10.0),
            FaultKind::BreakerHeatPerturb { delta: 0.4 },
        );
        let mut inj = FaultInjector::new(plan, 1);
        let mut edges = 0;
        for k in 0..30 {
            let af = inj.advance(Seconds(k as f64), Seconds(1.0), Watts(4000.0));
            if af.breaker_heat_delta.is_some() {
                edges += 1;
                assert_eq!(k, 5, "heat jump only at onset");
            }
        }
        assert_eq!(edges, 1);
    }

    #[test]
    fn stuck_at_latches_the_pre_fault_reading() {
        let plan =
            FaultPlan::none().with_event(Seconds(2.0), Seconds(3.0), FaultKind::MonitorStuckAt);
        let mut inj = FaultInjector::new(plan, 1);
        // Feed a changing "last measurement" each tick; the stuck window
        // must hold the value from its first tick.
        let mut seen = Vec::new();
        for k in 0..8 {
            let last = Watts(1000.0 + 100.0 * k as f64);
            let af = inj.advance(Seconds(k as f64), Seconds(1.0), last);
            if let Some(v) = af.monitor_stuck_at {
                seen.push(v.0);
            }
        }
        assert_eq!(seen, vec![1200.0, 1200.0, 1200.0]);
    }

    #[test]
    fn stochastic_dropout_hits_the_requested_duty_roughly() {
        let plan = FaultPlan::monitor_dropout(0.2, Seconds(8.0));
        let mut inj = FaultInjector::new(plan, 99);
        let ticks = 20_000;
        let mut active = 0;
        for k in 0..ticks {
            let af = inj.advance(Seconds(k as f64), Seconds(1.0), Watts(4000.0));
            if af.monitor_dropout {
                active += 1;
            }
        }
        let duty = active as f64 / ticks as f64;
        assert!(
            (0.12..0.30).contains(&duty),
            "duty {duty} far from requested 0.2"
        );
    }

    #[test]
    fn stochastic_replay_is_deterministic() {
        let plan = FaultPlan::monitor_dropout(0.1, Seconds(5.0));
        let mut a = FaultInjector::new(plan.clone(), 42);
        let mut b = FaultInjector::new(plan, 42);
        for k in 0..5_000 {
            let t = Seconds(k as f64);
            assert_eq!(
                a.advance(t, Seconds(1.0), Watts(4000.0)),
                b.advance(t, Seconds(1.0), Watts(4000.0))
            );
        }
    }

    #[test]
    fn measurement_corruption_precedence() {
        let mut af = ActiveFaults {
            monitor_dropout: true,
            monitor_stuck_at: Some(Watts(3000.0)),
            monitor_spike: Some(Watts(500.0)),
            ..ActiveFaults::default()
        };
        let inj = FaultInjector::new(FaultPlan::none(), 1);
        assert!(!inj.corrupt_measurement(Watts(4000.0), &af).is_finite());
        af.monitor_dropout = false;
        assert_eq!(inj.corrupt_measurement(Watts(4000.0), &af), Watts(3000.0));
        af.monitor_stuck_at = None;
        assert_eq!(inj.corrupt_measurement(Watts(4000.0), &af), Watts(4500.0));
        af.monitor_spike = None;
        assert_eq!(inj.corrupt_measurement(Watts(4000.0), &af), Watts(4000.0));
    }
}
