//! LFP battery cycle-life model — the cost-efficiency side of §VII-D.
//!
//! The paper (citing Kontorinis et al. \[32\]) argues that a 17% depth of
//! discharge permits more than 40 000 cycles (≈10 years at 10 sprints/day,
//! matching LFP chemical lifetime), while 31% DoD permits fewer than
//! 10 000 cycles (3–4 battery replacements over the same horizon). We fit
//! a power law `cycles(dod) = k · dod^(−β)` through those two published
//! operating points.

/// Power-law LFP cycle-life model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfpCycleLife {
    /// Scale factor `k` in `cycles = k · dod^(−β)`.
    pub k: f64,
    /// Exponent `β`.
    pub beta: f64,
    /// Calendar (chemical) lifetime cap in years — LFP cells age out of
    /// service even if lightly cycled.
    pub calendar_years: f64,
}

impl LfpCycleLife {
    /// Fit the power law through two (DoD, cycles) points.
    pub fn through(p1: (f64, f64), p2: (f64, f64)) -> Self {
        let ((d1, c1), (d2, c2)) = (p1, p2);
        assert!(d1 > 0.0 && d2 > 0.0 && d1 != d2 && c1 > 0.0 && c2 > 0.0);
        let beta = (c1 / c2).ln() / (d2 / d1).ln();
        let k = c1 * d1.powf(beta);
        LfpCycleLife {
            k,
            beta,
            calendar_years: 10.0,
        }
    }

    /// The paper's operating points: slightly inside the quoted bounds
    /// (>40 000 cycles at 17% DoD, <10 000 at 31%).
    pub fn paper_default() -> Self {
        Self::through((0.17, 41_000.0), (0.31, 9_800.0))
    }

    /// Cycles to end-of-life when cycled at constant `dod`.
    pub fn cycles_at(&self, dod: f64) -> f64 {
        assert!(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
        self.k * dod.powf(-self.beta)
    }

    /// Years of service when performing `cycles_per_day` discharges to
    /// `dod`, capped by the calendar lifetime.
    pub fn service_years(&self, dod: f64, cycles_per_day: f64) -> f64 {
        assert!(cycles_per_day > 0.0);
        let cycle_years = self.cycles_at(dod) / cycles_per_day / 365.0;
        cycle_years.min(self.calendar_years)
    }

    /// Number of battery *replacements* needed to cover `horizon_years`
    /// of operation at the given duty (0 = the original pack lasts the
    /// whole horizon).
    pub fn replacements_over(&self, dod: f64, cycles_per_day: f64, horizon_years: f64) -> usize {
        let per_pack = self.service_years(dod, cycles_per_day);
        if per_pack <= 0.0 {
            return usize::MAX;
        }
        ((horizon_years / per_pack).ceil() as usize).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_operating_points() {
        let m = LfpCycleLife::paper_default();
        // §VII-D: >40 000 cycles at 17% DoD, <10 000 at 31%.
        assert!(m.cycles_at(0.17) > 40_000.0);
        assert!(m.cycles_at(0.31) < 10_000.0);
    }

    #[test]
    fn cycles_decrease_with_dod() {
        let m = LfpCycleLife::paper_default();
        let mut prev = f64::INFINITY;
        for i in 1..=20 {
            let d = i as f64 / 20.0;
            let c = m.cycles_at(d);
            assert!(c < prev);
            prev = c;
        }
    }

    #[test]
    fn paper_lifetime_story() {
        // §VII-D: at 10 sprints/day, SprintCon (17% DoD) needs no battery
        // replacement for 10 years — the LFP calendar life — while the
        // baselines (31% DoD) replace 3–4 times.
        let m = LfpCycleLife::paper_default();
        let sprintcon_years = m.service_years(0.17, 10.0);
        assert!(
            (sprintcon_years - 10.0).abs() < 1e-9,
            "capped at calendar life"
        );
        assert_eq!(m.replacements_over(0.17, 10.0, 10.0), 0);
        let baseline_repl = m.replacements_over(0.31, 10.0, 10.0);
        assert!(
            (3..=4).contains(&baseline_repl),
            "baseline replacements = {baseline_repl}"
        );
    }

    #[test]
    fn through_fits_exactly() {
        let m = LfpCycleLife::through((0.2, 30_000.0), (0.5, 5_000.0));
        assert!((m.cycles_at(0.2) - 30_000.0).abs() < 1e-6);
        assert!((m.cycles_at(0.5) - 5_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "DoD must be in (0, 1]")]
    fn rejects_zero_dod() {
        LfpCycleLife::paper_default().cycles_at(0.0);
    }
}
