//! Feeder-tree datacenter topology: utility feeder → PDUs → racks.
//!
//! The single-rack world of [`crate::topology::PowerFeed`] stays intact
//! as the leaf — every rack keeps its own breaker + UPS feed — and this
//! module adds the two levels above it: each PDU edge and the feeder
//! edge carry their own inverse-time [`CircuitBreaker`], so a sprint
//! that is safe for one rack's breaker can still overload the shared
//! infrastructure if too many racks sprint at once. That shared-budget
//! tension is what the cross-rack headroom market (see
//! `core::dc_market`) manages: the feeder's headroom above the sum of
//! rack ratings is a scarce resource auctioned across racks each
//! supervisor period.
//!
//! The tree is static (no re-cabling mid-run) and validated at
//! construction; stepping it is pure aggregation — per-PDU sums of the
//! rack-level breaker powers through the PDU breakers, then the feeder
//! breaker — so a datacenter step is O(racks) with no allocation after
//! construction.

use crate::breaker::{BreakerSpec, CircuitBreaker};
use crate::units::{Seconds, Watts};

/// One power-distribution unit: a rated edge feeding a contiguous run
/// of racks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PduSpec {
    /// Continuous rating of the PDU edge (its breaker's rated load).
    pub rating: Watts,
    /// Number of racks fed by this PDU.
    pub num_racks: usize,
}

/// Structural description of the feeder tree. Racks are numbered
/// globally `0..num_racks()`, PDU-major: PDU 0 owns racks
/// `0..pdus\[0\].num_racks`, PDU 1 the next run, and so on.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterTopology {
    /// Continuous rating of the utility feeder edge.
    pub feeder_rating: Watts,
    /// The PDUs, in rack-numbering order.
    pub pdus: Vec<PduSpec>,
}

/// Why a topology is not buildable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The tree has no PDUs.
    NoPdus,
    /// PDU `{0}` feeds zero racks.
    EmptyPdu(usize),
    /// A rating is non-positive or non-finite (`{0}` names the edge).
    BadRating(&'static str),
    /// A single PDU's rating exceeds the feeder rating, which would make
    /// the PDU breaker unreachable by design.
    PduExceedsFeeder(usize),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoPdus => write!(f, "topology has no PDUs"),
            TopologyError::EmptyPdu(p) => write!(f, "PDU {p} feeds zero racks"),
            TopologyError::BadRating(edge) => {
                write!(f, "{edge} rating must be positive and finite")
            }
            TopologyError::PduExceedsFeeder(p) => {
                write!(f, "PDU {p} rating exceeds the feeder rating")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl DatacenterTopology {
    /// Validate and wrap an explicit PDU list.
    pub fn new(feeder_rating: Watts, pdus: Vec<PduSpec>) -> Result<Self, TopologyError> {
        let t = DatacenterTopology {
            feeder_rating,
            pdus,
        };
        t.validate()?;
        Ok(t)
    }

    /// A uniform tree: `num_pdus` PDUs of `pdu_rating`, each feeding
    /// `racks_per_pdu` racks.
    pub fn uniform(
        num_pdus: usize,
        racks_per_pdu: usize,
        pdu_rating: Watts,
        feeder_rating: Watts,
    ) -> Result<Self, TopologyError> {
        DatacenterTopology::new(
            feeder_rating,
            vec![
                PduSpec {
                    rating: pdu_rating,
                    num_racks: racks_per_pdu,
                };
                num_pdus
            ],
        )
    }

    /// The degenerate one-rack tree used by the single-rack equivalence
    /// gate: one PDU, one rack, edges rated at `edge_rating`.
    pub fn single_rack(edge_rating: Watts) -> Result<Self, TopologyError> {
        DatacenterTopology::uniform(1, 1, edge_rating, edge_rating)
    }

    /// Structural checks; [`Self::new`] runs this for you.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.pdus.is_empty() {
            return Err(TopologyError::NoPdus);
        }
        if !(self.feeder_rating.0 > 0.0 && self.feeder_rating.is_finite()) {
            return Err(TopologyError::BadRating("feeder"));
        }
        for (p, pdu) in self.pdus.iter().enumerate() {
            if pdu.num_racks == 0 {
                return Err(TopologyError::EmptyPdu(p));
            }
            if !(pdu.rating.0 > 0.0 && pdu.rating.is_finite()) {
                return Err(TopologyError::BadRating("PDU"));
            }
            if pdu.rating.0 > self.feeder_rating.0 {
                return Err(TopologyError::PduExceedsFeeder(p));
            }
        }
        Ok(())
    }

    pub fn num_pdus(&self) -> usize {
        self.pdus.len()
    }

    pub fn num_racks(&self) -> usize {
        self.pdus.iter().map(|p| p.num_racks).sum()
    }

    /// Which PDU feeds global rack `rack`.
    pub fn pdu_of_rack(&self, rack: usize) -> usize {
        let mut start = 0;
        for (p, pdu) in self.pdus.iter().enumerate() {
            if rack < start + pdu.num_racks {
                return p;
            }
            start += pdu.num_racks;
        }
        panic!(
            "rack {rack} out of range (num_racks = {})",
            self.num_racks()
        );
    }

    /// Global rack-index range fed by PDU `pdu`.
    pub fn racks_of_pdu(&self, pdu: usize) -> std::ops::Range<usize> {
        assert!(pdu < self.pdus.len(), "PDU {pdu} out of range");
        let start: usize = self.pdus[..pdu].iter().map(|p| p.num_racks).sum();
        start..start + self.pdus[pdu].num_racks
    }
}

/// What the shared infrastructure did during one aggregation step.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterOutcome {
    /// Load offered to each PDU breaker (Σ of its racks' breaker power).
    pub pdu_loads: Vec<Watts>,
    /// Power each PDU breaker actually delivered (zero while open).
    pub pdu_delivered: Vec<Watts>,
    /// PDU breakers that tripped during this step.
    pub pdu_tripped: Vec<bool>,
    /// Load offered to the feeder breaker (Σ of PDU deliveries).
    pub feeder_load: Watts,
    /// The feeder breaker tripped during this step.
    pub feeder_tripped: bool,
}

/// The feeder-edge part of one aggregation step — what
/// [`Datacenter::step_pdu_loads`] returns by value; the per-PDU outputs
/// land in caller-owned slices so replay loops allocate nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeederTick {
    /// Load offered to the feeder breaker (Σ of PDU deliveries).
    pub feeder_load: Watts,
    /// The feeder breaker tripped during this step.
    pub feeder_tripped: bool,
}

/// The live feeder tree: the static topology plus one [`CircuitBreaker`]
/// per PDU edge and one on the feeder edge. Rack edges live inside each
/// rack's own [`crate::topology::PowerFeed`] and are *not* duplicated
/// here.
#[derive(Debug, Clone)]
pub struct Datacenter {
    topo: DatacenterTopology,
    pdu_breakers: Vec<CircuitBreaker>,
    feeder_breaker: CircuitBreaker,
    /// Scratch for per-PDU load sums, reused across steps.
    pdu_loads: Vec<f64>,
}

impl Datacenter {
    /// Build the tree with every shared edge calibrated like the rack
    /// breakers: tolerate `overload_degree` × rated for `trip_after`
    /// before tripping, recover in `recovery`.
    pub fn new(
        topo: DatacenterTopology,
        overload_degree: f64,
        trip_after: Seconds,
        recovery: Seconds,
    ) -> Result<Self, TopologyError> {
        topo.validate()?;
        let pdu_breakers = topo
            .pdus
            .iter()
            .map(|p| {
                CircuitBreaker::new(BreakerSpec::calibrated(
                    p.rating,
                    overload_degree,
                    trip_after,
                    recovery,
                ))
            })
            .collect();
        let feeder_breaker = CircuitBreaker::new(BreakerSpec::calibrated(
            topo.feeder_rating,
            overload_degree,
            trip_after,
            recovery,
        ));
        let n = topo.num_pdus();
        Ok(Datacenter {
            topo,
            pdu_breakers,
            feeder_breaker,
            pdu_loads: vec![0.0; n],
        })
    }

    /// The tree with the paper's breaker calibration on every shared
    /// edge (1.25 × rated tolerated for 150 s, 300 s recovery — the same
    /// constants as [`BreakerSpec::paper_default`] at rack level).
    pub fn paper_calibrated(topo: DatacenterTopology) -> Result<Self, TopologyError> {
        Datacenter::new(topo, 1.25, Seconds(150.0), Seconds(300.0))
    }

    pub fn topology(&self) -> &DatacenterTopology {
        &self.topo
    }

    pub fn feeder_breaker(&self) -> &CircuitBreaker {
        &self.feeder_breaker
    }

    pub fn pdu_breaker(&self, pdu: usize) -> &CircuitBreaker {
        &self.pdu_breakers[pdu]
    }

    /// Aggregate one step: `rack_cb_power[r]` is the power rack `r` drew
    /// through its own breaker during the interval (UPS contributions
    /// never touch the shared tree). Per-PDU sums load the PDU breakers;
    /// the sum of PDU deliveries loads the feeder breaker.
    ///
    /// Allocates the outcome vectors; replay loops that step the tree
    /// every tick should precompute the per-PDU sums and use
    /// [`Datacenter::step_pdu_loads`] instead.
    pub fn step(&mut self, rack_cb_power: &[Watts], dt: Seconds) -> DatacenterOutcome {
        assert_eq!(
            rack_cb_power.len(),
            self.topo.num_racks(),
            "rack power vector shape mismatch"
        );
        self.pdu_loads.fill(0.0);
        let mut start = 0;
        for (p, pdu) in self.topo.pdus.iter().enumerate() {
            for w in &rack_cb_power[start..start + pdu.num_racks] {
                assert!(w.0 >= 0.0 && w.is_finite(), "invalid rack power");
                self.pdu_loads[p] += w.0;
            }
            start += pdu.num_racks;
        }
        let n = self.pdu_breakers.len();
        let mut pdu_delivered = vec![0.0; n];
        let mut pdu_tripped = vec![false; n];
        // Self-borrow dance: step_pdu_loads reads self.pdu_loads through
        // its argument, so lend it out for the call.
        let loads = std::mem::take(&mut self.pdu_loads);
        let feeder = self.step_pdu_loads(&loads, dt, &mut pdu_delivered, &mut pdu_tripped);
        self.pdu_loads = loads;
        DatacenterOutcome {
            pdu_loads: self.pdu_loads.iter().map(|&w| Watts(w)).collect(),
            pdu_delivered: pdu_delivered.into_iter().map(Watts).collect(),
            pdu_tripped,
            feeder_load: feeder.feeder_load,
            feeder_tripped: feeder.feeder_tripped,
        }
    }

    /// One aggregation step from precomputed per-PDU load sums,
    /// allocation-free: per-PDU deliveries and trip flags land in the
    /// caller's slices, the feeder edge comes back by value. Breakers
    /// are stepped in PDU order then the feeder — the exact operation
    /// order of [`Datacenter::step`], which is implemented on top of
    /// this and therefore bit-identical.
    pub fn step_pdu_loads(
        &mut self,
        pdu_loads: &[f64],
        dt: Seconds,
        delivered_out: &mut [f64],
        tripped_out: &mut [bool],
    ) -> FeederTick {
        let n = self.pdu_breakers.len();
        assert_eq!(pdu_loads.len(), n, "PDU load vector shape mismatch");
        assert_eq!(delivered_out.len(), n, "delivered slice shape mismatch");
        assert_eq!(tripped_out.len(), n, "tripped slice shape mismatch");
        let mut feeder_load = 0.0;
        for (p, brk) in self.pdu_breakers.iter_mut().enumerate() {
            let out = brk.step(Watts(pdu_loads[p]), dt);
            feeder_load += out.delivered.0;
            delivered_out[p] = out.delivered.0;
            tripped_out[p] = out.tripped;
        }
        let feeder_out = self.feeder_breaker.step(Watts(feeder_load), dt);
        FeederTick {
            feeder_load: Watts(feeder_load),
            feeder_tripped: feeder_out.tripped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_2x3() -> DatacenterTopology {
        DatacenterTopology::uniform(2, 3, Watts(12_000.0), Watts(20_000.0))
            .expect("uniform tree is valid")
    }

    #[test]
    fn rack_numbering_is_pdu_major() {
        let t = topo_2x3();
        assert_eq!(t.num_pdus(), 2);
        assert_eq!(t.num_racks(), 6);
        assert_eq!(t.pdu_of_rack(0), 0);
        assert_eq!(t.pdu_of_rack(2), 0);
        assert_eq!(t.pdu_of_rack(3), 1);
        assert_eq!(t.pdu_of_rack(5), 1);
        assert_eq!(t.racks_of_pdu(0), 0..3);
        assert_eq!(t.racks_of_pdu(1), 3..6);
    }

    #[test]
    fn validation_rejects_bad_trees() {
        assert_eq!(
            DatacenterTopology::new(Watts(100.0), vec![]),
            Err(TopologyError::NoPdus)
        );
        assert_eq!(
            DatacenterTopology::new(
                Watts(100.0),
                vec![PduSpec {
                    rating: Watts(50.0),
                    num_racks: 0
                }]
            ),
            Err(TopologyError::EmptyPdu(0))
        );
        assert_eq!(
            DatacenterTopology::new(
                Watts(100.0),
                vec![PduSpec {
                    rating: Watts(-1.0),
                    num_racks: 1
                }]
            ),
            Err(TopologyError::BadRating("PDU"))
        );
        assert_eq!(
            DatacenterTopology::new(
                Watts(100.0),
                vec![PduSpec {
                    rating: Watts(200.0),
                    num_racks: 1
                }]
            ),
            Err(TopologyError::PduExceedsFeeder(0))
        );
        assert!(DatacenterTopology::single_rack(Watts(3200.0)).is_ok());
    }

    #[test]
    fn step_aggregates_rack_powers_per_pdu() {
        let mut dc = Datacenter::paper_calibrated(topo_2x3()).expect("valid");
        let racks: Vec<Watts> = (1..=6).map(|r| Watts(1000.0 * r as f64)).collect();
        let out = dc.step(&racks, Seconds(1.0));
        assert_eq!(out.pdu_loads, vec![Watts(6000.0), Watts(15_000.0)]);
        assert_eq!(out.feeder_load, Watts(21_000.0));
        assert!(!out.pdu_tripped.iter().any(|&t| t));
        assert!(!out.feeder_tripped);
    }

    #[test]
    fn sustained_pdu_overload_trips_only_that_pdu() {
        let mut dc = Datacenter::paper_calibrated(topo_2x3()).expect("valid");
        // PDU 0 at 1.5 × rated, PDU 1 idle: PDU 0 trips on the curve,
        // PDU 1 and the feeder stay closed.
        let racks = [
            Watts(6000.0),
            Watts(6000.0),
            Watts(6000.0),
            Watts::ZERO,
            Watts::ZERO,
            Watts::ZERO,
        ];
        let mut tripped_at = None;
        for s in 0..600 {
            let out = dc.step(&racks, Seconds(1.0));
            if out.pdu_tripped[0] {
                tripped_at = Some(s);
                break;
            }
        }
        assert!(tripped_at.is_some(), "PDU 0 must trip");
        assert!(!dc.pdu_breaker(0).is_closed());
        assert!(dc.pdu_breaker(1).is_closed());
        assert!(dc.feeder_breaker().is_closed());
        // Open PDU delivers nothing, so the feeder load collapses.
        let out = dc.step(&racks, Seconds(1.0));
        assert_eq!(out.pdu_delivered[0], Watts::ZERO);
        assert_eq!(out.feeder_load, Watts::ZERO);
    }

    #[test]
    fn feeder_trips_when_all_pdus_sprint_within_their_own_ratings() {
        // The cross-rack tension in one test: each PDU at 1.1 × its
        // rating would survive alone, but together they hold the feeder
        // at 1.32 × rated and it trips first.
        let t = DatacenterTopology::uniform(2, 1, Watts(10_000.0), Watts(16_000.0))
            .expect("valid tree");
        let mut dc = Datacenter::paper_calibrated(t).expect("valid");
        let racks = [Watts(10_500.0), Watts(10_500.0)];
        let mut feeder_tripped = false;
        for _ in 0..2000 {
            let out = dc.step(&racks, Seconds(1.0));
            assert!(!out.pdu_tripped.iter().any(|&t| t), "PDUs must hold");
            if out.feeder_tripped {
                feeder_tripped = true;
                break;
            }
        }
        assert!(feeder_tripped, "the shared feeder must be the binding edge");
    }

    #[test]
    fn step_pdu_loads_is_bitwise_identical_to_step() {
        // Drive two clones of the same tree through a stressy trajectory,
        // one via `step`, one via precomputed PDU sums through the
        // allocation-free path; every output must agree bitwise.
        let t = topo_2x3();
        let mut via_step = Datacenter::paper_calibrated(t.clone()).expect("valid");
        let mut via_loads = via_step.clone();
        let n = t.num_pdus();
        let mut delivered = vec![0.0; n];
        let mut tripped = vec![false; n];
        for s in 0..400 {
            let racks: Vec<Watts> = (0..t.num_racks())
                .map(|r| Watts(4_000.0 + 600.0 * ((s + r) % 5) as f64))
                .collect();
            let out = via_step.step(&racks, Seconds(1.0));
            // Same per-PDU summation order as `step`: racks ascending.
            let mut sums = vec![0.0; n];
            for (r, w) in racks.iter().enumerate() {
                sums[t.pdu_of_rack(r)] += w.0;
            }
            let feeder =
                via_loads.step_pdu_loads(&sums, Seconds(1.0), &mut delivered, &mut tripped);
            assert_eq!(out.feeder_load.0.to_bits(), feeder.feeder_load.0.to_bits());
            assert_eq!(out.feeder_tripped, feeder.feeder_tripped);
            for p in 0..n {
                assert_eq!(out.pdu_loads[p].0.to_bits(), sums[p].to_bits());
                assert_eq!(out.pdu_delivered[p].0.to_bits(), delivered[p].to_bits());
                assert_eq!(out.pdu_tripped[p], tripped[p]);
            }
        }
        assert_eq!(via_step.feeder_breaker(), via_loads.feeder_breaker());
    }
}
