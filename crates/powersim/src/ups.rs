//! UPS energy-storage model: battery state of charge, discharge limits,
//! and the duty-cycled discharge circuit of \[24\] that the UPS power
//! controller actuates.
//!
//! The paper sizes the UPS to carry the maximum rack power for 5 minutes
//! (400 Wh for the 4.8 kW rack, §VI-A). Depth of discharge (DoD) is the
//! cost-efficiency metric of §VII-D: deeper discharges shorten LFP battery
//! life (see [`crate::battery_life`]).

use crate::units::{Seconds, WattHours, Watts};

/// Static UPS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpsSpec {
    /// Usable energy capacity.
    pub capacity: WattHours,
    /// Maximum instantaneous discharge power the inverter can deliver.
    pub max_discharge: Watts,
    /// Round-trip-half efficiency of discharge: cells must supply
    /// `delivered / efficiency`.
    pub discharge_efficiency: f64,
    /// Duty-ratio quantization of the discharge circuit of \[24\]
    /// (e.g. 0.01 ≙ the switch network realizes multiples of 1%).
    pub duty_step: f64,
}

impl UpsSpec {
    /// The paper's UPS: 400 Wh, able to carry the whole 4.8 kW rack,
    /// 95% discharge efficiency, 1% duty steps.
    pub fn paper_default() -> Self {
        UpsSpec {
            capacity: WattHours(400.0),
            max_discharge: Watts(4800.0),
            discharge_efficiency: 0.95,
            duty_step: 0.01,
        }
    }
}

/// A stateful UPS battery.
#[derive(Debug, Clone, PartialEq)]
pub struct UpsBattery {
    pub spec: UpsSpec,
    /// Current stored energy.
    soc: WattHours,
    /// Total energy drawn from the cells over the battery's life here
    /// (includes efficiency losses).
    pub total_cell_energy_out: WattHours,
    /// Deepest depth-of-discharge reached, in `[0, 1]`.
    pub max_dod: f64,
}

impl UpsBattery {
    /// A fully-charged battery.
    pub fn full(spec: UpsSpec) -> Self {
        UpsBattery {
            soc: spec.capacity,
            spec,
            total_cell_energy_out: WattHours::ZERO,
            max_dod: 0.0,
        }
    }

    pub fn soc(&self) -> WattHours {
        self.soc
    }

    /// State of charge as a fraction of capacity.
    pub fn soc_fraction(&self) -> f64 {
        (self.soc / self.spec.capacity).clamp(0.0, 1.0)
    }

    /// Depth of discharge: `1 − soc/capacity`.
    pub fn depth_of_discharge(&self) -> f64 {
        1.0 - self.soc_fraction()
    }

    pub fn is_empty(&self) -> bool {
        self.soc.0 <= 1e-9
    }

    /// Remaining runtime if discharged at `power` (delivered watts).
    pub fn runtime_at(&self, power: Watts) -> Seconds {
        if power.0 <= 0.0 {
            return Seconds(f64::INFINITY);
        }
        let cell_power = Watts(power.0 / self.spec.discharge_efficiency);
        self.soc.duration_at(cell_power)
    }

    /// Discharge: deliver up to `requested` for `dt`; returns the power
    /// actually delivered, limited by the inverter rating and remaining
    /// energy. Updates SoC, throughput, and max-DoD bookkeeping.
    pub fn discharge(&mut self, requested: Watts, dt: Seconds) -> Watts {
        assert!(dt.0 > 0.0);
        if requested.0 <= 0.0 || self.is_empty() {
            return Watts::ZERO;
        }
        let want = requested.min(self.spec.max_discharge);
        // Power deliverable from the energy left in this step.
        let cell_energy_avail = self.soc;
        let max_by_energy = Watts(
            cell_energy_avail.0 * crate::units::SECONDS_PER_HOUR / dt.0
                * self.spec.discharge_efficiency,
        );
        let delivered = want.min(max_by_energy);
        let cell_energy = Watts(delivered.0 / self.spec.discharge_efficiency).over(dt);
        self.soc = WattHours((self.soc.0 - cell_energy.0).max(0.0));
        self.total_cell_energy_out += cell_energy;
        self.max_dod = self.max_dod.max(self.depth_of_discharge());
        delivered
    }

    /// Permanently lose `fraction` of the current capacity (cell fade,
    /// injected by the fault model). Stored energy is clamped to the new
    /// capacity; DoD bookkeeping continues against the faded capacity.
    pub fn apply_capacity_fade(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fade fraction must be in [0, 1]: {fraction}"
        );
        self.spec.capacity = WattHours(self.spec.capacity.0 * (1.0 - fraction));
        self.soc = self.soc.min(self.spec.capacity);
        self.max_dod = self.max_dod.max(self.depth_of_discharge());
    }

    /// Recharge at `power` for `dt` with the given charge efficiency
    /// (energy into cells = power × dt × efficiency), clamped at capacity.
    pub fn recharge(&mut self, power: Watts, dt: Seconds, efficiency: f64) {
        assert!(dt.0 > 0.0 && (0.0..=1.0).contains(&efficiency));
        if power.0 <= 0.0 {
            return;
        }
        let into = Watts(power.0 * efficiency).over(dt);
        self.soc = (self.soc + into).min(self.spec.capacity);
    }
}

/// The duty-cycled discharge circuit of \[24\]: the controller commands a
/// duty ratio and the UPS carries that fraction of the total load.
///
/// The circuit can only realize duty ratios in multiples of
/// [`UpsSpec::duty_step`] — a real actuation-quantization error the UPS
/// power controller must tolerate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleDischarger {
    pub duty_step: f64,
}

impl DutyCycleDischarger {
    pub fn new(duty_step: f64) -> Self {
        assert!((0.0..1.0).contains(&duty_step));
        DutyCycleDischarger { duty_step }
    }

    /// Quantize the duty ratio that realizes `target` discharge out of
    /// `p_total`, and return the discharge power the circuit will actually
    /// draw from the battery side.
    pub fn realize(&self, target: Watts, p_total: Watts) -> Watts {
        if p_total.0 <= 0.0 || target.0 <= 0.0 {
            return Watts::ZERO;
        }
        let duty = (target / p_total).clamp(0.0, 1.0);
        let q = if self.duty_step > 0.0 {
            (duty / self.duty_step).round() * self.duty_step
        } else {
            duty
        };
        Watts(p_total.0 * q.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn battery() -> UpsBattery {
        UpsBattery::full(UpsSpec::paper_default())
    }

    #[test]
    fn paper_sizing_five_minutes_at_full_rack_power() {
        let b = battery();
        // Without efficiency losses, 400 Wh @ 4.8 kW is 5 min; with 95%
        // discharge efficiency, slightly less.
        let t = b.runtime_at(Watts(4800.0));
        assert!((t.as_minutes() - 4.75).abs() < 0.01, "runtime={t}");
    }

    #[test]
    fn discharge_accounting() {
        let mut b = battery();
        let delivered = b.discharge(Watts(1900.0), Seconds(60.0));
        assert_eq!(delivered, Watts(1900.0));
        // Cells supplied 1900/0.95 = 2000 W for 1 min = 33.33 Wh.
        let expect_drop = 2000.0 / 60.0;
        assert!((b.soc().0 - (400.0 - expect_drop)).abs() < 1e-9);
        assert!((b.depth_of_discharge() - expect_drop / 400.0).abs() < 1e-9);
        assert!((b.max_dod - b.depth_of_discharge()).abs() < 1e-12);
    }

    #[test]
    fn discharge_limited_by_inverter() {
        let mut b = battery();
        let delivered = b.discharge(Watts(10_000.0), Seconds(1.0));
        assert_eq!(delivered, Watts(4800.0));
    }

    #[test]
    fn discharge_limited_by_energy() {
        let mut b = battery();
        // Drain nearly everything.
        while !b.is_empty() {
            b.discharge(Watts(4800.0), Seconds(10.0));
        }
        assert!(b.is_empty());
        assert_eq!(b.discharge(Watts(100.0), Seconds(1.0)), Watts::ZERO);
        assert!((b.max_dod - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_final_step_delivers_partial_power() {
        let mut b = battery();
        // Ask for more energy than remains in one long step: the model
        // delivers the average power the remaining energy supports.
        let delivered = b.discharge(Watts(4800.0), Seconds(3600.0));
        // 400 Wh × 0.95 over one hour = 380 W average.
        assert!((delivered.0 - 380.0).abs() < 1e-9);
        assert!(b.is_empty());
    }

    #[test]
    fn energy_conservation_over_random_schedule() {
        let mut b = battery();
        let mut delivered_wh = 0.0;
        let powers = [300.0, 1200.0, 0.0, 2500.0, 4800.0, 700.0];
        for (i, &p) in powers.iter().cycle().take(600).enumerate() {
            let dt = Seconds(1.0 + (i % 3) as f64);
            let d = b.discharge(Watts(p), dt);
            delivered_wh += d.over(dt).0;
        }
        let cell_out = b.total_cell_energy_out.0;
        // delivered = cells × efficiency, and cells ≤ capacity.
        assert!((delivered_wh - cell_out * 0.95).abs() < 1e-6);
        assert!(cell_out <= 400.0 + 1e-9);
        assert!((400.0 - b.soc().0 - cell_out).abs() < 1e-6);
    }

    #[test]
    fn recharge_clamps_at_capacity() {
        let mut b = battery();
        b.discharge(Watts(4800.0), Seconds(60.0));
        b.recharge(Watts(100_000.0), Seconds(3600.0), 0.9);
        assert!((b.soc().0 - 400.0).abs() < 1e-9);
        // max_dod is a high-water mark; recharging does not erase it.
        assert!(b.max_dod > 0.0);
    }

    #[test]
    fn duty_cycle_quantization() {
        let d = DutyCycleDischarger::new(0.01);
        // 37.2% of 3 kW requested → rounds to 37%.
        let got = d.realize(Watts(1116.0), Watts(3000.0));
        assert!((got.0 - 1110.0).abs() < 1e-9);
        // Zero cases.
        assert_eq!(d.realize(Watts(0.0), Watts(3000.0)), Watts::ZERO);
        assert_eq!(d.realize(Watts(100.0), Watts(0.0)), Watts::ZERO);
        // Target above total clamps to 100% duty.
        assert_eq!(d.realize(Watts(9000.0), Watts(3000.0)), Watts(3000.0));
    }

    #[test]
    fn duty_cycle_error_bounded_by_step() {
        let d = DutyCycleDischarger::new(0.01);
        let total = Watts(4123.0);
        for i in 0..200 {
            let target = Watts(i as f64 * 20.0);
            let got = d.realize(target, total);
            let capped = target.min(total);
            assert!(
                (got.0 - capped.0).abs() <= total.0 * 0.005 + 1e-9,
                "quantization error beyond half a duty step"
            );
        }
    }
}
