//! Deterministic grid-event injection: signals that arrive from
//! *outside* the floor.
//!
//! A datacenter's breaker budget is not a static property of the rack —
//! the utility curtails demand-response participants, real-time prices
//! spike, and frequency-regulation markets dispatch symmetric power
//! nudges. A [`GridPlan`] describes such signals — as a schedule of
//! [`GridEvent`]s and/or stochastic on/off processes — and a
//! [`GridInjector`] replays them tick by tick inside the simulation
//! loop, seed-reproducibly. The module deliberately mirrors
//! [`crate::faults`]: faults are what the *plant* does to the
//! controller, grid events are what the *world* does to the budget.
//!
//! Two invariants matter:
//!
//! * **Determinism.** All randomness comes from one dedicated
//!   [`NoiseSource`] owned by the injector, so the same seed and the
//!   same plan replay bit-identically and never perturb the plant's own
//!   noise streams (monitor, fan, workload, faults).
//! * **Zero drift when empty.** An empty plan consumes no random
//!   numbers and applies no transformations: a simulation built with
//!   [`GridPlan::none`] is bit-identical to one built before this
//!   module existed.
//!
//! **Compliance semantics.** A curtailment event carries a cap and a
//! deadline *offset*: from the event's onset the operator has
//! `deadline_s` seconds to bring grid-side draw (breaker power, not
//! total load — UPS bridging is legitimate demand response) under
//! `cap_w`. The injector latches the absolute deadline at onset and
//! publishes it in [`ActiveGrid::curtail_deadline`]; the engine counts
//! a `grid.compliance_violations` tick for every post-deadline tick
//! spent above the cap.

use crate::noise::NoiseSource;
use crate::units::{Seconds, Watts};

/// One class of grid signal. Parameters describe the signal's
/// *severity*; its timing comes from the enclosing [`GridEvent`] or
/// [`StochasticGridEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridEventKind {
    /// Demand-response curtailment: bring grid-side draw under `cap_w`
    /// within `deadline_s` seconds of onset and hold it there for the
    /// rest of the event window.
    Curtailment { cap_w: Watts, deadline_s: Seconds },
    /// Real-time price spike: energy costs `multiplier`× nominal while
    /// active. Raises the sprint-entry bar — sprinting on expensive
    /// energy must clear a higher value threshold.
    PriceSpike { multiplier: f64 },
    /// Frequency-regulation dispatch: nudge the effective breaker
    /// budget by `delta_w` (symmetric — positive regulation-down head
    /// room is a negative delta) for `duration_s` seconds from onset,
    /// clipped to the event window.
    FreqRegulation { delta_w: Watts, duration_s: Seconds },
}

impl GridEventKind {
    /// Stable telemetry / reporting label for the event class.
    pub fn label(&self) -> &'static str {
        match self {
            GridEventKind::Curtailment { .. } => "curtailment",
            GridEventKind::PriceSpike { .. } => "price_spike",
            GridEventKind::FreqRegulation { .. } => "freq_regulation",
        }
    }
}

/// A scheduled grid event: `kind` is active on
/// `start <= t < start + duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridEvent {
    pub start: Seconds,
    pub duration: Seconds,
    pub kind: GridEventKind,
}

impl GridEvent {
    pub fn new(start: Seconds, duration: Seconds, kind: GridEventKind) -> Self {
        GridEvent {
            start,
            duration,
            kind,
        }
    }

    fn active_at(&self, t: Seconds) -> bool {
        t.0 >= self.start.0 && t.0 < self.start.0 + self.duration.0
    }
}

/// A stochastic on/off grid-signal process (a two-state Markov chain in
/// continuous time): while inactive the signal starts with probability
/// `start_rate`·dt per tick; once started it stays active for an
/// exponentially distributed time with mean `mean_duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticGridEvent {
    pub kind: GridEventKind,
    /// Activations per second while inactive.
    pub start_rate: f64,
    pub mean_duration: Seconds,
}

/// The grid-signal schedule for one run: deterministic events plus
/// stochastic processes. Cheap to clone; owned RNG state lives in the
/// per-run [`GridInjector`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GridPlan {
    pub events: Vec<GridEvent>,
    pub stochastic: Vec<StochasticGridEvent>,
}

/// Why a [`GridPlan`] failed validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridPlanError {
    /// "curtailment cap must be positive and finite".
    InvalidCurtailCap(f64),
    /// "curtailment deadline must be finite and non-negative".
    InvalidCurtailDeadline(f64),
    /// "price multiplier must be finite and ≥ 1".
    InvalidPriceMultiplier(f64),
    /// "regulation delta must be finite".
    InvalidRegulationDelta(f64),
    /// "regulation duration must be positive and finite".
    InvalidRegulationDuration(f64),
    /// "stochastic start rate must be positive and finite".
    InvalidStartRate(f64),
    /// "stochastic mean duration must be positive and finite".
    InvalidMeanDuration(f64),
}

impl std::fmt::Display for GridPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridPlanError::InvalidCurtailCap(v) => {
                write!(f, "curtailment cap must be positive and finite, got {v}")
            }
            GridPlanError::InvalidCurtailDeadline(v) => {
                write!(
                    f,
                    "curtailment deadline must be finite and non-negative, got {v}"
                )
            }
            GridPlanError::InvalidPriceMultiplier(v) => {
                write!(f, "price multiplier must be finite and >= 1, got {v}")
            }
            GridPlanError::InvalidRegulationDelta(v) => {
                write!(f, "regulation delta must be finite, got {v}")
            }
            GridPlanError::InvalidRegulationDuration(v) => {
                write!(
                    f,
                    "regulation duration must be positive and finite, got {v}"
                )
            }
            GridPlanError::InvalidStartRate(v) => {
                write!(
                    f,
                    "stochastic start rate must be positive and finite, got {v}"
                )
            }
            GridPlanError::InvalidMeanDuration(v) => {
                write!(
                    f,
                    "stochastic mean duration must be positive and finite, got {v}"
                )
            }
        }
    }
}

impl std::error::Error for GridPlanError {}

fn validate_kind(kind: &GridEventKind) -> Result<(), GridPlanError> {
    match *kind {
        GridEventKind::Curtailment { cap_w, deadline_s } => {
            if !(cap_w.0 > 0.0 && cap_w.0.is_finite()) {
                return Err(GridPlanError::InvalidCurtailCap(cap_w.0));
            }
            if !(deadline_s.0 >= 0.0 && deadline_s.0.is_finite()) {
                return Err(GridPlanError::InvalidCurtailDeadline(deadline_s.0));
            }
        }
        GridEventKind::PriceSpike { multiplier } => {
            if !(multiplier >= 1.0 && multiplier.is_finite()) {
                return Err(GridPlanError::InvalidPriceMultiplier(multiplier));
            }
        }
        GridEventKind::FreqRegulation {
            delta_w,
            duration_s,
        } => {
            if !delta_w.0.is_finite() {
                return Err(GridPlanError::InvalidRegulationDelta(delta_w.0));
            }
            if !(duration_s.0 > 0.0 && duration_s.0.is_finite()) {
                return Err(GridPlanError::InvalidRegulationDuration(duration_s.0));
            }
        }
    }
    Ok(())
}

impl GridPlan {
    /// No grid signals (the nominal scenario).
    pub fn none() -> Self {
        GridPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.stochastic.is_empty()
    }

    /// Add a scheduled grid-event window.
    pub fn with_event(mut self, start: Seconds, duration: Seconds, kind: GridEventKind) -> Self {
        self.events.push(GridEvent::new(start, duration, kind));
        self
    }

    /// Add a stochastic on/off grid-signal process.
    pub fn with_stochastic(mut self, event: StochasticGridEvent) -> Self {
        self.stochastic.push(event);
        self
    }

    /// A single demand-response curtailment window: from `start`, draw
    /// must be under `cap_w` within `deadline_s` and stay there for
    /// `duration`.
    pub fn curtailment(
        start: Seconds,
        duration: Seconds,
        cap_w: Watts,
        deadline_s: Seconds,
    ) -> Self {
        GridPlan::none().with_event(
            start,
            duration,
            GridEventKind::Curtailment { cap_w, deadline_s },
        )
    }

    /// Check every event's parameters; [`crate::grid::GridInjector`]
    /// replays only validated plans (the scenario builder calls this).
    pub fn validate(&self) -> Result<(), GridPlanError> {
        for ev in &self.events {
            validate_kind(&ev.kind)?;
        }
        for sf in &self.stochastic {
            validate_kind(&sf.kind)?;
            if !(sf.start_rate > 0.0 && sf.start_rate.is_finite()) {
                return Err(GridPlanError::InvalidStartRate(sf.start_rate));
            }
            if !(sf.mean_duration.0 > 0.0 && sf.mean_duration.0.is_finite()) {
                return Err(GridPlanError::InvalidMeanDuration(sf.mean_duration.0));
            }
        }
        Ok(())
    }
}

/// Everything the controller needs to know about the grid signals
/// active this tick. Onset flags (`*_onset`) are true exactly once, at
/// the tick the signal starts — the engine turns them into per-class
/// telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveGrid {
    /// Tightest active curtailment cap on grid-side draw.
    pub curtail_cap: Option<Watts>,
    /// Earliest absolute compliance deadline (onset + `deadline_s`,
    /// latched at onset) among the active curtailments.
    pub curtail_deadline: Option<Seconds>,
    /// Largest active price multiplier; `1.0` when no spike is active.
    pub price_multiplier: f64,
    /// Sum of active regulation deltas on the effective breaker budget.
    pub reg_delta: Option<Watts>,
    /// A curtailment started this tick.
    pub curtail_onset: bool,
    /// A price spike started this tick.
    pub price_onset: bool,
    /// A regulation dispatch started this tick.
    pub reg_onset: bool,
}

impl Default for ActiveGrid {
    fn default() -> Self {
        ActiveGrid {
            curtail_cap: None,
            curtail_deadline: None,
            price_multiplier: 1.0,
            reg_delta: None,
            curtail_onset: false,
            price_onset: false,
            reg_onset: false,
        }
    }
}

impl ActiveGrid {
    pub fn any(&self) -> bool {
        self.curtail_cap.is_some() || self.price_multiplier != 1.0 || self.reg_delta.is_some()
    }

    /// Telemetry labels of every signal class active this tick.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.curtail_cap.is_some() {
            out.push("curtailment");
        }
        if self.price_multiplier != 1.0 {
            out.push("price_spike");
        }
        if self.reg_delta.is_some() {
            out.push("freq_regulation");
        }
        out
    }

    /// `deadline` is the absolute compliance deadline for a curtailment
    /// (latched by the injector at onset); unused for the other kinds.
    fn merge(&mut self, kind: GridEventKind, onset: bool, deadline: Seconds) {
        match kind {
            GridEventKind::Curtailment { cap_w, .. } => {
                self.curtail_onset |= onset;
                let cur = self.curtail_cap.map_or(f64::INFINITY, |w| w.0);
                self.curtail_cap = Some(Watts(cur.min(cap_w.0)));
                let cur_dl = self.curtail_deadline.map_or(f64::INFINITY, |s| s.0);
                self.curtail_deadline = Some(Seconds(cur_dl.min(deadline.0)));
            }
            GridEventKind::PriceSpike { multiplier } => {
                self.price_onset |= onset;
                self.price_multiplier = self.price_multiplier.max(multiplier);
            }
            GridEventKind::FreqRegulation { delta_w, .. } => {
                self.reg_onset |= onset;
                let cur = self.reg_delta.map_or(0.0, |w| w.0);
                self.reg_delta = Some(Watts(cur + delta_w.0));
            }
        }
    }
}

/// Per-run replay state for a [`GridPlan`]. Owned by the simulation;
/// advanced once per tick *before* the controller observes the world.
#[derive(Debug, Clone)]
pub struct GridInjector {
    plan: GridPlan,
    noise: NoiseSource,
    /// Was each scheduled event active last tick (onset-edge detection)?
    event_was_active: Vec<bool>,
    /// Onset time per scheduled event, latched at the onset edge
    /// (curtailment deadlines and regulation holds are onset-relative).
    event_onset: Vec<Seconds>,
    /// Remaining active time per stochastic process (`None` = inactive).
    stoch_remaining: Vec<Option<Seconds>>,
    /// Was each stochastic process active last tick?
    stoch_was_active: Vec<bool>,
    /// Onset time per stochastic process, latched at the onset edge.
    stoch_onset: Vec<Seconds>,
}

impl GridInjector {
    /// `seed` must be dedicated to grid injection (the scenario builder
    /// derives it from the scenario seed with a fixed offset).
    pub fn new(plan: GridPlan, seed: u64) -> Self {
        let n_events = plan.events.len();
        let n_stoch = plan.stochastic.len();
        GridInjector {
            plan,
            noise: NoiseSource::new(seed),
            event_was_active: vec![false; n_events],
            event_onset: vec![Seconds(0.0); n_events],
            stoch_remaining: vec![None; n_stoch],
            stoch_was_active: vec![false; n_stoch],
            stoch_onset: vec![Seconds(0.0); n_stoch],
        }
    }

    pub fn plan(&self) -> &GridPlan {
        &self.plan
    }

    /// A frequency-regulation dispatch holds from onset for its
    /// `duration_s`, clipped to the enclosing active window.
    fn reg_hold_expired(kind: GridEventKind, onset_t: Seconds, now: Seconds) -> bool {
        match kind {
            GridEventKind::FreqRegulation { duration_s, .. } => now.0 >= onset_t.0 + duration_s.0,
            _ => false,
        }
    }

    /// Advance one tick and resolve the set of active grid signals.
    pub fn advance(&mut self, now: Seconds, dt: Seconds) -> ActiveGrid {
        let mut active = ActiveGrid::default();
        if self.plan.is_empty() {
            // Fast path: no RNG draws, no state churn, zero drift.
            return active;
        }

        // Scheduled events.
        for i in 0..self.plan.events.len() {
            let ev = self.plan.events[i];
            let is_active = ev.active_at(now);
            let onset = is_active && !self.event_was_active[i];
            self.event_was_active[i] = is_active;
            if onset {
                self.event_onset[i] = now;
            }
            if is_active && !Self::reg_hold_expired(ev.kind, self.event_onset[i], now) {
                let deadline = Seconds(self.event_onset[i].0 + curtail_offset(ev.kind));
                active.merge(ev.kind, onset, deadline);
            }
        }

        // Stochastic processes. Each inactive process draws exactly one
        // uniform per tick (the Bernoulli start trial) and one more at
        // activation (the exponential duration), keeping the stream
        // aligned regardless of what other processes do.
        for i in 0..self.plan.stochastic.len() {
            let sf = self.plan.stochastic[i];
            let state = &mut self.stoch_remaining[i];
            match state {
                Some(remaining) => {
                    remaining.0 -= dt.0;
                    if remaining.0 <= 0.0 {
                        *state = None;
                    }
                }
                None => {
                    let u = self.noise.uniform();
                    if u < sf.start_rate * dt.0 {
                        // Exponential duration, at least one full tick.
                        let draw = self.noise.uniform().max(f64::MIN_POSITIVE);
                        let len = (-draw.ln() * sf.mean_duration.0).max(dt.0);
                        *state = Some(Seconds(len));
                    }
                }
            }
            let is_active = self.stoch_remaining[i].is_some();
            let onset = is_active && !self.stoch_was_active[i];
            self.stoch_was_active[i] = is_active;
            if onset {
                self.stoch_onset[i] = now;
            }
            if is_active && !Self::reg_hold_expired(sf.kind, self.stoch_onset[i], now) {
                let deadline = Seconds(self.stoch_onset[i].0 + curtail_offset(sf.kind));
                active.merge(sf.kind, onset, deadline);
            }
        }

        active
    }
}

/// The deadline offset a curtailment grants; zero for other kinds
/// (whose merged deadline value is never read).
fn curtail_offset(kind: GridEventKind) -> f64 {
    match kind {
        GridEventKind::Curtailment { deadline_s, .. } => deadline_s.0,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = GridInjector::new(GridPlan::none(), 7);
        for k in 0..100 {
            let ag = inj.advance(Seconds(k as f64), Seconds(1.0));
            assert!(!ag.any());
            assert_eq!(ag, ActiveGrid::default());
        }
        // The injector's RNG was never touched: a fresh source produces
        // the same next value.
        assert_eq!(inj.noise.uniform(), NoiseSource::new(7).uniform());
    }

    #[test]
    fn default_active_grid_is_nominal() {
        let ag = ActiveGrid::default();
        assert_eq!(ag.price_multiplier, 1.0);
        assert!(!ag.any());
        assert!(ag.labels().is_empty());
    }

    #[test]
    fn scheduled_event_windows_are_half_open() {
        let plan = GridPlan::curtailment(Seconds(10.0), Seconds(5.0), Watts(3000.0), Seconds(2.0));
        let mut inj = GridInjector::new(plan, 1);
        for k in 0..30 {
            let t = Seconds(k as f64);
            let ag = inj.advance(t, Seconds(1.0));
            let expect = (10.0..15.0).contains(&t.0);
            assert_eq!(ag.curtail_cap.is_some(), expect, "t={k}");
        }
    }

    #[test]
    fn onset_edges_fire_once_per_class() {
        let plan = GridPlan::none()
            .with_event(
                Seconds(5.0),
                Seconds(10.0),
                GridEventKind::Curtailment {
                    cap_w: Watts(3000.0),
                    deadline_s: Seconds(4.0),
                },
            )
            .with_event(
                Seconds(8.0),
                Seconds(6.0),
                GridEventKind::PriceSpike { multiplier: 3.0 },
            );
        let mut inj = GridInjector::new(plan, 1);
        let (mut curtail_edges, mut price_edges) = (0, 0);
        for k in 0..30 {
            let ag = inj.advance(Seconds(k as f64), Seconds(1.0));
            if ag.curtail_onset {
                curtail_edges += 1;
                assert_eq!(k, 5);
            }
            if ag.price_onset {
                price_edges += 1;
                assert_eq!(k, 8);
            }
        }
        assert_eq!((curtail_edges, price_edges), (1, 1));
    }

    #[test]
    fn curtail_deadline_is_latched_absolute_at_onset() {
        let plan = GridPlan::curtailment(Seconds(20.0), Seconds(30.0), Watts(2800.0), Seconds(7.0));
        let mut inj = GridInjector::new(plan, 1);
        for k in 0..60 {
            let ag = inj.advance(Seconds(k as f64), Seconds(1.0));
            if let Some(dl) = ag.curtail_deadline {
                assert_eq!(dl, Seconds(27.0), "t={k}");
            }
        }
    }

    #[test]
    fn overlapping_curtailments_merge_tightest_cap_and_earliest_deadline() {
        let plan = GridPlan::none()
            .with_event(
                Seconds(0.0),
                Seconds(20.0),
                GridEventKind::Curtailment {
                    cap_w: Watts(3000.0),
                    deadline_s: Seconds(2.0),
                },
            )
            .with_event(
                Seconds(5.0),
                Seconds(20.0),
                GridEventKind::Curtailment {
                    cap_w: Watts(2500.0),
                    deadline_s: Seconds(30.0),
                },
            );
        let mut inj = GridInjector::new(plan, 1);
        let mut at_10 = None;
        for k in 0..12 {
            at_10 = Some(inj.advance(Seconds(k as f64), Seconds(1.0)));
        }
        let ag = at_10.unwrap();
        assert_eq!(ag.curtail_cap, Some(Watts(2500.0)));
        // Deadline 0+2 beats 5+30.
        assert_eq!(ag.curtail_deadline, Some(Seconds(2.0)));
    }

    #[test]
    fn price_spikes_take_the_max_multiplier() {
        let plan = GridPlan::none()
            .with_event(
                Seconds(0.0),
                Seconds(10.0),
                GridEventKind::PriceSpike { multiplier: 2.0 },
            )
            .with_event(
                Seconds(0.0),
                Seconds(10.0),
                GridEventKind::PriceSpike { multiplier: 5.0 },
            );
        let mut inj = GridInjector::new(plan, 1);
        let ag = inj.advance(Seconds(0.0), Seconds(1.0));
        assert_eq!(ag.price_multiplier, 5.0);
        assert_eq!(ag.labels(), vec!["price_spike"]);
    }

    #[test]
    fn regulation_hold_expires_before_the_event_window() {
        let plan = GridPlan::none().with_event(
            Seconds(10.0),
            Seconds(20.0),
            GridEventKind::FreqRegulation {
                delta_w: Watts(-150.0),
                duration_s: Seconds(5.0),
            },
        );
        let mut inj = GridInjector::new(plan, 1);
        for k in 0..40 {
            let t = Seconds(k as f64);
            let ag = inj.advance(t, Seconds(1.0));
            let expect = (10.0..15.0).contains(&t.0);
            assert_eq!(ag.reg_delta.is_some(), expect, "t={k}");
            if expect {
                assert_eq!(ag.reg_delta, Some(Watts(-150.0)));
            }
        }
    }

    #[test]
    fn regulation_deltas_sum_across_overlaps() {
        let reg = |w: f64| GridEventKind::FreqRegulation {
            delta_w: Watts(w),
            duration_s: Seconds(10.0),
        };
        let plan = GridPlan::none()
            .with_event(Seconds(0.0), Seconds(10.0), reg(100.0))
            .with_event(Seconds(0.0), Seconds(10.0), reg(-40.0));
        let mut inj = GridInjector::new(plan, 1);
        let ag = inj.advance(Seconds(0.0), Seconds(1.0));
        assert_eq!(ag.reg_delta, Some(Watts(60.0)));
    }

    #[test]
    fn stochastic_spikes_hit_the_requested_duty_roughly() {
        // duty = rate·mean / (1 + rate·mean); target 0.2 with mean 8 s.
        let plan = GridPlan::none().with_stochastic(StochasticGridEvent {
            kind: GridEventKind::PriceSpike { multiplier: 2.0 },
            start_rate: 0.2 / (0.8 * 8.0),
            mean_duration: Seconds(8.0),
        });
        let mut inj = GridInjector::new(plan, 99);
        let ticks = 20_000;
        let mut active = 0;
        for k in 0..ticks {
            let ag = inj.advance(Seconds(k as f64), Seconds(1.0));
            if ag.price_multiplier > 1.0 {
                active += 1;
            }
        }
        let duty = active as f64 / ticks as f64;
        assert!(
            (0.12..0.30).contains(&duty),
            "duty {duty} far from requested 0.2"
        );
    }

    #[test]
    fn stochastic_replay_is_deterministic() {
        let plan = GridPlan::none().with_stochastic(StochasticGridEvent {
            kind: GridEventKind::Curtailment {
                cap_w: Watts(3000.0),
                deadline_s: Seconds(10.0),
            },
            start_rate: 0.02,
            mean_duration: Seconds(20.0),
        });
        let mut a = GridInjector::new(plan.clone(), 42);
        let mut b = GridInjector::new(plan, 42);
        for k in 0..5_000 {
            let t = Seconds(k as f64);
            assert_eq!(a.advance(t, Seconds(1.0)), b.advance(t, Seconds(1.0)));
        }
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        let bad_cap = GridPlan::curtailment(Seconds(0.0), Seconds(1.0), Watts(0.0), Seconds(1.0));
        assert!(matches!(
            bad_cap.validate(),
            Err(GridPlanError::InvalidCurtailCap(_))
        ));
        let bad_mult = GridPlan::none().with_event(
            Seconds(0.0),
            Seconds(1.0),
            GridEventKind::PriceSpike { multiplier: 0.5 },
        );
        assert!(matches!(
            bad_mult.validate(),
            Err(GridPlanError::InvalidPriceMultiplier(_))
        ));
        let bad_reg = GridPlan::none().with_event(
            Seconds(0.0),
            Seconds(1.0),
            GridEventKind::FreqRegulation {
                delta_w: Watts(f64::NAN),
                duration_s: Seconds(5.0),
            },
        );
        assert!(matches!(
            bad_reg.validate(),
            Err(GridPlanError::InvalidRegulationDelta(_))
        ));
        let bad_rate = GridPlan::none().with_stochastic(StochasticGridEvent {
            kind: GridEventKind::PriceSpike { multiplier: 2.0 },
            start_rate: 0.0,
            mean_duration: Seconds(5.0),
        });
        assert!(matches!(
            bad_rate.validate(),
            Err(GridPlanError::InvalidStartRate(_))
        ));
        assert!(GridPlan::none().validate().is_ok());
        assert!(
            GridPlan::curtailment(Seconds(0.0), Seconds(1.0), Watts(3000.0), Seconds(0.0))
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn error_messages_name_the_offending_value() {
        let err = GridPlan::none()
            .with_event(
                Seconds(0.0),
                Seconds(1.0),
                GridEventKind::PriceSpike { multiplier: 0.5 },
            )
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("0.5"));
    }
}
