//! Deterministic pseudo-random noise for the plant models.
//!
//! The simulator must be bit-reproducible (DESIGN.md §6.3), so every noise
//! source is an explicitly-seeded generator. We embed a small xoshiro256++
//! implementation rather than pulling `rand` into this leaf crate; the
//! generator is used for *disturbance modeling*, not statistics-grade
//! sampling.

/// Seeded pseudo-random noise source (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct NoiseSource {
    s: [u64; 4],
    /// Cached second output of the Box–Muller pair.
    spare: Option<f64>,
}

impl NoiseSource {
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut sm = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        NoiseSource {
            s: [next(), next(), next(), next()],
            spare: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }
}

/// First-order (exponentially-correlated) disturbance process, used for
/// slowly-wandering quantities such as ambient temperature.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    noise: NoiseSource,
    /// Mean-reversion level.
    pub mean: f64,
    /// Mean-reversion rate, 1/s.
    pub theta: f64,
    /// Diffusion strength.
    pub sigma: f64,
    value: f64,
}

impl OrnsteinUhlenbeck {
    pub fn new(seed: u64, mean: f64, theta: f64, sigma: f64) -> Self {
        OrnsteinUhlenbeck {
            noise: NoiseSource::new(seed),
            mean,
            theta,
            sigma,
            value: mean,
        }
    }

    pub fn value(&self) -> f64 {
        self.value
    }

    /// Advance the process by `dt` seconds and return the new value.
    pub fn step(&mut self, dt: f64) -> f64 {
        let drift = self.theta * (self.mean - self.value) * dt;
        let diff = self.sigma * dt.sqrt() * self.noise.gaussian();
        self.value += drift + diff;
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = NoiseSource::new(123);
        let mut b = NoiseSource::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::new(1);
        let mut b = NoiseSource::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut n = NoiseSource::new(9);
        for _ in 0..10_000 {
            let u = n.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut n = NoiseSource::new(9);
        for _ in 0..1000 {
            let u = n.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut n = NoiseSource::new(4242);
        let k = 50_000;
        let xs: Vec<f64> = (0..k).map(|_| n.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / k as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut ou = OrnsteinUhlenbeck::new(7, 25.0, 0.5, 0.1);
        // Pull the state far away, then let it relax.
        for _ in 0..2000 {
            ou.step(1.0);
        }
        assert!((ou.value() - 25.0).abs() < 2.0);
    }

    #[test]
    fn ou_zero_sigma_is_deterministic_decay() {
        let mut ou = OrnsteinUhlenbeck::new(7, 10.0, 0.1, 0.0);
        // Start at the mean: stays exactly there.
        for _ in 0..50 {
            assert!((ou.step(1.0) - 10.0).abs() < 1e-12);
        }
    }
}
