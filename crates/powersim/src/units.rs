//! Strongly-typed physical units used throughout the power-infrastructure
//! models.
//!
//! All models run in `f64`; these newtypes exist to prevent unit confusion
//! at crate boundaries (watts vs watt-hours vs normalized frequency is the
//! classic source of silent power-model bugs). Arithmetic is implemented
//! only where it is physically meaningful: e.g. `Watts * Seconds` yields
//! energy, `WattHours / Watts` yields time, and adding `Watts` to
//! `WattHours` does not compile.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Electrical energy in watt-hours.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WattHours(pub f64);

/// Time duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

/// Processor core frequency normalized to the peak frequency of the
/// platform, i.e. `1.0` is the peak (2.0 GHz in the paper's testbed) and
/// `0.2` is the floor (400 MHz).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct NormFreq(pub f64);

/// CPU core utilization in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Utilization(pub f64);

pub const SECONDS_PER_HOUR: f64 = 3600.0;

impl Watts {
    pub const ZERO: Watts = Watts(0.0);

    /// Energy delivered when this power is sustained for `dt`.
    pub fn over(self, dt: Seconds) -> WattHours {
        WattHours(self.0 * dt.0 / SECONDS_PER_HOUR)
    }

    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    pub fn clamp(self, lo: Watts, hi: Watts) -> Watts {
        Watts(self.0.clamp(lo.0, hi.0))
    }

    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl WattHours {
    pub const ZERO: WattHours = WattHours(0.0);

    /// How long this much energy lasts when drained at `power`.
    ///
    /// Returns `Seconds(f64::INFINITY)` for non-positive drain.
    pub fn duration_at(self, power: Watts) -> Seconds {
        if power.0 <= 0.0 {
            Seconds(f64::INFINITY)
        } else {
            Seconds(self.0 / power.0 * SECONDS_PER_HOUR)
        }
    }

    pub fn max(self, other: WattHours) -> WattHours {
        WattHours(self.0.max(other.0))
    }

    pub fn min(self, other: WattHours) -> WattHours {
        WattHours(self.0.min(other.0))
    }
}

impl Seconds {
    pub const ZERO: Seconds = Seconds(0.0);

    pub fn minutes(m: f64) -> Seconds {
        Seconds(m * 60.0)
    }

    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }
}

impl NormFreq {
    /// The paper's DVFS floor: 400 MHz on a 2.0 GHz part.
    pub const FLOOR: NormFreq = NormFreq(0.2);
    /// Peak frequency.
    pub const PEAK: NormFreq = NormFreq(1.0);

    pub fn clamp(self, lo: NormFreq, hi: NormFreq) -> NormFreq {
        NormFreq(self.0.clamp(lo.0, hi.0))
    }

    /// Convert to megahertz given the platform peak.
    pub fn to_mhz(self, peak_mhz: f64) -> f64 {
        self.0 * peak_mhz
    }
}

impl Utilization {
    pub const IDLE: Utilization = Utilization(0.0);
    pub const FULL: Utilization = Utilization(1.0);

    /// Clamp into the physically valid `[0, 1]` range.
    pub fn saturate(self) -> Utilization {
        Utilization(self.0.clamp(0.0, 1.0))
    }
}

macro_rules! impl_linear_ops {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $t {
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, rhs: f64) -> $t {
                $t(self.0 * rhs)
            }
        }
        impl Mul<$t> for f64 {
            type Output = $t;
            fn mul(self, rhs: $t) -> $t {
                $t(self * rhs.0)
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            fn div(self, rhs: f64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl Div<$t> for $t {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $t) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t {
                $t(-self.0)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_linear_ops!(Watts);
impl_linear_ops!(WattHours);
impl_linear_ops!(Seconds);
impl_linear_ops!(NormFreq);
impl_linear_ops!(Utilization);

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1000.0 {
            write!(f, "{:.3} kW", self.0 / 1000.0)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

impl fmt::Display for WattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} Wh", self.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.1} min", self.0 / 60.0)
        } else {
            write!(f, "{:.1} s", self.0)
        }
    }
}

impl fmt::Display for NormFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}f", self.0)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        // 300 W for half an hour is 150 Wh.
        let e = Watts(300.0).over(Seconds(1800.0));
        assert!((e.0 - 150.0).abs() < 1e-12);
    }

    #[test]
    fn energy_duration_round_trip() {
        let e = WattHours(400.0);
        let t = e.duration_at(Watts(4800.0));
        // 400 Wh at 4.8 kW is exactly 5 minutes (the paper's UPS sizing).
        assert!((t.as_minutes() - 5.0).abs() < 1e-12);
        // Draining at that power for that long consumes exactly the capacity.
        let back = Watts(4800.0).over(t);
        assert!((back.0 - e.0).abs() < 1e-9);
    }

    #[test]
    fn duration_at_zero_power_is_infinite() {
        assert!(WattHours(1.0).duration_at(Watts(0.0)).0.is_infinite());
        assert!(WattHours(1.0).duration_at(Watts(-5.0)).0.is_infinite());
    }

    #[test]
    fn linear_ops() {
        assert_eq!(Watts(3.0) + Watts(4.0), Watts(7.0));
        assert_eq!(Watts(3.0) - Watts(4.0), Watts(-1.0));
        assert_eq!(Watts(3.0) * 2.0, Watts(6.0));
        assert_eq!(2.0 * Watts(3.0), Watts(6.0));
        assert_eq!(Watts(6.0) / 2.0, Watts(3.0));
        assert!((Watts(6.0) / Watts(3.0) - 2.0).abs() < 1e-15);
        assert_eq!(-Watts(2.0), Watts(-2.0));
        let mut w = Watts(1.0);
        w += Watts(2.0);
        w -= Watts(0.5);
        assert_eq!(w, Watts(2.5));
    }

    #[test]
    fn sums() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.5)].into_iter().sum();
        assert_eq!(total, Watts(6.5));
    }

    #[test]
    fn clamps_and_saturation() {
        assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(3.0)), Watts(3.0));
        assert_eq!(
            NormFreq(1.5).clamp(NormFreq::FLOOR, NormFreq::PEAK),
            NormFreq::PEAK
        );
        assert_eq!(Utilization(1.7).saturate(), Utilization::FULL);
        assert_eq!(Utilization(-0.3).saturate(), Utilization::IDLE);
    }

    #[test]
    fn norm_freq_to_mhz() {
        assert!((NormFreq(0.2).to_mhz(2000.0) - 400.0).abs() < 1e-12);
        assert!((NormFreq(1.0).to_mhz(2000.0) - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts(3200.0)), "3.200 kW");
        assert_eq!(format!("{}", Watts(150.0)), "150.0 W");
        assert_eq!(format!("{}", Seconds(90.0)), "1.5 min");
        assert_eq!(format!("{}", Seconds(30.0)), "30.0 s");
        assert_eq!(format!("{}", WattHours(400.0)), "400.0 Wh");
        assert_eq!(format!("{}", Utilization(0.75)), "75%");
    }

    #[test]
    fn minutes_helpers() {
        assert_eq!(Seconds::minutes(15.0).0, 900.0);
        assert!((Seconds(450.0).as_minutes() - 7.5).abs() < 1e-12);
    }
}
