//! A rack of servers and its power monitor.
//!
//! The rack is the unit SprintCon controls: the paper's evaluation runs
//! 16 servers behind one 3.2 kW circuit breaker with one shared UPS.

use crate::cpu::CoreRole;
use crate::noise::NoiseSource;
use crate::server::{Server, ServerSpec};
use crate::units::{NormFreq, Utilization, Watts};

/// Addresses one core in the rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId {
    pub server: usize,
    pub core: usize,
}

/// A rack of identical servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Rack {
    pub servers: Vec<Server>,
}

impl Rack {
    /// Build a rack of `n` servers from one spec, each with
    /// `interactive_cores` interactive cores (the rest batch).
    pub fn homogeneous(spec: ServerSpec, n: usize, interactive_cores: usize) -> Self {
        assert!(n > 0, "rack must contain at least one server");
        Rack {
            servers: (0..n)
                .map(|_| Server::new(spec.clone(), interactive_cores))
                .collect(),
        }
    }

    /// The paper's rack: 16 servers, 8 cores each, 4 interactive + 4 batch.
    pub fn paper_default() -> Self {
        Self::homogeneous(ServerSpec::paper_default(), 16, 4)
    }

    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// True (plant-model) total power of the rack, before fan/noise.
    pub fn power(&self) -> Watts {
        self.servers.iter().map(|s| s.power()).sum()
    }

    /// Maximum possible rack power (all cores peak, fully utilized).
    pub fn max_power(&self) -> Watts {
        let mut probe = self.clone();
        for s in probe.servers.iter_mut() {
            for c in s.cores.iter_mut() {
                c.freq = NormFreq::PEAK;
                c.util = Utilization::FULL;
            }
        }
        probe.power()
    }

    /// Minimum rack power (all idle).
    pub fn idle_power(&self) -> Watts {
        Watts(self.servers.iter().map(|s| s.spec.idle_watts).sum())
    }

    /// All cores of a role across the rack, in deterministic order.
    pub fn cores_with_role(&self, role: CoreRole) -> Vec<CoreId> {
        let mut out = Vec::new();
        for (si, s) in self.servers.iter().enumerate() {
            for ci in s.cores_with_role(role) {
                out.push(CoreId {
                    server: si,
                    core: ci,
                });
            }
        }
        out
    }

    pub fn count_role(&self, role: CoreRole) -> usize {
        self.servers.iter().map(|s| s.count_role(role)).sum()
    }

    pub fn set_freq(&mut self, id: CoreId, f: NormFreq) {
        self.servers[id.server].set_core_freq(id.core, f);
    }

    pub fn set_util(&mut self, id: CoreId, u: Utilization) {
        self.servers[id.server].cores[id.core].util = u.saturate();
    }

    pub fn freq(&self, id: CoreId) -> NormFreq {
        self.servers[id.server].cores[id.core].freq
    }

    pub fn util(&self, id: CoreId) -> Utilization {
        self.servers[id.server].cores[id.core].util
    }

    /// Pin every core of `role` to frequency `f` rack-wide.
    pub fn set_role_freq(&mut self, role: CoreRole, f: NormFreq) {
        for s in self.servers.iter_mut() {
            s.set_role_freq(role, f);
        }
    }

    /// Rack-wide mean frequency over cores of `role` (unweighted over
    /// cores), or `None` if there are none.
    pub fn mean_role_freq(&self, role: CoreRole) -> Option<NormFreq> {
        let ids = self.cores_with_role(role);
        if ids.is_empty() {
            return None;
        }
        let sum: f64 = ids.iter().map(|&id| self.freq(id).0).sum();
        Some(NormFreq(sum / ids.len() as f64))
    }

    /// Rack-wide mean utilization over cores of `role`.
    pub fn mean_role_util(&self, role: CoreRole) -> Option<Utilization> {
        let ids = self.cores_with_role(role);
        if ids.is_empty() {
            return None;
        }
        let sum: f64 = ids.iter().map(|&id| self.util(id).0).sum();
        Some(Utilization(sum / ids.len() as f64))
    }

    /// Per-server mean utilization of interactive cores — the `U` vector of
    /// Eq. (5).
    pub fn interactive_util_vector(&self) -> Vec<Utilization> {
        self.servers
            .iter()
            .map(|s| {
                s.mean_util(CoreRole::Interactive)
                    .unwrap_or(Utilization::IDLE)
            })
            .collect()
    }
}

/// Power monitor with multiplicative + additive measurement noise.
///
/// §V-A argues that un-modellable factors (fans, sensor error) are exactly
/// why feedback control is needed; the monitor is where that error enters
/// the loop.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    noise: NoiseSource,
    /// Standard deviation of multiplicative error (e.g. 0.01 ≙ 1%).
    pub rel_sigma: f64,
    /// Standard deviation of additive error in watts.
    pub abs_sigma: f64,
}

impl PowerMonitor {
    pub fn new(seed: u64, rel_sigma: f64, abs_sigma: f64) -> Self {
        PowerMonitor {
            noise: NoiseSource::new(seed),
            rel_sigma,
            abs_sigma,
        }
    }

    /// An ideal monitor (tests, idealized baselines).
    pub fn ideal() -> Self {
        Self::new(0, 0.0, 0.0)
    }

    /// Sample a measurement of the true power.
    pub fn measure(&mut self, truth: Watts) -> Watts {
        let rel = 1.0 + self.noise.gaussian() * self.rel_sigma;
        let abs = self.noise.gaussian() * self.abs_sigma;
        Watts((truth.0 * rel + abs).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rack_power_envelope() {
        let rack = Rack::paper_default();
        // 16 × 150 W idle = 2.4 kW; 16 × 300 W full = 4.8 kW (§VI-A).
        assert!((rack.idle_power().0 - 2400.0).abs() < 1e-9);
        assert!((rack.max_power().0 - 4800.0).abs() < 1e-6);
        // Fresh rack is idle.
        assert!((rack.power().0 - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn role_census() {
        let rack = Rack::paper_default();
        assert_eq!(rack.count_role(CoreRole::Interactive), 64);
        assert_eq!(rack.count_role(CoreRole::Batch), 64);
        assert_eq!(rack.cores_with_role(CoreRole::Batch).len(), 64);
    }

    #[test]
    fn core_addressing_round_trip() {
        let mut rack = Rack::paper_default();
        let id = CoreId { server: 7, core: 5 };
        rack.set_freq(id, NormFreq(0.5));
        rack.set_util(id, Utilization(0.7));
        assert!((rack.freq(id).0 - 0.5).abs() < 1e-12);
        assert!((rack.util(id).0 - 0.7).abs() < 1e-12);
        // Saturation on write.
        rack.set_util(id, Utilization(1.4));
        assert_eq!(rack.util(id), Utilization::FULL);
    }

    #[test]
    fn rack_means() {
        let mut rack = Rack::paper_default();
        rack.set_role_freq(CoreRole::Batch, NormFreq(0.4));
        assert!((rack.mean_role_freq(CoreRole::Batch).unwrap().0 - 0.4).abs() < 1e-12);
        for id in rack.cores_with_role(CoreRole::Interactive) {
            rack.set_util(id, Utilization(0.55));
        }
        assert!((rack.mean_role_util(CoreRole::Interactive).unwrap().0 - 0.55).abs() < 1e-12);
        let v = rack.interactive_util_vector();
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|u| (u.0 - 0.55).abs() < 1e-12));
    }

    #[test]
    fn ideal_monitor_is_exact() {
        let mut m = PowerMonitor::ideal();
        assert_eq!(m.measure(Watts(1234.5)), Watts(1234.5));
    }

    #[test]
    fn noisy_monitor_statistics() {
        let mut m = PowerMonitor::new(42, 0.01, 5.0);
        let truth = Watts(3000.0);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| m.measure(truth).0).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // Unbiased within half a percent.
        assert!((mean - truth.0).abs() < truth.0 * 0.005, "mean={mean}");
        // And actually noisy.
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(var.sqrt() > 5.0);
    }

    #[test]
    fn monitor_never_reports_negative() {
        let mut m = PowerMonitor::new(7, 2.0, 100.0); // absurd noise
        for _ in 0..1000 {
            assert!(m.measure(Watts(10.0)).0 >= 0.0);
        }
    }
}
