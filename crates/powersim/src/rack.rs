//! A rack of servers and its power monitor — structure-of-arrays substrate.
//!
//! The rack is the unit SprintCon controls: the paper's evaluation runs
//! 16 servers behind one 3.2 kW circuit breaker with one shared UPS.
//!
//! # Substrate layout
//!
//! Per-core state lives in [`RackState`]: flat `Vec<f64>` slabs (one lane
//! per core) partitioned by role. The interactive block comes first, then
//! the batch block, each server-major:
//!
//! ```text
//! lane:   0 .. nI                    nI .. nI+nB
//!         [srv0 ints][srv1 ints]...  [srv0 batch][srv1 batch]...
//! ```
//!
//! where `nI = num_servers × interactive_per_server` and
//! `nB = num_servers × batch_per_server`. Controllers read and write whole
//! roles through contiguous [`RoleView`]/[`RoleViewMut`] slices; the
//! batched [`Rack::power`] pass walks the slabs with `chunks_exact` (the
//! vectorization idiom of `control::linalg`) instead of dispatching
//! through per-server objects.
//!
//! Bit-compatibility invariant: within one server the old
//! array-of-structs substrate ordered cores interactive-first, so summing
//! each server's interactive lanes then its batch lanes reproduces the
//! exact floating-point summation order of the pre-rework
//! `Server::power`. [`Rack::power_reference`] keeps the scalar per-core
//! loop alive as the executable spec of that ordering; property tests
//! assert the batched pass is bit-identical to it.

use crate::cpu::{CoreRole, FreqScale};
use crate::noise::NoiseSource;
use crate::server::ServerSpec;
use crate::thermal::ThermalModel;
use crate::units::{NormFreq, Seconds, Utilization, Watts};
use std::ops::Range;

/// Addresses one core in the rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId {
    pub server: usize,
    pub core: usize,
}

/// The mutable per-core/per-server state of a rack, as contiguous slabs.
///
/// `freq`/`util` have one lane per core in the role-partitioned order
/// described in the module docs; `power`/`temp_c` have one lane per
/// server. Kept public for zero-cost inspection; mutate through the
/// [`Rack`] API so quantization and role ranges stay consistent.
#[derive(Debug, Clone, PartialEq)]
pub struct RackState {
    /// Normalized per-core frequency, role-partitioned lanes.
    pub freq: Vec<f64>,
    /// Per-core utilization, role-partitioned lanes.
    pub util: Vec<f64>,
    /// Last computed per-server power, W (refreshed by
    /// [`Rack::update_server_powers`]; zero for unpowered servers).
    pub power: Vec<f64>,
    /// Per-server die temperature, °C (stepped by [`Rack::step_thermal`]).
    pub temp_c: Vec<f64>,
}

/// Why a rack configuration was rejected by [`RackBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum RackConfigError {
    /// At least one server is required.
    NoServers,
    /// The server spec declares zero cores.
    NoCores,
    /// More interactive cores requested than the server has.
    InteractiveExceedsCores {
        cores_per_server: usize,
        interactive: usize,
    },
}

impl std::fmt::Display for RackConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RackConfigError::NoServers => write!(f, "rack must contain at least one server"),
            RackConfigError::NoCores => write!(f, "server spec must have at least one core"),
            RackConfigError::InteractiveExceedsCores {
                cores_per_server,
                interactive,
            } => write!(
                f,
                "{interactive} interactive cores do not fit on a \
                 {cores_per_server}-core server"
            ),
        }
    }
}

impl std::error::Error for RackConfigError {}

/// Validated builder for [`Rack`], seeded with the paper's §VI-A rack
/// (16 servers, 8 cores each, 4 interactive + 4 batch).
///
/// ```
/// use powersim::rack::Rack;
///
/// let rack = Rack::builder()
///     .num_servers(4)
///     .interactive_cores_per_server(2)
///     .build()
///     .expect("valid rack");
/// assert_eq!(rack.num_servers(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct RackBuilder {
    spec: ServerSpec,
    num_servers: usize,
    interactive_cores_per_server: usize,
    thermal: ThermalModel,
}

impl RackBuilder {
    /// Paper defaults (§VI-A).
    pub fn new() -> Self {
        RackBuilder {
            spec: ServerSpec::paper_default(),
            num_servers: 16,
            interactive_cores_per_server: 4,
            thermal: ThermalModel::server_class(),
        }
    }

    pub fn server(mut self, spec: ServerSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn num_servers(mut self, n: usize) -> Self {
        self.num_servers = n;
        self
    }

    pub fn interactive_cores_per_server(mut self, n: usize) -> Self {
        self.interactive_cores_per_server = n;
        self
    }

    /// Per-server processor thermal model (die-temperature slab).
    pub fn thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = thermal;
        self
    }

    /// Validate and build the rack.
    pub fn build(self) -> Result<Rack, RackConfigError> {
        if self.num_servers == 0 {
            return Err(RackConfigError::NoServers);
        }
        if self.spec.num_cores == 0 {
            return Err(RackConfigError::NoCores);
        }
        if self.interactive_cores_per_server > self.spec.num_cores {
            return Err(RackConfigError::InteractiveExceedsCores {
                cores_per_server: self.spec.num_cores,
                interactive: self.interactive_cores_per_server,
            });
        }
        let n = self.num_servers;
        let lanes = n * self.spec.num_cores;
        let ambient = self.thermal.ambient_c;
        let idle = self.spec.idle_watts;
        Ok(Rack {
            spec: self.spec,
            num_servers: n,
            interactive_per_server: self.interactive_cores_per_server,
            thermal: self.thermal,
            state: RackState {
                freq: vec![NormFreq::PEAK.0; lanes],
                util: vec![Utilization::IDLE.0; lanes],
                power: vec![idle; n],
                temp_c: vec![ambient; n],
            },
            scratch: PowerScratch::default(),
        })
    }
}

impl Default for RackBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Read-only view of one role's lanes: contiguous frequency/utilization
/// slices, server-major (`per_server` lanes per server).
#[derive(Debug, Clone, Copy)]
pub struct RoleView<'a> {
    pub freqs: &'a [f64],
    pub utils: &'a [f64],
    per_server: usize,
}

impl<'a> RoleView<'a> {
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Lanes per server in this role block.
    pub fn per_server(&self) -> usize {
        self.per_server
    }

    /// This server's lane range within the role block.
    pub fn server_range(&self, server: usize) -> Range<usize> {
        server * self.per_server..(server + 1) * self.per_server
    }

    pub fn server_freqs(&self, server: usize) -> &'a [f64] {
        &self.freqs[self.server_range(server)]
    }

    pub fn server_utils(&self, server: usize) -> &'a [f64] {
        &self.utils[self.server_range(server)]
    }

    /// Mean frequency over the role, `None` if the role is empty.
    pub fn mean_freq(&self) -> Option<NormFreq> {
        mean(self.freqs).map(NormFreq)
    }

    /// Mean utilization over the role, `None` if the role is empty.
    pub fn mean_util(&self) -> Option<Utilization> {
        mean(self.utils).map(Utilization)
    }
}

/// Mutable view of one role's lanes. Raw slab access is public (the
/// engine's batched passes write whole servers at a time); `set`/`fill`
/// go through the DVFS ladder like the per-core setters.
#[derive(Debug)]
pub struct RoleViewMut<'a> {
    pub freqs: &'a mut [f64],
    pub utils: &'a mut [f64],
    scale: FreqScale,
    per_server: usize,
}

impl RoleViewMut<'_> {
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    pub fn per_server(&self) -> usize {
        self.per_server
    }

    /// The DVFS ladder frequencies snap to.
    pub fn scale(&self) -> FreqScale {
        self.scale
    }

    /// Quantize `f` onto the ladder without writing it anywhere.
    pub fn quantize(&self, f: NormFreq) -> NormFreq {
        self.scale.quantize(f)
    }

    /// Set one lane's frequency through the DVFS ladder.
    pub fn set_freq(&mut self, lane: usize, f: NormFreq) {
        self.freqs[lane] = self.scale.quantize(f).0;
    }

    /// Pin every lane of the role to `f` (quantized once).
    pub fn fill_freq(&mut self, f: NormFreq) {
        let q = self.scale.quantize(f).0;
        self.freqs.fill(q);
    }

    /// Write one frequency per lane through the DVFS ladder in a single
    /// vectorizable pass. A non-finite request holds that lane's current
    /// frequency (real firmware rejects garbage rather than programming
    /// it); each written lane lands on exactly the value
    /// [`RoleViewMut::set_freq`] would produce.
    #[inline]
    pub fn set_freqs(&mut self, want: &[f64]) {
        assert_eq!(want.len(), self.freqs.len(), "one frequency per lane");
        let scale = self.scale;
        // Non-finite lanes keep their old value via a select rather than
        // a skipped store — the unconditional store lets the loop
        // vectorize.
        if scale.step <= 0.0 {
            for (dst, &f) in self.freqs.iter_mut().zip(want) {
                let c = f.clamp(scale.min.0, scale.max.0);
                *dst = if f.is_finite() { c } else { *dst };
            }
        } else {
            for (dst, &f) in self.freqs.iter_mut().zip(want) {
                let c = f.clamp(scale.min.0, scale.max.0);
                let steps = ((c - scale.min.0) / scale.step).round();
                let q = (scale.min.0 + steps * scale.step).min(scale.max.0);
                *dst = if f.is_finite() { q } else { *dst };
            }
        }
    }

    /// Set one lane's utilization, saturating into `[0, 1]`.
    pub fn set_util(&mut self, lane: usize, u: Utilization) {
        self.utils[lane] = u.saturate().0;
    }
}

/// A rack of identical servers, stored as SoA slabs.
/// Reusable buffers for the batched power pass
/// ([`Rack::update_server_powers`]). Not semantic state: contents are
/// transient by-products of the last pass, so equality ignores them.
#[derive(Debug, Clone, Default)]
struct PowerScratch {
    at: Vec<f64>,
    tt: Vec<f64>,
    act: Vec<f64>,
    tpv: Vec<f64>,
}

impl PartialEq for PowerScratch {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Rack {
    spec: ServerSpec,
    num_servers: usize,
    interactive_per_server: usize,
    thermal: ThermalModel,
    state: RackState,
    scratch: PowerScratch,
}

impl Rack {
    /// Start building a rack from the paper defaults.
    pub fn builder() -> RackBuilder {
        RackBuilder::new()
    }

    // -- geometry ------------------------------------------------------

    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The shared server description (rack is homogeneous).
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    pub fn cores_per_server(&self) -> usize {
        self.spec.num_cores
    }

    pub fn interactive_cores_per_server(&self) -> usize {
        self.interactive_per_server
    }

    pub fn batch_cores_per_server(&self) -> usize {
        self.spec.num_cores - self.interactive_per_server
    }

    pub fn num_cores(&self) -> usize {
        self.num_servers * self.spec.num_cores
    }

    /// The raw SoA state.
    pub fn state(&self) -> &RackState {
        &self.state
    }

    fn per_server(&self, role: CoreRole) -> usize {
        match role {
            CoreRole::Interactive => self.interactive_per_server,
            CoreRole::Batch => self.batch_cores_per_server(),
        }
    }

    /// Lane range of `role`'s block in the `freq`/`util` slabs.
    pub fn role_range(&self, role: CoreRole) -> Range<usize> {
        let ni = self.num_servers * self.interactive_per_server;
        match role {
            CoreRole::Interactive => 0..ni,
            CoreRole::Batch => ni..self.num_cores(),
        }
    }

    /// Role of a core (cores `0..interactive_per_server` are interactive).
    pub fn role_of(&self, id: CoreId) -> CoreRole {
        if id.core < self.interactive_per_server {
            CoreRole::Interactive
        } else {
            CoreRole::Batch
        }
    }

    /// SoA lane of a core.
    pub fn lane(&self, id: CoreId) -> usize {
        debug_assert!(id.server < self.num_servers && id.core < self.spec.num_cores);
        let ipc = self.interactive_per_server;
        if id.core < ipc {
            id.server * ipc + id.core
        } else {
            self.num_servers * ipc + id.server * self.batch_cores_per_server() + (id.core - ipc)
        }
    }

    /// All cores of a role across the rack, in deterministic (server-major)
    /// order. Allocates; hot paths should use [`Rack::role`] instead.
    pub fn cores_with_role(&self, role: CoreRole) -> Vec<CoreId> {
        let per = self.per_server(role);
        let base = match role {
            CoreRole::Interactive => 0,
            CoreRole::Batch => self.interactive_per_server,
        };
        let mut out = Vec::with_capacity(self.num_servers * per);
        for s in 0..self.num_servers {
            for c in 0..per {
                out.push(CoreId {
                    server: s,
                    core: base + c,
                });
            }
        }
        out
    }

    pub fn count_role(&self, role: CoreRole) -> usize {
        self.num_servers * self.per_server(role)
    }

    // -- per-core accessors (lane math; hot paths use the views) -------

    pub fn set_freq(&mut self, id: CoreId, f: NormFreq) {
        let lane = self.lane(id);
        self.state.freq[lane] = self.spec.freq_scale.quantize(f).0;
    }

    /// Write a frequency lane without the DVFS ladder snap — ideal
    /// actuation, used by the oracle baselines and tests.
    pub fn set_freq_unquantized(&mut self, id: CoreId, f: NormFreq) {
        let lane = self.lane(id);
        self.state.freq[lane] = f.0;
    }

    pub fn set_util(&mut self, id: CoreId, u: Utilization) {
        let lane = self.lane(id);
        self.state.util[lane] = u.saturate().0;
    }

    pub fn freq(&self, id: CoreId) -> NormFreq {
        NormFreq(self.state.freq[self.lane(id)])
    }

    pub fn util(&self, id: CoreId) -> Utilization {
        Utilization(self.state.util[self.lane(id)])
    }

    /// Replace the DVFS ladder rack-wide (e.g. `FreqScale::continuous()`
    /// for ideal-actuation probes).
    pub fn set_freq_scale(&mut self, scale: FreqScale) {
        self.spec.freq_scale = scale;
    }

    // -- role views ----------------------------------------------------

    /// Contiguous read view of one role's lanes.
    #[inline]
    pub fn role(&self, role: CoreRole) -> RoleView<'_> {
        let r = self.role_range(role);
        RoleView {
            freqs: &self.state.freq[r.clone()],
            utils: &self.state.util[r],
            per_server: self.per_server(role),
        }
    }

    /// Contiguous write view of one role's lanes.
    #[inline]
    pub fn role_mut(&mut self, role: CoreRole) -> RoleViewMut<'_> {
        let r = self.role_range(role);
        let per_server = self.per_server(role);
        RoleViewMut {
            freqs: &mut self.state.freq[r.clone()],
            utils: &mut self.state.util[r],
            scale: self.spec.freq_scale,
            per_server,
        }
    }

    /// Pin every core of `role` to frequency `f` rack-wide.
    #[inline]
    pub fn set_role_freq(&mut self, role: CoreRole, f: NormFreq) {
        self.role_mut(role).fill_freq(f);
    }

    /// Rack-wide mean frequency over cores of `role` (unweighted over
    /// cores), or `None` if there are none.
    pub fn mean_role_freq(&self, role: CoreRole) -> Option<NormFreq> {
        self.role(role).mean_freq()
    }

    /// Rack-wide mean utilization over cores of `role`.
    pub fn mean_role_util(&self, role: CoreRole) -> Option<Utilization> {
        self.role(role).mean_util()
    }

    /// Per-server mean utilization of interactive cores — the `U` vector
    /// of Eq. (5) — written into `out` (cleared first; no per-call
    /// allocation once `out` has capacity).
    #[inline]
    pub fn interactive_utils_into(&self, out: &mut Vec<Utilization>) {
        let ipc = self.interactive_per_server;
        if ipc == 0 {
            out.clear();
            out.resize(self.num_servers, Utilization::IDLE);
            return;
        }
        // Every slot is overwritten below, so stale contents of a reused
        // buffer never leak and the resize's default-fill memset is
        // skipped on the steady-state (len already correct) path.
        out.resize(self.num_servers, Utilization::IDLE);
        let v = self.role(CoreRole::Interactive);
        // Same per-server summation order as the pre-rework
        // `Server::mean_util`. When the row width is a power of two its
        // reciprocal is exact, so the multiply returns bit-identical
        // quotients while pipelining better than the divide.
        if ipc.is_power_of_two() {
            let inv = 1.0 / ipc as f64;
            for (dst, server) in out.iter_mut().zip(v.utils.chunks_exact(ipc)) {
                let sum: f64 = server.iter().sum();
                *dst = Utilization(sum * inv);
            }
        } else {
            for (dst, server) in out.iter_mut().zip(v.utils.chunks_exact(ipc)) {
                let sum: f64 = server.iter().sum();
                *dst = Utilization(sum / ipc as f64);
            }
        }
    }

    /// Per-server mean interactive frequency (the `f_i` driving the
    /// interactive tier), `NormFreq::PEAK` where a server has no
    /// interactive cores. Written into `out` (cleared first).
    #[inline]
    pub fn interactive_freqs_into(&self, out: &mut Vec<NormFreq>) {
        let ipc = self.interactive_per_server;
        if ipc == 0 {
            out.clear();
            out.resize(self.num_servers, NormFreq::PEAK);
            return;
        }
        // Every slot is overwritten below (see `interactive_utils_into`).
        out.resize(self.num_servers, NormFreq::PEAK);
        let v = self.role(CoreRole::Interactive);
        // Power-of-two row widths take the exact-reciprocal multiply
        // (bit-identical to the divide, see `interactive_utils_into`).
        if ipc.is_power_of_two() {
            let inv = 1.0 / ipc as f64;
            for (dst, server) in out.iter_mut().zip(v.freqs.chunks_exact(ipc)) {
                let sum: f64 = server.iter().sum();
                *dst = NormFreq(sum * inv);
            }
        } else {
            for (dst, server) in out.iter_mut().zip(v.freqs.chunks_exact(ipc)) {
                let sum: f64 = server.iter().sum();
                *dst = NormFreq(sum / ipc as f64);
            }
        }
    }

    // -- batched power pass --------------------------------------------

    /// True (plant-model) total power of the rack, before fan/noise.
    ///
    /// One batched pass over the SoA slabs; bit-identical to the scalar
    /// per-core reference ([`Rack::power_reference`]).
    pub fn power(&self) -> Watts {
        Watts(self.fold_server_powers(None, |_, _| {}))
    }

    /// Total power with unpowered servers (crash faults, brownouts)
    /// contributing nothing — the same filtered summation order as the
    /// pre-rework per-server path.
    pub fn power_masked(&self, powered: &[bool]) -> Watts {
        Watts(self.fold_server_powers(Some(powered), |_, _| {}))
    }

    /// Batched power pass that also refreshes the per-server `power`
    /// slab (zero for unpowered servers). Returns the rack total.
    ///
    /// This is the engine's per-tick path. It runs in three passes over
    /// persistent scratch buffers:
    ///   A. per-lane active-power and throughput terms over the
    ///      contiguous role blocks — branch-free, no cross-lane
    ///      dependency, so LLVM vectorizes it;
    ///   B. per-server folds of those terms, strictly in lane order
    ///      (interactive row then batch row) — pure adds with no calls,
    ///      so the chains of different servers overlap in the
    ///      out-of-order core;
    ///   C. the `powf`-bearing non-CPU term and the rack total,
    ///      strictly in server order.
    /// Every term performs the identical operations of
    /// `CorePowerLaw::active_power`, and every sum folds in the
    /// identical order as the pre-rework per-server walk — the
    /// bit-identity contract behind the committed golden digests (FP
    /// addition is never reassociated). Property tests pin this path,
    /// [`Rack::power`], and [`Rack::power_reference`] to the same bits.
    #[inline]
    pub fn update_server_powers(&mut self, powered: Option<&[bool]>) -> Watts {
        let ipc = self.interactive_per_server;
        let bpc = self.batch_cores_per_server();
        let ni = self.num_servers * ipc;
        let law = self.spec.core_law;
        let lin = 1.0 - law.cubic_fraction;
        let cores = self.spec.num_cores as f64;
        // `fh * fh * fh` is the exact expansion `powi(3)` lowers to —
        // written out so the loop vectorizes (the `powi` intrinsic
        // defeats the auto-vectorizer); bits are unchanged.
        let term = |f: f64, u: f64| {
            let fh = f.clamp(0.0, 1.0);
            let shape = law.cubic_fraction * (fh * fh * fh) + lin * fh;
            law.peak_active_watts * shape * u.clamp(0.0, 1.0)
        };
        let scr = &mut self.scratch;
        let nlanes = self.state.freq.len();
        scr.at.resize(nlanes, 0.0);
        scr.tt.resize(nlanes, 0.0);
        // Pass A: one sweep over the full lane slab (both role blocks are
        // contiguous in it).
        for ((a, t), (&f, &u)) in scr
            .at
            .iter_mut()
            .zip(scr.tt.iter_mut())
            .zip(self.state.freq.iter().zip(&self.state.util))
        {
            *a = term(f, u);
            *t = f * u;
        }
        // Pass B, as two role sweeps over the per-server slots: the
        // first sweep folds each interactive row in registers and
        // stores, the second resumes each chain from the stored value
        // and folds the batch row on top. The resulting per-server sum
        // is the single interactive-then-batch serial chain of the
        // per-server walk, while `chunks_exact` keeps the inner loops
        // free of bounds checks and degenerate role sizes (ipc or bpc
        // of 0) simply skip a sweep.
        scr.act.resize(self.num_servers, 0.0);
        scr.tpv.resize(self.num_servers, 0.0);
        if ipc == 0 || bpc == 0 {
            scr.act.fill(0.0);
            scr.tpv.fill(0.0);
        }
        let (ai, ab) = scr.at.split_at(ni);
        let (ti, tb) = scr.tt.split_at(ni);
        if ipc > 0 {
            for ((act, tpv), (ra, rt)) in scr
                .act
                .iter_mut()
                .zip(scr.tpv.iter_mut())
                .zip(ai.chunks_exact(ipc).zip(ti.chunks_exact(ipc)))
            {
                let (mut a0, mut t0) = (0.0, 0.0);
                for (&a, &t) in ra.iter().zip(rt) {
                    a0 += a;
                    t0 += t;
                }
                *act = a0;
                *tpv = t0;
            }
        }
        if bpc > 0 {
            for ((act, tpv), (ra, rt)) in scr
                .act
                .iter_mut()
                .zip(scr.tpv.iter_mut())
                .zip(ab.chunks_exact(bpc).zip(tb.chunks_exact(bpc)))
            {
                let (mut a0, mut t0) = (*act, *tpv);
                for (&a, &t) in ra.iter().zip(rt) {
                    a0 += a;
                    t0 += t;
                }
                *act = a0;
                *tpv = t0;
            }
        }
        // Pass C. The powered mask is matched once outside the loop and
        // zipped in, so the hot loop carries no per-server Option
        // dispatch or bounds checks.
        let slab = &mut self.state.power;
        slab.resize(self.num_servers, 0.0);
        let spec = &self.spec;
        let mut total = 0.0;
        match powered {
            Some(pw) => {
                assert_eq!(pw.len(), self.num_servers, "one powered flag per server");
                for ((slot, (&a, &t)), &on) in
                    slab.iter_mut().zip(scr.act.iter().zip(&scr.tpv)).zip(pw)
                {
                    if !on {
                        *slot = 0.0;
                        continue;
                    }
                    let p = spec.idle_watts + a + spec.noncpu_power(t / cores);
                    *slot = p;
                    total += p;
                }
            }
            None => {
                for (slot, (&a, &t)) in slab.iter_mut().zip(scr.act.iter().zip(&scr.tpv)) {
                    let p = spec.idle_watts + a + spec.noncpu_power(t / cores);
                    *slot = p;
                    total += p;
                }
            }
        }
        Watts(total)
    }

    /// Last computed per-server powers, W (see
    /// [`Rack::update_server_powers`]).
    pub fn server_powers(&self) -> &[f64] {
        &self.state.power
    }

    /// Shared batched kernel: walks both role blocks with `chunks_exact`
    /// per-server rows, preserving the exact per-server
    /// interactive-then-batch FP summation order of the AoS substrate.
    fn fold_server_powers(
        &self,
        powered: Option<&[bool]>,
        mut record: impl FnMut(usize, f64),
    ) -> f64 {
        let ipc = self.interactive_per_server;
        let bpc = self.batch_cores_per_server();
        let ni = self.num_servers * ipc;
        let (fi, fb) = self.state.freq.split_at(ni);
        let (ui, ub) = self.state.util.split_at(ni);
        // Hoisted law constants: every per-lane expression below performs
        // the identical operations, in the identical order, as
        // `CorePowerLaw::active_power` — the bit-identity contract behind
        // the committed golden digests.
        let law = self.spec.core_law;
        let lin = 1.0 - law.cubic_fraction;
        let cores = self.spec.num_cores as f64;
        let mut total = 0.0;
        for s in 0..self.num_servers {
            if powered.is_some_and(|p| !p[s]) {
                record(s, 0.0);
                continue;
            }
            let (rfi, rui) = (&fi[s * ipc..(s + 1) * ipc], &ui[s * ipc..(s + 1) * ipc]);
            let (rfb, rub) = (&fb[s * bpc..(s + 1) * bpc], &ub[s * bpc..(s + 1) * bpc]);
            let mut active = 0.0;
            let mut tp = 0.0;
            for (rf, ru) in [(rfi, rui), (rfb, rub)] {
                for (&f, &u) in rf.iter().zip(ru) {
                    let fh = f.clamp(0.0, 1.0);
                    let shape = law.cubic_fraction * fh.powi(3) + lin * fh;
                    active += law.peak_active_watts * shape * u.clamp(0.0, 1.0);
                    tp += f * u;
                }
            }
            let mean_tp = tp / cores;
            let p = self.spec.idle_watts + active + self.spec.noncpu_power(mean_tp);
            record(s, p);
            total += p;
        }
        total
    }

    /// Scalar per-core reference power — the executable spec of the
    /// pre-rework AoS summation order. Property tests assert
    /// [`Rack::power`] is bit-identical to this; it is not a hot path.
    pub fn power_reference(&self) -> Watts {
        self.power_reference_masked(&vec![true; self.num_servers])
    }

    /// [`Rack::power_reference`] with unpowered servers skipped — the
    /// scalar mirror of [`Rack::power_masked`].
    pub fn power_reference_masked(&self, powered: &[bool]) -> Watts {
        let mut total = Watts::ZERO;
        for (s, &on) in powered.iter().enumerate().take(self.num_servers) {
            if !on {
                continue;
            }
            let mut active = 0.0;
            for c in 0..self.spec.num_cores {
                let id = CoreId { server: s, core: c };
                active += self
                    .spec
                    .core_law
                    .active_power(self.freq(id), self.util(id));
            }
            let mut tp = 0.0;
            for c in 0..self.spec.num_cores {
                let id = CoreId { server: s, core: c };
                tp += self.freq(id).0 * self.util(id).0;
            }
            let mean_tp = tp / self.spec.num_cores as f64;
            total += Watts(self.spec.idle_watts + active + self.spec.noncpu_power(mean_tp));
        }
        total
    }

    /// Maximum possible rack power (all cores peak, fully utilized).
    pub fn max_power(&self) -> Watts {
        let mut probe = self.clone();
        probe.state.freq.fill(NormFreq::PEAK.0);
        probe.state.util.fill(Utilization::FULL.0);
        probe.power()
    }

    /// Minimum rack power (all idle).
    pub fn idle_power(&self) -> Watts {
        // Fold rather than multiply: bit-identical to the pre-rework
        // per-server summation.
        let mut total = 0.0;
        for _ in 0..self.num_servers {
            total += self.spec.idle_watts;
        }
        Watts(total)
    }

    // -- thermal slab --------------------------------------------------

    /// The per-server processor thermal model (shared parameters; state
    /// lives in the `temp_c` slab).
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Per-server die temperatures, °C.
    pub fn die_temps(&self) -> &[f64] {
        &self.state.temp_c
    }

    /// Advance every server's die temperature by `dt` at the last
    /// computed per-server power (exact exponential integration of the
    /// lumped RC dynamics — stable for any `dt`).
    #[inline]
    pub fn step_thermal(&mut self, dt: Seconds) {
        let a = (-dt.0 / self.thermal.tau().0).exp();
        let r = self.thermal.resistance;
        let amb = self.thermal.ambient_c;
        for (t, &p) in self.state.temp_c.iter_mut().zip(&self.state.power) {
            let target = amb + r * p;
            *t = target + (*t - target) * a;
        }
    }

    /// Hottest die in the rack, °C.
    pub fn max_die_temp(&self) -> f64 {
        self.state
            .temp_c
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Power monitor with multiplicative + additive measurement noise.
///
/// §V-A argues that un-modellable factors (fans, sensor error) are exactly
/// why feedback control is needed; the monitor is where that error enters
/// the loop.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    noise: NoiseSource,
    /// Standard deviation of multiplicative error (e.g. 0.01 ≙ 1%).
    pub rel_sigma: f64,
    /// Standard deviation of additive error in watts.
    pub abs_sigma: f64,
}

impl PowerMonitor {
    pub fn new(seed: u64, rel_sigma: f64, abs_sigma: f64) -> Self {
        PowerMonitor {
            noise: NoiseSource::new(seed),
            rel_sigma,
            abs_sigma,
        }
    }

    /// An ideal monitor (tests, idealized baselines).
    pub fn ideal() -> Self {
        Self::new(0, 0.0, 0.0)
    }

    /// Sample a measurement of the true power.
    pub fn measure(&mut self, truth: Watts) -> Watts {
        let rel = 1.0 + self.noise.gaussian() * self.rel_sigma;
        let abs = self.noise.gaussian() * self.abs_sigma;
        Watts((truth.0 * rel + abs).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_rack() -> Rack {
        Rack::builder().build().expect("paper rack is valid")
    }

    #[test]
    fn paper_rack_power_envelope() {
        let rack = paper_rack();
        // 16 × 150 W idle = 2.4 kW; 16 × 300 W full = 4.8 kW (§VI-A).
        assert!((rack.idle_power().0 - 2400.0).abs() < 1e-9);
        assert!((rack.max_power().0 - 4800.0).abs() < 1e-6);
        // Fresh rack is idle.
        assert!((rack.power().0 - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn role_census() {
        let rack = paper_rack();
        assert_eq!(rack.count_role(CoreRole::Interactive), 64);
        assert_eq!(rack.count_role(CoreRole::Batch), 64);
        assert_eq!(rack.cores_with_role(CoreRole::Batch).len(), 64);
        assert_eq!(rack.role(CoreRole::Batch).len(), 64);
        assert_eq!(rack.role_range(CoreRole::Interactive), 0..64);
        assert_eq!(rack.role_range(CoreRole::Batch), 64..128);
    }

    #[test]
    fn lane_mapping_round_trips() {
        let rack = paper_rack();
        let mut seen = vec![false; rack.num_cores()];
        for s in 0..16 {
            for c in 0..8 {
                let id = CoreId { server: s, core: c };
                let lane = rack.lane(id);
                assert!(!seen[lane], "lane {lane} mapped twice");
                seen[lane] = true;
                let role = rack.role_of(id);
                let range = rack.role_range(role);
                assert!(range.contains(&lane));
            }
        }
        assert!(seen.iter().all(|&s| s), "every lane addressed");
    }

    #[test]
    fn core_addressing_round_trip() {
        let mut rack = paper_rack();
        let id = CoreId { server: 7, core: 5 };
        rack.set_freq(id, NormFreq(0.5));
        rack.set_util(id, Utilization(0.7));
        assert!((rack.freq(id).0 - 0.5).abs() < 1e-12);
        assert!((rack.util(id).0 - 0.7).abs() < 1e-12);
        // Saturation on write.
        rack.set_util(id, Utilization(1.4));
        assert_eq!(rack.util(id), Utilization::FULL);
        // Quantization on write, bypassed by the raw setter.
        rack.set_freq(id, NormFreq(0.63));
        assert!((rack.freq(id).0 - 0.65).abs() < 1e-12);
        rack.set_freq_unquantized(id, NormFreq(0.63));
        assert!((rack.freq(id).0 - 0.63).abs() < 1e-12);
    }

    #[test]
    fn rack_means() {
        let mut rack = paper_rack();
        rack.set_role_freq(CoreRole::Batch, NormFreq(0.4));
        assert!((rack.mean_role_freq(CoreRole::Batch).unwrap().0 - 0.4).abs() < 1e-12);
        for id in rack.cores_with_role(CoreRole::Interactive) {
            rack.set_util(id, Utilization(0.55));
        }
        assert!((rack.mean_role_util(CoreRole::Interactive).unwrap().0 - 0.55).abs() < 1e-12);
        let mut v = Vec::new();
        rack.interactive_utils_into(&mut v);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|u| (u.0 - 0.55).abs() < 1e-12));
    }

    #[test]
    fn role_views_expose_contiguous_slices() {
        let mut rack = paper_rack();
        rack.set_role_freq(CoreRole::Batch, NormFreq(0.4));
        let bv = rack.role(CoreRole::Batch);
        assert_eq!(bv.per_server(), 4);
        assert!(bv.freqs.iter().all(|&f| (f - 0.4).abs() < 1e-12));
        assert_eq!(bv.server_freqs(3).len(), 4);
        // Mutable view writes land in the right lanes.
        {
            let mut iv = rack.role_mut(CoreRole::Interactive);
            iv.set_freq(5, NormFreq(0.52)); // snaps to 0.50
            iv.set_util(5, Utilization(0.9));
        }
        let id = CoreId { server: 1, core: 1 }; // lane 5 = 1*4 + 1
        assert!((rack.freq(id).0 - 0.50).abs() < 1e-12);
        assert!((rack.util(id).0 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn batched_power_is_bit_identical_to_the_scalar_reference() {
        let mut rack = paper_rack();
        // Asymmetric state so any ordering mistake shows up.
        for s in 0..16 {
            for c in 0..8 {
                let id = CoreId { server: s, core: c };
                rack.set_freq_unquantized(id, NormFreq(0.2 + 0.017 * ((s * 8 + c) % 47) as f64));
                rack.set_util(id, Utilization(0.013 * ((s * 5 + c * 3) % 77) as f64));
            }
        }
        let batched = rack.power();
        let reference = rack.power_reference();
        assert_eq!(batched.0.to_bits(), reference.0.to_bits());
    }

    #[test]
    fn masked_power_skips_servers_and_updates_the_slab() {
        let mut rack = paper_rack();
        rack.set_role_freq(CoreRole::Batch, NormFreq(1.0));
        for id in rack.cores_with_role(CoreRole::Batch) {
            rack.set_util(id, Utilization(1.0));
        }
        let full = rack.power();
        let mut powered = vec![true; 16];
        powered[3] = false;
        powered[9] = false;
        let masked = rack.update_server_powers(Some(&powered));
        assert!(masked.0 < full.0);
        assert_eq!(rack.server_powers()[3], 0.0);
        assert!(rack.server_powers()[0] > 150.0);
        // Slab total matches the returned total.
        let slab_sum: f64 = rack.server_powers().iter().sum();
        assert!((slab_sum - masked.0).abs() < 1e-9);
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            Rack::builder().num_servers(0).build().unwrap_err(),
            RackConfigError::NoServers
        ));
        let err = Rack::builder()
            .interactive_cores_per_server(9)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RackConfigError::InteractiveExceedsCores { .. }
        ));
        assert!(err.to_string().contains("9 interactive cores"));
        let mut spec = ServerSpec::paper_default();
        spec.num_cores = 0;
        assert!(matches!(
            Rack::builder().server(spec).build().unwrap_err(),
            RackConfigError::NoCores
        ));
    }

    #[test]
    fn write_into_reuses_the_buffer_without_stale_tails() {
        let c = paper_rack();
        let mut v = vec![Utilization(0.123); 64];
        c.interactive_utils_into(&mut v);
        assert_eq!(v.len(), c.num_servers());
        // Reference semantics: per-server mean over the interactive row.
        let ipc = c.interactive_cores_per_server();
        for (s, got) in v.iter().enumerate() {
            let mean: f64 = (0..ipc)
                .map(|core| c.util(CoreId { server: s, core }).0)
                .sum::<f64>()
                / ipc as f64;
            assert_eq!(got.0.to_bits(), mean.to_bits());
        }
    }

    #[test]
    fn thermal_slab_tracks_power() {
        let mut rack = paper_rack();
        assert_eq!(rack.max_die_temp(), rack.thermal().ambient_c);
        rack.state.freq.fill(1.0);
        rack.state.util.fill(1.0);
        rack.update_server_powers(None);
        for _ in 0..600 {
            rack.step_thermal(Seconds(1.0));
        }
        // 300 W through 0.45 °C/W ≈ 135 °C above 25 °C ambient at
        // steady state; after 600 s (τ = 27 s) we are essentially there.
        let t = rack.max_die_temp();
        assert!((t - (25.0 + 0.45 * 300.0)).abs() < 1.0, "t={t}");
        assert!(rack.die_temps().iter().all(|&x| (x - t).abs() < 1e-9));
    }

    #[test]
    fn ideal_monitor_is_exact() {
        let mut m = PowerMonitor::ideal();
        assert_eq!(m.measure(Watts(1234.5)), Watts(1234.5));
    }

    #[test]
    fn noisy_monitor_statistics() {
        let mut m = PowerMonitor::new(42, 0.01, 5.0);
        let truth = Watts(3000.0);
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| m.measure(truth).0).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // Unbiased within half a percent.
        assert!((mean - truth.0).abs() < truth.0 * 0.005, "mean={mean}");
        // And actually noisy.
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(var.sqrt() > 5.0);
    }

    #[test]
    fn monitor_never_reports_negative() {
        let mut m = PowerMonitor::new(7, 2.0, 100.0); // absurd noise
        for _ in 0..1000 {
            assert!(m.measure(Watts(10.0)).0 >= 0.0);
        }
    }
}
