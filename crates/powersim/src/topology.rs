//! Power-delivery topology: utility feed through the circuit breaker, with
//! the UPS in parallel on the load side (Fig. 4 of the paper).
//!
//! Each simulation step, the rack demands `p_total`; the UPS controller
//! commands a discharge target, the duty-cycled discharge circuit realizes
//! it, and the remainder flows through the breaker. If the breaker is open
//! (tripped), the UPS must carry everything it can; any shortfall is a
//! brownout and the affected servers lose power — exactly the failure mode
//! Fig. 5 demonstrates for uncontrolled sprinting.

use crate::breaker::CircuitBreaker;
use crate::units::{Seconds, Watts};
use crate::ups::{DutyCycleDischarger, UpsBattery};

/// The combined utility + UPS feed of one rack.
#[derive(Debug, Clone)]
pub struct PowerFeed {
    pub breaker: CircuitBreaker,
    pub ups: UpsBattery,
    pub discharger: DutyCycleDischarger,
}

/// What the feed delivered during one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedOutcome {
    /// Power that flowed through the circuit breaker.
    pub cb_power: Watts,
    /// Power delivered by the UPS.
    pub ups_power: Watts,
    /// Total power served to the rack (`cb + ups`).
    pub served: Watts,
    /// Unserved demand (brownout) this step.
    pub shortfall: Watts,
    /// The breaker tripped during this step.
    pub tripped: bool,
}

impl PowerFeed {
    pub fn new(breaker: CircuitBreaker, ups: UpsBattery) -> Self {
        let duty_step = ups.spec.duty_step;
        PowerFeed {
            breaker,
            ups,
            discharger: DutyCycleDischarger::new(duty_step),
        }
    }

    /// Serve `demand` for `dt`, discharging the UPS toward
    /// `ups_target` (the UPS power controller's command).
    ///
    /// Semantics:
    /// * breaker closed — the discharge circuit realizes the (quantized)
    ///   target, the breaker carries the rest, and may trip if overloaded
    ///   long enough;
    /// * breaker open — the UPS carries as much of the demand as it can;
    ///   the rest is a shortfall.
    pub fn step(&mut self, demand: Watts, ups_target: Watts, dt: Seconds) -> FeedOutcome {
        assert!(demand.0 >= 0.0 && demand.is_finite(), "invalid demand");
        if self.breaker.is_closed() {
            let wanted = ups_target.clamp(Watts::ZERO, demand);
            let realized = self.discharger.realize(wanted, demand);
            let ups_power = self.ups.discharge(realized, dt);
            let cb_load = Watts((demand.0 - ups_power.0).max(0.0));
            let out = self.breaker.step(cb_load, dt);
            FeedOutcome {
                cb_power: out.delivered,
                ups_power,
                served: Watts(out.delivered.0 + ups_power.0),
                shortfall: Watts::ZERO,
                tripped: out.tripped,
            }
        } else {
            // Open breaker: advance its reclose countdown; UPS carries all.
            let out = self.breaker.step(Watts::ZERO, dt);
            debug_assert_eq!(out.delivered, Watts::ZERO);
            let ups_power = self.ups.discharge(demand, dt);
            FeedOutcome {
                cb_power: Watts::ZERO,
                ups_power,
                served: ups_power,
                shortfall: Watts((demand.0 - ups_power.0).max(0.0)),
                tripped: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerSpec;
    use crate::ups::UpsSpec;

    fn feed() -> PowerFeed {
        PowerFeed::new(
            CircuitBreaker::new(BreakerSpec::paper_default()),
            UpsBattery::full(UpsSpec::paper_default()),
        )
    }

    #[test]
    fn demand_split_between_cb_and_ups() {
        let mut f = feed();
        let out = f.step(Watts(4000.0), Watts(800.0), Seconds(1.0));
        assert!((out.ups_power.0 - 800.0).abs() < 20.0 + 1e-9); // duty quantized
        assert!((out.cb_power.0 + out.ups_power.0 - 4000.0).abs() < 1e-9);
        assert_eq!(out.shortfall, Watts::ZERO);
        assert!(!out.tripped);
    }

    #[test]
    fn zero_target_routes_everything_through_cb() {
        let mut f = feed();
        let out = f.step(Watts(3000.0), Watts::ZERO, Seconds(1.0));
        assert_eq!(out.cb_power, Watts(3000.0));
        assert_eq!(out.ups_power, Watts::ZERO);
    }

    #[test]
    fn sustained_cb_overload_trips_then_ups_carries_all() {
        let mut f = feed();
        // Demand 1.5 × rated with no UPS help: trips within the curve time.
        let mut tripped_at = None;
        for s in 0..600 {
            let out = f.step(Watts(4800.0), Watts::ZERO, Seconds(1.0));
            if out.tripped {
                tripped_at = Some(s);
                break;
            }
        }
        let t = tripped_at.expect("breaker must trip");
        // trip_time(1.5) = 84.375/1.25 = 67.5 s.
        assert!((t as f64 - 67.5).abs() <= 1.5, "tripped at {t}");
        // Next step: breaker open, UPS carries everything.
        let out = f.step(Watts(4800.0), Watts::ZERO, Seconds(1.0));
        assert_eq!(out.cb_power, Watts::ZERO);
        assert_eq!(out.ups_power, Watts(4800.0));
        assert_eq!(out.shortfall, Watts::ZERO);
    }

    #[test]
    fn brownout_when_ups_exhausted_and_breaker_open() {
        let mut f = feed();
        // Trip the breaker fast.
        while !f.step(Watts(9600.0), Watts::ZERO, Seconds(1.0)).tripped {}
        // Drain the UPS (400 Wh at ~4.56 kW cell power ≈ 5 min).
        let mut shortfall_seen = false;
        for _ in 0..400 {
            let out = f.step(Watts(4800.0), Watts::ZERO, Seconds(1.0));
            if out.shortfall.0 > 0.0 {
                shortfall_seen = true;
                assert!(out.served.0 < 4800.0);
                break;
            }
        }
        assert!(shortfall_seen, "UPS exhaustion must surface as shortfall");
    }

    #[test]
    fn ups_target_clamped_to_demand() {
        let mut f = feed();
        let out = f.step(Watts(1000.0), Watts(5000.0), Seconds(1.0));
        // UPS cannot push more than the load consumes.
        assert!(out.ups_power.0 <= 1000.0 + 1e-9);
        assert_eq!(out.shortfall, Watts::ZERO);
    }

    #[test]
    fn ups_discharge_keeps_cb_below_rated_indefinitely() {
        // The SprintCon invariant: with ups_target = demand − rated, the
        // breaker never accumulates heat.
        let mut f = feed();
        for _ in 0..1000 {
            let demand = Watts(4000.0);
            let target = Watts(demand.0 - 3200.0);
            let out = f.step(demand, target, Seconds(1.0));
            assert!(out.cb_power.0 <= 3200.0 + 3200.0 * 0.01 + 1e-9); // duty step slack
            assert!(!out.tripped);
        }
        assert!(f.breaker.trip_margin() < 0.2);
    }
}
