//! Trace sinks: where span/event records go.
//!
//! A [`Sink`] receives every [`Record`] emitted while its collector is
//! installed. Three implementations cover the useful points of the
//! cost/visibility trade-off:
//!
//! * [`NullSink`] — drops everything; the zero-cost default,
//! * [`MemorySink`] — bounded in-memory ring buffer, for tests and
//!   post-run inspection,
//! * [`JsonlSink`] — streams one JSON object per record to any writer
//!   (typically a file), for offline analysis.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// A dynamically-typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    F64(f64),
    I64(i64),
    U64(u64),
    Bool(bool),
    Str(String),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    /// Render as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".to_string(),
            Value::I64(v) => format!("{v}"),
            Value::U64(v) => format!("{v}"),
            Value::Bool(v) => format!("{v}"),
            Value::Str(s) => json_string(s),
        }
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One trace record. The collector stamps `seq` (a per-collector counter)
/// so records are totally ordered without any wall-clock dependence.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A point-in-time event with named fields.
    Event {
        seq: u64,
        name: String,
        fields: Vec<(String, Value)>,
    },
    /// A closed span: a named scope and how long it took.
    Span { seq: u64, name: String, nanos: u64 },
}

impl Record {
    pub fn name(&self) -> &str {
        match self {
            Record::Event { name, .. } | Record::Span { name, .. } => name,
        }
    }

    pub fn seq(&self) -> u64 {
        match self {
            Record::Event { seq, .. } | Record::Span { seq, .. } => *seq,
        }
    }

    /// One-line JSON rendering (the JSONL wire format).
    pub fn to_json(&self) -> String {
        match self {
            Record::Event { seq, name, fields } => {
                let mut out = format!(
                    "{{\"type\":\"event\",\"seq\":{seq},\"name\":{}",
                    json_string(name)
                );
                if !fields.is_empty() {
                    out.push_str(",\"fields\":{");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string(k));
                        out.push(':');
                        out.push_str(&v.to_json());
                    }
                    out.push('}');
                }
                out.push('}');
                out
            }
            Record::Span { seq, name, nanos } => format!(
                "{{\"type\":\"span\",\"seq\":{seq},\"name\":{},\"dur_ns\":{nanos}}}",
                json_string(name)
            ),
        }
    }
}

/// Destination for trace records. Implementations must be thread-safe:
/// parallel sweeps run one collector per worker, but a single collector may
/// also be installed globally and hit from several threads.
pub trait Sink: Send + Sync {
    fn record(&self, rec: &Record);
    fn flush(&self) {}
}

/// Drops every record. With this sink installed the only instrumentation
/// cost is the (branch-predicted) collector lookup and metric updates.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _rec: &Record) {}
}

/// Bounded ring buffer of the most recent records.
#[derive(Debug)]
pub struct MemorySink {
    ring: Mutex<VecDeque<Record>>,
    capacity: usize,
}

impl MemorySink {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        MemorySink {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.ring
            .lock()
            .expect("telemetry ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().expect("telemetry ring poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, rec: &Record) {
        let mut ring = self.ring.lock().expect("telemetry ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec.clone());
    }
}

/// Streams records as JSON Lines to an arbitrary writer.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(writer),
        }
    }

    /// Convenience constructor writing to a (truncated) file.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(f))))
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl Sink for JsonlSink {
    fn record(&self, rec: &Record) {
        let mut out = self.out.lock().expect("telemetry writer poisoned");
        let _ = writeln!(out, "{}", rec.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("telemetry writer poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_is_a_ring() {
        let s = MemorySink::new(3);
        for i in 0..5u64 {
            s.record(&Record::Span {
                seq: i,
                name: "t".into(),
                nanos: i,
            });
        }
        let recs = s.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq(), 2);
        assert_eq!(recs[2].seq(), 4);
    }

    #[test]
    fn record_json_shapes() {
        let e = Record::Event {
            seq: 7,
            name: "mode_change".into(),
            fields: vec![
                ("from".into(), Value::from("sprint")),
                ("t".into(), Value::from(12.5)),
                ("ok".into(), Value::from(true)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"event\",\"seq\":7,\"name\":\"mode_change\",\
             \"fields\":{\"from\":\"sprint\",\"t\":12.5,\"ok\":true}}"
        );
        let s = Record::Span {
            seq: 1,
            name: "sim.tick".into(),
            nanos: 42,
        };
        assert!(s.to_json().contains("\"dur_ns\":42"));
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct W(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for W {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(W(shared.clone())));
        sink.record(&Record::Span {
            seq: 0,
            name: "x".into(),
            nanos: 1,
        });
        sink.record(&Record::Event {
            seq: 1,
            name: "y".into(),
            fields: vec![],
        });
        sink.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(1.5).to_json(), "1.5");
    }
}
