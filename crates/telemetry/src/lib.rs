//! Dependency-free tracing, metrics and profiling for the SprintCon stack.
//!
//! SprintCon's claims are about *controllability* — mode transitions,
//! budget-tracking error, trip-margin headroom — so the control loops must
//! be observable, not just their end states. This crate provides the three
//! pieces the rest of the workspace instruments itself with:
//!
//! 1. **Tracing** — [`event`]/[`span`] emit records to a pluggable
//!    [`Sink`]: [`NullSink`] (drop), [`MemorySink`] (ring buffer for tests
//!    and inspection), [`JsonlSink`] (JSON Lines to a file).
//! 2. **Metrics** — a [`MetricsRegistry`] of counters, gauges (with
//!    min/max tracking) and fixed-bucket histograms, snapshotted
//!    deterministically (name-sorted) via [`MetricsSnapshot`].
//! 3. **Profiling hooks** — [`span`] guards time their scope into
//!    `<name>.ns` histograms, giving per-control-period latency profiles.
//!
//! # Installation model
//!
//! Instrumentation is *free-function* style — `telemetry::counter_add(...)`
//! from anywhere — and routes to whichever [`Collector`] is installed:
//! a thread-scoped one ([`with_collector`], used by the experiment harness
//! to isolate per-run metrics inside parallel sweeps) or a process-global
//! one ([`set_global`], used by the CLI). With neither installed every call
//! is a cheap early-out; the criterion bench in
//! `crates/bench/benches/controllers.rs` checks the instrumented
//! server-controller hot path stays within noise of un-instrumented code.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(telemetry::Collector::new(Box::new(
//!     telemetry::MemorySink::new(64),
//! )));
//! let snapshot = telemetry::with_collector(Arc::clone(&collector), || {
//!     telemetry::counter_add("qp_solve_total", 1);
//!     telemetry::histogram_observe("qp_solve_iters", 17.0);
//!     telemetry::gauge_track_min("breaker_margin_min", 0.42);
//!     telemetry::event("supervisor.mode_change", &[("to", "cb-protect".into())]);
//!     {
//!         let _span = telemetry::span("controller.period");
//!         // ... timed work ...
//!     }
//!     telemetry::snapshot().unwrap()
//! });
//! assert_eq!(snapshot.counter("qp_solve_total"), 1);
//! assert_eq!(snapshot.histogram("qp_solve_iters").unwrap().count, 1);
//! ```

pub mod collector;
pub mod metrics;
pub mod sink;

pub use collector::{enabled, set_global, with_collector, Collector, Span};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonlSink, MemorySink, NullSink, Record, Sink, Value};

use collector::with_active;

/// Increment counter `name` by `n`. No-op without an installed collector.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    with_active(|c| c.metrics.counter(name).add(n));
}

/// Set gauge `name` to `v`.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    with_active(|c| c.metrics.gauge(name).set(v));
}

/// Keep the running minimum of gauge `name`.
#[inline]
pub fn gauge_track_min(name: &str, v: f64) {
    with_active(|c| c.metrics.gauge(name).track_min(v));
}

/// Keep the running maximum of gauge `name`.
#[inline]
pub fn gauge_track_max(name: &str, v: f64) {
    with_active(|c| c.metrics.gauge(name).track_max(v));
}

/// Observe `v` into histogram `name` (exponential buckets by default).
#[inline]
pub fn histogram_observe(name: &str, v: f64) {
    with_active(|c| c.metrics.histogram(name).observe(v));
}

/// Emit a point-in-time trace event with named fields.
///
/// The field slice is only materialized into owned records when a
/// collector is actually installed, so call sites may pass freshly built
/// values without a fast-path cost — but prefer constructing expensive
/// field values behind [`enabled`] checks.
#[inline]
pub fn event(name: &str, fields: &[(&str, Value)]) {
    with_active(|c| {
        let owned: Vec<(String, Value)> = fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        c.emit_event(name, owned);
    });
}

/// Start an RAII span; its wall time is recorded on drop into the
/// `<name>.ns` histogram and the trace sink.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Snapshot the active collector's metrics, if one is installed.
pub fn snapshot() -> Option<MetricsSnapshot> {
    with_active(|c| c.metrics.snapshot())
}

/// Flush the active collector's sink, if one is installed.
pub fn flush() {
    with_active(|c| c.flush());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn free_functions_are_noops_without_collector() {
        counter_add("nope", 1);
        gauge_set("nope", 1.0);
        histogram_observe("nope", 1.0);
        event("nope", &[("k", 1.0.into())]);
        assert!(snapshot().is_none());
        assert!(!enabled());
    }

    #[test]
    fn per_run_isolation_across_threads() {
        // The sweep pattern: each worker installs its own collector; the
        // per-run snapshots must not bleed into each other.
        let snapshots: Vec<MetricsSnapshot> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    s.spawn(move || {
                        let c = Arc::new(Collector::null());
                        with_collector(Arc::clone(&c), || {
                            counter_add("runs", i + 1);
                            snapshot().unwrap()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut counts: Vec<u64> = snapshots.iter().map(|s| s.counter("runs")).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn global_collector_catches_unscoped_threads() {
        // Serialize against other tests that might set the global.
        let c = Arc::new(Collector::null());
        set_global(Some(Arc::clone(&c)));
        counter_add("global_hits", 1);
        std::thread::spawn(|| counter_add("global_hits", 1))
            .join()
            .unwrap();
        set_global(None);
        counter_add("global_hits", 100); // after teardown: dropped
        assert_eq!(c.snapshot().counter("global_hits"), 2);
    }

    #[test]
    fn events_reach_the_installed_sink() {
        let sink = Arc::new(MemorySink::new(16));
        struct Fwd(Arc<MemorySink>);
        impl Sink for Fwd {
            fn record(&self, rec: &Record) {
                self.0.record(rec);
            }
        }
        let c = Arc::new(Collector::new(Box::new(Fwd(Arc::clone(&sink)))));
        with_collector(c, || {
            event(
                "supervisor.mode_change",
                &[("from", "sprint".into()), ("to", "ended".into())],
            );
        });
        let recs = sink.records();
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            Record::Event { name, fields, .. } => {
                assert_eq!(name, "supervisor.mode_change");
                assert_eq!(fields[0], ("from".to_string(), Value::from("sprint")));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }
}
