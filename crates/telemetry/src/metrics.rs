//! Lock-light metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Metric cells are plain atomics, so the per-update cost on the control
//! hot path is one hash lookup under a read lock plus one atomic RMW. The
//! registry itself only takes its write lock the first time a name is seen.
//!
//! Snapshots ([`MetricsSnapshot`]) are taken with names sorted, so two
//! snapshots of identical runs compare equal and sweep aggregation stays
//! deterministic.

use crate::sink::json_string;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An f64 gauge cell supporting plain set plus running min/max tracking.
/// Unset cells read as `None`; f64 payloads live in an `AtomicU64` as bits.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    set: AtomicU64, // 0 = never written
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
            set: AtomicU64::new(0),
        }
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.set.store(1, Ordering::Release);
    }

    /// Keep the smallest value ever observed.
    pub fn track_min(&self, v: f64) {
        self.track_by(v, |cur, new| new < cur);
    }

    /// Keep the largest value ever observed.
    pub fn track_max(&self, v: f64) {
        self.track_by(v, |cur, new| new > cur);
    }

    fn track_by(&self, v: f64, better: impl Fn(f64, f64) -> bool) {
        if self.set.load(Ordering::Acquire) == 0 {
            // First writer wins the initialization race; a lost race falls
            // through to the CAS loop below.
            self.bits.store(v.to_bits(), Ordering::Relaxed);
            self.set.store(1, Ordering::Release);
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if !better(f64::from_bits(cur), v) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> Option<f64> {
        if self.set.load(Ordering::Acquire) == 0 {
            None
        } else {
            Some(f64::from_bits(self.bits.load(Ordering::Relaxed)))
        }
    }
}

/// Fixed-bucket histogram: counts per upper bound, plus overflow, count and
/// sum (sum as f64 bits updated by CAS).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    pub fn with_buckets(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Default layout: 16 exponential buckets from 1 up — fits iteration
    /// counts and nanosecond durations alike.
    pub fn exponential_default() -> Self {
        let mut bounds = Vec::with_capacity(16);
        let mut b = 1.0f64;
        for _ in 0..16 {
            bounds.push(b);
            b *= 4.0;
        }
        Histogram::with_buckets(bounds)
    }

    pub fn observe(&self, v: f64) {
        match self.bounds.iter().position(|&ub| v <= ub) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .bounds
                .iter()
                .zip(&self.buckets)
                .map(|(&ub, c)| (ub, c.load(Ordering::Relaxed)))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, count)` per bucket.
    pub buckets: Vec<(f64, u64)>,
    pub overflow: u64,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The metrics registry: string-keyed families of the three metric kinds.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("metrics registry poisoned");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Histograms default to the exponential layout; use
    /// [`MetricsRegistry::histogram_with_buckets`] to pre-register a
    /// custom one before the first observation.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write().expect("metrics registry poisoned");
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::exponential_default())),
        )
    }

    pub fn histogram_with_buckets(&self, name: &str, bounds: Vec<f64>) -> Arc<Histogram> {
        let mut w = self.histograms.write().expect("metrics registry poisoned");
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_buckets(bounds))),
        )
    }

    /// Deterministic (name-sorted) snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .filter_map(|(k, v)| v.get().map(|g| (k.clone(), g)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Everything the registry knew at one instant, name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self` (sweep aggregation). Deterministic given
    /// a deterministic fold order:
    ///
    /// * counters add;
    /// * histograms with identical bucket layouts add element-wise
    ///   (mismatched layouts keep `self`'s buckets and only fold count,
    ///   sum and overflow);
    /// * gauges follow their name: `*_min` keeps the minimum, `*_max`
    ///   the maximum, anything else takes `other`'s (latest) value.
    ///
    /// Name lists stay sorted, so merging equal runs in the same order
    /// yields identical snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self
                .counters
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
            {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                Ok(i) => {
                    let cur = self.gauges[i].1;
                    self.gauges[i].1 = if name.ends_with("_min") {
                        cur.min(*v)
                    } else if name.ends_with("_max") {
                        cur.max(*v)
                    } else {
                        *v
                    };
                }
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
            {
                Ok(i) => {
                    let mine = &mut self.histograms[i].1;
                    let same_layout = mine.buckets.len() == h.buckets.len()
                        && mine
                            .buckets
                            .iter()
                            .zip(&h.buckets)
                            .all(|((a, _), (b, _))| a == b);
                    if same_layout {
                        for (slot, (_, c)) in mine.buckets.iter_mut().zip(&h.buckets) {
                            slot.1 += c;
                        }
                        mine.overflow += h.overflow;
                    } else {
                        mine.overflow += h.buckets.iter().map(|(_, c)| c).sum::<u64>() + h.overflow;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Render as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            if v.is_finite() {
                out.push_str(&format!(":{v}"));
            } else {
                out.push_str(":null");
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"overflow\":{},\"buckets\":[",
                h.count,
                if h.sum.is_finite() {
                    format!("{}", h.sum)
                } else {
                    "null".to_string()
                },
                h.overflow
            ));
            for (j, (ub, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{ub},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Human-readable multi-line rendering (counters and gauges only by
    /// default; histograms are summarized as count/mean).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} = {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k} = {{count: {}, mean: {:.3}}}\n",
                h.count,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::default();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.counter("b").add(1);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_min_and_max() {
        let r = MetricsRegistry::default();
        assert_eq!(r.gauge("m").get(), None);
        r.gauge("m").track_min(0.8);
        r.gauge("m").track_min(0.3);
        r.gauge("m").track_min(0.5);
        assert_eq!(r.gauge("m").get(), Some(0.3));
        r.gauge("x").track_max(1.0);
        r.gauge("x").track_max(4.0);
        r.gauge("x").track_max(2.0);
        assert_eq!(r.gauge("x").get(), Some(4.0));
        r.gauge("s").set(7.0);
        r.gauge("s").set(-1.0);
        assert_eq!(r.gauge("s").get(), Some(-1.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::with_buckets(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets, vec![(1.0, 1), (10.0, 2), (100.0, 1)]);
        assert_eq!(s.overflow, 1);
        assert!((s.sum - 560.5).abs() < 1e-9);
        assert!((s.mean() - 112.1).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = MetricsRegistry::default();
        r.counter("zeta").add(1);
        r.counter("alpha").add(1);
        r.gauge("mid").set(0.5);
        r.histogram("h").observe(3.0);
        let a = r.snapshot();
        let b = r.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.counters[0].0, "alpha");
        assert_eq!(a.counters[1].0, "zeta");
    }

    #[test]
    fn snapshot_json_is_wellformed_enough() {
        let r = MetricsRegistry::default();
        r.counter("c").add(4);
        r.gauge("g").set(1.25);
        r.histogram_with_buckets("h", vec![1.0, 2.0]).observe(1.5);
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"c\":4"));
        assert!(j.contains("\"g\":1.25"));
        assert!(j.contains("\"buckets\":[[1,0],[2,1]]"));
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_respects_gauge_suffixes() {
        let a = MetricsRegistry::default();
        a.counter("runs").add(1);
        a.gauge("headroom_min").set(0.4);
        a.gauge("duty_max").set(0.2);
        a.gauge("last").set(1.0);
        a.histogram_with_buckets("h", vec![1.0, 10.0]).observe(5.0);
        let b = MetricsRegistry::default();
        b.counter("runs").add(2);
        b.counter("only_b").add(7);
        b.gauge("headroom_min").set(0.1);
        b.gauge("duty_max").set(0.9);
        b.gauge("last").set(2.0);
        b.histogram_with_buckets("h", vec![1.0, 10.0]).observe(0.5);

        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("runs"), 3);
        assert_eq!(m.counter("only_b"), 7);
        assert_eq!(m.gauge("headroom_min"), Some(0.1));
        assert_eq!(m.gauge("duty_max"), Some(0.9));
        assert_eq!(m.gauge("last"), Some(2.0));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![(1.0, 1), (10.0, 1)]);
        // Deterministic: same merges in the same order compare equal.
        let mut m2 = a.snapshot();
        m2.merge(&b.snapshot());
        assert_eq!(m, m2);
        // And the name lists stay sorted.
        assert!(m.counters.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(MetricsRegistry::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1000 {
                        r.counter("n").add(1);
                        r.gauge("min").track_min(i as f64);
                        r.histogram("h").observe(i as f64);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("n"), 4000);
        assert_eq!(s.gauge("min"), Some(0.0));
        assert_eq!(s.histogram("h").unwrap().count, 4000);
    }
}
