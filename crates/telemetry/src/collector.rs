//! The [`Collector`] pairs a metrics registry with a trace sink, and the
//! installation machinery decides which collector (if any) instrumentation
//! reaches:
//!
//! * a **scoped** collector, installed per thread with
//!   [`with_collector`] — this is how the experiment harness isolates
//!   per-run metrics inside parallel sweeps, and
//! * a **global** collector, installed process-wide with [`set_global`] —
//!   how the CLI turns tracing on for a whole invocation.
//!
//! The scoped collector shadows the global one. When neither is installed,
//! the fast path is a thread-local read plus one relaxed atomic load, so
//! instrumented code is effectively free (verified by the
//! `controllers.rs` criterion bench).

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::{NullSink, Record, Sink, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A metrics registry plus a trace sink, with a sequence counter stamping
/// every record.
pub struct Collector {
    pub metrics: MetricsRegistry,
    sink: Box<dyn Sink>,
    seq: AtomicU64,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").finish_non_exhaustive()
    }
}

impl Collector {
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Collector {
            metrics: MetricsRegistry::default(),
            sink,
            seq: AtomicU64::new(0),
        }
    }

    /// Metrics only; trace records are dropped.
    pub fn null() -> Self {
        Collector::new(Box::new(NullSink))
    }

    pub fn emit_event(&self, name: &str, fields: Vec<(String, Value)>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.sink.record(&Record::Event {
            seq,
            name: name.to_string(),
            fields,
        });
    }

    pub fn emit_span(&self, name: &str, nanos: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.sink.record(&Record::Span {
            seq,
            name: name.to_string(),
            nanos,
        });
    }

    pub fn flush(&self) {
        self.sink.flush();
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

static GLOBAL_SET: AtomicU64 = AtomicU64::new(0);
static GLOBAL: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

thread_local! {
    static SCOPED: RefCell<Option<Arc<Collector>>> = const { RefCell::new(None) };
}

/// Install (or clear) the process-wide collector.
pub fn set_global(c: Option<Arc<Collector>>) {
    let mut g = GLOBAL.write().expect("telemetry global poisoned");
    GLOBAL_SET.store(c.is_some() as u64, Ordering::Release);
    *g = c;
}

/// Run `f` with `c` installed as this thread's collector, restoring the
/// previous scoped collector afterwards (re-entrant).
pub fn with_collector<R>(c: Arc<Collector>, f: impl FnOnce() -> R) -> R {
    // Restores the previous collector even if `f` panics, so a poisoned
    // worker cannot leak its collector into unrelated runs.
    struct Restore(Option<Arc<Collector>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCOPED.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SCOPED.with(|s| s.borrow_mut().replace(c));
    let _restore = Restore(prev);
    f()
}

/// Apply `f` to the active collector, if any. This is the single gate all
/// instrumentation goes through; with nothing installed it costs a
/// thread-local borrow and one relaxed load.
#[inline]
pub fn with_active<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
    SCOPED.with(|s| {
        if let Some(c) = s.borrow().as_ref() {
            return Some(f(c));
        }
        if GLOBAL_SET.load(Ordering::Acquire) == 0 {
            return None;
        }
        GLOBAL
            .read()
            .expect("telemetry global poisoned")
            .as_ref()
            .map(|c| f(c))
    })
}

/// True if any collector (scoped or global) is installed.
#[inline]
pub fn enabled() -> bool {
    with_active(|_| ()).is_some()
}

/// RAII span guard: measures wall time from construction to drop, feeding a
/// duration histogram (`<name>.ns`) and the trace sink. Inert (no clock
/// read) when no collector is installed.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub fn start(name: &'static str) -> Self {
        let start = if enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span { name, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_active(|c| {
                c.metrics
                    .histogram(&format!("{}.ns", self.name))
                    .observe(nanos as f64);
                c.emit_span(self.name, nanos);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn scoped_collector_shadows_and_restores() {
        assert!(!enabled());
        let outer = Arc::new(Collector::null());
        let inner = Arc::new(Collector::null());
        with_collector(Arc::clone(&outer), || {
            with_active(|c| c.metrics.counter("hits").add(1));
            with_collector(Arc::clone(&inner), || {
                with_active(|c| c.metrics.counter("hits").add(10));
            });
            with_active(|c| c.metrics.counter("hits").add(1));
        });
        assert_eq!(outer.snapshot().counter("hits"), 2);
        assert_eq!(inner.snapshot().counter("hits"), 10);
        assert!(!enabled());
    }

    #[test]
    fn scoped_collector_survives_panics() {
        let c = Arc::new(Collector::null());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_collector(Arc::clone(&c), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leak the scoped collector");
    }

    #[test]
    fn spans_record_duration_and_trace() {
        let sink = Arc::new(MemorySink::new(8));
        struct Fwd(Arc<MemorySink>);
        impl Sink for Fwd {
            fn record(&self, rec: &Record) {
                self.0.record(rec);
            }
        }
        let c = Arc::new(Collector::new(Box::new(Fwd(Arc::clone(&sink)))));
        with_collector(Arc::clone(&c), || {
            let _s = Span::start("tick");
        });
        let recs = sink.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name(), "tick");
        assert_eq!(c.snapshot().histogram("tick.ns").unwrap().count, 1);
    }

    #[test]
    fn spans_are_inert_without_a_collector() {
        let s = Span::start("noop");
        assert!(s.start.is_none());
    }

    #[test]
    fn collector_seq_orders_records() {
        let sink = Arc::new(MemorySink::new(8));
        struct Fwd(Arc<MemorySink>);
        impl Sink for Fwd {
            fn record(&self, rec: &Record) {
                self.0.record(rec);
            }
        }
        let c = Collector::new(Box::new(Fwd(Arc::clone(&sink))));
        c.emit_event("a", vec![]);
        c.emit_span("b", 5);
        let recs = sink.records();
        assert_eq!(recs[0].seq(), 0);
        assert_eq!(recs[1].seq(), 1);
    }
}
