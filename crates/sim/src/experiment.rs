//! Experiment harness: run policies over scenarios, in parallel where a
//! sweep allows it, with deterministic result ordering.

use crate::metrics::RunSummary;
use crate::policy::{Policy, SgctSimPolicy, SprintConPolicy};
use crate::recorder::Recorder;
use crate::scenario::Scenario;

/// The four policies of §VII, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    SprintCon,
    Sgct,
    SgctV1,
    SgctV2,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::SprintCon,
        PolicyKind::Sgct,
        PolicyKind::SgctV1,
        PolicyKind::SgctV2,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::SprintCon => "SprintCon",
            PolicyKind::Sgct => "SGCT",
            PolicyKind::SgctV1 => "SGCT-V1",
            PolicyKind::SgctV2 => "SGCT-V2",
        }
    }

    /// Instantiate a fresh policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::SprintCon => Box::new(SprintConPolicy::paper_default()),
            PolicyKind::Sgct => Box::new(SgctSimPolicy::new(baselines::SgctVariant::Uncontrolled)),
            PolicyKind::SgctV1 => Box::new(SgctSimPolicy::new(baselines::SgctVariant::V1Ideal)),
            PolicyKind::SgctV2 => Box::new(SgctSimPolicy::new(
                baselines::SgctVariant::V2InteractivePriority,
            )),
        }
    }
}

/// Run one policy over one scenario end to end.
pub fn run_policy(scenario: &Scenario, kind: PolicyKind) -> (Recorder, RunSummary) {
    let mut sim = scenario.build();
    let mut policy = kind.build();
    let rec = sim.run(policy.as_mut(), scenario.duration);
    let summary = RunSummary::from_run(kind.name(), &sim, &rec);
    (rec, summary)
}

/// Run every §VII policy over the scenario (sequentially — each run is
/// itself cheap; parallelism lives in [`sweep`]).
pub fn run_all(scenario: &Scenario) -> Vec<(Recorder, RunSummary)> {
    PolicyKind::ALL
        .iter()
        .map(|k| run_policy(scenario, *k))
        .collect()
}

/// Parallel parameter sweep with deterministic, input-ordered results.
///
/// Fans out across threads with `crossbeam::scope`; each worker owns its
/// own scenario/simulation, so there is no shared mutable state (the
/// guide-recommended data-parallel shape).
pub fn sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    crossbeam::scope(|scope| {
        let chunks = out.chunks_mut(n.div_ceil(threads));
        for (ci, chunk) in chunks.enumerate() {
            let f = &f;
            let base = ci * n.div_ceil(threads);
            let params = &params;
            scope.spawn(move |_| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(&params[base + i]));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    out.into_iter().map(|r| r.expect("sweep slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::units::Seconds;

    #[test]
    fn sweep_preserves_order_and_runs_everything() {
        let params: Vec<u64> = (0..17).collect();
        let out = sweep(&params, |p| p * 2);
        assert_eq!(out, (0..17).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(sweep(&empty, |p| *p).is_empty());
        assert_eq!(sweep(&[5u64], |p| p + 1), vec![6]);
    }

    #[test]
    fn run_policy_produces_full_recording() {
        let mut sc = Scenario::paper_default(11);
        sc.duration = Seconds(60.0); // keep the unit test quick
        let (rec, summary) = run_policy(&sc, PolicyKind::SgctV1);
        assert_eq!(rec.len(), 60);
        assert_eq!(summary.policy, "SGCT-V1");
    }

    #[test]
    fn sweep_of_scenarios_is_deterministic() {
        let mut sc = Scenario::paper_default(5);
        sc.duration = Seconds(30.0);
        let seeds: Vec<u64> = vec![1, 2, 3, 4];
        let run = |seed: &u64| {
            let mut s = sc.clone();
            s.seed = *seed;
            run_policy(&s, PolicyKind::SgctV2).1.avg_freq_batch
        };
        let a = sweep(&seeds, run);
        let b = sweep(&seeds, run);
        assert_eq!(a, b);
    }
}
