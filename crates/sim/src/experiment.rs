//! Experiment harness: run policies over scenarios, in parallel where a
//! sweep allows it, with deterministic result ordering.
//!
//! Every runner goes through one internal body that installs a per-run
//! [`telemetry::Collector`] (thread-scoped, so parallel sweeps cannot
//! bleed metrics into each other), runs the simulation, and returns a
//! [`RunOutput`] carrying the recording, the §VII summary, and the run's
//! metric snapshot.

use crate::metrics::RunSummary;
use crate::policy::{Policy, SgctSimPolicy, SprintConPolicy};
use crate::recorder::Recorder;
use crate::scenario::Scenario;
use std::sync::Arc;
use telemetry::{Collector, MetricsSnapshot, NullSink, Sink};

/// The four policies of §VII, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    SprintCon,
    Sgct,
    SgctV1,
    SgctV2,
}

/// Configuration overrides applied when instantiating a policy, replacing
/// the former hard-coded `paper_default()` calls. `None` fields keep the
/// paper defaults.
#[derive(Debug, Clone, Default)]
pub struct PolicyOverrides {
    /// Configuration for SprintCon runs.
    pub sprintcon: Option<sprintcon::SprintConConfig>,
    /// Configuration for the SGCT family. The `variant` field is forced
    /// to match the [`PolicyKind`] being built, so one override serves
    /// all three variants.
    pub sgct: Option<baselines::SgctConfig>,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::SprintCon,
        PolicyKind::Sgct,
        PolicyKind::SgctV1,
        PolicyKind::SgctV2,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::SprintCon => "SprintCon",
            PolicyKind::Sgct => "SGCT",
            PolicyKind::SgctV1 => "SGCT-V1",
            PolicyKind::SgctV2 => "SGCT-V2",
        }
    }

    /// Instantiate a fresh policy with the paper's configuration.
    pub fn build(&self) -> Box<dyn Policy> {
        self.build_with(&PolicyOverrides::default())
    }

    /// Instantiate a fresh policy, taking configuration from `overrides`
    /// where provided.
    pub fn build_with(&self, overrides: &PolicyOverrides) -> Box<dyn Policy> {
        match self {
            PolicyKind::SprintCon => {
                let cfg = overrides
                    .sprintcon
                    .clone()
                    .unwrap_or_else(sprintcon::SprintConConfig::paper_default);
                Box::new(SprintConPolicy::new(cfg))
            }
            PolicyKind::Sgct | PolicyKind::SgctV1 | PolicyKind::SgctV2 => {
                let variant = match self {
                    PolicyKind::Sgct => baselines::SgctVariant::Uncontrolled,
                    PolicyKind::SgctV1 => baselines::SgctVariant::V1Ideal,
                    PolicyKind::SgctV2 => baselines::SgctVariant::V2InteractivePriority,
                    PolicyKind::SprintCon => unreachable!(),
                };
                let cfg = match &overrides.sgct {
                    Some(c) => {
                        let mut c = c.clone();
                        c.variant = variant;
                        c
                    }
                    None => baselines::SgctConfig::paper_default(variant),
                };
                Box::new(SgctSimPolicy::with_config(cfg))
            }
        }
    }
}

/// Everything one policy run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The full per-period recording.
    pub recorder: Recorder,
    /// The §VII summary row.
    pub summary: RunSummary,
    /// Telemetry captured during the run (control-loop counters, solver
    /// iteration histograms, plant gauges). Deterministically name-sorted.
    pub metrics: MetricsSnapshot,
}

/// The single run body behind every public runner: build, install a
/// per-run collector, run, summarize, snapshot.
fn run_instrumented(
    scenario: &Scenario,
    kind: PolicyKind,
    overrides: &PolicyOverrides,
    sink: Box<dyn Sink>,
) -> RunOutput {
    let collector = Arc::new(Collector::new(sink));
    telemetry::with_collector(Arc::clone(&collector), || {
        let mut sim = scenario.build();
        let mut policy = kind.build_with(overrides);
        let recorder = sim.run(policy.as_mut(), scenario.duration);
        let summary = RunSummary::from_run(kind.name(), &sim, &recorder);
        collector.flush();
        RunOutput {
            recorder,
            summary,
            metrics: collector.snapshot(),
        }
    })
}

/// Run one policy over one scenario end to end with paper defaults.
pub fn run_policy(scenario: &Scenario, kind: PolicyKind) -> RunOutput {
    run_instrumented(
        scenario,
        kind,
        &PolicyOverrides::default(),
        Box::new(NullSink),
    )
}

/// Run one policy with configuration overrides.
pub fn run_policy_with(
    scenario: &Scenario,
    kind: PolicyKind,
    overrides: &PolicyOverrides,
) -> RunOutput {
    run_instrumented(scenario, kind, overrides, Box::new(NullSink))
}

/// Run one policy streaming trace records (spans, mode-change events)
/// into `sink` — e.g. a [`telemetry::JsonlSink`] for offline analysis.
pub fn run_policy_traced(
    scenario: &Scenario,
    kind: PolicyKind,
    overrides: &PolicyOverrides,
    sink: Box<dyn Sink>,
) -> RunOutput {
    run_instrumented(scenario, kind, overrides, sink)
}

/// Run every §VII policy over the scenario (sequentially — each run is
/// itself cheap; parallelism lives in [`sweep`]).
pub fn run_all(scenario: &Scenario) -> Vec<RunOutput> {
    PolicyKind::ALL
        .iter()
        .map(|k| run_policy(scenario, *k))
        .collect()
}

/// Fold the per-run metric snapshots of `runs` into one aggregate, in
/// input order (deterministic — see [`MetricsSnapshot::merge`]).
pub fn aggregate_metrics<'a>(runs: impl IntoIterator<Item = &'a RunOutput>) -> MetricsSnapshot {
    let mut agg = MetricsSnapshot::default();
    for run in runs {
        agg.merge(&run.metrics);
    }
    agg
}

/// Parallel parameter sweep with deterministic, input-ordered results,
/// on one worker per available core.
///
/// Thin wrapper over [`crate::exec::sweep_parallel`] with the default
/// pool width; use that function directly (or a [`crate::exec::Campaign`])
/// to control the worker count.
pub fn sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    crate::exec::sweep_parallel(params, crate::exec::ExecConfig::parallel(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::units::Seconds;

    #[test]
    fn sweep_preserves_order_and_runs_everything() {
        let params: Vec<u64> = (0..17).collect();
        let out = sweep(&params, |p| p * 2);
        assert_eq!(out, (0..17).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(sweep(&empty, |p| *p).is_empty());
        assert_eq!(sweep(&[5u64], |p| p + 1), vec![6]);
    }

    #[test]
    fn run_policy_produces_full_recording() {
        let mut sc = Scenario::paper_default(11);
        sc.duration = Seconds(60.0); // keep the unit test quick
        let out = run_policy(&sc, PolicyKind::SgctV1);
        assert_eq!(out.recorder.len(), 60);
        assert_eq!(out.summary.policy, "SGCT-V1");
    }

    #[test]
    fn run_policy_attaches_control_loop_metrics() {
        let mut sc = Scenario::paper_default(11);
        sc.duration = Seconds(30.0);
        let out = run_policy(&sc, PolicyKind::SprintCon);
        // One MPC/QP solve per control period.
        assert_eq!(out.metrics.counter("qp_solve_total"), 30);
        assert_eq!(out.metrics.histogram("mpc_solve_iters").unwrap().count, 30);
        assert_eq!(out.metrics.histogram("sim_tick.ns").unwrap().count, 30);
        // The plant gauges are present and sane.
        let headroom = out.metrics.gauge("breaker_margin_min").unwrap();
        assert!((0.0..=1.0).contains(&headroom), "headroom={headroom}");
        assert!(out.metrics.histogram("ups_discharge_duty").is_some());
        // And nothing leaks into a fresh global/scoped-free context.
        assert!(telemetry::snapshot().is_none());
    }

    #[test]
    fn build_with_forces_the_variant_and_honors_overrides() {
        // An SGCT override configured for the wrong variant still builds
        // the kind that was asked for.
        let overrides = PolicyOverrides {
            sgct: Some(baselines::SgctConfig::paper_default(
                baselines::SgctVariant::Uncontrolled,
            )),
            ..Default::default()
        };
        let p = PolicyKind::SgctV1.build_with(&overrides);
        assert_eq!(p.name(), "SGCT-V1");

        // A SprintCon override with a short burst flips the schedule to
        // Unconstrained, observable as p_cb_target = None.
        let mut cfg = sprintcon::SprintConConfig::paper_default();
        cfg.t_burst = Seconds(30.0);
        let overrides = PolicyOverrides {
            sprintcon: Some(cfg),
            ..Default::default()
        };
        let mut sc = Scenario::paper_default(3);
        sc.duration = Seconds(10.0);
        let out = run_policy_with(&sc, PolicyKind::SprintCon, &overrides);
        assert_eq!(out.recorder.samples().last().unwrap().p_cb_target, None);
        let base = run_policy(&sc, PolicyKind::SprintCon);
        assert!(base
            .recorder
            .samples()
            .last()
            .unwrap()
            .p_cb_target
            .is_some());
    }

    #[test]
    fn sweep_of_scenarios_is_deterministic() {
        let mut sc = Scenario::paper_default(5);
        sc.duration = Seconds(30.0);
        let seeds: Vec<u64> = vec![1, 2, 3, 4];
        let run = |seed: &u64| {
            let mut s = sc.clone();
            s.seed = *seed;
            run_policy(&s, PolicyKind::SgctV2).summary.avg_freq_batch
        };
        let a = sweep(&seeds, run);
        let b = sweep(&seeds, run);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_metrics_are_isolated_and_aggregate_deterministically() {
        let mut sc = Scenario::paper_default(5);
        sc.duration = Seconds(20.0);
        let seeds: Vec<u64> = vec![1, 2, 3];
        let run = |seed: &u64| {
            let mut s = sc.clone();
            s.seed = *seed;
            run_policy(&s, PolicyKind::SprintCon)
        };
        let runs_a = sweep(&seeds, run);
        let runs_b = sweep(&seeds, run);
        for out in &runs_a {
            // Per-run isolation: each run sees exactly its own 20 solves,
            // no matter which worker thread it executed on.
            assert_eq!(out.metrics.counter("qp_solve_total"), 20);
        }
        let mut agg_a = aggregate_metrics(&runs_a);
        let mut agg_b = aggregate_metrics(&runs_b);
        assert_eq!(agg_a.counter("qp_solve_total"), 60);
        // Wall-clock span histograms (`*.ns`) legitimately vary between
        // runs; everything else must aggregate identically.
        agg_a.histograms.retain(|(k, _)| !k.ends_with(".ns"));
        agg_b.histograms.retain(|(k, _)| !k.ends_with(".ns"));
        assert_eq!(agg_a, agg_b, "aggregation must be deterministic");
    }
}
