//! The parallel experiment execution layer: fan campaigns of
//! scenario × policy runs across a configurable rayon thread pool with
//! deterministic, input-ordered results.
//!
//! ## Determinism contract
//!
//! A simulation run is a pure function of its [`Scenario`] (every RNG is
//! seeded from `Scenario::seed`), so executing runs concurrently cannot
//! change their outputs — *provided* nothing leaks between runs. Two
//! mechanisms guarantee that:
//!
//! * every run installs its own thread-scoped [`telemetry::Collector`]
//!   (see `experiment::run_instrumented`), and pool workers are fresh
//!   threads that inherit no thread-locals, so metrics cannot bleed
//!   across concurrently executing runs;
//! * results are written into per-run slots and returned in **input
//!   order**, never completion order.
//!
//! Consequently [`Campaign::run`] is bit-identical to
//! [`Campaign::run_sequential`] for everything a run computes: recorder
//! samples, events, summaries, counters, gauges and value histograms.
//! The only exception is wall-clock span histograms (names ending in
//! `.ns`), which measure elapsed time and legitimately differ between
//! executions; [`run_digest`] therefore excludes them. CI enforces the
//! contract by comparing digests of a sequential and a parallel pass
//! (`bench_engine --check`, `tests/parallel.rs`).
//!
//! ## Thread-pool sizing
//!
//! [`ExecConfig`] picks the worker count: `default()` uses every
//! available core (each run is an independent, cache-friendly
//! simulation; hyperthread-level oversubscription buys nothing), and
//! `jobs(1)`/`sequential()` degenerate to plain iteration on the calling
//! thread with no pool at all.

use crate::experiment::{run_policy_with, PolicyKind, PolicyOverrides, RunOutput};
use crate::metrics::RunSummary;
use crate::scenario::Scenario;
use rayon::prelude::*;

/// How a campaign or sweep is executed: on how many worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Requested worker count; `0` = one worker per available core.
    jobs: usize,
}

impl Default for ExecConfig {
    /// Parallel on every available core.
    fn default() -> Self {
        ExecConfig { jobs: 0 }
    }
}

impl ExecConfig {
    /// One worker per available core.
    pub fn parallel() -> Self {
        ExecConfig::default()
    }

    /// Run on the calling thread, no pool.
    pub fn sequential() -> Self {
        ExecConfig { jobs: 1 }
    }

    /// Exactly `n` workers (`0` = one per core).
    pub fn jobs(n: usize) -> Self {
        ExecConfig { jobs: n }
    }

    /// The worker count this config resolves to on this host.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Parallel parameter sweep with deterministic, input-ordered results.
///
/// Fans `params` across a rayon pool sized by `exec`; each worker owns
/// its own item, so there is no shared mutable state. Runs started
/// inside the sweep install thread-scoped collectors, so per-run metrics
/// stay isolated regardless of the thread a run lands on. With
/// `ExecConfig::sequential()` (or one available core) this is plain
/// `iter().map()` on the calling thread.
pub fn sweep_parallel<P, R, F>(params: &[P], exec: ExecConfig, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let width = exec.resolved_jobs().min(params.len().max(1));
    if width <= 1 {
        return params.iter().map(f).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap_or_else(|e| panic!("building a {width}-thread pool cannot fail: {e}"));
    pool.install(|| params.par_iter().map(&f).collect())
}

/// Run every §VII policy over the scenario concurrently, results in
/// [`PolicyKind::ALL`] order — the parallel counterpart of
/// [`crate::experiment::run_all`].
pub fn run_all_parallel(scenario: &Scenario) -> Vec<RunOutput> {
    Campaign::new()
        .with_all_policies(scenario.clone())
        .run()
        .into_iter()
        .map(|r| r.output)
        .collect()
}

/// One scheduled run of a [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// Display label (defaults to `"<policy>@seed<seed>"`).
    pub label: String,
    pub scenario: Scenario,
    pub kind: PolicyKind,
    pub overrides: PolicyOverrides,
}

/// One finished run: the entry's identity plus everything it produced.
#[derive(Debug)]
pub struct CampaignResult {
    pub label: String,
    pub kind: PolicyKind,
    /// Seed of the scenario that ran (sweep bookkeeping).
    pub seed: u64,
    pub output: RunOutput,
}

impl CampaignResult {
    pub fn summary(&self) -> &RunSummary {
        &self.output.summary
    }

    /// Order-insensitive determinism digest of this run — see
    /// [`run_digest`].
    pub fn digest(&self) -> u64 {
        run_digest(&self.output)
    }
}

/// A list of scenario × policy runs executed together across a thread
/// pool, results returned in the order the runs were added.
///
/// ```
/// use powersim::units::Seconds;
/// use simkit::{Campaign, ExecConfig, PolicyKind, Scenario};
///
/// let mut sc = Scenario::paper_default(7);
/// sc.duration = Seconds(30.0); // doctest-sized
/// let results = Campaign::new()
///     .with_run(sc.clone(), PolicyKind::SprintCon)
///     .with_run(sc, PolicyKind::Sgct)
///     .with_exec(ExecConfig::jobs(2))
///     .run();
/// assert_eq!(results[0].kind, PolicyKind::SprintCon);
/// assert_eq!(results[1].kind, PolicyKind::Sgct);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    entries: Vec<CampaignEntry>,
    exec: ExecConfig,
}

impl Campaign {
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Set the execution configuration (thread-pool width).
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Schedule one run with paper-default policy configuration.
    pub fn add(&mut self, scenario: Scenario, kind: PolicyKind) -> &mut Self {
        let label = format!("{}@seed{}", kind.name(), scenario.seed);
        self.add_entry(CampaignEntry {
            label,
            scenario,
            kind,
            overrides: PolicyOverrides::default(),
        })
    }

    /// Schedule one run with an explicit label and policy overrides.
    pub fn add_with(
        &mut self,
        label: impl Into<String>,
        scenario: Scenario,
        kind: PolicyKind,
        overrides: PolicyOverrides,
    ) -> &mut Self {
        self.add_entry(CampaignEntry {
            label: label.into(),
            scenario,
            kind,
            overrides,
        })
    }

    /// Schedule a fully-specified entry.
    pub fn add_entry(&mut self, entry: CampaignEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Schedule every §VII policy over `scenario`, in
    /// [`PolicyKind::ALL`] order.
    pub fn add_all_policies(&mut self, scenario: Scenario) -> &mut Self {
        for kind in PolicyKind::ALL {
            self.add(scenario.clone(), kind);
        }
        self
    }

    /// Schedule the full cross product `scenarios × kinds`,
    /// scenario-major.
    pub fn add_grid(
        &mut self,
        scenarios: impl IntoIterator<Item = Scenario>,
        kinds: &[PolicyKind],
    ) -> &mut Self {
        for sc in scenarios {
            for &kind in kinds {
                self.add(sc.clone(), kind);
            }
        }
        self
    }

    /// Builder-style [`Campaign::add`].
    pub fn with_run(mut self, scenario: Scenario, kind: PolicyKind) -> Self {
        self.add(scenario, kind);
        self
    }

    /// Builder-style [`Campaign::add_all_policies`].
    pub fn with_all_policies(mut self, scenario: Scenario) -> Self {
        self.add_all_policies(scenario);
        self
    }

    /// Builder-style [`Campaign::add_grid`].
    pub fn with_grid(
        mut self,
        scenarios: impl IntoIterator<Item = Scenario>,
        kinds: &[PolicyKind],
    ) -> Self {
        self.add_grid(scenarios, kinds);
        self
    }

    pub fn entries(&self) -> &[CampaignEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Execute every scheduled run under the configured pool; results in
    /// input order, bit-identical to [`Campaign::run_sequential`] (see
    /// the module docs for the contract).
    pub fn run(&self) -> Vec<CampaignResult> {
        self.run_with(self.exec)
    }

    /// Execute on the calling thread, one run at a time.
    pub fn run_sequential(&self) -> Vec<CampaignResult> {
        self.run_with(ExecConfig::sequential())
    }

    /// Execute under an explicit execution configuration, ignoring the
    /// campaign's own.
    pub fn run_with(&self, exec: ExecConfig) -> Vec<CampaignResult> {
        let outputs = sweep_parallel(&self.entries, exec, |e| {
            run_policy_with(&e.scenario, e.kind, &e.overrides)
        });
        self.entries
            .iter()
            .zip(outputs)
            .map(|(e, output)| CampaignResult {
                label: e.label.clone(),
                kind: e.kind,
                seed: e.scenario.seed,
                output,
            })
            .collect()
    }
}

/// 64-bit FNV-1a determinism digest of everything a run deterministically
/// computes: recorder samples and events, the §VII summary, and the
/// telemetry snapshot *minus* wall-clock span histograms (`*.ns`), which
/// measure elapsed time and legitimately vary between executions.
///
/// Two runs of the same scenario/policy — sequential or parallel, on any
/// thread — must produce equal digests; `bench_engine --check` and
/// `tests/parallel.rs` enforce this.
///
/// Composed from [`digest_sample`] (once per sample, in order) followed
/// by [`digest_run_tail`] — the same decomposition the streaming
/// datacenter recorder uses to fold samples incrementally without
/// retaining them, which is what makes streaming digests bit-identical
/// to full-retention digests by construction.
pub fn run_digest(out: &RunOutput) -> u64 {
    let mut h = DigestBuilder::new();
    for s in out.recorder.samples() {
        digest_sample(&mut h, s);
    }
    digest_run_tail(&mut h, out.recorder.events(), &out.summary, &out.metrics);
    h.finish()
}

/// Fold one recorder [`Sample`](crate::recorder::Sample) into `h` — the per-sample section of
/// [`run_digest`], exposed so a streaming recorder can hash samples at
/// push time instead of retaining them.
pub fn digest_sample(h: &mut DigestBuilder, s: &crate::recorder::Sample) {
    h.f64(s.t.0);
    h.f64(s.p_total.0);
    h.f64(s.p_measured.0);
    h.f64(s.p_server.0);
    h.f64(s.p_fan.0);
    h.f64(s.cb_power.0);
    h.f64(s.ups_power.0);
    h.f64(s.shortfall.0);
    h.bool(s.tripped);
    h.bool(s.breaker_closed);
    h.f64(s.breaker_margin);
    h.f64(s.ups_soc);
    h.opt_f64(s.p_cb_target.map(|w| w.0));
    h.opt_f64(s.p_batch_target.map(|w| w.0));
    h.f64(s.mean_freq_interactive);
    h.f64(s.mean_freq_batch);
    h.f64(s.interactive_backlog);
    // Open-loop queue observation: contributes bytes only when
    // present, so closed-loop runs keep their pre-redesign digests
    // bit-exactly (no None marker is hashed).
    if let Some(q) = s.queue {
        h.f64(q.depth);
        h.f64(q.p50_s);
        h.f64(q.p95_s);
        h.f64(q.p99_s);
        h.f64(q.arrived);
        h.f64(q.completed);
        h.f64(q.dropped);
    }
    h.str(&s.mode_label.to_string());
}

/// Fold everything [`run_digest`] hashes *after* the samples: the event
/// log, the §VII summary, and the telemetry snapshot (minus `*.ns`
/// wall-clock histograms). Call after the last [`digest_sample`].
pub fn digest_run_tail(
    h: &mut DigestBuilder,
    events: &[(powersim::units::Seconds, crate::recorder::SimEvent)],
    summary: &RunSummary,
    metrics: &telemetry::MetricsSnapshot,
) {
    for (t, e) in events {
        h.f64(t.0);
        h.str(&format!("{e:?}"));
    }
    let s = summary;
    h.str(&s.policy);
    h.f64(s.avg_freq_interactive);
    h.f64(s.avg_freq_batch);
    h.u64(s.trips as u64);
    h.bool(s.shutdown);
    h.opt_f64(s.shutdown_at.map(|t| t.0));
    h.f64(s.ups_energy_wh);
    h.f64(s.dod);
    h.f64(s.max_dod);
    h.u64(s.deadlines_met as u64);
    h.u64(s.deadlines_total as u64);
    h.f64(s.normalized_time_use);
    h.f64(s.service_ratio);
    h.f64(s.cb_energy_wh);
    // Same conditional-hash rule as Sample.queue above.
    if let Some(t) = s.open_loop {
        h.f64(t.p50_s);
        h.f64(t.p95_s);
        h.f64(t.p99_s);
        h.f64(t.max_s);
        h.f64(t.arrived);
        h.f64(t.completed);
        h.f64(t.dropped);
        h.f64(t.drop_fraction);
    }
    let m = metrics;
    for (name, v) in &m.counters {
        h.str(name);
        h.u64(*v);
    }
    for (name, v) in &m.gauges {
        h.str(name);
        h.f64(*v);
    }
    for (name, hist) in &m.histograms {
        if name.ends_with(".ns") {
            continue; // wall-clock spans: not part of the contract
        }
        h.str(name);
        for (bound, count) in &hist.buckets {
            h.f64(*bound);
            h.u64(*count);
        }
        h.u64(hist.overflow);
        h.u64(hist.count);
        h.f64(hist.sum);
    }
}

/// Order-sensitive FNV-1a combiner for composite digests.
///
/// The datacenter engine folds per-rack [`run_digest`] values plus the
/// market-round grants and aggregate breaker outcomes into one
/// deterministic digest; anything else that needs to hash structured
/// results with the same bit-exact f64 semantics can reuse it.
///
/// `Clone` snapshots the accumulator state, which is how the streaming
/// recorder hands its incremental sample fold to the finalizer while
/// remaining usable itself.
#[derive(Debug, Clone)]
pub struct DigestBuilder(Fnv);

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestBuilder {
    pub fn new() -> Self {
        DigestBuilder(Fnv::new())
    }

    pub fn u64(&mut self, v: u64) {
        self.0.u64(v);
    }

    /// Hash the exact bit pattern of `v` (distinguishes `-0.0`/`0.0`,
    /// NaN payloads — matching [`run_digest`]'s semantics).
    pub fn f64(&mut self, v: f64) {
        self.0.f64(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.0.bool(v);
    }

    /// Hash `Some(v)`/`None` with an explicit presence marker byte
    /// (matching [`run_digest`]'s treatment of optional targets).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        self.0.opt_f64(v);
    }

    pub fn str(&mut self, s: &str) {
        self.0.str(s);
    }

    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Minimal FNV-1a accumulator (no std `Hasher` detour: f64 hashing must
/// be explicit about bit patterns).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.bytes(&[1]);
                self.f64(v);
            }
            None => self.bytes(&[0]),
        }
    }

    fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0xff]); // delimiter: "ab","c" != "a","bc"
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_policy;
    use powersim::units::Seconds;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut sc = Scenario::paper_default(seed);
        sc.duration = Seconds(20.0);
        sc
    }

    #[test]
    fn campaign_runs_in_input_order_with_auto_labels() {
        let mut c = Campaign::new();
        c.add(quick_scenario(1), PolicyKind::Sgct);
        c.add(quick_scenario(2), PolicyKind::SprintCon);
        let results = c.run_with(ExecConfig::jobs(2));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "SGCT@seed1");
        assert_eq!(results[1].label, "SprintCon@seed2");
        assert_eq!(results[0].seed, 1);
        assert_eq!(results[1].kind, PolicyKind::SprintCon);
    }

    #[test]
    fn parallel_digests_match_sequential() {
        let c = Campaign::new()
            .with_all_policies(quick_scenario(5))
            .with_exec(ExecConfig::jobs(4));
        let par = c.run();
        let seq = c.run_sequential();
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.digest(), s.digest(), "{} diverged", p.label);
        }
    }

    #[test]
    fn digest_distinguishes_different_runs() {
        let a = run_policy(&quick_scenario(5), PolicyKind::SprintCon);
        let b = run_policy(&quick_scenario(6), PolicyKind::SprintCon);
        assert_ne!(run_digest(&a), run_digest(&b));
        // And is reproducible for the same run.
        let a2 = run_policy(&quick_scenario(5), PolicyKind::SprintCon);
        assert_eq!(run_digest(&a), run_digest(&a2));
    }

    #[test]
    fn run_all_parallel_matches_run_all_order() {
        let sc = quick_scenario(3);
        let par = run_all_parallel(&sc);
        assert_eq!(par.len(), PolicyKind::ALL.len());
        for (out, kind) in par.iter().zip(PolicyKind::ALL) {
            assert_eq!(out.summary.policy, kind.name());
        }
    }

    #[test]
    fn grid_is_scenario_major() {
        let kinds = [PolicyKind::SprintCon, PolicyKind::Sgct];
        let c = Campaign::new().with_grid([quick_scenario(1), quick_scenario(2)], &kinds);
        let labels: Vec<&str> = c.entries().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "SprintCon@seed1",
                "SGCT@seed1",
                "SprintCon@seed2",
                "SGCT@seed2"
            ]
        );
    }

    #[test]
    fn exec_config_resolves_widths() {
        assert_eq!(ExecConfig::sequential().resolved_jobs(), 1);
        assert_eq!(ExecConfig::jobs(3).resolved_jobs(), 3);
        assert!(ExecConfig::parallel().resolved_jobs() >= 1);
    }

    #[test]
    fn sweep_parallel_preserves_order() {
        let params: Vec<u64> = (0..23).collect();
        let out = sweep_parallel(&params, ExecConfig::jobs(4), |p| p * 7);
        assert_eq!(out, (0..23).map(|p| p * 7).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(sweep_parallel(&empty, ExecConfig::parallel(), |p| *p).is_empty());
    }
}
