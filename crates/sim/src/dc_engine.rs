//! The datacenter engine: one SprintCon stack per rack under a shared
//! feeder → PDU → rack power tree, coupled only through the two-level
//! headroom market of `sprintcon::bidding`.
//!
//! ## Structure
//!
//! A [`DcScenario`] is a rack template ([`Scenario`]) plus a
//! [`DatacenterTopology`]. Rack `r` runs the template with seed
//! `base.seed + r` — rack 0 *is* the template, which is what makes the
//! single-rack equivalence gate possible (see below). Each rack is a
//! full [`RackSim`](crate::engine::RackSim) + [`SprintConPolicy`] +
//! [`Recorder`] shard with its
//! own thread-scoped telemetry collector, exactly mirroring
//! `experiment::run_instrumented` so a shard's [`RunOutput`] digests
//! identically to a standalone run.
//!
//! ## Determinism contract
//!
//! Time is chopped into *epochs* of one allocator period
//! (`SprintConConfig::allocator_period`, 30 s in the paper). The loop
//! alternates:
//!
//! 1. a **sequential market round** on the driving thread: every rack
//!    bids its overload headroom ([`sprintcon::SprintCon::headroom_request`]),
//!    the two-level auction clears the feeder budget through the PDU
//!    caps over a reusable [`MarketWorkspace`] (allocation-free once
//!    warm), and the grants are installed as breaker-target ceilings
//!    ([`sprintcon::SprintCon::apply_feeder_grant`]);
//! 2. **parallel epoch stepping**: shards advance one epoch with no
//!    shared state — cross-rack information flows *only* through the
//!    market round at the boundary — sharded over a **persistent worker
//!    pool** built once per run (scoped threads parked on a barrier
//!    between epochs, each owning a fixed contiguous slice of racks).
//!    Every shard installs its own collector for the duration of its
//!    step, so metrics cannot bleed between racks even on long-lived
//!    workers;
//! 3. a **sequential tree replay**: the per-rack breaker powers of the
//!    epoch are folded rack-ascending into contiguous per-PDU tick
//!    lanes, then the [`Datacenter`] PDU/feeder thermal breakers are
//!    stepped tick by tick from the precomputed sums
//!    ([`Datacenter::step_pdu_loads`], allocation-free).
//!
//! Because market rounds and the tree replay are sequential and the
//! epoch stepping is embarrassingly parallel, the run is a pure function
//! of the scenario: [`DatacenterSim::run`] is bit-identical across
//! worker counts, which [`DcRunOutput::digest`] (an FNV fold of the
//! per-rack [`run_digest`]s, the market grants, and the aggregate
//! breaker outcomes) makes checkable in one comparison.
//! `bench_datacenter --check` and `tests/datacenter.rs` enforce both
//! that gate and single-rack equivalence: under a
//! [`DatacenterTopology::single_rack`] tree with an ample edge rating,
//! every grant is bit-transparent (`min(p_cb, rated + grant)` returns
//! `p_cb` exactly), so rack 0's digest equals the plain
//! `run_policy(.., PolicyKind::SprintCon)` digest bit for bit.
//!
//! ## Memory model (DESIGN.md §5i)
//!
//! [`DcRecordMode`] picks the recording retention. `Full` keeps every
//! rack's whole-run [`Sample`](crate::recorder::Sample) trajectory —
//! O(racks × ticks) resident, full post-hoc analysis. `Streaming` keeps
//! only one epoch of contiguous `cb_power` lane per rack plus folded
//! aggregates and a running digest — O(racks) resident — and produces
//! **bit-identical** per-rack and floor digests (the digest byte stream
//! is folded sample-by-sample in push order either way). The replay
//! consumes each epoch lane and clears it; `samples()` stays empty.
//!
//! Market rounds are telemetry-free by construction (the run digest
//! includes telemetry counters, so a bid must not perturb a rack's
//! digest).

use crate::exec::{digest_run_tail, run_digest, DigestBuilder, ExecConfig};
use crate::experiment::RunOutput;
use crate::metrics::RunSummary;
use crate::policy::SprintConPolicy;
use crate::recorder::Recorder;
use crate::scenario::{Scenario, ScenarioError};
use powersim::datacenter::{Datacenter, DatacenterTopology, TopologyError};
use powersim::grid::GridInjector;
use powersim::units::{Seconds, Watts};
use sprintcon::{allocate_headroom_two_level_with, HeadroomBid, MarketWorkspace};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use telemetry::{Collector, NullSink};

/// A datacenter experiment: one rack template fanned across a power
/// tree. Rack `r` runs `base` with seed `base.seed + r` (wrapping), so
/// racks see independent workload/noise/fault streams while rack 0
/// reproduces the template run exactly.
#[derive(Debug, Clone)]
pub struct DcScenario {
    /// Per-rack scenario template (defines the rack edge: servers,
    /// breaker, UPS, workloads, faults, duration, `dt`).
    pub base: Scenario,
    /// The shared feeder → PDU → rack tree above the rack edges.
    pub topo: DatacenterTopology,
}

impl DcScenario {
    /// Validate both layers and assemble.
    pub fn new(base: Scenario, topo: DatacenterTopology) -> Result<Self, DcError> {
        base.validate().map_err(DcError::Scenario)?;
        topo.validate().map_err(DcError::Topology)?;
        Ok(DcScenario { base, topo })
    }

    /// The scenario rack `r` runs: the template reseeded with
    /// `base.seed + r`. `rack_scenario(0) == base`.
    pub fn rack_scenario(&self, rack: usize) -> Scenario {
        let mut sc = self.base.clone();
        sc.seed = self.base.seed.wrapping_add(rack as u64);
        sc
    }
}

/// Recording retention for a datacenter run — the memory/observability
/// trade at floor scale (see the module docs and DESIGN.md §5i).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DcRecordMode {
    /// Every rack keeps its whole-run sample trajectory:
    /// O(racks × ticks) resident, full post-hoc analysis, the historical
    /// behavior and the default.
    #[default]
    Full,
    /// Every rack keeps one epoch of `cb_power` lane plus folded
    /// aggregates and a running digest: O(racks) resident, bit-identical
    /// digests and summaries, empty `samples()`. The mode that makes a
    /// 10k-rack floor routine.
    Streaming,
}

/// Why a datacenter scenario failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    Scenario(ScenarioError),
    Topology(TopologyError),
    /// A PDU's rating cannot even carry its member racks at rated draw.
    PduBelowRated {
        pdu: usize,
        rating: Watts,
        rated_sum: Watts,
    },
    /// The feeder's rating cannot carry every rack at rated draw.
    FeederBelowRated {
        rating: Watts,
        rated_sum: Watts,
    },
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcError::Scenario(e) => write!(f, "rack scenario: {e}"),
            DcError::Topology(e) => write!(f, "power tree: {e}"),
            DcError::PduBelowRated {
                pdu,
                rating,
                rated_sum,
            } => write!(
                f,
                "PDU {pdu} rated at {rating} cannot carry its racks' rated draw of {rated_sum}"
            ),
            DcError::FeederBelowRated { rating, rated_sum } => write!(
                f,
                "feeder rated at {rating} cannot carry the racks' rated draw of {rated_sum}"
            ),
        }
    }
}

impl std::error::Error for DcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcError::Scenario(e) => Some(e),
            DcError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

/// One cleared headroom auction at an epoch boundary.
#[derive(Debug, Clone)]
pub struct MarketRound {
    /// Epoch index (rounds fire at `t = epoch · allocator_period`).
    pub epoch: usize,
    /// Granted headroom watts per rack, rack order.
    pub grants: Vec<Watts>,
    /// Total watts handed out this round (`≤ budget`).
    pub spent: Watts,
    /// The feeder headroom budget the round cleared against. Nominally
    /// the topology's feeder headroom; an active grid curtailment
    /// shrinks it to what the per-rack cap leaves above rated draw.
    pub budget: Watts,
}

/// Everything a datacenter run produces.
#[derive(Debug)]
pub struct DcRunOutput {
    /// Per-rack results, rack order — each shaped exactly like a
    /// standalone `run_policy` output (recording, §VII summary,
    /// telemetry snapshot). Under [`DcRecordMode::Streaming`] the
    /// recorders' `samples()` are empty (aggregates and events remain).
    pub racks: Vec<RunOutput>,
    /// Per-rack [`run_digest`]s, rack order — bit-identical between
    /// record modes, so streaming runs stay spot-checkable against
    /// standalone full runs.
    pub rack_digests: Vec<u64>,
    /// The recording retention this run used.
    pub record_mode: DcRecordMode,
    /// The cleared market rounds, epoch order.
    pub rounds: Vec<MarketRound>,
    /// `pdu_of[r]` — which PDU rack `r` hangs off (conservation tests).
    pub pdu_of: Vec<usize>,
    /// Per-PDU headroom caps the auctions cleared against.
    pub pdu_caps: Vec<Watts>,
    /// The feeder headroom budget.
    pub feeder_budget: Watts,
    /// Control periods during which each PDU breaker tripped.
    pub pdu_trip_periods: Vec<u64>,
    /// Control periods during which the feeder breaker tripped.
    pub feeder_trip_periods: u64,
    /// Peak instantaneous feeder load over the run.
    pub peak_feeder_load: Watts,
    /// Determinism digest of the whole run: per-rack [`run_digest`]s in
    /// rack order, the market rounds, and the aggregate tree outcomes.
    /// Bit-identical across worker counts *and* record modes.
    pub digest: u64,
}

impl DcRunOutput {
    /// `Σ grants` of round `i` — conservation checks read this against
    /// [`DcRunOutput::feeder_budget`].
    pub fn round_total(&self, i: usize) -> Watts {
        Watts(self.rounds[i].grants.iter().map(|g| g.0).sum())
    }
}

/// One rack's full stack: plant, controller, recording, and the
/// thread-scoped collector its telemetry lands in.
struct RackShard {
    sim: crate::engine::RackSim,
    policy: SprintConPolicy,
    rec: Recorder,
    collector: Arc<Collector>,
}

/// Epoch hand-off between the driving thread and the persistent worker
/// pool. Workers park on `barrier` between epochs; the driver stores
/// the tick count, releases them through the start barrier, and meets
/// them again at the end barrier. A worker panic is caught into `panic`
/// (first wins) and re-raised on the driving thread, so a failed rack
/// step surfaces exactly as it would sequentially.
struct EpochCtl {
    /// Rendezvous of all workers + the driver (width + 1 parties),
    /// crossed twice per epoch: start and end.
    barrier: Barrier,
    /// Ticks to advance this epoch (stored before the start barrier).
    ticks: AtomicUsize,
    /// Set (then barrier crossed once) to shut the pool down.
    stop: AtomicBool,
    /// First worker panic payload, re-raised by the driver.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl EpochCtl {
    fn new(width: usize) -> Self {
        EpochCtl {
            barrier: Barrier::new(width + 1),
            ticks: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }
}

/// A `Mutex` lock that shrugs off poisoning: shard mutexes guard plain
/// data (no invariants broken mid-panic beyond what the panic itself
/// reports), and the driver re-raises worker panics anyway.
fn lock_shard(cell: &Mutex<RackShard>) -> MutexGuard<'_, RackShard> {
    cell.lock().unwrap_or_else(|e| e.into_inner())
}

/// What the drive loop aggregates; [`DatacenterSim::finalize`] folds it
/// with the per-rack outputs into the [`DcRunOutput`].
struct DriveAgg {
    rounds: Vec<MarketRound>,
    pdu_trip_periods: Vec<u64>,
    feeder_trip_periods: u64,
    peak_feeder_load: Watts,
}

/// The assembled datacenter: rack shards plus the shared power tree.
pub struct DatacenterSim {
    scenario: DcScenario,
    shards: Vec<RackShard>,
    dc: Datacenter,
    /// Rack → PDU map (topology order, cached for the market rounds).
    pdu_of: Vec<usize>,
    /// Per-PDU headroom above the members' combined rated draw.
    pdu_caps: Vec<Watts>,
    /// Feeder headroom above the whole floor's rated draw.
    feeder_budget: Watts,
    /// The floor's combined rated draw (curtailment budget arithmetic).
    rated_total: Watts,
    /// Floor-level grid-event replay, sampled once per market round
    /// (seed `base.seed + 5`; racks use `rack_seed + 4` individually).
    grid: GridInjector,
    /// Control periods per market epoch (`allocator_period / dt`).
    epoch_ticks: usize,
    /// Recording retention (see [`DcRecordMode`]).
    record_mode: DcRecordMode,
}

impl DatacenterSim {
    /// Build every rack shard and the shared tree from the scenario,
    /// with [`DcRecordMode::Full`] retention.
    pub fn from_scenario(scenario: &DcScenario) -> Result<Self, DcError> {
        Self::from_scenario_with(scenario, DcRecordMode::Full)
    }

    /// Build every rack shard and the shared tree from the scenario.
    ///
    /// Shards are assembled inside their own collector scope, mirroring
    /// `experiment::run_instrumented`, so construction-time telemetry
    /// (if any) lands in the same place as a standalone run's.
    pub fn from_scenario_with(
        scenario: &DcScenario,
        record_mode: DcRecordMode,
    ) -> Result<Self, DcError> {
        scenario.base.validate().map_err(DcError::Scenario)?;
        scenario.topo.validate().map_err(DcError::Topology)?;
        let num_racks = scenario.topo.num_racks();
        let steps = (scenario.base.duration.0 / scenario.base.dt.0).round() as usize;
        let mut shards = Vec::with_capacity(num_racks);
        for r in 0..num_racks {
            let sc = scenario.rack_scenario(r);
            let collector = Arc::new(Collector::new(Box::new(NullSink)));
            let (sim, policy) = telemetry::with_collector(Arc::clone(&collector), || {
                (sc.build(), SprintConPolicy::paper_default())
            });
            let rec = match record_mode {
                DcRecordMode::Full => Recorder::with_capacity(steps),
                DcRecordMode::Streaming => Recorder::streaming(),
            };
            shards.push(RackShard {
                sim,
                policy,
                rec,
                collector,
            });
        }

        // Headroom budgets: what each tree edge can carry beyond its
        // subtree's combined rated draw. The market clears *headroom*,
        // so a non-negative budget at every edge is a hard requirement.
        let mut pdu_caps = Vec::with_capacity(scenario.topo.num_pdus());
        let mut rated_total = 0.0;
        for (p, pdu) in scenario.topo.pdus.iter().enumerate() {
            let rated_sum: f64 = scenario
                .topo
                .racks_of_pdu(p)
                .map(|r| shards[r].policy.inner().cfg.rated().0)
                .sum();
            rated_total += rated_sum;
            if pdu.rating.0 < rated_sum {
                return Err(DcError::PduBelowRated {
                    pdu: p,
                    rating: pdu.rating,
                    rated_sum: Watts(rated_sum),
                });
            }
            pdu_caps.push(Watts(pdu.rating.0 - rated_sum));
        }
        if scenario.topo.feeder_rating.0 < rated_total {
            return Err(DcError::FeederBelowRated {
                rating: scenario.topo.feeder_rating,
                rated_sum: Watts(rated_total),
            });
        }
        let feeder_budget = Watts(scenario.topo.feeder_rating.0 - rated_total);

        let pdu_of: Vec<usize> = (0..num_racks)
            .map(|r| scenario.topo.pdu_of_rack(r))
            .collect();
        let period = shards[0].policy.inner().cfg.allocator_period;
        let epoch_ticks = ((period.0 / scenario.base.dt.0).round() as usize).max(1);
        let dc = Datacenter::paper_calibrated(scenario.topo.clone()).map_err(DcError::Topology)?;
        let grid = GridInjector::new(
            scenario.base.grid.clone(),
            scenario.base.seed.wrapping_add(5),
        );
        Ok(DatacenterSim {
            scenario: scenario.clone(),
            shards,
            dc,
            pdu_of,
            pdu_caps,
            feeder_budget,
            rated_total: Watts(rated_total),
            grid,
            epoch_ticks,
            record_mode,
        })
    }

    pub fn num_racks(&self) -> usize {
        self.shards.len()
    }

    /// The feeder headroom budget the market clears each epoch.
    pub fn feeder_budget(&self) -> Watts {
        self.feeder_budget
    }

    /// Control periods per market epoch.
    pub fn epoch_ticks(&self) -> usize {
        self.epoch_ticks
    }

    /// The recording retention this sim was built with.
    pub fn record_mode(&self) -> DcRecordMode {
        self.record_mode
    }

    /// The feeder headroom budget in effect at `now`: the topology's
    /// nominal budget, shrunk while a grid curtailment is active to the
    /// headroom the per-rack cap leaves above the floor's rated draw
    /// (`max(0, n_racks · cap − rated_total)`). Inactive plans return
    /// the nominal budget bit-identically.
    fn effective_budget(&mut self, now: Seconds, epoch_dt: Seconds) -> Watts {
        let ag = self.grid.advance(now, epoch_dt);
        match ag.curtail_cap {
            Some(cap) => {
                let curtailed =
                    (self.num_racks_hint() as f64 * cap.0 - self.rated_total.0).max(0.0);
                Watts(self.feeder_budget.0.min(curtailed))
            }
            None => self.feeder_budget,
        }
    }

    /// Rack count that survives `run()` moving the shards into their
    /// mutex cells (the pdu_of map is per-rack and never moves).
    fn num_racks_hint(&self) -> usize {
        self.pdu_of.len()
    }

    /// One sequential market round: gather bids, clear the two-level
    /// auction over the reusable workspace, install the grants as
    /// breaker-target ceilings. Only the `MarketRound::grants` copy for
    /// the output allocates once the workspace is warm.
    fn market_round(
        &mut self,
        cells: &[Mutex<RackShard>],
        bids: &mut Vec<HeadroomBid>,
        ws: &mut MarketWorkspace,
        epoch: usize,
        budget: Watts,
    ) -> MarketRound {
        bids.clear();
        for (r, cell) in cells.iter().enumerate() {
            let shard = lock_shard(cell);
            bids.push(HeadroomBid {
                id: r,
                request: shard.policy.inner().headroom_request(),
                priority: shard.policy.inner().headroom_priority(),
            });
        }
        let outcome =
            allocate_headroom_two_level_with(ws, bids, &self.pdu_of, &self.pdu_caps, budget);
        // Conservation is the market's contract; a violation here is a
        // bug in the auction, not a recoverable condition.
        assert!(
            outcome.spent.0 <= budget.0 * (1.0 + 1e-12) + 1e-9,
            "market overspent the feeder budget: {} > {budget}",
            outcome.spent,
        );
        for (cell, &grant) in cells.iter().zip(ws.grants()) {
            let mut shard = lock_shard(cell);
            shard.policy.inner_mut().apply_feeder_grant(Some(grant));
        }
        MarketRound {
            epoch,
            grants: ws.grants().to_vec(),
            spent: outcome.spent,
            budget,
        }
    }

    /// Advance one shard `ticks` control periods under its collector.
    ///
    /// The collector is (re-)installed around every epoch step — pool
    /// workers are long-lived and own several racks, so per-rack
    /// telemetry isolation comes from the install, not thread identity.
    fn step_shard(shard: &mut RackShard, ticks: usize) {
        let collector = Arc::clone(&shard.collector);
        let sim = &mut shard.sim;
        let policy = &mut shard.policy;
        let rec = &mut shard.rec;
        telemetry::with_collector(collector, || {
            for _ in 0..ticks {
                sim.step(policy, rec);
            }
        });
    }

    /// Persistent-pool worker: park on the barrier, step the owned rack
    /// slice for the posted tick count, meet the end barrier, repeat
    /// until `stop`. Panics are caught into the shared slot (the shard
    /// mutex poisons too, which is fine — see [`lock_shard`]) so the
    /// worker still reaches the end barrier and the driver can re-raise.
    fn worker_loop(ctl: &EpochCtl, cells: &[Mutex<RackShard>]) {
        loop {
            ctl.barrier.wait();
            if ctl.stop.load(Ordering::Acquire) {
                return;
            }
            let ticks = ctl.ticks.load(Ordering::Acquire);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for cell in cells {
                    let mut shard = lock_shard(cell);
                    Self::step_shard(&mut shard, ticks);
                }
            }));
            if let Err(payload) = result {
                let mut slot = ctl.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            ctl.barrier.wait();
        }
    }

    /// Vectorized tree replay of one epoch: fold every rack's recorded
    /// breaker powers rack-ascending into contiguous per-PDU tick lanes
    /// (`lanes[p · ticks + k]`), then step the shared breakers tick by
    /// tick from the precomputed sums. Addition order per (PDU, tick)
    /// is racks ascending — exactly the order `Datacenter::step` sums —
    /// so the replay is bit-identical to the historical per-tick gather.
    #[allow(clippy::too_many_arguments)]
    fn replay_epoch(
        &mut self,
        cells: &[Mutex<RackShard>],
        done: usize,
        ticks: usize,
        dt: Seconds,
        lanes: &mut [f64],
        tick_loads: &mut [f64],
        pdu_delivered: &mut [f64],
        pdu_tripped: &mut [bool],
        agg: &mut DriveAgg,
    ) {
        let num_pdus = self.scenario.topo.num_pdus();
        let lanes = &mut lanes[..num_pdus * ticks];
        lanes.fill(0.0);
        let mut rack = 0;
        for (p, pdu) in self.scenario.topo.pdus.iter().enumerate() {
            let lane = &mut lanes[p * ticks..(p + 1) * ticks];
            for cell in &cells[rack..rack + pdu.num_racks] {
                let mut shard = lock_shard(cell);
                if let Some(src) = shard.rec.epoch_lane() {
                    assert_eq!(
                        src.len(),
                        ticks,
                        "epoch lane must hold exactly one epoch of samples"
                    );
                    for (slot, &w) in lane.iter_mut().zip(src) {
                        assert!(w >= 0.0 && w.is_finite(), "invalid rack power");
                        *slot += w;
                    }
                    shard.rec.clear_epoch_lane();
                } else {
                    let src = &shard.rec.samples()[done..done + ticks];
                    for (slot, s) in lane.iter_mut().zip(src) {
                        let w = s.cb_power.0;
                        assert!(w >= 0.0 && w.is_finite(), "invalid rack power");
                        *slot += w;
                    }
                }
            }
            rack += pdu.num_racks;
        }
        for k in 0..ticks {
            for (p, load) in tick_loads.iter_mut().enumerate() {
                *load = lanes[p * ticks + k];
            }
            let feeder = self
                .dc
                .step_pdu_loads(tick_loads, dt, pdu_delivered, pdu_tripped);
            for (count, &tripped) in agg.pdu_trip_periods.iter_mut().zip(&*pdu_tripped) {
                *count += tripped as u64;
            }
            agg.feeder_trip_periods += feeder.feeder_tripped as u64;
            if feeder.feeder_load.0 > agg.peak_feeder_load.0 {
                agg.peak_feeder_load = feeder.feeder_load;
            }
        }
    }

    /// The sequential drive loop: market round → epoch step (inline or
    /// via the persistent pool) → tree replay, per epoch.
    fn drive(&mut self, cells: &[Mutex<RackShard>], ctl: Option<&EpochCtl>) -> DriveAgg {
        let dt = self.scenario.base.dt;
        let total = (self.scenario.base.duration.0 / dt.0).round() as usize;
        let num_pdus = self.scenario.topo.num_pdus();
        let mut agg = DriveAgg {
            rounds: Vec::with_capacity(total / self.epoch_ticks + 1),
            pdu_trip_periods: vec![0u64; num_pdus],
            feeder_trip_periods: 0,
            peak_feeder_load: Watts::ZERO,
        };
        let mut bids: Vec<HeadroomBid> = Vec::with_capacity(cells.len());
        let mut market_ws = MarketWorkspace::new();
        let mut lanes = vec![0.0f64; num_pdus * self.epoch_ticks];
        let mut tick_loads = vec![0.0f64; num_pdus];
        let mut pdu_delivered = vec![0.0f64; num_pdus];
        let mut pdu_tripped = vec![false; num_pdus];

        let mut done = 0;
        let mut epoch = 0;
        while done < total {
            let ticks = self.epoch_ticks.min(total - done);
            let budget = self.effective_budget(
                Seconds(done as f64 * dt.0),
                Seconds(self.epoch_ticks as f64 * dt.0),
            );
            let round = self.market_round(cells, &mut bids, &mut market_ws, epoch, budget);
            agg.rounds.push(round);
            match ctl {
                None => {
                    for cell in cells {
                        let mut shard = lock_shard(cell);
                        Self::step_shard(&mut shard, ticks);
                    }
                }
                Some(ctl) => {
                    ctl.ticks.store(ticks, Ordering::Release);
                    ctl.barrier.wait();
                    ctl.barrier.wait();
                    let payload = ctl.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
                    if let Some(payload) = payload {
                        resume_unwind(payload);
                    }
                }
            }
            self.replay_epoch(
                cells,
                done,
                ticks,
                dt,
                &mut lanes,
                &mut tick_loads,
                &mut pdu_delivered,
                &mut pdu_tripped,
                &mut agg,
            );
            done += ticks;
            epoch += 1;
        }
        agg
    }

    /// Finalize each shard exactly like `run_instrumented`: summary
    /// inside the collector scope, then flush and snapshot. Streaming
    /// shards finish their fold and hand back the incrementally built
    /// digest; full shards digest their retained trajectory — both land
    /// on the same byte stream.
    fn finalize(self, cells: Vec<Mutex<RackShard>>, agg: DriveAgg) -> DcRunOutput {
        let mut racks = Vec::with_capacity(cells.len());
        let mut rack_digests = Vec::with_capacity(cells.len());
        for cell in cells {
            let mut shard = cell.into_inner().unwrap_or_else(|e| e.into_inner());
            shard.rec.finish_stream();
            let summary = telemetry::with_collector(Arc::clone(&shard.collector), || {
                RunSummary::from_run("SprintCon", &shard.sim, &shard.rec)
            });
            shard.collector.flush();
            let metrics = shard.collector.snapshot();
            let stream_digest = shard.rec.stream_digest().map(|mut h| {
                digest_run_tail(&mut h, shard.rec.events(), &summary, &metrics);
                h.finish()
            });
            let out = RunOutput {
                recorder: shard.rec,
                summary,
                metrics,
            };
            rack_digests.push(stream_digest.unwrap_or_else(|| run_digest(&out)));
            racks.push(out);
        }

        let mut h = DigestBuilder::new();
        for &d in &rack_digests {
            h.u64(d);
        }
        for round in &agg.rounds {
            h.u64(round.epoch as u64);
            h.f64(round.spent.0);
            h.f64(round.budget.0);
            for g in &round.grants {
                h.f64(g.0);
            }
        }
        for &t in &agg.pdu_trip_periods {
            h.u64(t);
        }
        h.u64(agg.feeder_trip_periods);
        h.f64(agg.peak_feeder_load.0);
        let digest = h.finish();

        DcRunOutput {
            racks,
            rack_digests,
            record_mode: self.record_mode,
            rounds: agg.rounds,
            pdu_of: self.pdu_of,
            pdu_caps: self.pdu_caps,
            feeder_budget: self.feeder_budget,
            pdu_trip_periods: agg.pdu_trip_periods,
            feeder_trip_periods: agg.feeder_trip_periods,
            peak_feeder_load: agg.peak_feeder_load,
            digest,
        }
    }

    /// Run the whole campaign: market rounds at every allocator
    /// boundary, parallel epoch stepping between them over a persistent
    /// worker pool, and the vectorized tree replay behind each epoch.
    /// Consumes the sim (a run is one-shot).
    pub fn run(mut self, exec: ExecConfig) -> DcRunOutput {
        let width = exec.resolved_jobs().min(self.shards.len()).max(1);
        // Shards move into mutex cells so the pool's scoped threads can
        // share them with the driver; each cell is only ever touched by
        // one thread at a time (workers inside an epoch, the driver at
        // the boundaries), the mutex just proves it to the compiler.
        let cells: Vec<Mutex<RackShard>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let agg = if width <= 1 {
            self.drive(&cells, None)
        } else {
            let ctl = EpochCtl::new(width);
            let chunk = cells.len().div_ceil(width);
            std::thread::scope(|scope| {
                for w in 0..width {
                    // Clamp both ends: ceil-division chunking can run a
                    // trailing worker past the cell count, and every
                    // worker must still reach the barrier.
                    let lo = (w * chunk).min(cells.len());
                    let hi = (lo + chunk).min(cells.len());
                    let slice = &cells[lo..hi];
                    let ctl = &ctl;
                    scope.spawn(move || Self::worker_loop(ctl, slice));
                }
                // If the drive loop itself panics (market assert, replay
                // shape assert, re-raised worker panic), still release
                // the workers parked on the start barrier so the scope
                // can join them, then re-raise.
                let result = catch_unwind(AssertUnwindSafe(|| self.drive(&cells, Some(&ctl))));
                ctl.stop.store(true, Ordering::Release);
                ctl.barrier.wait();
                match result {
                    Ok(agg) => agg,
                    Err(payload) => resume_unwind(payload),
                }
            })
        };
        self.finalize(cells, agg)
    }
}

/// Build and run a datacenter campaign in one call
/// ([`DcRecordMode::Full`] retention).
pub fn run_datacenter(scenario: &DcScenario, exec: ExecConfig) -> Result<DcRunOutput, DcError> {
    run_datacenter_with(scenario, exec, DcRecordMode::Full)
}

/// Build and run a datacenter campaign in one call, choosing the
/// recording retention. [`DcRecordMode::Streaming`] is the floor-scale
/// mode: O(racks) resident memory, bit-identical digests.
pub fn run_datacenter_with(
    scenario: &DcScenario,
    exec: ExecConfig,
    mode: DcRecordMode,
) -> Result<DcRunOutput, DcError> {
    Ok(DatacenterSim::from_scenario_with(scenario, mode)?.run(exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_policy, PolicyKind};
    use powersim::units::Seconds;

    fn quick_base(seed: u64) -> Scenario {
        let mut sc = Scenario::paper_default(seed);
        sc.duration = Seconds(90.0); // three market epochs
        sc
    }

    fn small_topo(racks: usize) -> DatacenterTopology {
        // Two PDUs where possible; per-PDU headroom for one overload
        // swing, feeder headroom for half the racks' swings.
        let per_pdu = racks.div_ceil(2).max(1);
        let pdus = racks.div_ceil(per_pdu);
        let mut topo = DatacenterTopology::uniform(
            pdus,
            per_pdu,
            Watts(per_pdu as f64 * 3200.0 + 800.0),
            Watts((pdus * per_pdu) as f64 * 3200.0 + 800.0 * racks as f64 / 2.0),
        )
        .expect("uniform topology is valid");
        // Trim the last PDU if the grid over-provisioned racks.
        let extra = pdus * per_pdu - racks;
        if extra > 0 {
            let last = topo.pdus.len() - 1;
            topo.pdus[last].num_racks -= extra;
        }
        topo
    }

    #[test]
    fn single_rack_datacenter_reproduces_the_standalone_digest() {
        let base = quick_base(42);
        let topo = DatacenterTopology::single_rack(Watts(4000.0)).unwrap();
        let dc = DcScenario::new(base.clone(), topo).unwrap();
        let out = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
        assert_eq!(out.racks.len(), 1);
        let standalone = run_policy(&base, PolicyKind::SprintCon);
        assert_eq!(
            run_digest(&out.racks[0]),
            run_digest(&standalone),
            "ample grants must be bit-transparent"
        );
        assert_eq!(out.rack_digests[0], run_digest(&standalone));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let dc = DcScenario::new(quick_base(7), small_topo(5)).unwrap();
        let seq = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
        for jobs in [2, 4] {
            let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).unwrap();
            assert_eq!(seq.digest, par.digest, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn streaming_mode_is_bit_identical_to_full_mode() {
        let dc = DcScenario::new(quick_base(7), small_topo(5)).unwrap();
        let full = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
        assert_eq!(full.record_mode, DcRecordMode::Full);
        for exec in [
            ExecConfig::sequential(),
            ExecConfig::jobs(2),
            ExecConfig::jobs(4),
        ] {
            let st = run_datacenter_with(&dc, exec, DcRecordMode::Streaming).unwrap();
            assert_eq!(st.record_mode, DcRecordMode::Streaming);
            assert_eq!(full.digest, st.digest, "floor digest diverged");
            assert_eq!(full.rack_digests, st.rack_digests, "rack digest diverged");
            assert_eq!(full.pdu_trip_periods, st.pdu_trip_periods);
            assert_eq!(full.feeder_trip_periods, st.feeder_trip_periods);
            assert!(
                st.racks.iter().all(|r| r.recorder.samples().is_empty()),
                "streaming mode must not retain trajectories"
            );
        }
    }

    #[test]
    fn full_mode_rack_digests_match_run_digest() {
        let dc = DcScenario::new(quick_base(3), small_topo(4)).unwrap();
        let out = run_datacenter(&dc, ExecConfig::jobs(2)).unwrap();
        for (rack, &d) in out.racks.iter().zip(&out.rack_digests) {
            assert_eq!(d, run_digest(rack));
        }
    }

    #[test]
    fn market_rounds_conserve_the_feeder_budget() {
        let dc = DcScenario::new(quick_base(3), small_topo(6)).unwrap();
        let out = run_datacenter(&dc, ExecConfig::jobs(2)).unwrap();
        assert_eq!(out.rounds.len(), 3, "90 s / 30 s epochs");
        for (i, round) in out.rounds.iter().enumerate() {
            let total = out.round_total(i);
            assert!(
                total.0 <= out.feeder_budget.0 + 1e-9,
                "round {i}: {total} > {}",
                out.feeder_budget
            );
            // Per-PDU conservation too.
            for (p, cap) in out.pdu_caps.iter().enumerate() {
                let pdu_sum: f64 = round
                    .grants
                    .iter()
                    .zip(&out.pdu_of)
                    .filter(|(_, &q)| q == p)
                    .map(|(g, _)| g.0)
                    .sum();
                assert!(pdu_sum <= cap.0 + 1e-9, "PDU {p}: {pdu_sum} > {cap}");
            }
        }
    }

    #[test]
    fn scarce_feeder_headroom_is_rationed_not_overspent() {
        // Feeder headroom for only one overload swing across 4 racks.
        let topo = DatacenterTopology::uniform(
            2,
            2,
            Watts(2.0 * 3200.0 + 800.0),
            Watts(4.0 * 3200.0 + 800.0),
        )
        .unwrap();
        let dc = DcScenario::new(quick_base(5), topo).unwrap();
        let out = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
        for round in &out.rounds {
            let total: f64 = round.grants.iter().map(|g| g.0).sum();
            assert!(total <= 800.0 + 1e-9, "overspent: {total}");
        }
        // Someone got something while sprints were live.
        assert!(out.rounds[0].spent.0 > 0.0);
    }

    #[test]
    fn feeder_curtailment_shrinks_the_market_budget() {
        use powersim::grid::GridPlan;
        // Per-rack cap 3300 W across 4 racks rated 3200 W: the floor may
        // carry 4·3300 − 4·3200 = 400 W of headroom, under the nominal
        // 1600 W feeder budget.
        let mut base = quick_base(9);
        base.grid =
            GridPlan::curtailment(Seconds(0.0), Seconds(600.0), Watts(3300.0), Seconds(30.0));
        let dc = DcScenario::new(base, small_topo(4)).unwrap();
        let out = run_datacenter(&dc, ExecConfig::sequential()).unwrap();
        for round in &out.rounds {
            assert_eq!(round.budget, Watts(400.0), "epoch {}", round.epoch);
            assert!(round.spent.0 <= 400.0 + 1e-9, "overspent: {}", round.spent);
        }
        // The uncurtailed topology budget is still reported alongside.
        assert_eq!(out.feeder_budget, Watts(1600.0));
    }

    #[test]
    fn inactive_grid_plans_leave_the_dc_digest_unchanged() {
        use powersim::grid::GridPlan;
        let plain = DcScenario::new(quick_base(11), small_topo(3)).unwrap();
        let mut with_plan = quick_base(11);
        // An explicit empty plan must be bit-transparent.
        with_plan.grid = GridPlan::none();
        let wired = DcScenario::new(with_plan, small_topo(3)).unwrap();
        let a = run_datacenter(&plain, ExecConfig::sequential()).unwrap();
        let b = run_datacenter(&wired, ExecConfig::jobs(2)).unwrap();
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn rack_scenarios_offset_the_seed() {
        let dc = DcScenario::new(quick_base(10), small_topo(3)).unwrap();
        assert_eq!(dc.rack_scenario(0).seed, 10);
        assert_eq!(dc.rack_scenario(2).seed, 12);
    }

    #[test]
    fn undersized_edges_are_rejected() {
        // PDU rating below the members' rated draw.
        let topo = DatacenterTopology::uniform(1, 2, Watts(6000.0), Watts(8000.0)).unwrap();
        let err = DatacenterSim::from_scenario(&DcScenario::new(quick_base(1), topo).unwrap())
            .err()
            .expect("6 kW PDU cannot carry 2 racks rated 3.2 kW each");
        assert!(
            matches!(err, DcError::PduBelowRated { pdu: 0, .. }),
            "{err}"
        );
        // Feeder rating below the floor's rated draw.
        let topo = DatacenterTopology::uniform(2, 1, Watts(4000.0), Watts(6000.0)).unwrap();
        let err = DatacenterSim::from_scenario(&DcScenario::new(quick_base(1), topo).unwrap())
            .err()
            .expect("6 kW feeder cannot carry 2 racks rated 3.2 kW each");
        assert!(matches!(err, DcError::FeederBelowRated { .. }), "{err}");
    }
}
