//! Interactive quality-of-service analytics.
//!
//! The paper's motivation for pinning interactive cores at peak frequency
//! is latency; the engine tracks the queued backlog per period, and this
//! module turns backlog into the QoS quantities an operator would watch:
//! a queueing-delay proxy, percentiles, and SLO-attainment accounting
//! across a ladder of thresholds. Open-loop runs additionally surface
//! the request-level tail (p99 sojourn, drop fraction) from the
//! engine's streaming latency sketch.

use crate::recorder::Recorder;

/// Attainment of one SLO threshold over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAttainment {
    /// The delay budget this row evaluates, seconds.
    pub slo_delay_s: f64,
    /// Fraction of periods whose delay met the SLO.
    pub attainment: f64,
    /// Fraction of periods whose delay exceeded the SLO.
    pub violation_fraction: f64,
    /// Longest consecutive violation streak, seconds.
    pub longest_violation_s: f64,
}

/// QoS report for the interactive tier over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Mean queueing-delay proxy, seconds (backlog / service capacity —
    /// how long the queued work takes to drain at peak service rate).
    pub mean_delay_s: f64,
    /// 95th / 99th percentile of the delay proxy.
    pub p95_delay_s: f64,
    pub p99_delay_s: f64,
    /// Worst delay over the run.
    pub max_delay_s: f64,
    /// Fraction of periods whose delay exceeded the *first* SLO in the
    /// ladder (the headline threshold).
    pub violation_fraction: f64,
    /// Longest consecutive violation streak of the first SLO, seconds.
    pub longest_violation_s: f64,
    /// Attainment per requested SLO threshold, in input order.
    pub per_slo: Vec<SloAttainment>,
    /// p99 request sojourn time from the open-loop latency sketch;
    /// `None` for closed-loop runs.
    pub request_p99_s: Option<f64>,
    /// Fraction of requests dropped (tail drop or power loss); `None`
    /// for closed-loop runs.
    pub drop_fraction: Option<f64>,
}

/// Compute a [`QosReport`] from a recording.
///
/// `slo_delays_s` is a ladder of delay budgets (e.g. `[0.25, 0.5, 1.0]`
/// seconds of queued work per core), each reported separately in
/// [`QosReport::per_slo`]; the first is the headline threshold behind
/// the top-level violation fields. The delay proxy for a period is its
/// mean backlog (peak-core-seconds per core): the time a newly arriving
/// request would wait for the queue ahead of it at peak service rate.
pub fn qos_report(rec: &Recorder, slo_delays_s: &[f64]) -> QosReport {
    assert!(!slo_delays_s.is_empty(), "at least one SLO threshold");
    for &slo in slo_delays_s {
        assert!(slo > 0.0, "SLO must be positive");
    }
    let tail = rec.tail();
    let request_p99_s = tail.map(|t| t.p99_s);
    let drop_fraction = tail.map(|t| t.drop_fraction);
    let delays: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.interactive_backlog)
        .collect();
    if delays.is_empty() {
        return QosReport {
            mean_delay_s: 0.0,
            p95_delay_s: 0.0,
            p99_delay_s: 0.0,
            max_delay_s: 0.0,
            violation_fraction: 0.0,
            longest_violation_s: 0.0,
            per_slo: slo_delays_s
                .iter()
                .map(|&slo| SloAttainment {
                    slo_delay_s: slo,
                    attainment: 1.0,
                    violation_fraction: 0.0,
                    longest_violation_s: 0.0,
                })
                .collect(),
            request_p99_s,
            drop_fraction,
        };
    }
    let mut sorted = delays.clone();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| sorted[((p * (sorted.len() - 1) as f64).round()) as usize];
    let dt = if rec.samples().len() >= 2 {
        rec.samples()[1].t.0 - rec.samples()[0].t.0
    } else {
        1.0
    };
    let per_slo: Vec<SloAttainment> = slo_delays_s
        .iter()
        .map(|&slo| {
            let violations = delays.iter().filter(|&&d| d > slo).count();
            let mut longest = 0usize;
            let mut run = 0usize;
            for &d in &delays {
                if d > slo {
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 0;
                }
            }
            let vf = violations as f64 / delays.len() as f64;
            SloAttainment {
                slo_delay_s: slo,
                attainment: 1.0 - vf,
                violation_fraction: vf,
                longest_violation_s: longest as f64 * dt,
            }
        })
        .collect();
    QosReport {
        mean_delay_s: delays.iter().sum::<f64>() / delays.len() as f64,
        p95_delay_s: pct(0.95),
        p99_delay_s: pct(0.99),
        // `sorted` is non-empty: the `delays.is_empty()` early return
        // above guards this path.
        max_delay_s: sorted[sorted.len() - 1],
        violation_fraction: per_slo[0].violation_fraction,
        longest_violation_s: per_slo[0].longest_violation_s,
        per_slo,
        request_p99_s,
        drop_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests_support::FixedPolicy;
    use crate::scenario::Scenario;
    use powersim::units::{NormFreq, Seconds, Watts};
    use workloads::open_loop::WorkloadSource;

    fn run_with_interactive_freq(f: f64) -> Recorder {
        let mut sim = Scenario::paper_default(3).build();
        let mut p = FixedPolicy::new(NormFreq(f), 0.3, Watts(1200.0));
        sim.run(&mut p, Seconds(240.0))
    }

    #[test]
    fn peak_frequency_keeps_qos_clean() {
        let rec = run_with_interactive_freq(1.0);
        let q = qos_report(&rec, &[0.25]);
        assert!(q.violation_fraction < 0.05, "{q:?}");
        assert!(q.p99_delay_s < 1.0);
        assert!(q.mean_delay_s <= q.p95_delay_s);
        assert!(q.p95_delay_s <= q.p99_delay_s);
        assert!(q.p99_delay_s <= q.max_delay_s);
        // Closed-loop run: no request-level tail.
        assert_eq!(q.request_p99_s, None);
        assert_eq!(q.drop_fraction, None);
    }

    #[test]
    fn throttled_interactive_cores_blow_the_slo() {
        // At 0.4× peak against ~0.6 demand, the queue grows: QoS must
        // show sustained violations — this is why SprintCon refuses to
        // throttle interactive cores.
        let rec = run_with_interactive_freq(0.4);
        let q = qos_report(&rec, &[0.25]);
        assert!(q.violation_fraction > 0.5, "{q:?}");
        assert!(q.longest_violation_s > 30.0);
        assert!(q.max_delay_s > 1.0);
    }

    #[test]
    fn report_is_monotone_in_service_quality() {
        let good = qos_report(&run_with_interactive_freq(1.0), &[0.25]);
        let bad = qos_report(&run_with_interactive_freq(0.5), &[0.25]);
        assert!(bad.mean_delay_s > good.mean_delay_s);
        assert!(bad.violation_fraction >= good.violation_fraction);
    }

    #[test]
    fn slo_ladder_attainment_is_monotone_in_threshold() {
        let rec = run_with_interactive_freq(0.4);
        let q = qos_report(&rec, &[0.1, 0.25, 1.0, 10.0]);
        assert_eq!(q.per_slo.len(), 4);
        // A looser SLO can only be attained more often.
        for w in q.per_slo.windows(2) {
            assert!(w[1].attainment >= w[0].attainment, "{:?}", q.per_slo);
            assert!(w[1].longest_violation_s <= w[0].longest_violation_s);
        }
        for a in &q.per_slo {
            assert!((a.attainment + a.violation_fraction - 1.0).abs() < 1e-12);
        }
        // The headline fields mirror the first ladder entry.
        assert_eq!(q.violation_fraction, q.per_slo[0].violation_fraction);
        assert_eq!(q.longest_violation_s, q.per_slo[0].longest_violation_s);
    }

    #[test]
    fn open_loop_runs_surface_the_request_tail() {
        let mut sc = Scenario::paper_default(11);
        sc.workload = WorkloadSource::open_loop_wiki();
        sc.duration = Seconds(120.0);
        let mut sim = sc.build();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 0.3, Watts(1200.0));
        let rec = sim.run(&mut p, Seconds(120.0));
        let q = qos_report(&rec, &[0.25]);
        let p99 = q.request_p99_s.expect("open-loop runs report p99");
        assert!(p99 > 0.0, "p99={p99}");
        let df = q.drop_fraction.expect("open-loop runs report drops");
        assert!((0.0..=1.0).contains(&df));
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let q = qos_report(&Recorder::default(), &[0.25]);
        assert_eq!(q.mean_delay_s, 0.0);
        assert_eq!(q.violation_fraction, 0.0);
        assert_eq!(q.per_slo.len(), 1);
        assert_eq!(q.per_slo[0].attainment, 1.0);
    }

    #[test]
    #[should_panic(expected = "SLO must be positive")]
    fn rejects_zero_slo() {
        qos_report(&Recorder::default(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one SLO threshold")]
    fn rejects_empty_slo_ladder() {
        qos_report(&Recorder::default(), &[]);
    }
}
