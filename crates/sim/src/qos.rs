//! Interactive quality-of-service analytics.
//!
//! The paper's motivation for pinning interactive cores at peak frequency
//! is latency; the engine tracks the queued backlog per period, and this
//! module turns backlog into the QoS quantities an operator would watch:
//! a queueing-delay proxy, percentiles, and SLO-violation accounting.

use crate::recorder::Recorder;

/// QoS report for the interactive tier over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Mean queueing-delay proxy, seconds (backlog / service capacity —
    /// how long the queued work takes to drain at peak service rate).
    pub mean_delay_s: f64,
    /// 95th / 99th percentile of the delay proxy.
    pub p95_delay_s: f64,
    pub p99_delay_s: f64,
    /// Worst delay over the run.
    pub max_delay_s: f64,
    /// Fraction of periods whose delay exceeded the SLO.
    pub violation_fraction: f64,
    /// Longest consecutive violation streak, periods.
    pub longest_violation_s: f64,
}

/// Compute a [`QosReport`] from a recording.
///
/// `slo_delay_s` is the delay budget (e.g. 0.25 s of queued work per
/// core). The delay proxy for a period is its mean backlog (peak-core-
/// seconds per core): the time a newly arriving request would wait for
/// the queue ahead of it at peak service rate.
pub fn qos_report(rec: &Recorder, slo_delay_s: f64) -> QosReport {
    assert!(slo_delay_s > 0.0, "SLO must be positive");
    let delays: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.interactive_backlog)
        .collect();
    if delays.is_empty() {
        return QosReport {
            mean_delay_s: 0.0,
            p95_delay_s: 0.0,
            p99_delay_s: 0.0,
            max_delay_s: 0.0,
            violation_fraction: 0.0,
            longest_violation_s: 0.0,
        };
    }
    let mut sorted = delays.clone();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| sorted[((p * (sorted.len() - 1) as f64).round()) as usize];
    let violations = delays.iter().filter(|&&d| d > slo_delay_s).count();
    let mut longest = 0usize;
    let mut run = 0usize;
    for &d in &delays {
        if d > slo_delay_s {
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    let dt = if rec.samples().len() >= 2 {
        rec.samples()[1].t.0 - rec.samples()[0].t.0
    } else {
        1.0
    };
    QosReport {
        mean_delay_s: delays.iter().sum::<f64>() / delays.len() as f64,
        p95_delay_s: pct(0.95),
        p99_delay_s: pct(0.99),
        // `sorted` is non-empty: the `delays.is_empty()` early return
        // above guards this path.
        max_delay_s: sorted[sorted.len() - 1],
        violation_fraction: violations as f64 / delays.len() as f64,
        longest_violation_s: longest as f64 * dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests_support::FixedPolicy;
    use crate::scenario::Scenario;
    use powersim::units::{NormFreq, Seconds, Watts};

    fn run_with_interactive_freq(f: f64) -> Recorder {
        let mut sim = Scenario::paper_default(3).build();
        let mut p = FixedPolicy::new(NormFreq(f), 0.3, Watts(1200.0));
        sim.run(&mut p, Seconds(240.0))
    }

    #[test]
    fn peak_frequency_keeps_qos_clean() {
        let rec = run_with_interactive_freq(1.0);
        let q = qos_report(&rec, 0.25);
        assert!(q.violation_fraction < 0.05, "{q:?}");
        assert!(q.p99_delay_s < 1.0);
        assert!(q.mean_delay_s <= q.p95_delay_s);
        assert!(q.p95_delay_s <= q.p99_delay_s);
        assert!(q.p99_delay_s <= q.max_delay_s);
    }

    #[test]
    fn throttled_interactive_cores_blow_the_slo() {
        // At 0.4× peak against ~0.6 demand, the queue grows: QoS must
        // show sustained violations — this is why SprintCon refuses to
        // throttle interactive cores.
        let rec = run_with_interactive_freq(0.4);
        let q = qos_report(&rec, 0.25);
        assert!(q.violation_fraction > 0.5, "{q:?}");
        assert!(q.longest_violation_s > 30.0);
        assert!(q.max_delay_s > 1.0);
    }

    #[test]
    fn report_is_monotone_in_service_quality() {
        let good = qos_report(&run_with_interactive_freq(1.0), 0.25);
        let bad = qos_report(&run_with_interactive_freq(0.5), 0.25);
        assert!(bad.mean_delay_s > good.mean_delay_s);
        assert!(bad.violation_fraction >= good.violation_fraction);
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let q = qos_report(&Recorder::default(), 0.25);
        assert_eq!(q.mean_delay_s, 0.0);
        assert_eq!(q.violation_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "SLO must be positive")]
    fn rejects_zero_slo() {
        qos_report(&Recorder::default(), 0.0);
    }
}
