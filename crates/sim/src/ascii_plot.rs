//! Terminal plotting for the examples and figure binaries: aligned data
//! tables are the source of truth; these charts make runs legible at a
//! glance.

/// Render one series as a braille-free ASCII line chart.
///
/// `width` columns (series resampled by averaging), `height` rows.
pub fn line_chart(title: &str, series: &[f64], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2);
    if series.is_empty() {
        return format!("{title}\n  (no data)\n");
    }
    let cols = resample(series, width);
    let (lo, hi) = bounds(&cols);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (x, &v) in cols.iter().enumerate() {
        let yf = (v - lo) / span;
        let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
        grid[y.min(height - 1)][x] = '*';
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>9.2} ")
        } else if r == height - 1 {
            format!("{lo:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

/// Render several aligned series as a multi-line chart with one symbol
/// per series ('*', 'o', '+', 'x', ...).
pub fn multi_chart(title: &str, series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2);
    const SYMBOLS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<Vec<f64>> = series.iter().map(|(_, s)| resample(s, width)).collect();
    let flat: Vec<f64> = all.iter().flatten().copied().collect();
    if flat.is_empty() {
        return format!("{title}\n  (no data)\n");
    }
    let (lo, hi) = bounds(&flat);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, cols) in all.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        for (x, &v) in cols.iter().enumerate() {
            let yf = (v - lo) / span;
            let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[y.min(height - 1)][x];
            // Later series overwrite — fine for visual triage.
            *cell = sym;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push_str("   [");
    for (si, (name, _)) in series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push(SYMBOLS[si % SYMBOLS.len()]);
        out.push('=');
        out.push_str(name);
    }
    out.push_str("]\n");
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>9.2} ")
        } else if r == height - 1 {
            format!("{lo:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

fn resample(series: &[f64], width: usize) -> Vec<f64> {
    if series.len() <= width {
        return series.to_vec();
    }
    let chunk = series.len() as f64 / width as f64;
    (0..width)
        .map(|i| {
            let a = (i as f64 * chunk) as usize;
            let b = (((i + 1) as f64 * chunk) as usize)
                .min(series.len())
                .max(a + 1);
            series[a..b].iter().sum::<f64>() / (b - a) as f64
        })
        .collect()
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_expected_shape() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let chart = line_chart("sine", &data, 40, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "sine");
        assert_eq!(lines.len(), 1 + 8 + 1);
        // Axis labels present.
        assert!(lines[1].contains("1.00"));
        assert!(chart.contains('*'));
    }

    #[test]
    fn multi_chart_lists_legend() {
        let a: Vec<f64> = vec![1.0; 50];
        let b: Vec<f64> = vec![2.0; 50];
        let chart = multi_chart("two", &[("up", &a), ("down", &b)], 30, 6);
        assert!(chart.contains("*=up"));
        assert!(chart.contains("o=down"));
        assert!(chart.contains('o') && chart.contains('*'));
    }

    #[test]
    fn resample_averages() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let r = resample(&data, 5);
        assert_eq!(r, vec![0.5, 2.5, 4.5, 6.5, 8.5]);
        // Short series pass through.
        assert_eq!(resample(&[1.0, 2.0], 5), vec![1.0, 2.0]);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = line_chart("flat", &[3.0; 20], 10, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert!(line_chart("none", &[], 10, 4).contains("no data"));
    }
}
