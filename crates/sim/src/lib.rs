//! # simkit — the discrete-time rack simulation and experiment harness
//!
//! Drives the `powersim` plant and `workloads` under a control
//! [`policy::Policy`] — SprintCon, the SGCT baselines, or fixed test
//! policies — one control period at a time, and measures what the
//! paper's evaluation measures.
//!
//! * [`engine`] — the tick loop (actuate → execute → power → serve →
//!   record) with trip/brownout semantics.
//! * [`dc_engine`] — many racks under a feeder → PDU → rack power tree,
//!   coupled only through the two-level headroom market at allocator
//!   boundaries; parallel over racks, bit-identical to sequential.
//! * [`policy`] — the policy trait plus SprintCon/SGCT adapters.
//! * [`scenario`] — the §VI-A setup builder (16 servers, 3.2 kW CB,
//!   400 Wh UPS, Wikipedia-like burst, SPEC-like jobs).
//! * [`recorder`] — per-period samples, CSV export, column extraction.
//! * [`metrics`] — run summaries (avg frequencies, DoD, deadlines, …).
//! * [`mode`] — the shared [`mode::ModeLabel`] vocabulary for policy modes.
//! * [`experiment`] — policy runners (with per-run telemetry snapshots)
//!   and parallel parameter sweeps.
//! * [`exec`] — the parallel execution layer: [`exec::Campaign`] fans
//!   scenario × policy runs across a configurable thread pool with
//!   deterministic, input-ordered, sequential-bit-identical results.
//! * [`ascii_plot`] — terminal charts for the examples and figure bins.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ascii_plot;
pub mod dc_engine;
pub mod engine;
pub mod exec;
pub mod experiment;
pub mod metrics;
pub mod mode;
pub mod policy;
pub mod qos;
pub mod recorder;
pub mod scenario;

pub use dc_engine::{
    run_datacenter, run_datacenter_with, DatacenterSim, DcError, DcRecordMode, DcRunOutput,
    DcScenario, MarketRound,
};
pub use engine::{RackSim, TierState};
pub use exec::{
    run_all_parallel, run_digest, sweep_parallel, Campaign, CampaignEntry, CampaignResult,
    DigestBuilder, ExecConfig,
};
pub use experiment::{
    aggregate_metrics, run_all, run_policy, run_policy_traced, run_policy_with, sweep, PolicyKind,
    PolicyOverrides, RunOutput,
};
pub use metrics::{summary_table, RunSummary};
pub use mode::ModeLabel;
pub use policy::{FreqCommand, Policy, PolicyCommand, SgctSimPolicy, SimView, SprintConPolicy};
pub use qos::{qos_report, QosReport, SloAttainment};
pub use recorder::{Recorder, Sample, SimEvent};
pub use scenario::{Disturbances, Scenario, ScenarioBuilder, ScenarioError};
// Workload-source vocabulary, re-exported so scenario construction and
// open-loop result types don't force a direct `workloads` dependency.
pub use workloads::open_loop::{
    ArrivalProcess, DemandModel, QueueObservation, ServiceModel, TailSummary, WorkloadSource,
};
// Grid-event vocabulary, re-exported for the same reason: scenarios are
// built against `GridPlan` without a direct `powersim` dependency.
pub use powersim::grid::{
    ActiveGrid, GridEvent, GridEventKind, GridPlan, GridPlanError, StochasticGridEvent,
};
// Re-export the sink vocabulary so downstream crates can drive
// `run_policy_traced` without a direct `telemetry` dependency.
pub use telemetry::{
    with_collector, Collector, JsonlSink, MemorySink, MetricsSnapshot, NullSink, Sink,
};
