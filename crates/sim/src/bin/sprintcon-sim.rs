//! `sprintcon-sim` — command-line driver for the rack simulation.
//!
//! ```text
//! sprintcon-sim [--policy sprintcon|sgct|sgct-v1|sgct-v2]
//!               [--minutes N] [--deadline-min N] [--seed N]
//!               [--demand-csv PATH]   # real request-rate trace (t_s,value or value rows)
//!               [--out PATH]          # per-period CSV recording
//!               [--trace PATH]        # JSONL telemetry trace (spans + events)
//!               [--slo-delay S]       # QoS delay budget (default 0.25 s)
//!               [--quiet]
//! ```
//!
//! Runs the §VI-A scenario under the chosen policy and prints the run
//! summary, the QoS report, the control-stack telemetry, and the event
//! log.

use powersim::units::Seconds;
use simkit::{qos_report, summary_table, PolicyKind, Recorder, RunSummary, Scenario};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use telemetry::{Collector, JsonlSink, NullSink, Sink};

struct Args {
    policy: PolicyKind,
    minutes: f64,
    deadline_min: f64,
    seed: u64,
    demand_csv: Option<PathBuf>,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    slo_delay: f64,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sprintcon-sim [--policy sprintcon|sgct|sgct-v1|sgct-v2] [--minutes N]\n\
         \x20                    [--deadline-min N] [--seed N] [--demand-csv PATH]\n\
         \x20                    [--out PATH] [--trace PATH] [--slo-delay S] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        policy: PolicyKind::SprintCon,
        minutes: 15.0,
        deadline_min: 12.0,
        seed: 2019,
        demand_csv: None,
        out: None,
        trace: None,
        slo_delay: 0.25,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--policy" => {
                args.policy = match val().to_lowercase().as_str() {
                    "sprintcon" => PolicyKind::SprintCon,
                    "sgct" => PolicyKind::Sgct,
                    "sgct-v1" | "v1" => PolicyKind::SgctV1,
                    "sgct-v2" | "v2" => PolicyKind::SgctV2,
                    other => {
                        eprintln!("unknown policy {other:?}");
                        usage()
                    }
                }
            }
            "--minutes" => args.minutes = val().parse().unwrap_or_else(|_| usage()),
            "--deadline-min" => args.deadline_min = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--demand-csv" => args.demand_csv = Some(PathBuf::from(val())),
            "--out" => args.out = Some(PathBuf::from(val())),
            "--trace" => args.trace = Some(PathBuf::from(val())),
            "--slo-delay" => args.slo_delay = val().parse().unwrap_or_else(|_| usage()),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.minutes <= 0.0 || args.deadline_min <= 0.0 || args.slo_delay <= 0.0 {
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut scenario = Scenario::paper_default(args.seed);
    scenario.duration = Seconds::minutes(args.minutes);
    scenario = scenario.with_deadline(Seconds::minutes(args.deadline_min));

    // Surface bad flag combinations as an error message, not a panic.
    let mut sim = match scenario.try_build() {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.demand_csv {
        match workloads::trace_io::read_trace_file(path, Seconds(1.0)) {
            Ok(trace) => {
                if !args.quiet {
                    println!(
                        "loaded demand trace: {} samples at {} ({} total)",
                        trace.len(),
                        trace.dt,
                        trace.duration()
                    );
                }
                *sim.tier.demand_mut() = trace;
            }
            Err(e) => {
                eprintln!("failed to read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // One collector scoped over the run: the JSONL sink streams spans
    // and events to --trace; without it records are dropped but the
    // metric snapshot below is still collected.
    let sink: Box<dyn Sink> = match &args.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(s) => Box::new(s),
            Err(e) => {
                eprintln!("failed to create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(NullSink),
    };
    let collector = Arc::new(Collector::new(sink));
    let rec: Recorder = telemetry::with_collector(Arc::clone(&collector), || {
        let mut policy = args.policy.build();
        sim.run(policy.as_mut(), scenario.duration)
    });
    collector.flush();
    let metrics = collector.snapshot();
    let summary = RunSummary::from_run(args.policy.name(), &sim, &rec);

    if let Some(path) = &args.out {
        if let Err(e) = rec.write_csv(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            println!("recording written to {}", path.display());
        }
    }

    println!("{}", summary_table(std::slice::from_ref(&summary)));
    let qos = qos_report(&rec, &[args.slo_delay]);
    println!(
        "interactive QoS: mean delay {:.3}s  p95 {:.3}s  p99 {:.3}s  SLO({:.2}s) violations {:.1}% (longest {:.0}s)",
        qos.mean_delay_s,
        qos.p95_delay_s,
        qos.p99_delay_s,
        args.slo_delay,
        qos.violation_fraction * 100.0,
        qos.longest_violation_s,
    );
    if !args.quiet {
        println!("\ncontrol-stack telemetry:");
        for (name, v) in &metrics.counters {
            println!("  counter   {name} = {v}");
        }
        for (name, v) in &metrics.gauges {
            println!("  gauge     {name} = {v:.4}");
        }
        for (name, h) in &metrics.histograms {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            println!("  histogram {name}: n={} mean={mean:.2}", h.count);
        }
        if let Some(path) = &args.trace {
            println!("jsonl trace written to {}", path.display());
        }
        println!("\nevents:");
        for (t, e) in rec.events() {
            println!("  {:>8.1}s  {:?}", t.0, e);
        }
    }

    // Exit status reflects power safety — usable in CI.
    if summary.trips > 0 || summary.shutdown {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
