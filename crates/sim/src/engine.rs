//! The discrete-time rack simulation.
//!
//! One [`RackSim`] owns the whole plant of Fig. 4 — servers, cooling
//! fans, circuit breaker, UPS — plus the workloads, and advances it one
//! control period at a time under a [`Policy`]. The policy sees only
//! what a real controller could measure (noisy total power, utilizations,
//! breaker margin, SoC) — except where a baseline is explicitly granted
//! oracle access (§VI-B).
//!
//! Causality per tick:
//!
//! 1. the policy decides from the *previous* tick's measurements
//!    (one-period measurement delay, as in the paper's control loops);
//! 2. frequency commands are applied (quantized by the rack's DVFS
//!    ladder);
//! 3. workloads execute: the interactive tier turns demand into
//!    utilization/queueing, batch jobs advance;
//! 4. plant power is evaluated in one batched pass over the rack's SoA
//!    slabs (servers + fans) and measured;
//! 5. the feed serves the demand (UPS discharge target from the policy,
//!    remainder through the breaker) — trips and brownouts happen here;
//! 6. a brownout shuts the rack down for good (Fig. 5's ending).
//!
//! The hot loop is allocation-free: interactive frequencies and loads go
//! through reused scratch buffers, role blocks are written through
//! contiguous [`powersim::rack::RoleViewMut`] slices, and the power pass
//! is `Rack::update_server_powers` over the slabs.

use crate::mode::ModeLabel;
use crate::policy::{FreqCommand, Policy, PolicyCommand, SimView};
use crate::recorder::{Recorder, Sample};
use crate::scenario::{Scenario, ScenarioError};
use powersim::breaker::{BreakerState, CircuitBreaker};
use powersim::cpu::CoreRole;
use powersim::fan::FanModel;
use powersim::faults::{ActiveFaults, FaultInjector};
use powersim::grid::GridInjector;
use powersim::rack::{PowerMonitor, Rack};
use powersim::topology::{FeedOutcome, PowerFeed};
use powersim::units::{NormFreq, Seconds, Watts};
use powersim::ups::UpsBattery;
use workloads::batch::BatchJob;
use workloads::interactive::{InteractiveLoad, InteractiveTier};
use workloads::open_loop::{
    OpenLoopLoad, OpenLoopTier, QueueObservation, TailSummary, WorkloadSource,
};
use workloads::trace::Trace;

/// Busy batch cores register near-full utilization on the performance
/// counters (stall cycles count as busy for OS-level accounting).
const BATCH_BUSY_UTIL: f64 = 0.95;

/// How the fast electrical dynamics (breaker thermal element, UPS duty
/// cycling) are integrated within one control period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Substepping {
    /// One feed step per control period — the reference integration the
    /// committed golden digests were captured against.
    #[default]
    Exact,
    /// While an electrical transient is active (breaker open, above-rated
    /// load, or nonzero trip heat), integrate the feed with `substeps`
    /// sub-periods per control period; otherwise take the single exact
    /// step. Quiescent runs are bit-identical to [`Substepping::Exact`];
    /// transients are resolved more finely and gated by tolerance tests
    /// rather than the digest.
    Multirate { substeps: u32 },
}

/// The interactive tier behind the typed [`WorkloadSource`]: the
/// closed-loop utilization model or the open-loop request queue.
#[derive(Debug, Clone)]
pub enum TierState {
    /// Closed-loop utilization trace ([`WorkloadSource::UtilTrace`]).
    Util(InteractiveTier),
    /// Open-loop request queueing ([`WorkloadSource::OpenLoop`]).
    OpenLoop(OpenLoopTier),
}

impl TierState {
    /// Number of servers the tier covers.
    pub fn num_servers(&self) -> usize {
        match self {
            TierState::Util(t) => t.weights.len(),
            TierState::OpenLoop(t) => t.num_servers(),
        }
    }

    /// The normalized demand trace driving the tier.
    pub fn demand(&self) -> &Trace {
        match self {
            TierState::Util(t) => &t.demand,
            TierState::OpenLoop(t) => &t.demand,
        }
    }

    /// Mutable demand access — tests and the CLI splice in custom traces.
    pub fn demand_mut(&mut self) -> &mut Trace {
        match self {
            TierState::Util(t) => &mut t.demand,
            TierState::OpenLoop(t) => &mut t.demand,
        }
    }

    /// Fraction of offered interactive work actually served.
    pub fn service_ratio(&self) -> f64 {
        match self {
            TierState::Util(t) => t.service_ratio(),
            TierState::OpenLoop(t) => t.service_ratio(),
        }
    }

    /// Mean queued interactive work per core, seconds at peak service
    /// rate (the closed-loop backlog, or the open-loop queue converted
    /// through the service time) — keeps QoS analytics comparable
    /// across sources.
    pub fn mean_backlog(&self) -> f64 {
        match self {
            TierState::Util(t) => t.mean_backlog(),
            TierState::OpenLoop(t) => t.queued_seconds_per_core(),
        }
    }

    /// This tick's queue observation (open loop only).
    pub fn queue(&self) -> Option<QueueObservation> {
        match self {
            TierState::Util(_) => None,
            TierState::OpenLoop(t) => Some(t.last_tick()),
        }
    }

    /// Whole-run tail summary (open loop only).
    pub fn tail_summary(&self) -> Option<TailSummary> {
        match self {
            TierState::Util(_) => None,
            TierState::OpenLoop(t) => Some(t.tail_summary()),
        }
    }
}

/// The complete simulated plant plus workloads.
pub struct RackSim {
    pub rack: Rack,
    pub feed: PowerFeed,
    pub fan: FanModel,
    pub monitor: PowerMonitor,
    pub tier: TierState,
    /// One job per batch core, rack order (server-major).
    pub jobs: Vec<BatchJob>,
    /// Per-server power state; a rack-level brownout clears all of them.
    powered: Vec<bool>,
    /// Permanent outage flag (post-brownout, Fig. 5).
    shutdown: bool,
    now: Seconds,
    dt: Seconds,
    /// Stale measurement fed to the policy (one-period delay).
    last_measured: Watts,
    last_fan: Watts,
    max_rack_power: Watts,
    /// Previous tick's mode label (event-log edge detection); `None`
    /// until the first tick.
    last_mode: Option<ModeLabel>,
    /// Previous tick's breaker state (reclose detection).
    last_breaker_closed: bool,
    /// Injected-fault replay state (inert for an empty plan).
    faults: FaultInjector,
    /// Grid-event replay state (inert for an empty plan).
    grid: GridInjector,
    /// The spec'd inverter limit, restored when a current-limit fault ends.
    ups_max_discharge_nominal: Watts,
    /// Was any crash fault active last tick (power-state resync edge)?
    crash_was_active: bool,
    /// Feed integration scheme (from the scenario).
    substepping: Substepping,
    /// Step the plant through the scalar per-core reference path instead
    /// of the batched slab pass (digest-equivalence tests only).
    reference_stepping: bool,
    /// Scratch: per-server mean interactive frequency (reused per tick).
    scratch_inter_freqs: Vec<NormFreq>,
    /// Scratch: per-server interactive loads (reused per tick).
    scratch_loads: Vec<InteractiveLoad>,
    /// Scratch: per-server open-loop loads (reused per tick).
    scratch_ol_loads: Vec<OpenLoopLoad>,
    /// Stale queue observation fed to the policy (one-period delay,
    /// like `last_measured`); `None` on the closed-loop path.
    last_queue: Option<QueueObservation>,
}

impl RackSim {
    /// Validate `scenario` and assemble the full plant from it — rack,
    /// feed, fan, monitor, interactive tier, batch jobs, fault injector.
    ///
    /// This replaces the old seven-argument positional constructor: every
    /// component is derived from the one scenario description, so call
    /// sites cannot wire mismatched plants.
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        let rack = Rack::builder()
            .server(scenario.server.clone())
            .num_servers(scenario.num_servers)
            .interactive_cores_per_server(scenario.interactive_cores_per_server)
            .build()
            // Scenario validation is strictly tighter than the rack's.
            .expect("validated scenario implies a valid rack");
        let tier = match &scenario.workload {
            WorkloadSource::UtilTrace(dm) => {
                // Same stream position the pre-redesign engine used:
                // the demand generator consumes the bare seed.
                let demand = dm.generate(scenario.seed);
                TierState::Util(InteractiveTier::new(demand, scenario.num_servers))
            }
            WorkloadSource::OpenLoop { arrivals, service } => {
                TierState::OpenLoop(OpenLoopTier::new(
                    arrivals,
                    service,
                    scenario.num_servers,
                    scenario.interactive_cores_per_server,
                    scenario.seed,
                ))
            }
        };
        let feed = PowerFeed::new(
            CircuitBreaker::new(scenario.breaker),
            UpsBattery::full(scenario.ups),
        );
        // Seed offsets keep every noise stream independent: wiki = seed,
        // fan = seed+1, monitor = seed+2, faults = seed+3, grid = seed+4
        // (dc_engine reserves seed+5 for its feeder-level grid injector).
        let fan = FanModel::paper_default(scenario.seed.wrapping_add(1));
        let monitor = PowerMonitor::new(
            scenario.seed.wrapping_add(2),
            scenario.disturbances.monitor_rel_sigma,
            scenario.disturbances.monitor_abs_sigma,
        );
        let jobs = scenario.build_jobs();
        let faults = FaultInjector::new(
            scenario.disturbances.faults.clone(),
            scenario.seed.wrapping_add(3),
        );
        let grid = GridInjector::new(scenario.grid.clone(), scenario.seed.wrapping_add(4));

        let n = rack.num_servers();
        // Invariants: the tier and job list were built from the same
        // scenario two lines up, so the sizes cannot disagree.
        assert_eq!(tier.num_servers(), n, "tier must cover every server");
        assert_eq!(
            jobs.len(),
            rack.count_role(CoreRole::Batch),
            "one job per batch core"
        );
        let max_rack_power = rack.max_power();
        let initial = rack.power();
        let ups_max_discharge_nominal = feed.ups.spec.max_discharge;
        Ok(RackSim {
            feed,
            powered: vec![true; n],
            shutdown: false,
            now: Seconds::ZERO,
            dt: scenario.dt,
            last_measured: initial,
            last_fan: Watts::ZERO,
            rack,
            fan,
            monitor,
            tier,
            jobs,
            max_rack_power,
            last_mode: None,
            last_breaker_closed: true,
            faults,
            grid,
            ups_max_discharge_nominal,
            crash_was_active: false,
            substepping: scenario.substepping,
            reference_stepping: false,
            scratch_inter_freqs: Vec::with_capacity(n),
            scratch_loads: Vec::with_capacity(n),
            scratch_ol_loads: Vec::with_capacity(n),
            last_queue: None,
        })
    }

    pub fn now(&self) -> Seconds {
        self.now
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    pub fn powered(&self) -> &[bool] {
        &self.powered
    }

    /// The feed integration scheme in effect.
    pub fn substepping(&self) -> Substepping {
        self.substepping
    }

    /// Route plant power through the scalar per-core reference pass
    /// instead of the batched slab pass. The two are bit-identical by
    /// construction; property tests flip this to prove it on whole-run
    /// digests. Not a hot path.
    pub fn set_reference_stepping(&mut self, on: bool) {
        self.reference_stepping = on;
    }

    /// Mean frequency over cores of `role`, counting shut-down servers as
    /// zero — the convention behind Fig. 5(b)/Fig. 7's averages.
    pub fn effective_mean_freq(&self, role: CoreRole) -> f64 {
        let v = self.rack.role(role);
        if v.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (s, row) in v.freqs.chunks_exact(v.per_server()).enumerate() {
            let on = self.powered[s];
            for &f in row {
                sum += if on { f } else { 0.0 };
            }
        }
        sum / v.len() as f64
    }

    /// Apply a frequency command through the (possibly faulty) DVFS
    /// actuator. A non-finite command holds the core's current frequency
    /// — real firmware rejects garbage rather than programming it.
    fn apply_freqs(&mut self, cmd: &FreqCommand, af: &ActiveFaults) {
        let dt = self.dt;
        let lag_alpha = af.actuator_lag.map(|tau| dt.0 / (dt.0 + tau.0));
        let quant = af.actuator_quantize;
        let shape = move |cur: f64, want: f64| -> f64 {
            let mut f = if want.is_finite() { want } else { cur };
            if let Some(step) = quant {
                if step > 0.0 {
                    f = (f / step).round() * step;
                }
            }
            if let Some(a) = lag_alpha {
                f = cur + (f - cur) * a;
            }
            f.clamp(0.0, 1.0)
        };
        let faulty = af.any_actuator();
        match cmd {
            FreqCommand::RoleBased { interactive, batch } => {
                let mut iv = self.rack.role_mut(CoreRole::Interactive);
                if !faulty && interactive.0.is_finite() {
                    iv.fill_freq(*interactive);
                } else {
                    for lane in 0..iv.len() {
                        let cur = iv.freqs[lane];
                        iv.set_freq(lane, NormFreq(shape(cur, interactive.0)));
                    }
                }
                let mut bv = self.rack.role_mut(CoreRole::Batch);
                assert_eq!(bv.len(), batch.len(), "one frequency per batch core");
                if !faulty {
                    // Healthy actuator: one vectorized pass over the batch
                    // lane slab (non-finite lanes hold, as below).
                    bv.set_freqs(batch);
                } else {
                    for (lane, &f) in batch.iter().enumerate() {
                        let cur = bv.freqs[lane];
                        bv.set_freq(lane, NormFreq(shape(cur, f)));
                    }
                }
            }
            FreqCommand::AllCores(freqs) => {
                let per_server = self.rack.cores_per_server();
                assert_eq!(
                    freqs.len(),
                    self.rack.num_servers() * per_server,
                    "one frequency per core"
                );
                for (idx, &f) in freqs.iter().enumerate() {
                    let id = powersim::rack::CoreId {
                        server: idx / per_server,
                        core: idx % per_server,
                    };
                    if !faulty && f.0.is_finite() {
                        self.rack.set_freq(id, f);
                    } else {
                        let cur = self.rack.freq(id).0;
                        self.rack.set_freq(id, NormFreq(shape(cur, f.0)));
                    }
                }
            }
        }
    }

    /// Apply this tick's plant-side faults: UPS capacity fade and current
    /// limits, breaker thermal perturbation, server crash windows. Inert
    /// (no state writes) when nothing is active.
    fn apply_plant_faults(&mut self, af: &ActiveFaults) {
        if let Some(fraction) = af.ups_capacity_fade {
            self.feed.ups.apply_capacity_fade(fraction);
        }
        let desired_limit = match af.ups_current_limit {
            Some(limit) => limit.min(self.ups_max_discharge_nominal),
            None => self.ups_max_discharge_nominal,
        };
        if self.feed.ups.spec.max_discharge != desired_limit {
            self.feed.ups.spec.max_discharge = desired_limit;
        }
        if let Some(delta) = af.breaker_heat_delta {
            if let BreakerState::Closed { heat } = &mut self.feed.breaker.state {
                *heat = (*heat + delta * self.feed.breaker.spec.trip_heat).max(0.0);
            }
        }
        let crash_now = !af.crashed_servers.is_empty();
        if (crash_now || self.crash_was_active) && !self.shutdown {
            for s in 0..self.powered.len() {
                self.powered[s] = !af.crashed_servers.contains(&s);
            }
        }
        self.crash_was_active = crash_now;
    }

    /// Is a fast electrical transient active (multirate trigger)?
    fn electrical_transient(&self, p_true: Watts) -> bool {
        !self.feed.breaker.is_closed()
            || p_true.0 > self.feed.breaker.spec.rated.0
            || self.feed.breaker.trip_margin() > 0.0
    }

    /// Integrate the feed over one control period under the configured
    /// substepping scheme.
    fn step_feed(&mut self, p_true: Watts, ups_target: Watts, dt: Seconds) -> FeedOutcome {
        let substeps = match self.substepping {
            Substepping::Exact => 1,
            Substepping::Multirate { substeps } => {
                if self.electrical_transient(p_true) {
                    substeps.max(1)
                } else {
                    1
                }
            }
        };
        if substeps == 1 {
            return self.feed.step(p_true, ups_target, dt);
        }
        telemetry::counter_add("multirate.fast_periods", 1);
        let sub = Seconds(dt.0 / substeps as f64);
        let mut cb = 0.0;
        let mut ups = 0.0;
        let mut served = 0.0;
        let mut shortfall = 0.0;
        let mut tripped = false;
        for _ in 0..substeps {
            let o = self.feed.step(p_true, ups_target, sub);
            cb += o.cb_power.0;
            ups += o.ups_power.0;
            served += o.served.0;
            shortfall += o.shortfall.0;
            tripped |= o.tripped;
        }
        // Powers are period averages (energy-consistent); a trip in any
        // substep is a trip for the period.
        let k = substeps as f64;
        FeedOutcome {
            cb_power: Watts(cb / k),
            ups_power: Watts(ups / k),
            served: Watts(served / k),
            shortfall: Watts(shortfall / k),
            tripped,
        }
    }

    /// Advance one control period under `policy`, appending to `rec`.
    pub fn step(&mut self, policy: &mut dyn Policy, rec: &mut Recorder) {
        let _tick = telemetry::span("sim_tick");
        let dt = self.dt;
        // 0. Resolve this tick's injected faults (a no-op for an empty
        // plan) and apply the plant-side ones.
        let af = self.faults.advance(self.now, dt, self.last_measured);
        if af.any() && telemetry::enabled() {
            for label in af.labels() {
                telemetry::counter_add(&format!("fault_active.{label}"), 1);
            }
        }
        self.apply_plant_faults(&af);
        // Resolve this tick's grid signals (curtailment / price /
        // regulation) — zero RNG draws and a nominal `ActiveGrid` for an
        // empty plan, so grid-free runs stay bit-identical.
        let ag = self.grid.advance(self.now, dt);
        if telemetry::enabled() {
            if ag.curtail_onset {
                telemetry::counter_add("grid.curtail_events", 1);
            }
            if ag.price_onset {
                telemetry::counter_add("grid.price_events", 1);
            }
            if ag.reg_onset {
                telemetry::counter_add("grid.reg_events", 1);
            }
        }

        // 1. Policy decision on stale measurements.
        let view = SimView {
            now: self.now,
            dt,
            p_total_measured: self.last_measured,
            rack: &self.rack,
            jobs: &self.jobs,
            breaker_margin: self.feed.breaker.trip_margin(),
            breaker_closed: self.feed.breaker.is_closed(),
            ups_soc: self.feed.ups.soc_fraction(),
            fan_power: self.last_fan,
            shutdown: self.shutdown,
            queue: self.last_queue,
            grid: ag,
        };
        let command: PolicyCommand = policy.control(&view);

        // 2. Actuate (no effect once shut down; hardware is off).
        if !self.shutdown {
            self.apply_freqs(&command.freqs, &af);
        }

        // 3. Workloads execute, one role block at a time.
        self.rack
            .interactive_freqs_into(&mut self.scratch_inter_freqs);
        let ipc = self.rack.interactive_cores_per_server();
        match &mut self.tier {
            TierState::Util(tier) => {
                tier.step_into(
                    self.now,
                    dt,
                    &self.scratch_inter_freqs,
                    &self.powered,
                    &mut self.scratch_loads,
                );
                if ipc > 0 {
                    let iv = self.rack.role_mut(CoreRole::Interactive);
                    for (row, load) in iv.utils.chunks_exact_mut(ipc).zip(&self.scratch_loads) {
                        // Raw write: the tier already produced an in-range value,
                        // matching the pre-rework direct core-field store.
                        row.fill(load.util.0);
                    }
                }
            }
            TierState::OpenLoop(tier) => {
                tier.step_into(
                    self.now,
                    dt,
                    &self.scratch_inter_freqs,
                    &self.powered,
                    &mut self.scratch_ol_loads,
                );
                if ipc > 0 {
                    let iv = self.rack.role_mut(CoreRole::Interactive);
                    for (row, load) in iv.utils.chunks_exact_mut(ipc).zip(&self.scratch_ol_loads) {
                        row.fill(load.util.0);
                    }
                }
            }
        }
        let bpc = self.rack.batch_cores_per_server();
        if bpc > 0 {
            let bv = self.rack.role_mut(CoreRole::Batch);
            debug_assert_eq!(bv.len(), self.jobs.len());
            let rows = bv
                .freqs
                .chunks_exact(bpc)
                .zip(bv.utils.chunks_exact_mut(bpc));
            let mut jobs = self.jobs.iter_mut();
            for (s, (frow, urow)) in rows.enumerate() {
                let on = self.powered[s];
                for (j, (&fq, u)) in frow.iter().zip(urow.iter_mut()).enumerate() {
                    let job = jobs.next().expect("one job per batch lane");
                    let was_done = job.is_done();
                    let f = if on { fq } else { 0.0 };
                    job.step(f, dt);
                    if !was_done && job.is_done() {
                        rec.push_event(
                            Seconds(self.now.0 + dt.0),
                            crate::recorder::SimEvent::JobCompleted { core: s * bpc + j },
                        );
                    }
                    let busy = on && (!job.is_done() || job.repeat);
                    *u = if busy { BATCH_BUSY_UTIL } else { 0.0 };
                }
            }
        }

        // 4. Plant power: one batched pass over the slabs (crashed or
        // shut-down servers draw nothing), refreshing the per-server
        // power slab for the thermal model.
        let server_power = if self.reference_stepping {
            self.rack.power_reference_masked(&self.powered)
        } else {
            self.rack.update_server_powers(Some(&self.powered))
        };
        self.rack.step_thermal(dt);
        let fan_power = if self.shutdown {
            Watts::ZERO
        } else {
            self.fan
                .step(server_power.0 / self.max_rack_power.0.max(1.0), dt)
        };
        let p_true = server_power + fan_power;
        // The monitor always draws its noise sample (the sensor hardware
        // keeps running) — faults corrupt what it *reports*.
        let p_measured = self
            .faults
            .corrupt_measurement(self.monitor.measure(p_true), &af);

        // 5. Serve the demand. The feed rejects a non-finite discharge
        // target (a confused controller must not crash the plant model).
        let ups_target = if command.ups_target.is_finite() {
            command.ups_target
        } else {
            Watts::ZERO
        };
        let outcome = self.step_feed(p_true, ups_target, dt);

        // Curtailment compliance is judged on grid-side draw (breaker
        // power — UPS bridging is legitimate demand response): once the
        // latched response deadline has passed, every period still above
        // the cap is a violation.
        if let (Some(cap), Some(deadline)) = (ag.curtail_cap, ag.curtail_deadline) {
            if self.now.0 >= deadline.0 && outcome.cb_power.0 > cap.0 && telemetry::enabled() {
                telemetry::counter_add("grid.compliance_violations", 1);
            }
        }

        // 6. Brownout ⇒ permanent shutdown (servers lose power and the
        // paper's scenario has no restart procedure).
        let browned_out = outcome.shortfall.0 > 1.0;
        if browned_out && !self.shutdown {
            self.shutdown = true;
            for p in self.powered.iter_mut() {
                *p = false;
            }
        }

        // Event log: edges only.
        {
            use crate::recorder::SimEvent;
            let t = Seconds(self.now.0 + dt.0);
            if outcome.tripped {
                rec.push_event(t, SimEvent::BreakerTripped);
            }
            let closed = self.feed.breaker.is_closed();
            if closed && !self.last_breaker_closed && !outcome.tripped {
                rec.push_event(t, SimEvent::BreakerReclosed);
            }
            self.last_breaker_closed = closed;
            if browned_out {
                rec.push_event(t, SimEvent::Brownout);
            }
            if self.last_mode != Some(command.mode_label) {
                rec.push_event(t, SimEvent::ModeChange(command.mode_label));
                self.last_mode = Some(command.mode_label);
            }
        }

        // Per-period plant telemetry: worst-case breaker headroom over
        // the run, and the share of demand the UPS carried this period.
        telemetry::gauge_track_min("breaker_margin_min", 1.0 - self.feed.breaker.trip_margin());
        if p_true.0 > 0.0 {
            telemetry::histogram_observe("ups_discharge_duty", outcome.ups_power.0 / p_true.0);
        }

        self.now += dt;
        self.last_measured = p_measured;
        self.last_fan = fan_power;
        // Queue depth / tail quantiles reach the policy with the same
        // one-period staleness as the power measurement, and reach the
        // recorder as plain sample data — deliberately telemetry-free
        // so the closed-loop digest contract is untouched.
        let queue = self.tier.queue();
        self.last_queue = queue;
        if let Some(tail) = self.tier.tail_summary() {
            rec.set_tail(tail);
        }

        rec.push(Sample {
            t: self.now,
            p_total: p_true,
            p_measured,
            p_server: server_power,
            p_fan: fan_power,
            cb_power: outcome.cb_power,
            ups_power: outcome.ups_power,
            shortfall: outcome.shortfall,
            tripped: outcome.tripped,
            breaker_closed: self.feed.breaker.is_closed(),
            breaker_margin: self.feed.breaker.trip_margin(),
            ups_soc: self.feed.ups.soc_fraction(),
            p_cb_target: command.p_cb_target,
            p_batch_target: command.p_batch_target,
            mean_freq_interactive: self.effective_mean_freq(CoreRole::Interactive),
            mean_freq_batch: self.effective_mean_freq(CoreRole::Batch),
            interactive_backlog: self.tier.mean_backlog(),
            queue,
            mode_label: command.mode_label,
        });
    }

    /// Run for `duration` under `policy`; returns the recording.
    pub fn run(&mut self, policy: &mut dyn Policy, duration: Seconds) -> Recorder {
        let steps = (duration.0 / self.dt.0).round() as usize;
        let mut rec = Recorder::with_capacity(steps);
        for _ in 0..steps {
            self.step(policy, &mut rec);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests_support::FixedPolicy;
    use crate::scenario::Scenario;

    fn sim() -> RackSim {
        Scenario::paper_default(42).build()
    }

    #[test]
    fn fixed_policy_runs_and_records() {
        let mut s = sim();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 0.5, Watts::ZERO);
        let rec = s.run(&mut p, Seconds(60.0));
        assert_eq!(rec.len(), 60);
        // Power within the physical envelope (plus fans).
        for smp in rec.samples() {
            assert!(smp.p_total.0 > 2000.0 && smp.p_total.0 < 5000.0);
            assert_eq!(smp.shortfall, Watts::ZERO);
        }
        assert!(!s.is_shutdown());
    }

    #[test]
    fn peak_everything_without_ups_trips_the_breaker() {
        let mut s = sim();
        // Everything at peak: ~4.3+ kW through a 3.2 kW breaker.
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts::ZERO);
        let rec = s.run(&mut p, Seconds(300.0));
        assert!(
            rec.samples().iter().any(|s| s.tripped),
            "sustained 1.3× overload must trip"
        );
        // After the trip the breaker carries nothing.
        let after = rec
            .samples()
            .iter()
            .skip_while(|s| !s.tripped)
            .skip(1)
            .take(10);
        for smp in after {
            assert_eq!(smp.cb_power, Watts::ZERO);
            assert!(smp.ups_power.0 > 0.0, "UPS must carry the rack");
        }
    }

    #[test]
    fn ups_exhaustion_after_trip_causes_permanent_shutdown() {
        let mut s = sim();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts::ZERO);
        let rec = s.run(&mut p, Seconds::minutes(15.0));
        assert!(s.is_shutdown(), "UPS cannot carry 4+ kW for 12+ minutes");
        // Frequencies report as zero once down.
        let last = rec.samples().last().unwrap();
        assert_eq!(last.mean_freq_interactive, 0.0);
        assert_eq!(last.mean_freq_batch, 0.0);
        assert_eq!(last.p_total, Watts::ZERO);
        // And batch jobs stopped progressing.
        let before: Vec<f64> = s.jobs.iter().map(|j| j.progress()).collect();
        let mut p2 = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts::ZERO);
        s.step(&mut p2, &mut Recorder::with_capacity(1));
        for (a, b) in before.iter().zip(s.jobs.iter().map(|j| j.progress())) {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn ups_discharge_keeps_breaker_at_rated() {
        let mut s = sim();
        // Deadbeat UPS support like SprintCon's law, via a closure-free
        // fixed policy: target enough discharge to cover everything over
        // 3.2 kW at peak batch.
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts(1400.0));
        let rec = s.run(&mut p, Seconds(120.0));
        for smp in rec.samples() {
            assert!(!smp.tripped, "UPS support must prevent the trip");
            // A *fixed* (non-feedback) discharge leaves the CB near — but
            // safely around — rated; trips require sustained overload.
            assert!(smp.cb_power.0 < 3450.0, "cb={}", smp.cb_power);
        }
        assert!(s.feed.breaker.trip_margin() < 0.5);
    }

    #[test]
    fn batch_jobs_progress_with_frequency() {
        let mut s = sim();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 0.6, Watts(500.0));
        s.run(&mut p, Seconds(120.0));
        for j in &s.jobs {
            assert!(j.progress() > 0.0, "job {} made no progress", j.name);
        }
    }

    #[test]
    fn event_log_captures_the_fig5_sequence() {
        use crate::recorder::SimEvent;
        let mut s = sim();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts::ZERO);
        let rec = s.run(&mut p, Seconds::minutes(15.0));
        let kinds: Vec<&SimEvent> = rec.events().iter().map(|(_, e)| e).collect();
        // The uncontrolled sequence: trip → reclose → … → brownout.
        assert!(kinds.contains(&&SimEvent::BreakerTripped));
        assert!(kinds.contains(&&SimEvent::BreakerReclosed));
        assert!(kinds.contains(&&SimEvent::Brownout));
        // Order: the first trip precedes the brownout.
        let t_trip = rec
            .events_where(|e| matches!(e, SimEvent::BreakerTripped))
            .next()
            .unwrap()
            .0;
        let t_down = rec
            .events_where(|e| matches!(e, SimEvent::Brownout))
            .next()
            .unwrap()
            .0;
        assert!(t_trip.0 < t_down.0);
        // The fixed policy emits exactly one mode label.
        let modes: Vec<_> = rec
            .events_where(|e| matches!(e, SimEvent::ModeChange(_)))
            .collect();
        assert_eq!(modes.len(), 1);
    }

    #[test]
    fn job_completions_are_logged_once_per_core() {
        use crate::recorder::SimEvent;
        let mut s = sim();
        // Fast batch: jobs complete well inside the horizon.
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts(1500.0));
        let rec = s.run(&mut p, Seconds::minutes(12.0));
        let completions = rec
            .events_where(|e| matches!(e, SimEvent::JobCompleted { .. }))
            .count();
        assert_eq!(completions, 64, "one first-completion per batch core");
    }

    #[test]
    fn interactive_utilization_reflects_demand() {
        let mut s = sim();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 0.5, Watts(500.0));
        s.run(&mut p, Seconds(60.0));
        let u = s.rack.mean_role_util(CoreRole::Interactive).unwrap();
        assert!(u.0 > 0.3 && u.0 <= 1.0, "u={u}");
    }

    #[test]
    fn die_temps_track_load() {
        let mut s = sim();
        let ambient = s.rack.thermal().ambient_c;
        let mut p = FixedPolicy::new(NormFreq::PEAK, 1.0, Watts(1400.0));
        s.run(&mut p, Seconds(180.0));
        // Near-peak power through the RC model: well above ambient,
        // below the throttle point's physical ceiling.
        let t = s.rack.max_die_temp();
        assert!(t > ambient + 30.0, "t={t}");
        assert!(t < s.rack.thermal().steady_temp(320.0), "t={t}");
    }

    #[test]
    fn multirate_is_bit_identical_when_quiescent() {
        // A run that never goes above rated and never trips: the
        // multirate trigger stays cold, so every feed step is the single
        // exact step and whole trajectories match bitwise. Frequencies
        // are kept modest — interactive at peak pushes the startup
        // demand spike past the 3200 W rating, which would (correctly)
        // arm the transient trigger.
        let mut sc = Scenario::paper_default(42);
        sc.duration = Seconds(120.0);
        let mut exact = sc.build();
        sc.substepping = Substepping::Multirate { substeps: 8 };
        let mut multi = sc.build();
        assert_eq!(multi.substepping(), Substepping::Multirate { substeps: 8 });
        let mut p1 = FixedPolicy::new(NormFreq(0.4), 0.2, Watts::ZERO);
        let mut p2 = FixedPolicy::new(NormFreq(0.4), 0.2, Watts::ZERO);
        let ra = exact.run(&mut p1, Seconds(120.0));
        let rb = multi.run(&mut p2, Seconds(120.0));
        let peak = ra.samples().iter().fold(0.0f64, |m, s| m.max(s.p_total.0));
        assert!(peak < 3200.0, "not quiescent: peak {peak} W above rated");
        for (a, b) in ra.samples().iter().zip(rb.samples()) {
            assert_eq!(a.p_total.0.to_bits(), b.p_total.0.to_bits());
            assert_eq!(a.cb_power.0.to_bits(), b.cb_power.0.to_bits());
            assert_eq!(a.ups_soc.to_bits(), b.ups_soc.to_bits());
        }
    }
}
