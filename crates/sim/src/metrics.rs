//! Run-level metrics — the quantities the paper's evaluation reports.

use crate::engine::RackSim;
use crate::recorder::Recorder;
use powersim::units::Seconds;
use workloads::open_loop::TailSummary;

/// Summary of one policy run (the row format of §VII).
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub policy: String,
    /// Mean normalized interactive frequency over the run, shutdown
    /// periods counted as zero (Fig. 5(b)/Fig. 7 convention).
    pub avg_freq_interactive: f64,
    /// Same for batch cores.
    pub avg_freq_batch: f64,
    /// Breaker trips (power-safety violations).
    pub trips: usize,
    /// The rack browned out and shut down.
    pub shutdown: bool,
    pub shutdown_at: Option<Seconds>,
    /// Total energy the UPS delivered, Wh.
    pub ups_energy_wh: f64,
    /// Total discharge of UPS capacity — the paper's Fig. 8(b) metric —
    /// as a fraction of capacity (cell-side, so efficiency losses count).
    pub dod: f64,
    /// Deepest instantaneous depth of discharge reached.
    pub max_dod: f64,
    /// Batch deadline outcomes.
    pub deadlines_met: usize,
    pub deadlines_total: usize,
    /// Mean over jobs of completion_time / deadline (Fig. 8(a)); jobs
    /// that never completed count as 1.5 (off the chart).
    pub normalized_time_use: f64,
    /// Fraction of interactive demand actually served.
    pub service_ratio: f64,
    /// Energy through the breaker, Wh.
    pub cb_energy_wh: f64,
    /// Request-latency tail summary (open-loop runs only; `None` on
    /// the closed-loop path, where it contributes nothing to digests).
    pub open_loop: Option<TailSummary>,
}

impl RunSummary {
    /// Compute the summary from a finished run.
    pub fn from_run(policy: impl Into<String>, sim: &RackSim, rec: &Recorder) -> Self {
        let jobs = &sim.jobs;
        let deadlines_total = jobs.len();
        let deadlines_met = jobs
            .iter()
            .filter(|j| matches!(j.first_completion, Some(t) if t.0 <= j.deadline.0))
            .count();
        let normalized_time_use = if deadlines_total == 0 {
            0.0
        } else {
            jobs.iter()
                .map(|j| match j.first_completion {
                    Some(t) => t.0 / j.deadline.0,
                    None => 1.5,
                })
                .sum::<f64>()
                / deadlines_total as f64
        };
        let capacity = sim.feed.ups.spec.capacity.0;
        RunSummary {
            policy: policy.into(),
            avg_freq_interactive: rec.avg_freq_interactive(),
            avg_freq_batch: rec.avg_freq_batch(),
            trips: sim.feed.breaker.trip_count,
            shutdown: sim.is_shutdown(),
            shutdown_at: rec.first_shortfall(),
            ups_energy_wh: rec.ups_energy_wh(),
            dod: (sim.feed.ups.total_cell_energy_out.0 / capacity).min(1.0),
            max_dod: sim.feed.ups.max_dod,
            deadlines_met,
            deadlines_total,
            normalized_time_use,
            service_ratio: sim.tier.service_ratio(),
            cb_energy_wh: rec.cb_energy_wh(),
            open_loop: rec.tail(),
        }
    }

    /// Computing capacity relative to a baseline, following §VII-C:
    /// the paper derives its "6–56% improvement" from the ratio of
    /// interactive frequencies (`1/f_baseline − 1` against SprintCon's
    /// peak-pinned 1.0).
    pub fn interactive_capacity_gain_over(&self, baseline: &RunSummary) -> f64 {
        assert!(baseline.avg_freq_interactive > 0.0);
        self.avg_freq_interactive / baseline.avg_freq_interactive - 1.0
    }

    /// One aligned text row (see [`summary_table`]).
    pub fn row(&self) -> String {
        format!(
            "{:<10} {:>7.2} {:>7.2} {:>6} {:>9} {:>9.1} {:>6.1}% {:>6.1}% {:>6}/{:<3} {:>8.2} {:>8.3}",
            self.policy,
            self.avg_freq_interactive,
            self.avg_freq_batch,
            self.trips,
            match self.shutdown_at {
                Some(t) => format!("{:.1}m", t.as_minutes()),
                None => "-".into(),
            },
            self.ups_energy_wh,
            self.dod * 100.0,
            self.max_dod * 100.0,
            self.deadlines_met,
            self.deadlines_total,
            self.normalized_time_use,
            self.service_ratio,
        )
    }
}

/// Render summaries as an aligned table.
pub fn summary_table(rows: &[RunSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>7} {:>7} {:>6} {:>9} {:>9} {:>7} {:>7} {:>10} {:>8} {:>8}\n",
        "policy",
        "f_int",
        "f_bat",
        "trips",
        "down@",
        "ups_Wh",
        "DoD",
        "maxDoD",
        "deadlines",
        "t_use",
        "svc"
    ));
    for r in rows {
        out.push_str(&r.row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::tests_support::FixedPolicy;
    use crate::scenario::Scenario;
    use powersim::units::{NormFreq, Watts};

    #[test]
    fn summary_from_safe_run() {
        let mut sim = Scenario::paper_default(3).build();
        let mut p = FixedPolicy::new(NormFreq::PEAK, 0.4, Watts(900.0));
        let rec = sim.run(&mut p, Seconds(120.0));
        let s = RunSummary::from_run("fixed", &sim, &rec);
        assert_eq!(s.policy, "fixed");
        assert_eq!(s.trips, 0);
        assert!(!s.shutdown);
        assert!((s.avg_freq_interactive - 1.0).abs() < 1e-9);
        assert!((s.avg_freq_batch - 0.4).abs() < 1e-9);
        assert!(s.ups_energy_wh > 0.0);
        assert!(s.dod > 0.0 && s.dod < 0.2);
        assert_eq!(s.deadlines_total, 64);
        assert!(s.service_ratio > 0.9);
    }

    #[test]
    fn capacity_gain_formula() {
        let mut a = RunSummary::from_run(
            "a",
            &Scenario::paper_default(1).build(),
            &Recorder::default(),
        );
        let mut b = a.clone();
        a.avg_freq_interactive = 1.0;
        b.avg_freq_interactive = 0.64;
        // The paper's top end: 1/0.64 − 1 = 56%.
        assert!((a.interactive_capacity_gain_over(&b) - 0.5625).abs() < 1e-9);
        b.avg_freq_interactive = 0.94;
        // Bottom end: ≈ 6%.
        let g = a.interactive_capacity_gain_over(&b);
        assert!((g - 0.0638).abs() < 0.001);
    }

    #[test]
    fn table_renders_all_rows() {
        let sim = Scenario::paper_default(1).build();
        let s = RunSummary::from_run("x", &sim, &Recorder::default());
        let t = summary_table(&[s.clone(), s]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("policy"));
    }

    #[test]
    fn unfinished_jobs_count_against_time_use() {
        let sim = Scenario::paper_default(1).build();
        let s = RunSummary::from_run("x", &sim, &Recorder::default());
        // No job ran: all unfinished → 1.5 each.
        assert!((s.normalized_time_use - 1.5).abs() < 1e-12);
        assert_eq!(s.deadlines_met, 0);
    }
}
