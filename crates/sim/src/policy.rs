//! The policy interface between the simulation engine and the control
//! systems under test, plus the adapters for SprintCon and the SGCT
//! family.

use crate::mode::ModeLabel;
use powersim::grid::ActiveGrid;
use powersim::rack::Rack;
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use workloads::batch::BatchJob;
use workloads::open_loop::QueueObservation;

/// Everything a policy may observe at the start of a control period.
pub struct SimView<'a> {
    pub now: Seconds,
    pub dt: Seconds,
    /// Noisy, one-period-stale power-monitor reading.
    pub p_total_measured: Watts,
    /// The rack — policies read utilizations/frequencies from it; the
    /// idealized baselines additionally use it as a power oracle.
    pub rack: &'a Rack,
    /// Batch jobs in rack batch-core order.
    pub jobs: &'a [BatchJob],
    pub breaker_margin: f64,
    pub breaker_closed: bool,
    pub ups_soc: f64,
    /// Fan power of the previous period (granted to ideal baselines).
    pub fan_power: Watts,
    /// The rack suffered a permanent brownout.
    pub shutdown: bool,
    /// One-period-stale open-loop queue observation (depth, tick
    /// latency quantiles, drop counts); `None` on the closed-loop path.
    pub queue: Option<QueueObservation>,
    /// This tick's merged grid signals (nominal when no plan is active).
    pub grid: ActiveGrid,
}

impl<'a> SimView<'a> {
    /// Per-server mean interactive utilization (what Eq. (5) consumes),
    /// written into a caller-owned buffer — policies keep a scratch `Vec`
    /// so the control loop stays allocation-free.
    pub fn interactive_utils_into(&self, out: &mut Vec<Utilization>) {
        self.rack.interactive_utils_into(out);
    }

    /// Current per-batch-core frequencies, rack order — a zero-copy
    /// borrow of the rack's contiguous batch lane slab.
    pub fn batch_freqs(&self) -> &'a [f64] {
        self.rack.role(powersim::cpu::CoreRole::Batch).freqs
    }
}

/// Frequency actuation for one period.
pub enum FreqCommand {
    /// Interactive cores get one frequency; batch cores are individually
    /// driven (SprintCon's shape).
    RoleBased {
        interactive: NormFreq,
        batch: Vec<f64>,
    },
    /// Every core individually (the SGCT family's shape).
    AllCores(Vec<NormFreq>),
}

/// A policy's output for one control period.
pub struct PolicyCommand {
    pub freqs: FreqCommand,
    pub ups_target: Watts,
    /// Published breaker budget, for recording/plotting (Fig. 5/6).
    pub p_cb_target: Option<Watts>,
    /// Published batch budget (SprintCon only).
    pub p_batch_target: Option<Watts>,
    /// The policy's internal mode, for traces and event-log edges.
    pub mode_label: ModeLabel,
}

/// A control policy under test.
pub trait Policy {
    fn name(&self) -> &'static str;
    fn control(&mut self, view: &SimView<'_>) -> PolicyCommand;
}

// ---------------------------------------------------------------------
// SprintCon adapter
// ---------------------------------------------------------------------

/// [`sprintcon::SprintCon`] driving the rack.
pub struct SprintConPolicy {
    ctl: sprintcon::SprintCon,
    /// Reused per-period buffer for the per-server utilization vector.
    utils_scratch: Vec<Utilization>,
}

impl SprintConPolicy {
    pub fn new(cfg: sprintcon::SprintConConfig) -> Self {
        SprintConPolicy {
            ctl: sprintcon::SprintCon::new(cfg),
            utils_scratch: Vec::new(),
        }
    }

    pub fn paper_default() -> Self {
        Self::new(sprintcon::SprintConConfig::paper_default())
    }

    pub fn inner(&self) -> &sprintcon::SprintCon {
        &self.ctl
    }

    /// Mutable access to the wrapped control system — the datacenter
    /// engine uses this to install headroom-market grants between
    /// epochs ([`sprintcon::SprintCon::apply_feeder_grant`]).
    pub fn inner_mut(&mut self) -> &mut sprintcon::SprintCon {
        &mut self.ctl
    }
}

impl Policy for SprintConPolicy {
    fn name(&self) -> &'static str {
        "SprintCon"
    }

    fn control(&mut self, view: &SimView<'_>) -> PolicyCommand {
        view.interactive_utils_into(&mut self.utils_scratch);
        let batch_freqs = view.batch_freqs();
        let out = self.ctl.step(
            view.dt,
            sprintcon::SprintConInputs {
                p_total: view.p_total_measured,
                interactive_util: &self.utils_scratch,
                batch_freqs,
                jobs: view.jobs,
                breaker_margin: view.breaker_margin,
                breaker_closed: view.breaker_closed,
                ups_soc: view.ups_soc,
                queue: view.queue.map(|q| sprintcon::QueueMeasurement {
                    depth: q.depth,
                    p99_s: q.p99_s,
                    drop_rate: if view.dt.0 > 0.0 {
                        q.dropped / view.dt.0
                    } else {
                        0.0
                    },
                }),
                grid: view.grid,
            },
        );
        PolicyCommand {
            freqs: FreqCommand::RoleBased {
                interactive: out.interactive_freq,
                batch: out.batch_freqs,
            },
            ups_target: out.ups_discharge,
            p_cb_target: out.p_cb_target,
            p_batch_target: Some(out.p_batch_target),
            mode_label: ModeLabel::from(out.mode),
        }
    }
}

// ---------------------------------------------------------------------
// SGCT adapters
// ---------------------------------------------------------------------

/// An SGCT-family baseline driving the rack.
pub struct SgctSimPolicy {
    policy: baselines::SgctPolicy,
    name: &'static str,
}

impl SgctSimPolicy {
    pub fn new(variant: baselines::SgctVariant) -> Self {
        Self::with_config(baselines::SgctConfig::paper_default(variant))
    }

    /// Build from an explicit configuration (the experiment harness'
    /// override path).
    pub fn with_config(cfg: baselines::SgctConfig) -> Self {
        let name = match cfg.variant {
            baselines::SgctVariant::Uncontrolled => "SGCT",
            baselines::SgctVariant::V1Ideal => "SGCT-V1",
            baselines::SgctVariant::V2InteractivePriority => "SGCT-V2",
        };
        SgctSimPolicy {
            policy: baselines::SgctPolicy::new(cfg),
            name,
        }
    }

    pub fn variant(&self) -> baselines::SgctVariant {
        self.policy.cfg.variant
    }
}

impl Policy for SgctSimPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn control(&mut self, view: &SimView<'_>) -> PolicyCommand {
        let cmd = self
            .policy
            .step(view.dt, view.rack, view.p_total_measured, view.fan_power);
        PolicyCommand {
            freqs: FreqCommand::AllCores(cmd.freqs),
            ups_target: cmd.ups_target,
            p_cb_target: Some(if cmd.overloading {
                self.policy.cfg.sprint_budget()
            } else {
                self.policy.cfg.rated
            }),
            p_batch_target: None,
            mode_label: if cmd.overloading {
                ModeLabel::Overload
            } else {
                ModeLabel::Recover
            },
        }
    }
}

// ---------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------

/// Trivial policies used by engine tests and ablations.
pub mod tests_support {
    use super::*;

    /// Holds interactive at one frequency, batch at another, with a
    /// constant UPS discharge target.
    pub struct FixedPolicy {
        pub interactive: NormFreq,
        pub batch: f64,
        pub ups: Watts,
    }

    impl FixedPolicy {
        pub fn new(interactive: NormFreq, batch: f64, ups: Watts) -> Self {
            FixedPolicy {
                interactive,
                batch,
                ups,
            }
        }
    }

    impl Policy for FixedPolicy {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn control(&mut self, view: &SimView<'_>) -> PolicyCommand {
            let n = view.jobs.len();
            PolicyCommand {
                freqs: FreqCommand::RoleBased {
                    interactive: self.interactive,
                    batch: vec![self.batch; n],
                },
                ups_target: self.ups,
                p_cb_target: None,
                p_batch_target: None,
                mode_label: ModeLabel::Fixed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn sprintcon_policy_emits_valid_commands() {
        let mut sim = Scenario::paper_default(7).build();
        let mut p = SprintConPolicy::paper_default();
        let rec = sim.run(&mut p, Seconds(30.0));
        assert_eq!(p.name(), "SprintCon");
        let last = rec.samples().last().unwrap();
        assert_eq!(last.p_cb_target, Some(Watts(4000.0)));
        assert!(last.p_batch_target.is_some());
        assert_eq!(last.mean_freq_interactive, 1.0);
    }

    #[test]
    fn sgct_adapters_have_distinct_names() {
        let a = SgctSimPolicy::new(baselines::SgctVariant::Uncontrolled);
        let b = SgctSimPolicy::new(baselines::SgctVariant::V1Ideal);
        let c = SgctSimPolicy::new(baselines::SgctVariant::V2InteractivePriority);
        assert_eq!(a.name(), "SGCT");
        assert_eq!(b.name(), "SGCT-V1");
        assert_eq!(c.name(), "SGCT-V2");
    }

    #[test]
    fn sgct_policy_runs_in_the_engine() {
        let mut sim = Scenario::paper_default(7).build();
        let mut p = SgctSimPolicy::new(baselines::SgctVariant::V1Ideal);
        let rec = sim.run(&mut p, Seconds(30.0));
        let last = rec.samples().last().unwrap();
        // Overload phase at the start: budget 4 kW; the ideal variant
        // only shaves the plan-vs-plant residual with the UPS.
        assert_eq!(last.p_cb_target, Some(Watts(4000.0)));
        assert!(last.ups_power.0 < 500.0, "ups={}", last.ups_power);
        assert!(last.cb_power.0 > 3500.0, "cb={}", last.cb_power);
    }
}
