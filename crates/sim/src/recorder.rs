//! Time-series recording of simulation runs, with CSV export and
//! column-wise extraction for the figure harness.

use crate::mode::ModeLabel;
use powersim::units::{Seconds, Watts};
use std::io::Write;
use std::path::Path;
use workloads::open_loop::{QueueObservation, TailSummary};
use workloads::trace::Trace;

/// One control period's worth of observations.
#[derive(Debug, Clone)]
pub struct Sample {
    pub t: Seconds,
    /// True total rack power (servers + fans).
    pub p_total: Watts,
    /// What the (noisy) monitor reported.
    pub p_measured: Watts,
    pub p_server: Watts,
    pub p_fan: Watts,
    /// Power delivered through the breaker.
    pub cb_power: Watts,
    /// Power delivered by the UPS.
    pub ups_power: Watts,
    /// Unserved demand (brownout indicator).
    pub shortfall: Watts,
    /// The breaker tripped during this period.
    pub tripped: bool,
    pub breaker_closed: bool,
    pub breaker_margin: f64,
    pub ups_soc: f64,
    /// Policy-published breaker budget (Fig. 5/6's "CB budget" curve).
    pub p_cb_target: Option<Watts>,
    /// Policy-published batch budget.
    pub p_batch_target: Option<Watts>,
    /// Mean normalized frequency of interactive cores (0 when down).
    pub mean_freq_interactive: f64,
    /// Mean normalized frequency of batch cores (0 when down).
    pub mean_freq_batch: f64,
    /// Mean queued interactive backlog (peak-core-seconds per core).
    pub interactive_backlog: f64,
    /// Open-loop queue observation for this tick; `None` on the
    /// closed-loop path (and then contributes nothing to run digests).
    pub queue: Option<QueueObservation>,
    pub mode_label: ModeLabel,
}

/// A discrete event worth indexing a run by.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The breaker tripped open.
    BreakerTripped,
    /// The breaker re-closed after its delay.
    BreakerReclosed,
    /// The rack browned out (unserved demand) and shut down.
    Brownout,
    /// The policy's internal mode changed (label = new mode).
    ModeChange(ModeLabel),
    /// A batch job completed its first run.
    JobCompleted { core: usize },
}

/// An append-only recording of one run.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    samples: Vec<Sample>,
    events: Vec<(Seconds, SimEvent)>,
    /// Whole-run request-latency tail summary (open-loop runs only);
    /// overwritten each tick with the cumulative sketch state.
    tail: Option<TailSummary>,
}

impl Recorder {
    pub fn with_capacity(n: usize) -> Self {
        Recorder {
            samples: Vec::with_capacity(n),
            events: Vec::new(),
            tail: None,
        }
    }

    /// Record the run-level request tail summary (open-loop runs).
    pub fn set_tail(&mut self, tail: TailSummary) {
        self.tail = Some(tail);
    }

    /// The run-level request tail summary, if this was an open-loop run.
    pub fn tail(&self) -> Option<TailSummary> {
        self.tail
    }

    pub fn push(&mut self, s: Sample) {
        self.samples.push(s);
    }

    /// Record a discrete event at time `t`.
    pub fn push_event(&mut self, t: Seconds, e: SimEvent) {
        self.events.push((t, e));
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[(Seconds, SimEvent)] {
        &self.events
    }

    /// Events matching a predicate.
    pub fn events_where<'a>(
        &'a self,
        pred: impl Fn(&SimEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (Seconds, SimEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn dt(&self) -> Seconds {
        if self.samples.len() >= 2 {
            Seconds(self.samples[1].t.0 - self.samples[0].t.0)
        } else {
            Seconds(1.0)
        }
    }

    /// Extract a column as a [`Trace`].
    pub fn column(&self, f: impl Fn(&Sample) -> f64) -> Trace {
        Trace::new(self.dt(), self.samples.iter().map(f).collect())
    }

    /// Total energy delivered by the UPS over the run, Wh.
    pub fn ups_energy_wh(&self) -> f64 {
        let dt = self.dt();
        self.samples.iter().map(|s| s.ups_power.over(dt).0).sum()
    }

    /// Total energy through the breaker, Wh.
    pub fn cb_energy_wh(&self) -> f64 {
        let dt = self.dt();
        self.samples.iter().map(|s| s.cb_power.over(dt).0).sum()
    }

    /// Number of breaker trips.
    pub fn trip_count(&self) -> usize {
        self.samples.iter().filter(|s| s.tripped).count()
    }

    /// First time the rack browned out, if ever.
    pub fn first_shortfall(&self) -> Option<Seconds> {
        self.samples
            .iter()
            .find(|s| s.shortfall.0 > 1.0)
            .map(|s| s.t)
    }

    /// Mean interactive frequency over the whole run (zeros included).
    pub fn avg_freq_interactive(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mean_freq_interactive))
    }

    /// Mean batch frequency over the whole run (zeros included).
    pub fn avg_freq_batch(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mean_freq_batch))
    }

    /// Write the full recording as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "t_s,p_total_w,p_measured_w,p_server_w,p_fan_w,cb_power_w,ups_power_w,\
             shortfall_w,tripped,breaker_closed,breaker_margin,ups_soc,p_cb_target_w,\
             p_batch_target_w,freq_interactive,freq_batch,backlog,queue_depth,queue_p99_s,\
             queue_dropped,mode"
        )?;
        for s in &self.samples {
            writeln!(
                out,
                "{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{:.4},{:.4},{},{},{:.4},{:.4},{:.4},{},{},{},{}",
                s.t.0,
                s.p_total.0,
                s.p_measured.0,
                s.p_server.0,
                s.p_fan.0,
                s.cb_power.0,
                s.ups_power.0,
                s.shortfall.0,
                s.tripped as u8,
                s.breaker_closed as u8,
                s.breaker_margin,
                s.ups_soc,
                s.p_cb_target.map_or(String::from(""), |w| format!("{:.1}", w.0)),
                s.p_batch_target.map_or(String::from(""), |w| format!("{:.1}", w.0)),
                s.mean_freq_interactive,
                s.mean_freq_batch,
                s.interactive_backlog,
                s.queue.map_or(String::new(), |q| format!("{:.3}", q.depth)),
                s.queue.map_or(String::new(), |q| format!("{:.6}", q.p99_s)),
                s.queue.map_or(String::new(), |q| format!("{:.3}", q.dropped)),
                s.mode_label,
            )?;
        }
        Ok(())
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = it.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, ups: f64, cb: f64) -> Sample {
        Sample {
            t: Seconds(t),
            p_total: Watts(cb + ups),
            p_measured: Watts(cb + ups),
            p_server: Watts(cb + ups - 50.0),
            p_fan: Watts(50.0),
            cb_power: Watts(cb),
            ups_power: Watts(ups),
            shortfall: Watts::ZERO,
            tripped: false,
            breaker_closed: true,
            breaker_margin: 0.1,
            ups_soc: 0.9,
            p_cb_target: Some(Watts(4000.0)),
            p_batch_target: None,
            mean_freq_interactive: 1.0,
            mean_freq_batch: 0.6,
            interactive_backlog: 0.0,
            queue: None,
            mode_label: ModeLabel::Sprint,
        }
    }

    #[test]
    fn energy_accounting() {
        let mut r = Recorder::default();
        // 600 s at 600 W UPS → 100 Wh.
        for k in 0..600 {
            r.push(sample(k as f64, 600.0, 3200.0));
        }
        assert!((r.ups_energy_wh() - 100.0).abs() < 1e-9);
        assert!((r.cb_energy_wh() - 3200.0 * 600.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn column_extraction() {
        let mut r = Recorder::default();
        for k in 0..10 {
            r.push(sample(k as f64 * 2.0, 100.0, 3000.0));
        }
        let col = r.column(|s| s.ups_power.0);
        assert_eq!(col.len(), 10);
        assert_eq!(col.dt, Seconds(2.0));
        assert_eq!(col.mean(), 100.0);
    }

    #[test]
    fn averages_and_counters() {
        let mut r = Recorder::default();
        let mut s1 = sample(0.0, 0.0, 4000.0);
        s1.tripped = true;
        r.push(s1);
        let mut s2 = sample(1.0, 0.0, 0.0);
        s2.mean_freq_interactive = 0.0;
        s2.mean_freq_batch = 0.0;
        s2.shortfall = Watts(500.0);
        r.push(s2);
        assert_eq!(r.trip_count(), 1);
        assert_eq!(r.first_shortfall(), Some(Seconds(1.0)));
        assert!((r.avg_freq_interactive() - 0.5).abs() < 1e-12);
        assert!((r.avg_freq_batch() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut r = Recorder::default();
        for k in 0..5 {
            r.push(sample(k as f64, 10.0, 3000.0));
        }
        let dir = std::env::temp_dir().join("sprintcon_test_csv");
        let path = dir.join("rec.csv");
        r.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6); // header + 5 rows
        assert!(lines[0].starts_with("t_s,"));
        assert_eq!(lines[0].split(',').count(), 21);
        assert_eq!(lines[1].split(',').count(), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_columns_fill_for_open_loop_samples() {
        let mut r = Recorder::default();
        let mut s = sample(0.0, 10.0, 3000.0);
        s.queue = Some(QueueObservation {
            depth: 12.5,
            p50_s: 0.02,
            p95_s: 0.05,
            p99_s: 0.08,
            arrived: 100.0,
            completed: 90.0,
            dropped: 2.0,
        });
        r.push(s);
        let dir = std::env::temp_dir().join("sprintcon_test_csv_queue");
        let path = dir.join("rec.csv");
        r.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let row: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row[17], "12.500");
        assert_eq!(row[18], "0.080000");
        assert_eq!(row[19], "2.000");
        std::fs::remove_dir_all(&dir).ok();
    }
}
