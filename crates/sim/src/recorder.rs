//! Time-series recording of simulation runs, with CSV export and
//! column-wise extraction for the figure harness.
//!
//! Two retention modes share one API:
//!
//! * **Full** (the default): every [`Sample`] is kept for the whole run
//!   — what the figure harness, CSV export, and standalone [`run_digest`]
//!   consume. Memory is O(ticks).
//! * **Streaming** ([`Recorder::streaming`]): built for the datacenter
//!   engine's 10k-rack floors, where whole-run retention at every rack
//!   is the memory ceiling. Samples are *not* kept; instead each push
//!   appends `cb_power` to a contiguous epoch lane (drained by the tree
//!   replay at every allocator boundary) and folds the sample into an
//!   incremental FNV digest plus the handful of running aggregates the
//!   §VII summary reads ([`Recorder::ups_energy_wh`] & friends). The
//!   folds replicate the full-retention accessors' accumulation order
//!   exactly, so summaries — and therefore run digests — come out
//!   **bit-identical** to a full-retention recorder of the same
//!   trajectory (`bench_datacenter --check` and `tests/datacenter.rs`
//!   enforce this). Events and the open-loop tail summary are kept in
//!   both modes (both are bounded and both feed the digest tail).
//!
//! [`run_digest`]: crate::exec::run_digest

use crate::exec::DigestBuilder;
use crate::mode::ModeLabel;
use powersim::units::{Seconds, Watts};
use std::io::Write;
use std::path::Path;
use workloads::open_loop::{QueueObservation, TailSummary};
use workloads::trace::Trace;

/// One control period's worth of observations.
#[derive(Debug, Clone)]
pub struct Sample {
    pub t: Seconds,
    /// True total rack power (servers + fans).
    pub p_total: Watts,
    /// What the (noisy) monitor reported.
    pub p_measured: Watts,
    pub p_server: Watts,
    pub p_fan: Watts,
    /// Power delivered through the breaker.
    pub cb_power: Watts,
    /// Power delivered by the UPS.
    pub ups_power: Watts,
    /// Unserved demand (brownout indicator).
    pub shortfall: Watts,
    /// The breaker tripped during this period.
    pub tripped: bool,
    pub breaker_closed: bool,
    pub breaker_margin: f64,
    pub ups_soc: f64,
    /// Policy-published breaker budget (Fig. 5/6's "CB budget" curve).
    pub p_cb_target: Option<Watts>,
    /// Policy-published batch budget.
    pub p_batch_target: Option<Watts>,
    /// Mean normalized frequency of interactive cores (0 when down).
    pub mean_freq_interactive: f64,
    /// Mean normalized frequency of batch cores (0 when down).
    pub mean_freq_batch: f64,
    /// Mean queued interactive backlog (peak-core-seconds per core).
    pub interactive_backlog: f64,
    /// Open-loop queue observation for this tick; `None` on the
    /// closed-loop path (and then contributes nothing to run digests).
    pub queue: Option<QueueObservation>,
    pub mode_label: ModeLabel,
}

/// A discrete event worth indexing a run by.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The breaker tripped open.
    BreakerTripped,
    /// The breaker re-closed after its delay.
    BreakerReclosed,
    /// The rack browned out (unserved demand) and shut down.
    Brownout,
    /// The policy's internal mode changed (label = new mode).
    ModeChange(ModeLabel),
    /// A batch job completed its first run.
    JobCompleted { core: usize },
}

/// Streaming-mode fold state: everything the summary and digest need
/// from the samples, without the samples.
#[derive(Debug, Clone)]
struct StreamFold {
    /// Contiguous `cb_power` lane of the current epoch, in push order;
    /// the datacenter tree replay consumes and clears it every epoch.
    lane: Vec<f64>,
    /// Incremental fold of every pushed sample, in push order — the
    /// per-sample section of [`crate::exec::run_digest`], bit for bit.
    digest: DigestBuilder,
    /// First two timestamps seen: the same `dt` derivation full
    /// retention uses (`t1 − t0`, fallback 1 s below two samples).
    t0: Option<f64>,
    t1: Option<f64>,
    /// Samples pushed before `dt` is known (at most the first one);
    /// folded into the aggregates as soon as the second push fixes `dt`.
    pending: Vec<Sample>,
    /// Samples folded into the aggregates so far.
    folded: usize,
    sum_freq_interactive: f64,
    sum_freq_batch: f64,
    ups_energy_wh: f64,
    cb_energy_wh: f64,
    trip_count: usize,
    first_shortfall: Option<Seconds>,
}

impl StreamFold {
    fn new() -> Self {
        StreamFold {
            lane: Vec::new(),
            digest: DigestBuilder::new(),
            t0: None,
            t1: None,
            pending: Vec::new(),
            folded: 0,
            sum_freq_interactive: 0.0,
            sum_freq_batch: 0.0,
            ups_energy_wh: 0.0,
            cb_energy_wh: 0.0,
            trip_count: 0,
            first_shortfall: None,
        }
    }

    fn dt(&self) -> Option<Seconds> {
        match (self.t0, self.t1) {
            (Some(a), Some(b)) => Some(Seconds(b - a)),
            _ => None,
        }
    }

    /// Fold one sample into the running aggregates with the same
    /// accumulation order as the full-retention accessors (`+=` from a
    /// zero accumulator mirrors `Iterator::sum`'s left fold).
    fn fold(&mut self, s: &Sample, dt: Seconds) {
        self.folded += 1;
        self.sum_freq_interactive += s.mean_freq_interactive;
        self.sum_freq_batch += s.mean_freq_batch;
        self.ups_energy_wh += s.ups_power.over(dt).0;
        self.cb_energy_wh += s.cb_power.over(dt).0;
        if s.tripped {
            self.trip_count += 1;
        }
        if self.first_shortfall.is_none() && s.shortfall.0 > 1.0 {
            self.first_shortfall = Some(s.t);
        }
    }

    fn push(&mut self, s: Sample) {
        self.lane.push(s.cb_power.0);
        crate::exec::digest_sample(&mut self.digest, &s);
        if self.t0.is_none() {
            self.t0 = Some(s.t.0);
        } else if self.t1.is_none() {
            self.t1 = Some(s.t.0);
        }
        match self.dt() {
            Some(dt) => {
                // The second push fixes dt; flush the first sample (the
                // only one that can be pending) before folding this one,
                // preserving push order.
                for i in 0..self.pending.len() {
                    let p = self.pending[i].clone();
                    self.fold(&p, dt);
                }
                self.pending.clear();
                self.fold(&s, dt);
            }
            None => self.pending.push(s),
        }
    }

    /// Fold any still-pending samples with the sub-two-sample fallback
    /// `dt` of 1 s — exactly what full retention's `dt()` would use.
    fn flush_pending(&mut self) {
        for i in 0..self.pending.len() {
            let p = self.pending[i].clone();
            self.fold(&p, Seconds(1.0));
        }
        self.pending.clear();
    }

    fn len(&self) -> usize {
        self.folded + self.pending.len()
    }
}

/// An append-only recording of one run.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    samples: Vec<Sample>,
    events: Vec<(Seconds, SimEvent)>,
    /// Whole-run request-latency tail summary (open-loop runs only);
    /// overwritten each tick with the cumulative sketch state.
    tail: Option<TailSummary>,
    /// Streaming-mode fold state; `None` means full retention.
    stream: Option<Box<StreamFold>>,
}

impl Recorder {
    pub fn with_capacity(n: usize) -> Self {
        Recorder {
            samples: Vec::with_capacity(n),
            events: Vec::new(),
            tail: None,
            stream: None,
        }
    }

    /// A streaming recorder: samples are folded, not retained — see the
    /// module docs for the contract. [`Recorder::samples`] stays empty;
    /// use [`Recorder::epoch_lane`] for the current epoch's breaker
    /// powers and the aggregate accessors for everything the summary
    /// reads.
    pub fn streaming() -> Self {
        Recorder {
            samples: Vec::new(),
            events: Vec::new(),
            tail: None,
            stream: Some(Box::new(StreamFold::new())),
        }
    }

    /// Whether this recorder folds instead of retaining samples.
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Streaming mode: the contiguous `cb_power` lane of the current
    /// epoch (everything pushed since the last
    /// [`Recorder::clear_epoch_lane`]). `None` under full retention.
    pub fn epoch_lane(&self) -> Option<&[f64]> {
        self.stream.as_ref().map(|st| st.lane.as_slice())
    }

    /// Streaming mode: drop the current epoch lane (keeps its
    /// allocation). No-op under full retention.
    pub fn clear_epoch_lane(&mut self) {
        if let Some(st) = &mut self.stream {
            st.lane.clear();
        }
    }

    /// Streaming mode: a snapshot of the incremental per-sample digest
    /// fold — the exact state [`crate::exec::run_digest`] would be in
    /// after hashing every pushed sample. Finish it with
    /// [`crate::exec::digest_run_tail`]. `None` under full retention.
    pub fn stream_digest(&self) -> Option<DigestBuilder> {
        self.stream.as_ref().map(|st| st.digest.clone())
    }

    /// Streaming mode: finalize the aggregate folds (flushes a
    /// sub-two-sample run with the same fallback `dt` full retention
    /// uses). Idempotent; no-op under full retention.
    pub fn finish_stream(&mut self) {
        if let Some(st) = &mut self.stream {
            st.flush_pending();
        }
    }

    /// Record the run-level request tail summary (open-loop runs).
    pub fn set_tail(&mut self, tail: TailSummary) {
        self.tail = Some(tail);
    }

    /// The run-level request tail summary, if this was an open-loop run.
    pub fn tail(&self) -> Option<TailSummary> {
        self.tail
    }

    pub fn push(&mut self, s: Sample) {
        match &mut self.stream {
            Some(st) => st.push(s),
            None => self.samples.push(s),
        }
    }

    /// Record a discrete event at time `t`.
    pub fn push_event(&mut self, t: Seconds, e: SimEvent) {
        self.events.push((t, e));
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[(Seconds, SimEvent)] {
        &self.events
    }

    /// Events matching a predicate.
    pub fn events_where<'a>(
        &'a self,
        pred: impl Fn(&SimEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (Seconds, SimEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    /// Samples pushed so far (both modes; streaming counts folded ones).
    pub fn len(&self) -> usize {
        match &self.stream {
            Some(st) => st.len(),
            None => self.samples.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained samples. Empty in streaming mode (which is the
    /// point) — consumers that need trajectories (CSV export, column
    /// extraction, figure harness) require full retention.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    fn dt(&self) -> Seconds {
        match &self.stream {
            Some(st) => st.dt().unwrap_or(Seconds(1.0)),
            None => {
                if self.samples.len() >= 2 {
                    Seconds(self.samples[1].t.0 - self.samples[0].t.0)
                } else {
                    Seconds(1.0)
                }
            }
        }
    }

    /// Extract a column as a [`Trace`].
    pub fn column(&self, f: impl Fn(&Sample) -> f64) -> Trace {
        Trace::new(self.dt(), self.samples.iter().map(f).collect())
    }

    /// Streaming mode: aggregates over folded samples plus any samples
    /// still pending a `dt` (a sub-two-sample run), folded on the fly
    /// with the same 1 s fallback full retention would apply — so the
    /// accessor is exact at any point, not just after
    /// [`Recorder::finish_stream`].
    fn stream_with_pending<T>(
        st: &StreamFold,
        base: T,
        fold: impl Fn(T, &Sample, Seconds) -> T,
    ) -> T {
        let mut acc = base;
        for s in &st.pending {
            acc = fold(acc, s, Seconds(1.0));
        }
        acc
    }

    /// Total energy delivered by the UPS over the run, Wh.
    pub fn ups_energy_wh(&self) -> f64 {
        match &self.stream {
            Some(st) => Self::stream_with_pending(st, st.ups_energy_wh, |acc, s, dt| {
                acc + s.ups_power.over(dt).0
            }),
            None => {
                let dt = self.dt();
                self.samples.iter().map(|s| s.ups_power.over(dt).0).sum()
            }
        }
    }

    /// Total energy through the breaker, Wh.
    pub fn cb_energy_wh(&self) -> f64 {
        match &self.stream {
            Some(st) => Self::stream_with_pending(st, st.cb_energy_wh, |acc, s, dt| {
                acc + s.cb_power.over(dt).0
            }),
            None => {
                let dt = self.dt();
                self.samples.iter().map(|s| s.cb_power.over(dt).0).sum()
            }
        }
    }

    /// Number of breaker trips.
    pub fn trip_count(&self) -> usize {
        match &self.stream {
            Some(st) => {
                Self::stream_with_pending(st, st.trip_count, |acc, s, _| acc + s.tripped as usize)
            }
            None => self.samples.iter().filter(|s| s.tripped).count(),
        }
    }

    /// First time the rack browned out, if ever.
    pub fn first_shortfall(&self) -> Option<Seconds> {
        match &self.stream {
            Some(st) => Self::stream_with_pending(st, st.first_shortfall, |acc, s, _| {
                if acc.is_none() && s.shortfall.0 > 1.0 {
                    Some(s.t)
                } else {
                    acc
                }
            }),
            None => self
                .samples
                .iter()
                .find(|s| s.shortfall.0 > 1.0)
                .map(|s| s.t),
        }
    }

    /// Mean interactive frequency over the whole run (zeros included).
    pub fn avg_freq_interactive(&self) -> f64 {
        match &self.stream {
            Some(st) => {
                let sum = Self::stream_with_pending(st, st.sum_freq_interactive, |a, s, _| {
                    a + s.mean_freq_interactive
                });
                mean_of(sum, st.len())
            }
            None => mean(self.samples.iter().map(|s| s.mean_freq_interactive)),
        }
    }

    /// Mean batch frequency over the whole run (zeros included).
    pub fn avg_freq_batch(&self) -> f64 {
        match &self.stream {
            Some(st) => {
                let sum = Self::stream_with_pending(st, st.sum_freq_batch, |a, s, _| {
                    a + s.mean_freq_batch
                });
                mean_of(sum, st.len())
            }
            None => mean(self.samples.iter().map(|s| s.mean_freq_batch)),
        }
    }

    /// Write the full recording as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "t_s,p_total_w,p_measured_w,p_server_w,p_fan_w,cb_power_w,ups_power_w,\
             shortfall_w,tripped,breaker_closed,breaker_margin,ups_soc,p_cb_target_w,\
             p_batch_target_w,freq_interactive,freq_batch,backlog,queue_depth,queue_p99_s,\
             queue_dropped,mode"
        )?;
        for s in &self.samples {
            writeln!(
                out,
                "{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{},{:.4},{:.4},{},{},{:.4},{:.4},{:.4},{},{},{},{}",
                s.t.0,
                s.p_total.0,
                s.p_measured.0,
                s.p_server.0,
                s.p_fan.0,
                s.cb_power.0,
                s.ups_power.0,
                s.shortfall.0,
                s.tripped as u8,
                s.breaker_closed as u8,
                s.breaker_margin,
                s.ups_soc,
                s.p_cb_target.map_or(String::from(""), |w| format!("{:.1}", w.0)),
                s.p_batch_target.map_or(String::from(""), |w| format!("{:.1}", w.0)),
                s.mean_freq_interactive,
                s.mean_freq_batch,
                s.interactive_backlog,
                s.queue.map_or(String::new(), |q| format!("{:.3}", q.depth)),
                s.queue.map_or(String::new(), |q| format!("{:.6}", q.p99_s)),
                s.queue.map_or(String::new(), |q| format!("{:.3}", q.dropped)),
                s.mode_label,
            )?;
        }
        Ok(())
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = it.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    mean_of(sum, n)
}

fn mean_of(sum: f64, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, ups: f64, cb: f64) -> Sample {
        Sample {
            t: Seconds(t),
            p_total: Watts(cb + ups),
            p_measured: Watts(cb + ups),
            p_server: Watts(cb + ups - 50.0),
            p_fan: Watts(50.0),
            cb_power: Watts(cb),
            ups_power: Watts(ups),
            shortfall: Watts::ZERO,
            tripped: false,
            breaker_closed: true,
            breaker_margin: 0.1,
            ups_soc: 0.9,
            p_cb_target: Some(Watts(4000.0)),
            p_batch_target: None,
            mean_freq_interactive: 1.0,
            mean_freq_batch: 0.6,
            interactive_backlog: 0.0,
            queue: None,
            mode_label: ModeLabel::Sprint,
        }
    }

    #[test]
    fn energy_accounting() {
        let mut r = Recorder::default();
        // 600 s at 600 W UPS → 100 Wh.
        for k in 0..600 {
            r.push(sample(k as f64, 600.0, 3200.0));
        }
        assert!((r.ups_energy_wh() - 100.0).abs() < 1e-9);
        assert!((r.cb_energy_wh() - 3200.0 * 600.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn column_extraction() {
        let mut r = Recorder::default();
        for k in 0..10 {
            r.push(sample(k as f64 * 2.0, 100.0, 3000.0));
        }
        let col = r.column(|s| s.ups_power.0);
        assert_eq!(col.len(), 10);
        assert_eq!(col.dt, Seconds(2.0));
        assert_eq!(col.mean(), 100.0);
    }

    #[test]
    fn averages_and_counters() {
        let mut r = Recorder::default();
        let mut s1 = sample(0.0, 0.0, 4000.0);
        s1.tripped = true;
        r.push(s1);
        let mut s2 = sample(1.0, 0.0, 0.0);
        s2.mean_freq_interactive = 0.0;
        s2.mean_freq_batch = 0.0;
        s2.shortfall = Watts(500.0);
        r.push(s2);
        assert_eq!(r.trip_count(), 1);
        assert_eq!(r.first_shortfall(), Some(Seconds(1.0)));
        assert!((r.avg_freq_interactive() - 0.5).abs() < 1e-12);
        assert!((r.avg_freq_batch() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut r = Recorder::default();
        for k in 0..5 {
            r.push(sample(k as f64, 10.0, 3000.0));
        }
        let dir = std::env::temp_dir().join("sprintcon_test_csv");
        let path = dir.join("rec.csv");
        r.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6); // header + 5 rows
        assert!(lines[0].starts_with("t_s,"));
        assert_eq!(lines[0].split(',').count(), 21);
        assert_eq!(lines[1].split(',').count(), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_fold_matches_full_retention_bit_for_bit() {
        let mut full = Recorder::default();
        let mut st = Recorder::streaming();
        for k in 0..50 {
            let mut s = sample(
                k as f64 * 2.0,
                100.0 + 3.7 * k as f64,
                3000.0 - 11.0 * k as f64,
            );
            s.mean_freq_interactive = 0.5 + 0.01 * k as f64;
            s.mean_freq_batch = 0.3 + 0.007 * k as f64;
            if k % 7 == 0 {
                s.tripped = true;
            }
            if k == 31 {
                s.shortfall = Watts(600.0);
            }
            full.push(s.clone());
            st.push(s);
        }
        st.finish_stream();
        assert_eq!(st.len(), full.len());
        assert_eq!(st.trip_count(), full.trip_count());
        assert_eq!(st.first_shortfall(), full.first_shortfall());
        assert_eq!(st.ups_energy_wh().to_bits(), full.ups_energy_wh().to_bits());
        assert_eq!(st.cb_energy_wh().to_bits(), full.cb_energy_wh().to_bits());
        assert_eq!(
            st.avg_freq_interactive().to_bits(),
            full.avg_freq_interactive().to_bits()
        );
        assert_eq!(
            st.avg_freq_batch().to_bits(),
            full.avg_freq_batch().to_bits()
        );
        // The epoch lane holds every cb_power pushed since the last clear.
        let lane = st.epoch_lane().expect("streaming recorder has a lane");
        assert_eq!(lane.len(), 50);
        for (v, s) in lane.iter().zip(full.samples()) {
            assert_eq!(v.to_bits(), s.cb_power.0.to_bits());
        }
        // And the incremental sample digest equals a from-scratch fold.
        let mut h = crate::exec::DigestBuilder::new();
        for s in full.samples() {
            crate::exec::digest_sample(&mut h, s);
        }
        assert_eq!(
            st.stream_digest().expect("streaming digest").finish(),
            h.finish()
        );
        // Full retention exposes no streaming surface.
        assert!(full.epoch_lane().is_none());
        assert!(full.stream_digest().is_none());
    }

    #[test]
    fn streaming_accessors_are_exact_mid_run_and_below_two_samples() {
        // One sample: full retention falls back to dt = 1 s; streaming
        // must agree even before finish_stream().
        let mut full = Recorder::default();
        let mut st = Recorder::streaming();
        let s = sample(5.0, 200.0, 2800.0);
        full.push(s.clone());
        st.push(s);
        assert_eq!(st.len(), 1);
        assert_eq!(st.ups_energy_wh().to_bits(), full.ups_energy_wh().to_bits());
        assert_eq!(
            st.avg_freq_interactive().to_bits(),
            full.avg_freq_interactive().to_bits()
        );
        // finish_stream is idempotent and changes nothing.
        st.finish_stream();
        st.finish_stream();
        assert_eq!(st.ups_energy_wh().to_bits(), full.ups_energy_wh().to_bits());
        // Empty streaming recorder behaves like an empty full one.
        let empty = Recorder::streaming();
        assert!(empty.is_empty());
        assert_eq!(empty.avg_freq_batch(), 0.0);
        assert_eq!(empty.first_shortfall(), None);
    }

    #[test]
    fn epoch_lane_clears_without_losing_aggregates() {
        let mut st = Recorder::streaming();
        for k in 0..10 {
            st.push(sample(k as f64, 50.0, 1000.0 + k as f64));
        }
        assert_eq!(st.epoch_lane().unwrap().len(), 10);
        let energy_before = st.cb_energy_wh();
        st.clear_epoch_lane();
        assert!(st.epoch_lane().unwrap().is_empty());
        assert_eq!(st.len(), 10, "clearing the lane must not drop samples");
        assert_eq!(st.cb_energy_wh().to_bits(), energy_before.to_bits());
        for k in 10..13 {
            st.push(sample(k as f64, 50.0, 1000.0 + k as f64));
        }
        assert_eq!(st.epoch_lane().unwrap().len(), 3, "lane restarts per epoch");
        assert_eq!(st.len(), 13);
    }

    #[test]
    fn queue_columns_fill_for_open_loop_samples() {
        let mut r = Recorder::default();
        let mut s = sample(0.0, 10.0, 3000.0);
        s.queue = Some(QueueObservation {
            depth: 12.5,
            p50_s: 0.02,
            p95_s: 0.05,
            p99_s: 0.08,
            arrived: 100.0,
            completed: 90.0,
            dropped: 2.0,
        });
        r.push(s);
        let dir = std::env::temp_dir().join("sprintcon_test_csv_queue");
        let path = dir.join("rec.csv");
        r.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let row: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row[17], "12.500");
        assert_eq!(row[18], "0.080000");
        assert_eq!(row[19], "2.000");
        std::fs::remove_dir_all(&dir).ok();
    }
}
