//! Scenario builder: assembles the paper's evaluation setup (§VI-A) —
//! 16 servers, 3.2 kW breaker, 400 Wh UPS, Wikipedia-like interactive
//! burst, SPEC-like batch jobs with minute-scale deadlines — into a ready
//! [`RackSim`].

use crate::engine::RackSim;
use powersim::breaker::{BreakerSpec, CircuitBreaker};
use powersim::fan::FanModel;
use powersim::rack::{PowerMonitor, Rack};
use powersim::server::ServerSpec;
use powersim::topology::PowerFeed;
use powersim::units::Seconds;
use powersim::ups::{UpsBattery, UpsSpec};
use workloads::batch::BatchJob;
use workloads::interactive::InteractiveTier;
use workloads::spec_profiles::paper_batch_mix;
use workloads::wiki_trace::WikiTraceConfig;

/// A fully-parameterized experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    /// Run length (the paper's sprinting process: 15 minutes).
    pub duration: Seconds,
    /// Control/simulation period.
    pub dt: Seconds,
    /// Batch deadline (9/12/15 minutes in §VII-D).
    pub deadline: Seconds,
    /// Scale applied to each benchmark's nominal (peak-frequency) runtime
    /// when sizing its work. The workload is *fixed* across the deadline
    /// sweep — only the deadline moves, as in §VII-D — so tight deadlines
    /// force high frequencies and loose ones allow throttling.
    pub job_scale: f64,
    /// Interactive demand generator.
    pub wiki: WikiTraceConfig,
    /// Plant description.
    pub server: ServerSpec,
    pub num_servers: usize,
    pub interactive_cores_per_server: usize,
    pub breaker: BreakerSpec,
    pub ups: UpsSpec,
    /// Power-monitor noise.
    pub monitor_rel_sigma: f64,
    pub monitor_abs_sigma: f64,
    /// Batch jobs restart on completion (continuous processing), vs
    /// one-shot jobs with deadlines.
    pub repeat_jobs: bool,
}

impl Scenario {
    /// The §VI-A evaluation scenario with a 12-minute batch deadline.
    pub fn paper_default(seed: u64) -> Self {
        Scenario {
            seed,
            duration: Seconds::minutes(15.0),
            dt: Seconds(1.0),
            deadline: Seconds::minutes(12.0),
            job_scale: 0.9,
            wiki: WikiTraceConfig::paper_default(),
            server: ServerSpec::paper_default(),
            num_servers: 16,
            interactive_cores_per_server: 4,
            breaker: BreakerSpec::paper_default(),
            ups: UpsSpec::paper_default(),
            monitor_rel_sigma: 0.005,
            monitor_abs_sigma: 5.0,
            // §VI-A: "the batch workloads are processed repeatedly and
            // continuously ... until the workload is run for 15 minutes".
            repeat_jobs: true,
        }
    }

    /// Same scenario with a different deadline (Fig. 8 sweep).
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = deadline;
        self
    }

    /// Batch cores per server.
    pub fn batch_cores_per_server(&self) -> usize {
        self.server.num_cores - self.interactive_cores_per_server
    }

    /// Build the batch jobs (rack batch-core order: server-major).
    pub fn build_jobs(&self) -> Vec<BatchJob> {
        let mix = paper_batch_mix(self.num_servers, self.batch_cores_per_server());
        let mut jobs = Vec::new();
        for server_profiles in mix {
            for profile in server_profiles {
                let model = profile.progress_model();
                let work = profile.nominal_runtime_s * self.job_scale;
                let mut job = BatchJob::new(profile.name, model, work, self.deadline);
                if self.repeat_jobs {
                    job = job.repeating();
                }
                jobs.push(job);
            }
        }
        jobs
    }

    /// Assemble the simulation.
    pub fn build(&self) -> RackSim {
        let rack = Rack::homogeneous(
            self.server.clone(),
            self.num_servers,
            self.interactive_cores_per_server,
        );
        let demand = self.wiki.generate(self.seed);
        let tier = InteractiveTier::new(demand, self.num_servers);
        RackSim::new(
            rack,
            PowerFeed::new(
                CircuitBreaker::new(self.breaker),
                UpsBattery::full(self.ups),
            ),
            FanModel::paper_default(self.seed.wrapping_add(1)),
            PowerMonitor::new(
                self.seed.wrapping_add(2),
                self.monitor_rel_sigma,
                self.monitor_abs_sigma,
            ),
            tier,
            self.build_jobs(),
            self.dt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::cpu::CoreRole;

    #[test]
    fn paper_scenario_builds_the_documented_plant() {
        let s = Scenario::paper_default(1);
        let sim = s.build();
        assert_eq!(sim.rack.num_servers(), 16);
        assert_eq!(sim.rack.count_role(CoreRole::Interactive), 64);
        assert_eq!(sim.rack.count_role(CoreRole::Batch), 64);
        assert_eq!(sim.jobs.len(), 64);
        assert_eq!(sim.feed.breaker.spec.rated.0, 3200.0);
        assert_eq!(sim.feed.ups.spec.capacity.0, 400.0);
    }

    #[test]
    fn jobs_follow_the_benchmark_mix() {
        let s = Scenario::paper_default(1);
        let jobs = s.build_jobs();
        // Server 0 runs CINT, server 1 CFP (§VI-A placement).
        assert_eq!(jobs[0].name, "400.perlbench");
        assert_eq!(jobs[3].name, "429.mcf");
        assert_eq!(jobs[4].name, "433.milc");
        // All share the deadline.
        assert!(jobs.iter().all(|j| j.deadline == Seconds(720.0)));
    }

    #[test]
    fn job_sizing_is_feasible_but_tight() {
        let s = Scenario::paper_default(1).with_deadline(Seconds::minutes(9.0));
        for j in s.build_jobs() {
            // Even the 9-minute deadline is meetable at peak frequency...
            assert!(
                j.total_work <= s.deadline.0,
                "{} infeasible even at peak",
                j.name
            );
            // ...but no job can idle: all need a substantial frequency.
            let needed = j.required_rate(Seconds::ZERO).unwrap();
            assert!(needed > 0.5, "{}: deadline not 'relatively tight'", j.name);
        }
    }

    #[test]
    fn deadline_sweep_keeps_the_workload_fixed() {
        // §VII-D varies only the deadline; the batch work is constant.
        let base = Scenario::paper_default(1);
        let short = base.clone().with_deadline(Seconds::minutes(9.0));
        let w_base: f64 = base.build_jobs().iter().map(|j| j.total_work).sum();
        let w_short: f64 = short.build_jobs().iter().map(|j| j.total_work).sum();
        assert_eq!(w_base, w_short);
    }

    #[test]
    fn determinism_same_seed_same_sim() {
        let a = Scenario::paper_default(9).build();
        let b = Scenario::paper_default(9).build();
        assert_eq!(a.tier.demand, b.tier.demand);
        assert_eq!(a.rack, b.rack);
    }
}
