//! Scenario description and builder: assembles the paper's evaluation
//! setup (§VI-A) — 16 servers, 3.2 kW breaker, 400 Wh UPS, Wikipedia-like
//! interactive burst, SPEC-like batch jobs with minute-scale deadlines —
//! into a ready [`RackSim`].
//!
//! Construction goes through [`ScenarioBuilder`], which validates the
//! parameters at [`ScenarioBuilder::build`] and returns a typed
//! [`ScenarioError`] instead of panicking mid-run. The canonical §VI-A
//! setup stays a one-liner: [`Scenario::paper_default`].

use crate::engine::{RackSim, Substepping};
use powersim::breaker::BreakerSpec;
use powersim::faults::FaultPlan;
use powersim::grid::{GridPlan, GridPlanError};
use powersim::server::ServerSpec;
use powersim::units::Seconds;
use powersim::ups::UpsSpec;
use workloads::batch::BatchJob;
use workloads::open_loop::{DemandModel, WorkloadError, WorkloadSource};
use workloads::spec_profiles::paper_batch_mix;
use workloads::wiki_trace::WikiTraceConfig;

/// Everything that disturbs the closed loop from outside the controller:
/// measurement noise plus the injected fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Disturbances {
    /// Power-monitor relative noise (σ as a fraction of the reading).
    pub monitor_rel_sigma: f64,
    /// Power-monitor absolute noise floor (σ in watts).
    pub monitor_abs_sigma: f64,
    /// Injected faults (sensor/actuator/storage/breaker/server).
    pub faults: FaultPlan,
}

impl Disturbances {
    /// The paper's nominal monitoring noise, no faults.
    pub fn paper_default() -> Self {
        Disturbances {
            monitor_rel_sigma: 0.005,
            monitor_abs_sigma: 5.0,
            faults: FaultPlan::none(),
        }
    }

    /// A perfectly clean loop: noiseless monitor, no faults.
    pub fn none() -> Self {
        Disturbances {
            monitor_rel_sigma: 0.0,
            monitor_abs_sigma: 0.0,
            faults: FaultPlan::none(),
        }
    }
}

/// Why a scenario failed validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// `dt` must be positive and finite.
    NonPositiveDt(f64),
    /// `duration` must be positive and finite.
    NonPositiveDuration(f64),
    /// The batch deadline cannot exceed the run duration.
    DeadlineBeyondDuration {
        deadline: Seconds,
        duration: Seconds,
    },
    /// At least one server is required.
    NoServers,
    /// Interactive cores must leave at least one batch core per server.
    NoBatchCores {
        cores_per_server: usize,
        interactive: usize,
    },
    /// The breaker cannot even carry the fleet's idle draw.
    BreakerBelowIdle {
        rated: powersim::units::Watts,
        idle: powersim::units::Watts,
    },
    /// Job scaling must be positive and finite.
    InvalidJobScale(f64),
    /// Monitor noise parameters must be finite and non-negative.
    InvalidMonitorNoise { rel: f64, abs: f64 },
    /// Multirate substepping needs at least one substep per period.
    InvalidSubstepCount(u32),
    /// The workload source failed its own validation.
    Workload(WorkloadError),
    /// The grid-event plan failed its own validation.
    Grid(GridPlanError),
}

impl From<WorkloadError> for ScenarioError {
    fn from(e: WorkloadError) -> Self {
        ScenarioError::Workload(e)
    }
}

impl From<GridPlanError> for ScenarioError {
    fn from(e: GridPlanError) -> Self {
        ScenarioError::Grid(e)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NonPositiveDt(dt) => {
                write!(f, "control period dt must be positive and finite, got {dt}")
            }
            ScenarioError::NonPositiveDuration(d) => {
                write!(f, "run duration must be positive and finite, got {d}")
            }
            ScenarioError::DeadlineBeyondDuration { deadline, duration } => write!(
                f,
                "batch deadline {deadline} exceeds run duration {duration}"
            ),
            ScenarioError::NoServers => write!(f, "scenario needs at least one server"),
            ScenarioError::NoBatchCores {
                cores_per_server,
                interactive,
            } => write!(
                f,
                "{interactive} interactive cores leave no batch cores on a \
                 {cores_per_server}-core server"
            ),
            ScenarioError::BreakerBelowIdle { rated, idle } => write!(
                f,
                "breaker rated at {rated} cannot carry the fleet's idle draw of {idle}"
            ),
            ScenarioError::InvalidJobScale(s) => {
                write!(f, "job_scale must be positive and finite, got {s}")
            }
            ScenarioError::InvalidMonitorNoise { rel, abs } => write!(
                f,
                "monitor noise sigmas must be finite and non-negative, got rel={rel} abs={abs}"
            ),
            ScenarioError::InvalidSubstepCount(k) => {
                write!(f, "multirate substepping needs >= 1 substep, got {k}")
            }
            ScenarioError::Workload(e) => write!(f, "workload source: {e}"),
            ScenarioError::Grid(e) => write!(f, "grid plan: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A fully-parameterized experiment scenario.
///
/// Fields are public for cheap tweaking between runs (sweeps mutate
/// `duration`, `seed`, …); validation happens when a simulation is
/// assembled ([`Scenario::try_build`]) or explicitly via
/// [`Scenario::validate`].
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    /// Run length (the paper's sprinting process: 15 minutes).
    pub duration: Seconds,
    /// Control/simulation period.
    pub dt: Seconds,
    /// Batch deadline (9/12/15 minutes in §VII-D).
    pub deadline: Seconds,
    /// Scale applied to each benchmark's nominal (peak-frequency) runtime
    /// when sizing its work. The workload is *fixed* across the deadline
    /// sweep — only the deadline moves, as in §VII-D — so tight deadlines
    /// force high frequencies and loose ones allow throttling.
    pub job_scale: f64,
    /// What drives the interactive tier: the closed-loop utilization
    /// trace ([`WorkloadSource::UtilTrace`], today's behavior) or the
    /// open-loop request-queueing model ([`WorkloadSource::OpenLoop`]).
    pub workload: WorkloadSource,
    /// Plant description.
    pub server: ServerSpec,
    pub num_servers: usize,
    pub interactive_cores_per_server: usize,
    pub breaker: BreakerSpec,
    pub ups: UpsSpec,
    /// Measurement noise and injected faults.
    pub disturbances: Disturbances,
    /// Grid events (curtailment / price spikes / frequency regulation)
    /// replayed against the run; [`GridPlan::none`] leaves the loop
    /// bit-identical to a grid-unaware build.
    pub grid: GridPlan,
    /// Batch jobs restart on completion (continuous processing), vs
    /// one-shot jobs with deadlines.
    pub repeat_jobs: bool,
    /// Electrical substepping scheme for the breaker/UPS feed (see
    /// [`Substepping`]); [`Substepping::Exact`] reproduces the committed
    /// golden digests bit-for-bit.
    pub substepping: Substepping,
}

impl Scenario {
    /// Start from the §VI-A paper defaults and customize from there.
    pub fn builder(seed: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(seed)
    }

    /// The §VI-A evaluation scenario with a 12-minute batch deadline.
    pub fn paper_default(seed: u64) -> Self {
        // Invariant: the builder's defaults are the paper's §VI-A values,
        // which satisfy every validation rule.
        Scenario::builder(seed)
            .build()
            .expect("paper-default scenario is valid by construction")
    }

    /// Same scenario with a different deadline (Fig. 8 sweep).
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = deadline;
        self
    }

    /// Batch cores per server.
    pub fn batch_cores_per_server(&self) -> usize {
        self.server.num_cores - self.interactive_cores_per_server
    }

    /// Approximate idle draw of the fleet (used by validation to reject
    /// breakers that could never close).
    fn idle_power(&self) -> powersim::units::Watts {
        powersim::units::Watts(self.server.idle_watts * self.num_servers as f64)
    }

    /// Check every structural constraint; [`ScenarioBuilder::build`] and
    /// [`Scenario::try_build`] call this.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.dt.0 > 0.0 && self.dt.0.is_finite()) {
            return Err(ScenarioError::NonPositiveDt(self.dt.0));
        }
        if !(self.duration.0 > 0.0 && self.duration.0.is_finite()) {
            return Err(ScenarioError::NonPositiveDuration(self.duration.0));
        }
        if self.num_servers == 0 {
            return Err(ScenarioError::NoServers);
        }
        if self.interactive_cores_per_server >= self.server.num_cores {
            return Err(ScenarioError::NoBatchCores {
                cores_per_server: self.server.num_cores,
                interactive: self.interactive_cores_per_server,
            });
        }
        let idle = self.idle_power();
        if self.breaker.rated.0 < idle.0 {
            return Err(ScenarioError::BreakerBelowIdle {
                rated: self.breaker.rated,
                idle,
            });
        }
        if !(self.job_scale > 0.0 && self.job_scale.is_finite()) {
            return Err(ScenarioError::InvalidJobScale(self.job_scale));
        }
        let (rel, abs) = (
            self.disturbances.monitor_rel_sigma,
            self.disturbances.monitor_abs_sigma,
        );
        if !(rel.is_finite() && abs.is_finite() && rel >= 0.0 && abs >= 0.0) {
            return Err(ScenarioError::InvalidMonitorNoise { rel, abs });
        }
        if let Substepping::Multirate { substeps: 0 } = self.substepping {
            return Err(ScenarioError::InvalidSubstepCount(0));
        }
        self.workload.validate()?;
        self.grid.validate()?;
        Ok(())
    }

    /// Build the batch jobs (rack batch-core order: server-major).
    pub fn build_jobs(&self) -> Vec<BatchJob> {
        let mix = paper_batch_mix(self.num_servers, self.batch_cores_per_server());
        let mut jobs = Vec::new();
        for server_profiles in mix {
            for profile in server_profiles {
                let model = profile.progress_model();
                let work = profile.nominal_runtime_s * self.job_scale;
                let mut job = BatchJob::new(profile.name, model, work, self.deadline);
                if self.repeat_jobs {
                    job = job.repeating();
                }
                jobs.push(job);
            }
        }
        jobs
    }

    /// Validate and assemble the simulation.
    pub fn try_build(&self) -> Result<RackSim, ScenarioError> {
        RackSim::from_scenario(self)
    }

    /// Assemble the simulation, panicking on an invalid scenario.
    ///
    /// Sweeps and figure binaries that start from [`Scenario::paper_default`]
    /// use this; code taking scenario parameters from outside should
    /// prefer [`Scenario::try_build`].
    pub fn build(&self) -> RackSim {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }
}

/// Builder for [`Scenario`], seeded with the paper's §VI-A defaults.
///
/// ```
/// use powersim::units::Seconds;
/// use simkit::Scenario;
///
/// let scenario = Scenario::builder(7)
///     .duration(Seconds::minutes(6.0))
///     .deadline(Seconds::minutes(5.0))
///     .build()
///     .expect("valid scenario");
/// assert_eq!(scenario.num_servers, 16);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    inner: Scenario,
}

impl ScenarioBuilder {
    /// Paper defaults (§VI-A) under the given seed.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            inner: Scenario {
                seed,
                duration: Seconds::minutes(15.0),
                dt: Seconds(1.0),
                deadline: Seconds::minutes(12.0),
                job_scale: 0.9,
                workload: WorkloadSource::paper_default(),
                server: ServerSpec::paper_default(),
                num_servers: 16,
                interactive_cores_per_server: 4,
                breaker: BreakerSpec::paper_default(),
                ups: UpsSpec::paper_default(),
                disturbances: Disturbances::paper_default(),
                grid: GridPlan::none(),
                // §VI-A: "the batch workloads are processed repeatedly and
                // continuously ... until the workload is run for 15 minutes".
                repeat_jobs: true,
                substepping: Substepping::Exact,
            },
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    pub fn duration(mut self, duration: Seconds) -> Self {
        self.inner.duration = duration;
        self
    }

    pub fn dt(mut self, dt: Seconds) -> Self {
        self.inner.dt = dt;
        self
    }

    pub fn deadline(mut self, deadline: Seconds) -> Self {
        self.inner.deadline = deadline;
        self
    }

    pub fn job_scale(mut self, scale: f64) -> Self {
        self.inner.job_scale = scale;
        self
    }

    /// Set the workload source driving the interactive tier.
    pub fn workload(mut self, workload: WorkloadSource) -> Self {
        self.inner.workload = workload;
        self
    }

    /// One-release shim for the pre-redesign API; equivalent to
    /// `workload(WorkloadSource::UtilTrace(DemandModel::Wiki(wiki)))`.
    #[deprecated(
        since = "0.8.0",
        note = "use `workload(WorkloadSource::UtilTrace(DemandModel::Wiki(..)))` instead"
    )]
    pub fn wiki(self, wiki: WikiTraceConfig) -> Self {
        self.workload(WorkloadSource::UtilTrace(DemandModel::Wiki(wiki)))
    }

    pub fn server(mut self, server: ServerSpec) -> Self {
        self.inner.server = server;
        self
    }

    pub fn num_servers(mut self, n: usize) -> Self {
        self.inner.num_servers = n;
        self
    }

    pub fn interactive_cores_per_server(mut self, n: usize) -> Self {
        self.inner.interactive_cores_per_server = n;
        self
    }

    pub fn breaker(mut self, breaker: BreakerSpec) -> Self {
        self.inner.breaker = breaker;
        self
    }

    pub fn ups(mut self, ups: UpsSpec) -> Self {
        self.inner.ups = ups;
        self
    }

    pub fn disturbances(mut self, disturbances: Disturbances) -> Self {
        self.inner.disturbances = disturbances;
        self
    }

    /// Set just the monitor-noise sigmas, keeping the fault plan.
    pub fn monitor_noise(mut self, rel_sigma: f64, abs_sigma: f64) -> Self {
        self.inner.disturbances.monitor_rel_sigma = rel_sigma;
        self.inner.disturbances.monitor_abs_sigma = abs_sigma;
        self
    }

    /// Set the injected fault schedule, keeping the noise sigmas.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.inner.disturbances.faults = plan;
        self
    }

    /// Set the grid-event schedule (curtailment / price / regulation).
    pub fn grid(mut self, plan: GridPlan) -> Self {
        self.inner.grid = plan;
        self
    }

    pub fn repeat_jobs(mut self, repeat: bool) -> Self {
        self.inner.repeat_jobs = repeat;
        self
    }

    /// Electrical substepping scheme for the feed (default
    /// [`Substepping::Exact`]).
    pub fn substepping(mut self, substepping: Substepping) -> Self {
        self.inner.substepping = substepping;
        self
    }

    /// Validate and return the scenario.
    ///
    /// On top of [`Scenario::validate`], the builder also rejects a
    /// deadline beyond the run: a freshly-assembled scenario whose jobs
    /// can never be judged is a configuration mistake. (Hand-mutated
    /// scenarios may still shorten `duration` for quick runs without
    /// touching the deadline — common in tests — so `validate` itself
    /// leaves that combination alone.)
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.inner.deadline.0 > self.inner.duration.0 {
            return Err(ScenarioError::DeadlineBeyondDuration {
                deadline: self.inner.deadline,
                duration: self.inner.duration,
            });
        }
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::cpu::CoreRole;
    use powersim::units::Watts;

    #[test]
    fn paper_scenario_builds_the_documented_plant() {
        let s = Scenario::paper_default(1);
        let sim = s.build();
        assert_eq!(sim.rack.num_servers(), 16);
        assert_eq!(sim.rack.count_role(CoreRole::Interactive), 64);
        assert_eq!(sim.rack.count_role(CoreRole::Batch), 64);
        assert_eq!(sim.jobs.len(), 64);
        assert_eq!(sim.feed.breaker.spec.rated.0, 3200.0);
        assert_eq!(sim.feed.ups.spec.capacity.0, 400.0);
    }

    #[test]
    fn jobs_follow_the_benchmark_mix() {
        let s = Scenario::paper_default(1);
        let jobs = s.build_jobs();
        // Server 0 runs CINT, server 1 CFP (§VI-A placement).
        assert_eq!(jobs[0].name, "400.perlbench");
        assert_eq!(jobs[3].name, "429.mcf");
        assert_eq!(jobs[4].name, "433.milc");
        // All share the deadline.
        assert!(jobs.iter().all(|j| j.deadline == Seconds(720.0)));
    }

    #[test]
    fn job_sizing_is_feasible_but_tight() {
        let s = Scenario::paper_default(1).with_deadline(Seconds::minutes(9.0));
        for j in s.build_jobs() {
            // Even the 9-minute deadline is meetable at peak frequency...
            assert!(
                j.total_work <= s.deadline.0,
                "{} infeasible even at peak",
                j.name
            );
            // ...but no job can idle: all need a substantial frequency.
            let needed = j.required_rate(Seconds::ZERO).unwrap();
            assert!(needed > 0.5, "{}: deadline not 'relatively tight'", j.name);
        }
    }

    #[test]
    fn deadline_sweep_keeps_the_workload_fixed() {
        // §VII-D varies only the deadline; the batch work is constant.
        let base = Scenario::paper_default(1);
        let short = base.clone().with_deadline(Seconds::minutes(9.0));
        let w_base: f64 = base.build_jobs().iter().map(|j| j.total_work).sum();
        let w_short: f64 = short.build_jobs().iter().map(|j| j.total_work).sum();
        assert_eq!(w_base, w_short);
    }

    #[test]
    fn determinism_same_seed_same_sim() {
        let a = Scenario::paper_default(9).build();
        let b = Scenario::paper_default(9).build();
        assert_eq!(a.tier.demand(), b.tier.demand());
        assert_eq!(a.rack, b.rack);
    }

    #[test]
    fn builder_rejects_deadline_beyond_duration() {
        let err = Scenario::builder(1)
            .duration(Seconds::minutes(10.0))
            .deadline(Seconds::minutes(12.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DeadlineBeyondDuration { .. }));
    }

    #[test]
    fn builder_rejects_degenerate_plants() {
        assert!(matches!(
            Scenario::builder(1).dt(Seconds(0.0)).build().unwrap_err(),
            ScenarioError::NonPositiveDt(_)
        ));
        assert!(matches!(
            Scenario::builder(1).num_servers(0).build().unwrap_err(),
            ScenarioError::NoServers
        ));
        assert!(matches!(
            Scenario::builder(1)
                .interactive_cores_per_server(8)
                .build()
                .unwrap_err(),
            ScenarioError::NoBatchCores { .. }
        ));
        assert!(matches!(
            Scenario::builder(1)
                .breaker(BreakerSpec::calibrated(
                    Watts(100.0),
                    1.25,
                    Seconds(150.0),
                    Seconds(300.0)
                ))
                .build()
                .unwrap_err(),
            ScenarioError::BreakerBelowIdle { .. }
        ));
        assert!(matches!(
            Scenario::builder(1).job_scale(0.0).build().unwrap_err(),
            ScenarioError::InvalidJobScale(_)
        ));
        assert!(matches!(
            Scenario::builder(1)
                .monitor_noise(f64::NAN, 5.0)
                .build()
                .unwrap_err(),
            ScenarioError::InvalidMonitorNoise { .. }
        ));
    }

    #[test]
    fn builder_rejects_invalid_grid_plans() {
        use powersim::grid::GridEventKind;
        let bad = GridPlan::none().with_event(
            Seconds(10.0),
            Seconds(30.0),
            GridEventKind::PriceSpike { multiplier: 0.5 },
        );
        let err = Scenario::builder(1).grid(bad).build().unwrap_err();
        assert!(matches!(err, ScenarioError::Grid(_)));
        assert!(err.to_string().contains("grid plan"), "{err}");
    }

    #[test]
    fn try_build_surfaces_errors_from_mutated_scenarios() {
        let mut sc = Scenario::paper_default(1);
        sc.duration = Seconds(-1.0);
        let err = sc.try_build().err().expect("negative duration must fail");
        assert!(matches!(err, ScenarioError::NonPositiveDuration(_)));
        // Errors render a human-readable message.
        assert!(err.to_string().contains("duration"));
    }

    #[test]
    fn errors_display_their_parameters() {
        let e = ScenarioError::DeadlineBeyondDuration {
            deadline: Seconds(900.0),
            duration: Seconds(600.0),
        };
        let msg = e.to_string();
        assert!(msg.contains("deadline"), "{msg}");
    }
}
