//! Typed policy mode labels.
//!
//! Every policy used to publish its internal mode as a `&'static str`,
//! which made the recorder and event log stringly-typed (a typo in one
//! label silently broke event matching). [`ModeLabel`] is the closed set
//! of modes any shipped policy can be in: the four SprintCon supervisor
//! modes (§IV-C) plus the SGCT schedule phases and the fixed test
//! policy. `Display` renders exactly the strings the old API used, so
//! CSV exports and trace files are unchanged.

use sprintcon::SprintMode;

/// A policy's internal mode, as recorded per control period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeLabel {
    /// SprintCon: normal sprinting ([`SprintMode::Sprinting`]).
    Sprint,
    /// SprintCon: breaker protection ([`SprintMode::CbProtect`]).
    CbProtect,
    /// SprintCon: UPS conservation ([`SprintMode::UpsConserve`]).
    UpsConserve,
    /// SprintCon: sprint over ([`SprintMode::Ended`]).
    Ended,
    /// SprintCon: grid-forced un-sprint ([`SprintMode::GridCurtail`]).
    GridCurtail,
    /// SGCT schedule in its overload phase.
    Overload,
    /// SGCT schedule in its recovery phase.
    Recover,
    /// Fixed (open-loop) test policy.
    Fixed,
}

impl ModeLabel {
    /// The canonical short string (identical to the pre-enum labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            ModeLabel::Sprint => "sprint",
            ModeLabel::CbProtect => "cb-protect",
            ModeLabel::UpsConserve => "ups-conserve",
            ModeLabel::Ended => "ended",
            ModeLabel::GridCurtail => "grid-curtail",
            ModeLabel::Overload => "overload",
            ModeLabel::Recover => "recover",
            ModeLabel::Fixed => "fixed",
        }
    }

    /// The label belongs to the SprintCon supervisor ladder.
    pub fn is_sprintcon(&self) -> bool {
        matches!(
            self,
            ModeLabel::Sprint
                | ModeLabel::CbProtect
                | ModeLabel::UpsConserve
                | ModeLabel::Ended
                | ModeLabel::GridCurtail
        )
    }
}

impl std::fmt::Display for ModeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<SprintMode> for ModeLabel {
    fn from(m: SprintMode) -> Self {
        match m {
            SprintMode::Sprinting => ModeLabel::Sprint,
            SprintMode::CbProtect => ModeLabel::CbProtect,
            SprintMode::UpsConserve => ModeLabel::UpsConserve,
            SprintMode::Ended => ModeLabel::Ended,
            SprintMode::GridCurtail => ModeLabel::GridCurtail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_legacy_strings() {
        let pairs = [
            (ModeLabel::Sprint, "sprint"),
            (ModeLabel::CbProtect, "cb-protect"),
            (ModeLabel::UpsConserve, "ups-conserve"),
            (ModeLabel::Ended, "ended"),
            (ModeLabel::GridCurtail, "grid-curtail"),
            (ModeLabel::Overload, "overload"),
            (ModeLabel::Recover, "recover"),
            (ModeLabel::Fixed, "fixed"),
        ];
        for (label, s) in pairs {
            assert_eq!(label.to_string(), s);
            assert_eq!(label.as_str(), s);
        }
    }

    #[test]
    fn sprint_modes_convert_losslessly() {
        let modes = [
            SprintMode::Sprinting,
            SprintMode::CbProtect,
            SprintMode::UpsConserve,
            SprintMode::Ended,
            SprintMode::GridCurtail,
        ];
        for m in modes {
            let label = ModeLabel::from(m);
            assert!(label.is_sprintcon());
            // The supervisor's own label and the sim-side label agree.
            assert_eq!(label.as_str(), m.label());
        }
        assert!(!ModeLabel::Overload.is_sprintcon());
        assert!(!ModeLabel::Fixed.is_sprintcon());
    }
}
