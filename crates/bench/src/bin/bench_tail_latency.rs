//! Tail-latency benchmark for the open-loop request-queueing path:
//! proves the PR-level claims about the typed workload-source API and
//! emits them as `BENCH_tail_latency.json`.
//!
//! 1. **Separation** — under a Markov-modulated flash crowd served
//!    open-loop, SprintCon (interactive cores pinned at peak frequency)
//!    must beat the frequency-throttling SGCT baseline on request p99
//!    and drop fraction. This is the paper's latency argument made
//!    request-level instead of backlog-proxy-level.
//! 2. **Determinism** — open-loop campaign digests must be
//!    bit-identical between sequential and parallel execution (the
//!    queueing state and latency sketches are rack-private).
//! 3. **UtilTrace equivalence** — the deprecated `wiki()` builder shim
//!    and the typed `workload(WorkloadSource::UtilTrace(..))` call must
//!    produce bit-identical closed-loop trajectories.
//!
//! Flags: `--secs N` simulated seconds (default 180), `--seed N`
//! (default 2019), `--out PATH` (default `BENCH_tail_latency.json`),
//! `--check` CI gate mode (exit 1 on any gate failure).

use powersim::units::Seconds;
use simkit::{
    qos_report, run_digest, run_policy, Campaign, DemandModel, ExecConfig, PolicyKind, QosReport,
    Scenario, WorkloadSource,
};
use std::time::Instant;
use workloads::wiki_trace::WikiTraceConfig;

struct Args {
    secs: f64,
    seed: u64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 180.0,
        seed: 2019,
        out: "BENCH_tail_latency.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed expects an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_tail_latency [--secs N] [--seed N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// The §VI-A rack serving an open-loop flash crowd: MMPP arrivals over
/// the paper-default service model, sized so peak demand saturates the
/// interactive cores at peak frequency.
fn flash_crowd_scenario(seed: u64, secs: f64) -> Scenario {
    let mut sc = Scenario::paper_default(seed);
    sc.workload = WorkloadSource::open_loop_flash_crowd();
    sc.duration = Seconds(secs);
    sc
}

struct PolicyTail {
    policy: &'static str,
    qos: QosReport,
}

/// Run one policy over the flash crowd and pull its request tail.
fn tail_for(kind: PolicyKind, seed: u64, secs: f64) -> PolicyTail {
    let out = run_policy(&flash_crowd_scenario(seed, secs), kind);
    PolicyTail {
        policy: kind.name(),
        qos: qos_report(&out.recorder, &[0.1, 0.25, 1.0]),
    }
}

/// Gate 1: SprintCon's peak-pinned interactive cores must show a
/// strictly better request tail than frequency-throttling SGCT.
fn separation_gate(sc: &PolicyTail, sgct: &PolicyTail) -> Result<(), String> {
    let (a, b) = (&sc.qos, &sgct.qos);
    let (pa, pb) = (
        a.request_p99_s.ok_or("SprintCon run has no tail")?,
        b.request_p99_s.ok_or("SGCT run has no tail")?,
    );
    if pa >= pb {
        return Err(format!(
            "no p99 separation: SprintCon {pa:.4}s vs SGCT {pb:.4}s"
        ));
    }
    let (da, db) = (
        a.drop_fraction.ok_or("SprintCon run has no drops field")?,
        b.drop_fraction.ok_or("SGCT run has no drops field")?,
    );
    if da > db {
        return Err(format!(
            "SprintCon drops more than SGCT: {da:.5} vs {db:.5}"
        ));
    }
    Ok(())
}

/// Gate 2: open-loop campaigns shard bit-identically.
fn determinism_gate(seed: u64) -> Result<(), String> {
    let mut c = Campaign::new();
    c.add(flash_crowd_scenario(seed, 60.0), PolicyKind::SprintCon);
    c.add(flash_crowd_scenario(seed + 1, 60.0), PolicyKind::Sgct);
    c.add(flash_crowd_scenario(seed + 2, 45.0), PolicyKind::SgctV2);
    let seq = c.run_sequential();
    for jobs in [2usize, 4, 0] {
        let par = c.run_with(ExecConfig::jobs(jobs));
        for (p, s) in par.iter().zip(&seq) {
            if p.digest() != s.digest() {
                return Err(format!(
                    "jobs={jobs}: {} digest 0x{:016x} != sequential 0x{:016x}",
                    p.label,
                    p.digest(),
                    s.digest()
                ));
            }
        }
    }
    Ok(())
}

/// Gate 3: the deprecated `wiki()` shim and the typed `workload()` call
/// build bit-identical closed-loop runs.
#[allow(deprecated)]
fn equivalence_gate(seed: u64) -> Result<(), String> {
    let via_shim = Scenario::builder(seed)
        .duration(Seconds(90.0))
        .deadline(Seconds(75.0))
        .wiki(WikiTraceConfig::paper_default())
        .build()
        .map_err(|e| e.to_string())?;
    let via_typed = Scenario::builder(seed)
        .duration(Seconds(90.0))
        .deadline(Seconds(75.0))
        .workload(WorkloadSource::UtilTrace(DemandModel::Wiki(
            WikiTraceConfig::paper_default(),
        )))
        .build()
        .map_err(|e| e.to_string())?;
    let a = run_digest(&run_policy(&via_shim, PolicyKind::SprintCon));
    let b = run_digest(&run_policy(&via_typed, PolicyKind::SprintCon));
    if a != b {
        return Err(format!(
            "wiki() shim digest 0x{a:016x} != workload() digest 0x{b:016x}"
        ));
    }
    Ok(())
}

fn policy_json(t: &PolicyTail) -> String {
    let q = &t.qos;
    let attain: Vec<String> = q
        .per_slo
        .iter()
        .map(|a| {
            format!(
                "{{\"slo_s\": {}, \"attainment\": {:.4}}}",
                a.slo_delay_s, a.attainment
            )
        })
        .collect();
    format!(
        "{{\n    \"policy\": \"{}\",\n    \"request_p99_s\": {:.6},\n    \
         \"drop_fraction\": {:.6},\n    \"backlog_p99_s\": {:.4},\n    \
         \"slo_attainment\": [{}]\n  }}",
        t.policy,
        q.request_p99_s.unwrap_or(f64::NAN),
        q.drop_fraction.unwrap_or(f64::NAN),
        q.p99_delay_s,
        attain.join(", "),
    )
}

fn main() {
    let args = parse_args();
    println!(
        "bench_tail_latency: flash crowd, seed {} x {}s",
        args.seed, args.secs
    );

    println!("determinism gate (open-loop campaign, seq vs 2/4/all workers)...");
    if let Err(e) = determinism_gate(args.seed) {
        eprintln!("DETERMINISM VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: open-loop digests bit-identical across worker counts");

    println!("UtilTrace equivalence gate (wiki() shim vs typed workload())...");
    if let Err(e) = equivalence_gate(args.seed) {
        eprintln!("EQUIVALENCE VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: deprecated shim reproduces the typed-API digest");

    println!("tail separation run: SprintCon vs SGCT under the flash crowd...");
    let t0 = Instant::now();
    let tails: Vec<PolicyTail> = [PolicyKind::SprintCon, PolicyKind::Sgct, PolicyKind::SgctV2]
        .into_iter()
        .map(|k| tail_for(k, args.seed, args.secs))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    for t in &tails {
        println!(
            "  {:<10} p99 {:>8.4}s  drops {:>7.4}%  SLO(0.25s) {:>5.1}%",
            t.policy,
            t.qos.request_p99_s.unwrap_or(f64::NAN),
            t.qos.drop_fraction.unwrap_or(f64::NAN) * 100.0,
            t.qos.per_slo[1].attainment * 100.0,
        );
    }
    if let Err(e) = separation_gate(&tails[0], &tails[1]) {
        eprintln!("SEPARATION VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: SprintCon beats SGCT on request p99 without extra drops");

    let rows: Vec<String> = tails.iter().map(policy_json).collect();
    let json = format!(
        "{{\n  \"seed\": {},\n  \"secs\": {},\n  \"wall_secs\": {:.3},\n  \
         \"policies\": [{}\n  ],\n  \"determinism\": \"pass\",\n  \
         \"util_trace_equivalence\": \"pass\",\n  \"separation\": \"pass\"\n}}\n",
        args.seed,
        args.secs,
        wall,
        rows.iter()
            .map(|r| format!("\n  {r}"))
            .collect::<Vec<_>>()
            .join(","),
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("json: {}", args.out);
    if args.check_only {
        println!("bench_tail_latency --check: all gates passed");
    }
}
