//! Datacenter-engine benchmark: proves the PR-level scaling and
//! determinism claims for the feeder → PDU → rack hierarchy and emits
//! them as `BENCH_datacenter.json`.
//!
//! 1. **Scale** — wall-clock of a 1000-rack × 60 simulated-second
//!    campaign (one full SprintCon stack per rack, two-level headroom
//!    market at every allocator boundary) under the full worker pool.
//!    The CI gate requires this under 5 minutes.
//! 2. **Determinism** — the FNV datacenter digest (per-rack run
//!    digests, market grants, tree outcomes) must be bit-identical
//!    between sequential and parallel execution, including under an
//!    active fault plan.
//! 3. **Single-rack equivalence** — a 1-PDU × 1-rack tree with an ample
//!    edge rating must reproduce the standalone single-rack engine's
//!    run digest exactly (grants are bit-transparent ceilings).
//! 4. **Conservation** — at every supervisor boundary, Σ rack grants ≤
//!    feeder headroom and each PDU's member grants ≤ its cap.
//!
//! Flags: `--racks N` floor size (default 1000), `--secs N` simulated
//! seconds (default 60), `--out PATH` (default `BENCH_datacenter.json`),
//! `--check` CI gate mode (exit 1 on any gate failure).

use powersim::datacenter::DatacenterTopology;
use powersim::faults::FaultPlan;
use powersim::units::{Seconds, Watts};
use simkit::{
    run_datacenter, run_digest, run_policy, DcRunOutput, DcScenario, ExecConfig, PolicyKind,
    Scenario,
};
use std::time::Instant;

struct Args {
    racks: usize,
    secs: f64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        racks: 1000,
        secs: 60.0,
        out: "BENCH_datacenter.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--racks" => {
                let v = it.next().expect("--racks needs a value");
                args.racks = v.parse().expect("--racks expects a count");
            }
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_datacenter [--racks N] [--secs N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.racks > 0, "--racks must be positive");
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// A floor of `racks` racks in PDUs of (up to) 50, with per-PDU headroom
/// for a fifth of the members' overload swings and feeder headroom for
/// half of the PDU headrooms — scarce enough that both market levels
/// genuinely ration.
fn floor_topology(racks: usize) -> DatacenterTopology {
    let per_pdu = racks.min(50);
    let pdus = racks.div_ceil(per_pdu);
    let pdu_rating = per_pdu as f64 * 3200.0 + (per_pdu as f64 * 800.0 / 5.0).max(800.0);
    let feeder_rating = (pdus * per_pdu) as f64 * 3200.0
        + (pdus as f64 * (per_pdu as f64 * 800.0 / 5.0).max(800.0) / 2.0).max(800.0);
    let mut topo = DatacenterTopology::uniform(
        pdus,
        per_pdu,
        Watts(pdu_rating),
        Watts(feeder_rating.max(pdu_rating)),
    )
    .expect("floor topology is valid");
    let extra = pdus * per_pdu - racks;
    if extra > 0 {
        let last = topo.pdus.len() - 1;
        topo.pdus[last].num_racks -= extra;
    }
    topo
}

fn base_scenario(seed: u64, secs: f64, faults: bool) -> Scenario {
    let mut sc = if faults {
        Scenario::builder(seed)
            .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)))
            .build()
            .expect("fault scenario is valid")
    } else {
        Scenario::paper_default(seed)
    };
    sc.duration = Seconds(secs);
    sc
}

/// Σ grants ≤ budget at every boundary, feeder- and PDU-level.
fn conserves(out: &DcRunOutput) -> bool {
    out.rounds.iter().all(|round| {
        let total: f64 = round.grants.iter().map(|g| g.0).sum();
        if total > out.feeder_budget.0 + 1e-9 {
            return false;
        }
        out.pdu_caps.iter().enumerate().all(|(p, cap)| {
            let pdu_sum: f64 = round
                .grants
                .iter()
                .zip(&out.pdu_of)
                .filter(|(_, &q)| q == p)
                .map(|(g, _)| g.0)
                .sum();
            pdu_sum <= cap.0 + 1e-9
        })
    })
}

/// Gate 2+4: sequential vs parallel digest on a faulty mid-size floor.
fn determinism_gate() -> Result<(), String> {
    let dc = DcScenario::new(base_scenario(7, 90.0, true), floor_topology(24))
        .map_err(|e| e.to_string())?;
    let seq = run_datacenter(&dc, ExecConfig::sequential()).map_err(|e| e.to_string())?;
    if !conserves(&seq) {
        return Err("market overspent a tree-edge budget".into());
    }
    for jobs in [2usize, 4, 0] {
        let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).map_err(|e| e.to_string())?;
        if par.digest != seq.digest {
            return Err(format!(
                "jobs={jobs}: digest 0x{:016x} != sequential 0x{:016x}",
                par.digest, seq.digest
            ));
        }
    }
    Ok(())
}

/// Gate 3: single-rack datacenter == standalone engine, bit for bit.
fn equivalence_gate() -> Result<(), String> {
    let base = base_scenario(42, 90.0, false);
    let topo = DatacenterTopology::single_rack(Watts(4000.0)).map_err(|e| e.to_string())?;
    let dc = DcScenario::new(base.clone(), topo).map_err(|e| e.to_string())?;
    let out = run_datacenter(&dc, ExecConfig::sequential()).map_err(|e| e.to_string())?;
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    let (a, b) = (run_digest(&out.racks[0]), run_digest(&standalone));
    if a != b {
        return Err(format!(
            "single-rack datacenter digest 0x{a:016x} != standalone 0x{b:016x}"
        ));
    }
    Ok(())
}

/// Gate 1: the full-size campaign under the worker pool, timed.
fn scale_run(racks: usize, secs: f64) -> Result<(f64, DcRunOutput), String> {
    let dc = DcScenario::new(base_scenario(2019, secs, false), floor_topology(racks))
        .map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let out = run_datacenter(&dc, ExecConfig::parallel()).map_err(|e| e.to_string())?;
    Ok((t0.elapsed().as_secs_f64(), out))
}

fn main() {
    let args = parse_args();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "bench_datacenter: {cpus}-core host, {} racks x {}s",
        args.racks, args.secs
    );

    println!("determinism gate (24 faulty racks, seq vs 2/4/all workers)...");
    if let Err(e) = determinism_gate() {
        eprintln!("DETERMINISM VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: datacenter digest bit-identical across worker counts");

    println!("single-rack equivalence gate...");
    if let Err(e) = equivalence_gate() {
        eprintln!("EQUIVALENCE VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: 1-rack tree reproduces the standalone engine digest");

    println!(
        "scale run: {} racks x {}s on {cpus} worker(s)...",
        args.racks, args.secs
    );
    let (wall, out) = match scale_run(args.racks, args.secs) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("SCALE RUN FAILED: {e}");
            std::process::exit(1);
        }
    };
    let conserved = conserves(&out);
    println!(
        "  {:.1}s wall, digest 0x{:016x}, {} market rounds, peak feeder {:.0} W",
        wall,
        out.digest,
        out.rounds.len(),
        out.peak_feeder_load.0
    );
    if !conserved {
        eprintln!("CONSERVATION VIOLATION in the scale run");
        std::process::exit(1);
    }
    // CI budget: the acceptance bar is 5 minutes for 1000 x 60 s.
    let budget_secs = 300.0;
    if args.check_only && wall > budget_secs {
        eprintln!("SCALE GATE FAILED: {wall:.1}s > {budget_secs}s budget");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"racks\": {},\n  \"secs\": {},\n  \"cpus\": {},\n  \"wall_secs\": {:.3},\n  \
         \"digest\": \"0x{:016x}\",\n  \"market_rounds\": {},\n  \"peak_feeder_w\": {:.1},\n  \
         \"feeder_trip_periods\": {},\n  \"conserved\": {},\n  \"determinism\": \"pass\",\n  \
         \"single_rack_equivalence\": \"pass\"\n}}\n",
        args.racks,
        args.secs,
        cpus,
        wall,
        out.digest,
        out.rounds.len(),
        out.peak_feeder_load.0,
        out.feeder_trip_periods,
        conserved,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("json: {}", args.out);
    if args.check_only {
        println!("bench_datacenter --check: all gates passed");
    }
}
