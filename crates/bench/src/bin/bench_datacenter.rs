//! Datacenter-engine benchmark: proves the PR-level scaling and
//! determinism claims for the feeder → PDU → rack hierarchy and emits
//! them as `BENCH_datacenter.json`.
//!
//! 1. **Scale** — wall-clock and `rack_ticks_per_sec` of a 1000-rack ×
//!    60 simulated-second campaign (one full SprintCon stack per rack,
//!    two-level headroom market at every allocator boundary) under the
//!    full worker pool, in streaming retention by default. The CI gate
//!    requires this under 5 minutes. Peak resident memory is sampled
//!    from `/proc/self/status` `VmHWM` and an optional `--max-rss-mb`
//!    ceiling turns it into a hard gate (the nightly 10k-rack job uses
//!    this to prove streaming memory stays O(racks)).
//! 2. **Determinism** — the FNV datacenter digest (per-rack run
//!    digests, market grants, tree outcomes) must be bit-identical
//!    between sequential and parallel execution, including under an
//!    active fault plan.
//! 3. **Record-mode equivalence** — a streaming-retention run must
//!    reproduce the full-retention digest and per-rack digests bit for
//!    bit while actually discarding its per-period samples.
//! 4. **Single-rack equivalence** — a 1-PDU × 1-rack tree with an ample
//!    edge rating must reproduce the standalone single-rack engine's
//!    run digest exactly (grants are bit-transparent ceilings).
//! 5. **Conservation** — at every supervisor boundary, Σ rack grants ≤
//!    feeder headroom and each PDU's member grants ≤ its cap.
//! 6. **Tree replay** — the pre-rework per-tick replay (a fresh
//!    rack-power gather plus the allocating [`Datacenter::step`] every
//!    tick, replicated operation-for-operation) vs today's vectorized
//!    replay (epoch-contiguous per-PDU lane sums through the
//!    allocation-free [`Datacenter::step_pdu_loads`]), driven by an
//!    identical deterministic trace on clones of the same tree. An
//!    agreement check requires bit-identical feeder loads and trip
//!    counts; the timing is interleaved best-of-3, same methodology as
//!    the PR 5 substrate gate. `--check` enforces the speedup floor.
//!
//! Flags: `--racks N` floor size (default 1000), `--secs N` simulated
//! seconds (default 60), `--mode full|streaming` scale-run retention
//! (default streaming), `--max-rss-mb N` optional peak-RSS ceiling,
//! `--out PATH` (default `BENCH_datacenter.json`), `--check` CI gate
//! mode (exit 1 on any gate failure).

use powersim::datacenter::{Datacenter, DatacenterTopology};
use powersim::faults::FaultPlan;
use powersim::units::{Seconds, Watts};
use simkit::{
    run_datacenter, run_datacenter_with, run_digest, run_policy, DcRecordMode, DcRunOutput,
    DcScenario, ExecConfig, PolicyKind, Scenario,
};
use std::time::Instant;

/// CI floor for the vectorized-replay speedup over the pre-rework
/// per-tick gather. The committed baseline shows well above this; the
/// gate leaves slack for noisy 1-core CI runners.
const REPLAY_SPEEDUP_FLOOR: f64 = 2.0;

/// Ticks per market epoch in the replay benchmark — the engine's
/// paper-default `allocator_period / dt` (30 s / 1 s).
const EPOCH_TICKS: usize = 30;

struct Args {
    racks: usize,
    secs: f64,
    out: String,
    check_only: bool,
    mode: DcRecordMode,
    max_rss_mb: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        racks: 1000,
        secs: 60.0,
        out: "BENCH_datacenter.json".to_string(),
        check_only: false,
        mode: DcRecordMode::Streaming,
        max_rss_mb: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--racks" => {
                let v = it.next().expect("--racks needs a value");
                args.racks = v.parse().expect("--racks expects a count");
            }
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--mode" => {
                let v = it.next().expect("--mode needs full|streaming");
                args.mode = match v.as_str() {
                    "full" => DcRecordMode::Full,
                    "streaming" => DcRecordMode::Streaming,
                    other => panic!("--mode expects full|streaming, got {other}"),
                };
            }
            "--max-rss-mb" => {
                let v = it.next().expect("--max-rss-mb needs a value");
                args.max_rss_mb = Some(v.parse().expect("--max-rss-mb expects megabytes"));
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_datacenter [--racks N] [--secs N] [--mode full|streaming] \
                     [--max-rss-mb N] [--out PATH] [--check]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(args.racks > 0, "--racks must be positive");
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// `VmHWM` (kB). `None` off Linux — the JSON then carries 0 and the
/// `--max-rss-mb` gate refuses to pass vacuously.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// A floor of `racks` racks in PDUs of (up to) 50, with per-PDU headroom
/// for a fifth of the members' overload swings and feeder headroom for
/// half of the PDU headrooms — scarce enough that both market levels
/// genuinely ration.
fn floor_topology(racks: usize) -> DatacenterTopology {
    let per_pdu = racks.min(50);
    let pdus = racks.div_ceil(per_pdu);
    let pdu_rating = per_pdu as f64 * 3200.0 + (per_pdu as f64 * 800.0 / 5.0).max(800.0);
    let feeder_rating = (pdus * per_pdu) as f64 * 3200.0
        + (pdus as f64 * (per_pdu as f64 * 800.0 / 5.0).max(800.0) / 2.0).max(800.0);
    let mut topo = DatacenterTopology::uniform(
        pdus,
        per_pdu,
        Watts(pdu_rating),
        Watts(feeder_rating.max(pdu_rating)),
    )
    .expect("floor topology is valid");
    let extra = pdus * per_pdu - racks;
    if extra > 0 {
        let last = topo.pdus.len() - 1;
        topo.pdus[last].num_racks -= extra;
    }
    topo
}

fn base_scenario(seed: u64, secs: f64, faults: bool) -> Scenario {
    let mut sc = if faults {
        Scenario::builder(seed)
            .faults(FaultPlan::monitor_dropout(0.3, Seconds(8.0)))
            .build()
            .expect("fault scenario is valid")
    } else {
        Scenario::paper_default(seed)
    };
    sc.duration = Seconds(secs);
    sc
}

/// Σ grants ≤ budget at every boundary, feeder- and PDU-level.
fn conserves(out: &DcRunOutput) -> bool {
    out.rounds.iter().all(|round| {
        let total: f64 = round.grants.iter().map(|g| g.0).sum();
        if total > out.feeder_budget.0 + 1e-9 {
            return false;
        }
        out.pdu_caps.iter().enumerate().all(|(p, cap)| {
            let pdu_sum: f64 = round
                .grants
                .iter()
                .zip(&out.pdu_of)
                .filter(|(_, &q)| q == p)
                .map(|(g, _)| g.0)
                .sum();
            pdu_sum <= cap.0 + 1e-9
        })
    })
}

/// Gate 2+5: sequential vs parallel digest on a faulty mid-size floor.
fn determinism_gate() -> Result<(), String> {
    let dc = DcScenario::new(base_scenario(7, 90.0, true), floor_topology(24))
        .map_err(|e| e.to_string())?;
    let seq = run_datacenter(&dc, ExecConfig::sequential()).map_err(|e| e.to_string())?;
    if !conserves(&seq) {
        return Err("market overspent a tree-edge budget".into());
    }
    for jobs in [2usize, 4, 0] {
        let par = run_datacenter(&dc, ExecConfig::jobs(jobs)).map_err(|e| e.to_string())?;
        if par.digest != seq.digest {
            return Err(format!(
                "jobs={jobs}: digest 0x{:016x} != sequential 0x{:016x}",
                par.digest, seq.digest
            ));
        }
    }
    Ok(())
}

/// Gate 3: streaming retention must be a pure memory optimization —
/// same digest, same per-rack digests, and actually empty sample logs.
fn record_mode_gate() -> Result<(), String> {
    let dc = DcScenario::new(base_scenario(7, 90.0, true), floor_topology(24))
        .map_err(|e| e.to_string())?;
    let full = run_datacenter_with(&dc, ExecConfig::sequential(), DcRecordMode::Full)
        .map_err(|e| e.to_string())?;
    let stream = run_datacenter_with(&dc, ExecConfig::jobs(2), DcRecordMode::Streaming)
        .map_err(|e| e.to_string())?;
    if stream.digest != full.digest {
        return Err(format!(
            "streaming digest 0x{:016x} != full 0x{:016x}",
            stream.digest, full.digest
        ));
    }
    if stream.rack_digests != full.rack_digests {
        return Err("per-rack digests diverged between record modes".into());
    }
    if let Some(r) = stream
        .racks
        .iter()
        .position(|r| !r.recorder.samples().is_empty())
    {
        return Err(format!("streaming run retained samples for rack {r}"));
    }
    Ok(())
}

/// Gate 4: single-rack datacenter == standalone engine, bit for bit.
fn equivalence_gate() -> Result<(), String> {
    let base = base_scenario(42, 90.0, false);
    let topo = DatacenterTopology::single_rack(Watts(4000.0)).map_err(|e| e.to_string())?;
    let dc = DcScenario::new(base.clone(), topo).map_err(|e| e.to_string())?;
    let out = run_datacenter(&dc, ExecConfig::sequential()).map_err(|e| e.to_string())?;
    let standalone = run_policy(&base, PolicyKind::SprintCon);
    let (a, b) = (run_digest(&out.racks[0]), run_digest(&standalone));
    if a != b {
        return Err(format!(
            "single-rack datacenter digest 0x{a:016x} != standalone 0x{b:016x}"
        ));
    }
    Ok(())
}

/// Gate 1: the full-size campaign under the worker pool, timed.
/// Returns (wall seconds, control ticks per rack, output).
fn scale_run(
    racks: usize,
    secs: f64,
    mode: DcRecordMode,
) -> Result<(f64, u64, DcRunOutput), String> {
    let base = base_scenario(2019, secs, false);
    let ticks = (base.duration.0 / base.dt.0).round() as u64;
    let dc = DcScenario::new(base, floor_topology(racks)).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let out = run_datacenter_with(&dc, ExecConfig::parallel(), mode).map_err(|e| e.to_string())?;
    Ok((t0.elapsed().as_secs_f64(), ticks, out))
}

/// Deterministic per-rack breaker-power trace for the replay benchmark,
/// rack-major (`traces[r · ticks + k]`) — the same layout the recorder
/// kept per shard, so the pre-rework gather below is exactly as strided
/// as the historical one.
fn synth_traces(racks: usize, ticks: usize) -> Vec<Watts> {
    let mut traces = Vec::with_capacity(racks * ticks);
    for r in 0..racks {
        for k in 0..ticks {
            traces.push(Watts(
                2800.0 + 1200.0 * (((r * 7 + k * 13) % 97) as f64 / 96.0),
            ));
        }
    }
    traces
}

/// Trip counts and a serial feeder-load fold — enough state to prove two
/// replay implementations walked the breakers identically.
#[derive(PartialEq)]
struct ReplayFold {
    pdu_trip_ticks: u64,
    feeder_trip_ticks: u64,
    feeder_load_sum: u64,
}

/// The pre-rework tree replay, replicated operation-for-operation from
/// the last commit before the vectorized rework: every tick gathered a
/// fresh `Vec<Watts>` of rack breaker powers out of the per-rack
/// recordings (strided reads, one allocation per tick) and fed it to the
/// allocating [`Datacenter::step`].
fn prework_replay(dc: &mut Datacenter, traces: &[Watts], racks: usize, ticks: usize) -> ReplayFold {
    let dt = Seconds(1.0);
    let mut fold = ReplayFold {
        pdu_trip_ticks: 0,
        feeder_trip_ticks: 0,
        feeder_load_sum: 0.0f64.to_bits(),
    };
    let mut sum = 0.0f64;
    for k in 0..ticks {
        let rack_powers: Vec<Watts> = (0..racks).map(|r| traces[r * ticks + k]).collect();
        let out = dc.step(&rack_powers, dt);
        fold.pdu_trip_ticks += out.pdu_tripped.iter().filter(|&&b| b).count() as u64;
        fold.feeder_trip_ticks += u64::from(out.feeder_tripped);
        sum += out.feeder_load.0;
    }
    fold.feeder_load_sum = sum.to_bits();
    fold
}

/// Today's vectorized replay, the same shape `dc_engine` runs per epoch:
/// rack breaker powers folded rack-ascending into contiguous per-PDU
/// tick lanes (one sequential pass over each rack's trace), then the
/// breakers stepped tick by tick through the allocation-free
/// [`Datacenter::step_pdu_loads`]. Addition order per (PDU, tick) is
/// racks ascending — identical to [`Datacenter::step`] — so the fold is
/// bit-identical to the pre-rework path.
fn vectorized_replay(
    dc: &mut Datacenter,
    traces: &[Watts],
    racks: usize,
    ticks: usize,
    pdu_of: &[usize],
    num_pdus: usize,
) -> ReplayFold {
    let dt = Seconds(1.0);
    let mut lanes = vec![0.0f64; num_pdus * EPOCH_TICKS];
    let mut tick_loads = vec![0.0f64; num_pdus];
    let mut delivered = vec![0.0f64; num_pdus];
    let mut tripped = vec![false; num_pdus];
    let mut fold = ReplayFold {
        pdu_trip_ticks: 0,
        feeder_trip_ticks: 0,
        feeder_load_sum: 0.0f64.to_bits(),
    };
    let mut sum = 0.0f64;
    let mut done = 0;
    while done < ticks {
        let e_ticks = EPOCH_TICKS.min(ticks - done);
        let lanes = &mut lanes[..num_pdus * e_ticks];
        lanes.fill(0.0);
        for (r, &p) in pdu_of.iter().enumerate().take(racks) {
            let lane = &mut lanes[p * e_ticks..(p + 1) * e_ticks];
            let trace = &traces[r * ticks + done..r * ticks + done + e_ticks];
            for (slot, w) in lane.iter_mut().zip(trace) {
                *slot += w.0;
            }
        }
        for k in 0..e_ticks {
            for (p, load) in tick_loads.iter_mut().enumerate() {
                *load = lanes[p * e_ticks + k];
            }
            let feeder = dc.step_pdu_loads(&tick_loads, dt, &mut delivered, &mut tripped);
            fold.pdu_trip_ticks += tripped.iter().filter(|&&b| b).count() as u64;
            fold.feeder_trip_ticks += u64::from(feeder.feeder_tripped);
            sum += feeder.feeder_load.0;
        }
        done += e_ticks;
    }
    fold.feeder_load_sum = sum.to_bits();
    fold
}

struct ReplayResult {
    racks: usize,
    ticks: usize,
    prework_rack_ticks_per_sec: f64,
    vectorized_rack_ticks_per_sec: f64,
    speedup: f64,
    agreement: bool,
}

/// Gate 6: identical traces through both replay implementations on
/// clones of the same pristine tree — bit-compared folds, then
/// interleaved best-of-3 timing (fresh breaker state per rep, so
/// neither side ever replays against drifted thermal accumulators).
fn bench_replay(racks: usize, ticks: usize) -> ReplayResult {
    let topo = floor_topology(racks);
    let num_pdus = topo.num_pdus();
    let pdu_of: Vec<usize> = (0..racks).map(|r| topo.pdu_of_rack(r)).collect();
    let template = Datacenter::paper_calibrated(topo).expect("floor tree is valid");
    let traces = synth_traces(racks, ticks);

    let a = prework_replay(&mut template.clone(), &traces, racks, ticks);
    let b = vectorized_replay(
        &mut template.clone(),
        &traces,
        racks,
        ticks,
        &pdu_of,
        num_pdus,
    );
    let agreement = a == b;
    if !agreement {
        eprintln!("replay disagreement: prework and vectorized folds diverged");
    }

    let (mut pre_secs, mut vec_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let mut dc = template.clone();
        let t0 = Instant::now();
        std::hint::black_box(prework_replay(&mut dc, &traces, racks, ticks));
        pre_secs = pre_secs.min(t0.elapsed().as_secs_f64());

        let mut dc = template.clone();
        let t1 = Instant::now();
        std::hint::black_box(vectorized_replay(
            &mut dc, &traces, racks, ticks, &pdu_of, num_pdus,
        ));
        vec_secs = vec_secs.min(t1.elapsed().as_secs_f64());
    }
    let rack_ticks = (racks * ticks) as f64;
    ReplayResult {
        racks,
        ticks,
        prework_rack_ticks_per_sec: rack_ticks / pre_secs,
        vectorized_rack_ticks_per_sec: rack_ticks / vec_secs,
        speedup: pre_secs / vec_secs,
        agreement,
    }
}

fn mode_name(mode: DcRecordMode) -> &'static str {
    match mode {
        DcRecordMode::Full => "full",
        DcRecordMode::Streaming => "streaming",
    }
}

fn main() {
    let args = parse_args();
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "bench_datacenter: {cpus}-core host, {} racks x {}s, {} retention",
        args.racks,
        args.secs,
        mode_name(args.mode)
    );

    println!("determinism gate (24 faulty racks, seq vs 2/4/all workers)...");
    if let Err(e) = determinism_gate() {
        eprintln!("DETERMINISM VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: datacenter digest bit-identical across worker counts");

    println!("record-mode gate (streaming vs full retention)...");
    if let Err(e) = record_mode_gate() {
        eprintln!("RECORD-MODE VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: streaming reproduces the full-retention digests sample-free");

    println!("single-rack equivalence gate...");
    if let Err(e) = equivalence_gate() {
        eprintln!("EQUIVALENCE VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: 1-rack tree reproduces the standalone engine digest");

    println!(
        "scale run: {} racks x {}s on {cpus} worker(s), {} retention...",
        args.racks,
        args.secs,
        mode_name(args.mode)
    );
    let (wall, ticks_per_rack, out) = match scale_run(args.racks, args.secs, args.mode) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("SCALE RUN FAILED: {e}");
            std::process::exit(1);
        }
    };
    let rack_ticks_per_sec = args.racks as f64 * ticks_per_rack as f64 / wall;
    let rss_kb = peak_rss_kb().unwrap_or(0);
    let conserved = conserves(&out);
    println!(
        "  {:.1}s wall ({:.0} rack-ticks/s), digest 0x{:016x}, {} market rounds, \
         peak feeder {:.0} W, peak rss {:.1} MB",
        wall,
        rack_ticks_per_sec,
        out.digest,
        out.rounds.len(),
        out.peak_feeder_load.0,
        rss_kb as f64 / 1024.0
    );
    if !conserved {
        eprintln!("CONSERVATION VIOLATION in the scale run");
        std::process::exit(1);
    }
    // CI budget: the acceptance bar is 5 minutes for 1000 x 60 s.
    let budget_secs = 300.0;
    if args.check_only && wall > budget_secs {
        eprintln!("SCALE GATE FAILED: {wall:.1}s > {budget_secs}s budget");
        std::process::exit(1);
    }
    if let Some(limit_mb) = args.max_rss_mb {
        if rss_kb == 0 {
            eprintln!("RSS GATE FAILED: VmHWM unavailable, cannot enforce --max-rss-mb");
            std::process::exit(1);
        }
        if rss_kb as f64 / 1024.0 > limit_mb {
            eprintln!(
                "RSS GATE FAILED: peak {:.1} MB > --max-rss-mb {limit_mb}",
                rss_kb as f64 / 1024.0
            );
            std::process::exit(1);
        }
        println!(
            "  rss gate ok: {:.1} MB <= {limit_mb} MB",
            rss_kb as f64 / 1024.0
        );
    }

    // Replay benchmark at (up to) the committed-baseline size; capped so
    // the trace buffer never dominates the VmHWM the scale run just
    // exercised (14 MB at the 1000 x 1800 cap).
    let replay_racks = args.racks.min(1000);
    let replay_ticks = 1800;
    println!("tree replay: prework per-tick gather vs vectorized lanes ({replay_racks} racks)...");
    let replay = bench_replay(replay_racks, replay_ticks);
    println!(
        "  prework   : {:.2e} rack-ticks/s\n  vectorized: {:.2e} rack-ticks/s  ({:.1}x, folds {})",
        replay.prework_rack_ticks_per_sec,
        replay.vectorized_rack_ticks_per_sec,
        replay.speedup,
        if replay.agreement {
            "bit-identical"
        } else {
            "DISAGREE"
        }
    );
    if !replay.agreement {
        eprintln!("REPLAY AGREEMENT FAILED: the two replay paths diverged");
        std::process::exit(1);
    }
    if args.check_only && replay.speedup < REPLAY_SPEEDUP_FLOOR {
        eprintln!(
            "PERF REGRESSION: replay speedup {:.2}x < floor {REPLAY_SPEEDUP_FLOOR}x",
            replay.speedup
        );
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"racks\": {},\n  \"secs\": {},\n  \"cpus\": {},\n  \"mode\": \"{}\",\n  \
         \"wall_secs\": {:.3},\n  \"rack_ticks_per_sec\": {:.0},\n  \"peak_rss_kb\": {},\n  \
         \"digest\": \"0x{:016x}\",\n  \"market_rounds\": {},\n  \"peak_feeder_w\": {:.1},\n  \
         \"feeder_trip_periods\": {},\n  \"conserved\": {},\n  \"determinism\": \"pass\",\n  \
         \"record_mode_digest_match\": \"pass\",\n  \"single_rack_equivalence\": \"pass\",\n  \
         \"replay\": {{\"racks\": {}, \"ticks\": {}, \"prework_rack_ticks_per_sec\": {:.0}, \
         \"vectorized_rack_ticks_per_sec\": {:.0}, \"speedup\": {:.2}, \"agreement\": \
         \"bit-identical\"}}\n}}\n",
        args.racks,
        args.secs,
        cpus,
        mode_name(args.mode),
        wall,
        rack_ticks_per_sec,
        rss_kb,
        out.digest,
        out.rounds.len(),
        out.peak_feeder_load.0,
        out.feeder_trip_periods,
        conserved,
        replay.racks,
        replay.ticks,
        replay.prework_rack_ticks_per_sec,
        replay.vectorized_rack_ticks_per_sec,
        replay.speedup,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("json: {}", args.out);
    if args.check_only {
        println!("bench_datacenter --check: all gates passed");
    }
}
