//! E1 — Fig. 1: per-watt speedup vs processor frequency for the six
//! sprinting workloads of \[4\].
//!
//! Paper claim: "the per-watt speedup decreases with the increase of
//! processor frequency in general", for two reasons — non-CPU bottlenecks
//! (captured by the memory-bound fraction of the progress model) and the
//! superlinear frequency→power law. Y values are speedup over normalized
//! *active* power, both relative to the 400 MHz floor.

use powersim::cpu::CorePowerLaw;
use powersim::units::{NormFreq, Utilization};
use sprintcon_bench::{banner, write_csv};
use workloads::spec_profiles::sprint_six;

fn main() {
    banner("Fig. 1 — per-watt speedup vs frequency (six sprinting workloads)");
    let law = CorePowerLaw {
        peak_active_watts: 12.19, // the paper-default server's core law
        cubic_fraction: 0.7,
        idle_watts: 0.0,
    };
    let f0 = 0.2;
    let freqs: Vec<f64> = (0..=16).map(|i| 0.2 + 0.05 * i as f64).collect();
    let profiles = sprint_six();

    print!("{:>6}", "freq");
    for p in &profiles {
        print!(" {:>10}", p.name);
    }
    println!();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let p_ref = law.active_power(NormFreq(f0), Utilization::FULL);
    for &f in &freqs {
        let p_rel = law.active_power(NormFreq(f), Utilization::FULL) / p_ref;
        let mut row = vec![f];
        print!("{f:>6.2}");
        for prof in &profiles {
            let speedup = prof.progress_model().speedup(f0, f);
            let per_watt = speedup / p_rel;
            row.push(per_watt);
            print!(" {per_watt:>10.3}");
        }
        println!();
        rows.push(row);
    }
    let header = std::iter::once("freq".to_string())
        .chain(profiles.iter().map(|p| p.name.to_string()))
        .collect::<Vec<_>>()
        .join(",");
    let path = write_csv("fig1_perwatt_speedup.csv", &header, &rows);
    println!("\ncsv: {}", path.display());

    // The paper's qualitative claim, checked numerically.
    let mut all_decreasing = true;
    for (ci, prof) in profiles.iter().enumerate() {
        let first = rows.first().unwrap()[ci + 1];
        let last = rows.last().unwrap()[ci + 1];
        if last >= first {
            all_decreasing = false;
        }
        println!(
            "{:<10}: per-watt speedup {:.2} @0.2f -> {:.2} @1.0f  ({})",
            prof.name,
            first,
            last,
            if last < first {
                "decreasing, as Fig. 1"
            } else {
                "NOT decreasing"
            }
        );
    }
    assert!(all_decreasing, "Fig. 1 shape violated");
}
