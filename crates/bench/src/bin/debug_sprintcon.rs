//! Diagnostic dump of a SprintCon run (not a paper figure).

use powersim::cpu::CoreRole;
use simkit::{Policy, Recorder, Scenario, SprintConPolicy};

fn main() {
    let mut scenario = Scenario::paper_default(2019);
    if let Some(d) = std::env::args().nth(2).and_then(|s| s.parse::<f64>().ok()) {
        scenario = scenario.with_deadline(powersim::units::Seconds::minutes(d));
    }
    let mut sim = scenario.build();
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sprintcon".into());
    let mut policy: Box<dyn Policy> = match which.as_str() {
        "sgct" => Box::new(simkit::SgctSimPolicy::new(
            baselines::SgctVariant::Uncontrolled,
        )),
        "v1" => Box::new(simkit::SgctSimPolicy::new(baselines::SgctVariant::V1Ideal)),
        "v2" => Box::new(simkit::SgctSimPolicy::new(
            baselines::SgctVariant::V2InteractivePriority,
        )),
        _ => Box::new(SprintConPolicy::paper_default()),
    };
    let policy = policy.as_mut();
    let mut rec = Recorder::with_capacity(900);
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8} {:>8}",
        "t", "p_total", "cb", "ups", "soc", "f_bat", "f_int", "margin", "closed"
    );
    for k in 0..900 {
        sim.step(policy, &mut rec);
        if k % 30 == 0 || (595..=660).contains(&k) && k % 5 == 0 {
            let s = rec.samples().last().unwrap();
            let prog: f64 =
                sim.jobs.iter().map(|j| j.progress()).sum::<f64>() / sim.jobs.len() as f64;
            let needed = (k as f64 + 1.0) / 720.0;
            let _ = (prog, needed);
            println!(
                "{:>5} {:>8.0} {:>8.0} {:>8.0} {:>8.3} {:>6.2} {:>6.2} {:>8.3} {:>8}",
                k,
                s.p_total.0,
                s.cb_power.0,
                s.ups_power.0,
                s.ups_soc,
                s.mean_freq_batch,
                s.mean_freq_interactive,
                s.breaker_margin,
                s.breaker_closed as u8,
            );
        }
    }
    let met = sim
        .jobs
        .iter()
        .filter(|j| matches!(j.first_completion, Some(t) if t.0 <= j.deadline.0))
        .count();
    println!("deadlines met: {met}/64");
    let mut by_name: Vec<(String, f64)> = sim
        .jobs
        .iter()
        .map(|j| {
            (
                j.name.clone(),
                j.first_completion.map_or(99.0, |t| t.0 / j.deadline.0),
            )
        })
        .collect();
    by_name.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (n, r) in by_name.iter().take(8) {
        println!("worst: {n} t/deadline={r:.3}");
    }
    let ids = sim.rack.cores_with_role(CoreRole::Batch);
    let fs: Vec<f64> = ids.iter().map(|id| sim.rack.freq(*id).0).collect();
    println!(
        "final batch freqs: min={:.2} max={:.2}",
        fs.iter().cloned().fold(1e9, f64::min),
        fs.iter().cloned().fold(-1e9, f64::max)
    );
}
