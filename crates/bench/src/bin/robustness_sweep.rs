//! Robustness sweep — the fault-injection counterpart of the headline
//! comparison: sweep the power-monitor dropout intensity and report the
//! controlled-vs-uncontrolled gap in breaker trips, deadline misses and
//! UPS depth of discharge, then exercise every scheduled fault class
//! once and show which degraded-mode path it drives.
//!
//! With every fault disabled (intensity 0) the runs are bit-identical to
//! the unperturbed scenario — checked below — so the fault subsystem
//! costs nothing when off.

use powersim::faults::{FaultKind, FaultPlan};
use powersim::units::{Seconds, Watts};
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

/// Mean length of one stochastic dropout burst.
const MEAN_OUTAGE: Seconds = Seconds(8.0);
const SEED: u64 = 2019;

fn scenario_with(plan: FaultPlan) -> Scenario {
    Scenario::builder(SEED)
        .faults(plan)
        .build()
        .expect("paper scenario with faults is valid")
}

fn main() {
    let args = EngineArgs::parse();
    banner("Monitor-dropout sweep: SprintCon vs uncontrolled SGCT");
    println!(
        "{:>9}  {:>10}  {:>5}  {:>8}  {:>7}  {:>7}",
        "intensity", "policy", "trips", "missed", "max-dod", "dod"
    );
    let intensities = [0.0, 0.05, 0.10, 0.20, 0.40];
    let kinds = [PolicyKind::SprintCon, PolicyKind::Sgct];
    let sweep_runs = Campaign::new()
        .with_grid(
            intensities.map(|i| scenario_with(FaultPlan::monitor_dropout(i, MEAN_OUTAGE))),
            &kinds,
        )
        .with_exec(args.exec)
        .run();
    let mut rows = Vec::new();
    let mut run_it = sweep_runs.iter();
    for &intensity in &intensities {
        for kind in kinds {
            let out = run_it.next().expect("grid is intensity-major").summary();
            let s = out;
            let missed = s.deadlines_total - s.deadlines_met;
            println!(
                "{:>9.2}  {:>10}  {:>5}  {:>8}  {:>7.3}  {:>7.3}",
                intensity, s.policy, s.trips, missed, s.max_dod, s.dod
            );
            rows.push(vec![
                intensity,
                if kind == PolicyKind::SprintCon {
                    1.0
                } else {
                    0.0
                },
                s.trips as f64,
                missed as f64,
                s.max_dod,
                s.dod,
            ]);
        }
    }
    let path = write_csv(
        "robustness_sweep.csv",
        "intensity,is_sprintcon,trips,deadline_misses,max_dod,dod",
        &rows,
    );
    println!("wrote {}", path.display());

    banner("Zero-drift check: empty fault plan == no fault subsystem");
    let mut drift_runs = Campaign::new()
        .with_run(Scenario::paper_default(SEED), PolicyKind::SprintCon)
        .with_run(scenario_with(FaultPlan::none()), PolicyKind::SprintCon)
        .with_exec(args.exec)
        .run();
    let off = drift_runs.remove(1).output;
    let base = drift_runs.remove(0).output;
    let drift = base.recorder.samples().len() != off.recorder.samples().len()
        || base
            .recorder
            .samples()
            .iter()
            .zip(off.recorder.samples())
            .any(|(a, b)| {
                a.p_total.0.to_bits() != b.p_total.0.to_bits()
                    || a.ups_power.0.to_bits() != b.ups_power.0.to_bits()
            });
    println!(
        "bitwise identical: {}",
        if drift { "NO — DRIFT" } else { "yes" }
    );

    banner("Scheduled fault classes under SprintCon (300 s window each)");
    let classes: &[(&str, FaultKind)] = &[
        ("monitor dropout", FaultKind::MonitorDropout),
        ("monitor stuck-at", FaultKind::MonitorStuckAt),
        (
            "monitor spike",
            FaultKind::MonitorSpike {
                magnitude: Watts(20_000.0),
            },
        ),
        ("DVFS lag", FaultKind::ActuatorLag { tau: Seconds(6.0) }),
        ("DVFS quantize", FaultKind::ActuatorQuantize { step: 0.2 }),
        ("UPS fade", FaultKind::UpsCapacityFade { fraction: 0.5 }),
        (
            "UPS current limit",
            FaultKind::UpsCurrentLimit {
                max_discharge: Watts(600.0),
            },
        ),
        ("breaker heat", FaultKind::BreakerHeatPerturb { delta: 0.3 }),
        ("server crash", FaultKind::ServerCrash { server: 0 }),
    ];
    println!(
        "{:>18}  {:>5}  {:>8}  {:>7}  {:>12}  {:>9}",
        "fault", "trips", "missed", "max-dod", "meas-holds", "pid-falls"
    );
    let mut class_campaign = Campaign::new();
    for (label, kind) in classes {
        let plan = FaultPlan::none().with_event(Seconds(120.0), Seconds(300.0), *kind);
        class_campaign.add_with(
            *label,
            scenario_with(plan),
            PolicyKind::SprintCon,
            Default::default(),
        );
    }
    let class_runs = class_campaign.with_exec(args.exec).run();
    for ((label, _), res) in classes.iter().zip(&class_runs) {
        let out = &res.output;
        let s = &out.summary;
        println!(
            "{:>18}  {:>5}  {:>8}  {:>7.3}  {:>12}  {:>9}",
            label,
            s.trips,
            s.deadlines_total - s.deadlines_met,
            s.max_dod,
            out.metrics.counter("degraded.measurement_hold"),
            out.metrics.counter("server_ctrl_pid_fallback"),
        );
    }
}
