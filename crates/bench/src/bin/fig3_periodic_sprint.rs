//! E3 — Fig. 3: an example of periodic computational sprinting with a
//! period of about 18 seconds (\[4\]'s testbed behavior).
//!
//! The duty cycle is *derived from the thermal physics*: the \[4\]-class
//! chip model (lumped RC, ~12 W sustainable, 50 W sprints) sprints until
//! its die hits the throttle limit and rests until it cools through a
//! 20 °C restart band — which lands on the paper's ~18-second period.
//! The same schedule is then replayed on the rack server's power model
//! to draw the power wave the breaker/UPS pair must ride through.

use powersim::server::{Server, ServerSpec};
use powersim::thermal::{periodic_sprint_duty, ThermalModel};
use powersim::units::{NormFreq, Utilization};
use simkit::ascii_plot::line_chart;
use sprintcon_bench::{banner, write_csv};

fn main() {
    banner("Fig. 3 — periodic sprinting example (~18 s period)");
    let chip = ThermalModel::sprint_testbed();
    let (sprint_s, rest_s) = periodic_sprint_duty(&chip, 50.0, 2.0, 20.0);
    let period_s = sprint_s + rest_s;
    println!(
        "thermal duty cycle: sprint {sprint_s:.1} s + rest {rest_s:.1} s = {period_s:.1} s period \
         (chip TDP {:.1} W, sprint 50 W)",
        chip.sustainable_power()
    );
    let spec = ServerSpec::paper_default();
    let mut server = Server::new(spec, 4);
    for c in server.cores.iter_mut() {
        c.util = Utilization(0.9);
    }
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for t in 0..120 {
        let phase = (t as f64) % period_s;
        let f = if phase < sprint_s {
            NormFreq::PEAK
        } else {
            NormFreq(0.3)
        };
        for ci in 0..server.cores.len() {
            server.set_core_freq(ci, f);
        }
        let p = server.power().0;
        rows.push(vec![t as f64, f.0, p]);
        series.push(p);
    }
    println!(
        "{}",
        line_chart("server power (W) over 120 s", &series, 72, 10)
    );
    let path = write_csv("fig3_periodic_sprint.csv", "t_s,freq,power_w", &rows);
    println!("csv: {}", path.display());

    // Shape checks: a clean two-level power wave with ~18 s period.
    let hi = series.iter().cloned().fold(f64::MIN, f64::max);
    let lo = series.iter().cloned().fold(f64::MAX, f64::min);
    assert!(hi > lo * 1.3, "sprint must visibly raise power");
    // Count rising edges: 120 s / 18 s ≈ 6-7 sprints.
    let mid = 0.5 * (hi + lo);
    let edges = series
        .windows(2)
        .filter(|w| w[0] < mid && w[1] >= mid)
        .count();
    let expect = 120.0 / period_s;
    println!("sprints in 120 s: {edges} (thermal model predicts ~{expect:.1})");
    assert!((edges as f64 - expect).abs() <= 1.5);
    // Fig. 3's headline number: a period of *about 18 seconds*.
    assert!((14.0..24.0).contains(&period_s), "period={period_s}");
}
