//! E8 — Fig. 8(b): total discharge of UPS battery capacity (depth of
//! discharge) over the 15-minute sprint, vs batch deadline.
//!
//! Paper values at the 12-minute deadline: SprintCon ≈ 17% DoD vs ≈ 31%
//! for SGCT-V1/V2 and far more for SGCT — the battery-lifetime argument
//! of §VII-D (LFP cycle life: >40 000 cycles at 17% vs <10 000 at 31%;
//! at 10 sprints/day that is "no replacement for 10 years" vs "3-4
//! replacements").

use powersim::battery_life::LfpCycleLife;
use powersim::units::Seconds;
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    banner("Fig. 8(b) — UPS depth of discharge vs batch deadline");
    let deadlines = [9.0, 12.0, 15.0];
    let cases: Vec<(f64, PolicyKind)> = deadlines
        .iter()
        .flat_map(|&d| PolicyKind::ALL.iter().map(move |&k| (d, k)))
        .collect();
    let runs = Campaign::new()
        .with_grid(
            deadlines.map(|d| Scenario::paper_default(2019).with_deadline(Seconds::minutes(d))),
            &PolicyKind::ALL,
        )
        .with_exec(args.exec)
        .run();
    let results: Vec<(f64, PolicyKind, simkit::RunSummary)> = cases
        .iter()
        .zip(runs)
        .map(|(&(d, kind), run)| (d, kind, run.output.summary))
        .collect();

    println!(
        "{:>9} {:>10} {:>8} {:>10}",
        "deadline", "policy", "DoD", "ups_Wh"
    );
    let mut rows = Vec::new();
    for (d, kind, s) in &results {
        println!(
            "{:>8}m {:>10} {:>7.1}% {:>10.1}",
            d,
            kind.name(),
            s.dod * 100.0,
            s.ups_energy_wh
        );
        rows.push(vec![
            *d,
            PolicyKind::ALL.iter().position(|k| k == kind).unwrap() as f64,
            s.dod,
            s.ups_energy_wh,
        ]);
    }
    let path = write_csv(
        "fig8b_ups_dod.csv",
        "deadline_min,policy_idx,dod,ups_wh",
        &rows,
    );
    println!("\ncsv: {}", path.display());

    let dod_of = |d: f64, k: PolicyKind| {
        results
            .iter()
            .find(|(dd, kk, _)| *dd == d && *kk == k)
            .unwrap()
            .2
            .dod
    };
    // The Fig. 8(b) ordering at every deadline: SprintCon discharges far
    // less than the ideal baselines, which discharge far less than SGCT.
    for &d in &deadlines {
        let sc = dod_of(d, PolicyKind::SprintCon);
        let v1 = dod_of(d, PolicyKind::SgctV1);
        let v2 = dod_of(d, PolicyKind::SgctV2);
        let sg = dod_of(d, PolicyKind::Sgct);
        assert!(
            sc < v1 * 0.75,
            "deadline {d}m: SprintCon {sc:.2} vs V1 {v1:.2}"
        );
        assert!(
            sc < v2 * 0.75,
            "deadline {d}m: SprintCon {sc:.2} vs V2 {v2:.2}"
        );
        assert!(sg > v1 && sg > v2, "SGCT discharges the most");
    }

    banner("§VII-D battery-lifetime consequence (12-minute deadline)");
    let life = LfpCycleLife::paper_default();
    for kind in [
        PolicyKind::SprintCon,
        PolicyKind::SgctV1,
        PolicyKind::SgctV2,
    ] {
        let dod = dod_of(12.0, kind).max(0.01);
        let cycles = life.cycles_at(dod);
        let years = life.service_years(dod, 10.0);
        let repl = life.replacements_over(dod, 10.0, 10.0);
        println!(
            "{:<10} DoD {:>5.1}% -> {:>9.0} cycles -> {:>4.1} years/pack, {} replacements in 10 y",
            kind.name(),
            dod * 100.0,
            cycles,
            years,
            repl
        );
    }
    let sc_repl = life.replacements_over(dod_of(12.0, PolicyKind::SprintCon).max(0.01), 10.0, 10.0);
    let v1_repl = life.replacements_over(dod_of(12.0, PolicyKind::SgctV1), 10.0, 10.0);
    assert!(
        sc_repl < v1_repl,
        "SprintCon must need fewer battery replacements"
    );
}
