//! E6 — Fig. 7: frequency behaviour of SprintCon vs SGCT-V1 vs SGCT-V2.
//!
//! Paper values (normalized mean frequency, interactive / batch):
//! SprintCon 1.00 / 0.59 — interactive pinned at peak, batch stepping
//! with the CB phase; SGCT-V1 0.84 / 0.91 — utilization ranking favours
//! batch; SGCT-V2 0.94 / 0.84 — interactive priority flips it. Exact
//! magnitudes depend on the (substituted) traces; the orderings are the
//! reproduced result.

use simkit::ascii_plot::multi_chart;
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    let scenario = Scenario::paper_default(2019);
    let tags = [
        ("a-sprintcon", PolicyKind::SprintCon),
        ("b-sgct-v1", PolicyKind::SgctV1),
        ("c-sgct-v2", PolicyKind::SgctV2),
    ];
    let runs = Campaign::new()
        .with_grid([scenario], &tags.map(|(_, k)| k))
        .with_exec(args.exec)
        .run();
    let mut results = Vec::new();
    for ((tag, kind), run) in tags.iter().zip(&runs) {
        banner(&format!("Fig. 7({}) — {}", &tag[..1], kind.name()));
        let (rec, summary) = (&run.output.recorder, run.summary().clone());
        let fi: Vec<f64> = rec
            .samples()
            .iter()
            .map(|s| s.mean_freq_interactive)
            .collect();
        let fb: Vec<f64> = rec.samples().iter().map(|s| s.mean_freq_batch).collect();
        println!(
            "{}",
            multi_chart(
                &format!(
                    "{}: avg freq = {:.2} interactive / {:.2} batch",
                    kind.name(),
                    summary.avg_freq_interactive,
                    summary.avg_freq_batch
                ),
                &[("Interactive", &fi), ("Batch", &fb)],
                76,
                10,
            )
        );
        let rows: Vec<Vec<f64>> = rec
            .samples()
            .iter()
            .map(|s| vec![s.t.0, s.mean_freq_interactive, s.mean_freq_batch])
            .collect();
        let path = write_csv(
            &format!("fig7{tag}.csv"),
            "t_s,freq_interactive,freq_batch",
            &rows,
        );
        println!("csv: {}", path.display());
        results.push((*kind, summary, fb));
    }

    banner("Fig. 7 summary (paper values in parentheses)");
    println!(
        "SprintCon: {:.2}/{:.2}  (1.00/0.59)",
        results[0].1.avg_freq_interactive, results[0].1.avg_freq_batch
    );
    println!(
        "SGCT-V1  : {:.2}/{:.2}  (0.84/0.91)",
        results[1].1.avg_freq_interactive, results[1].1.avg_freq_batch
    );
    println!(
        "SGCT-V2  : {:.2}/{:.2}  (0.94/0.84)",
        results[2].1.avg_freq_interactive, results[2].1.avg_freq_batch
    );

    // The orderings the paper reports:
    let (sc, v1, v2) = (&results[0].1, &results[1].1, &results[2].1);
    // SprintCon pins interactive at peak.
    assert!((sc.avg_freq_interactive - 1.0).abs() < 1e-6);
    // ...and throttles batch below both baselines.
    assert!(sc.avg_freq_batch < v1.avg_freq_batch);
    assert!(sc.avg_freq_batch < v2.avg_freq_batch);
    // V1 favours batch over interactive; V2 flips that.
    assert!(v1.avg_freq_batch > v1.avg_freq_interactive);
    assert!(v2.avg_freq_interactive > v2.avg_freq_batch);
    // V2 serves interactive better than V1.
    assert!(v2.avg_freq_interactive > v1.avg_freq_interactive);
    // SprintCon's batch frequency steps with the CB phase (Fig. 7a): the
    // overload-window mean clearly exceeds the recovery-window mean.
    let fb = &results[0].2;
    let over: f64 = fb[20..145].iter().sum::<f64>() / 125.0;
    let rec_: f64 = fb[180..440].iter().sum::<f64>() / 260.0;
    println!(
        "\nSprintCon batch freq: overload-phase mean {over:.2} vs recovery-phase mean {rec_:.2}"
    );
    assert!(
        over > rec_ + 0.2,
        "batch frequency must step with the CB phase"
    );
}
