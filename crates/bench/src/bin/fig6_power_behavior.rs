//! E5 — Fig. 6: power behaviour of SprintCon vs SGCT-V1 vs SGCT-V2.
//!
//! Paper claims: (a) SprintCon rides the CB at its budget (4.0 kW during
//! overload windows, 3.2 kW during recovery) and uses the UPS only for
//! the fluctuating gap, so its Total curve follows the interactive
//! workload; (b)(c) the V1/V2 baselines hold the *total* nearly flat at
//! the sprint budget, alternating CB overload and UPS discharge as the
//! source of sprint power.

use simkit::ascii_plot::multi_chart;
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    let scenario = Scenario::paper_default(2019);
    let tags = [
        ("a-sprintcon", PolicyKind::SprintCon),
        ("b-sgct-v1", PolicyKind::SgctV1),
        ("c-sgct-v2", PolicyKind::SgctV2),
    ];
    let runs = Campaign::new()
        .with_grid([scenario], &tags.map(|(_, k)| k))
        .with_exec(args.exec)
        .run();
    for ((tag, kind), run) in tags.iter().zip(&runs) {
        banner(&format!("Fig. 6({}) — {}", &tag[..1], kind.name()));
        let (rec, summary) = (&run.output.recorder, run.summary());
        let cb: Vec<f64> = rec.samples().iter().map(|s| s.cb_power.0).collect();
        let total: Vec<f64> = rec.samples().iter().map(|s| s.p_total.0).collect();
        let budget: Vec<f64> = rec
            .samples()
            .iter()
            .map(|s| s.p_cb_target.map_or(0.0, |w| w.0))
            .collect();
        println!(
            "{}",
            multi_chart(
                &format!("{} power (W)", kind.name()),
                &[
                    ("CB actual", &cb),
                    ("Total", &total),
                    ("CB budget", &budget)
                ],
                76,
                12,
            )
        );
        let rows: Vec<Vec<f64>> = rec
            .samples()
            .iter()
            .map(|s| {
                vec![
                    s.t.0,
                    s.p_total.0,
                    s.cb_power.0,
                    s.ups_power.0,
                    s.p_cb_target.map_or(f64::NAN, |w| w.0),
                ]
            })
            .collect();
        let path = write_csv(
            &format!("fig6{tag}.csv"),
            "t_s,p_total_w,cb_w,ups_w,cb_budget_w",
            &rows,
        );
        println!(
            "csv: {}   trips: {}   UPS energy: {:.1} Wh",
            path.display(),
            summary.trips,
            summary.ups_energy_wh
        );

        // Quantified shape checks.
        let sd = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        match kind {
            PolicyKind::SprintCon => {
                // CB actual tracks its two-level budget. The one-period
                // measurement delay lets isolated demand spikes leak onto
                // the breaker for a single control period (the paper's
                // loop has the same structure), so the check bounds the
                // *frequency and size* of transients: almost every sample
                // within the duty-step slack, excursions rare and small
                // enough that the thermal integrator never notices.
                let mut above = 0usize;
                for s in rec.samples() {
                    let b = s.p_cb_target.unwrap().0;
                    if s.cb_power.0 > b + 60.0 {
                        above += 1;
                        assert!(
                            s.cb_power.0 <= b + 400.0,
                            "CB {} far above budget {b}",
                            s.cb_power
                        );
                    }
                }
                let frac = above as f64 / rec.len() as f64;
                println!(
                    "transient budget excursions: {above} samples ({:.1}%)",
                    frac * 100.0
                );
                assert!(frac < 0.03, "excursions must be rare: {frac}");
                assert_eq!(summary.trips, 0);
                // Total fluctuates with the interactive workload: visibly
                // more variable than the baselines' totals.
                println!(
                    "total-power sd: {:.1} W (fluctuates with workload)",
                    sd(&total)
                );
            }
            _ => {
                // Baselines: total nearly flat at the sprint budget while
                // the breaker alternates.
                let mid: Vec<f64> = total.iter().copied().skip(30).collect();
                println!("total-power sd: {:.1} W (nearly flat)", sd(&mid));
                assert_eq!(summary.trips, 0, "ideal baselines must not trip");
            }
        }
    }
    println!("\npaper: SprintCon total follows the workload; V1/V2 totals nearly flat at 4 kW.");
}
