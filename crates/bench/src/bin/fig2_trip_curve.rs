//! E2 — Fig. 2: the circuit-breaker trip-time curve (Bulletin 1489-A
//! shape): trip time as a nonlinear decreasing function of overload.
//!
//! Calibrated operating point from \[2\]/§VI-A: a 1.25 overload trips after
//! 150 s; recovery from near-trip takes at most 300 s.

use powersim::breaker::BreakerSpec;
use sprintcon_bench::{banner, write_csv};

fn main() {
    banner("Fig. 2 — circuit breaker trip-time curve");
    let spec = BreakerSpec::paper_default();
    println!(
        "rated: {}   trip heat budget: {:.2}",
        spec.rated, spec.trip_heat
    );
    println!("{:>9} {:>12}", "overload", "trip time s");
    let mut rows = Vec::new();
    let overloads = [
        1.01, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.4, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0,
    ];
    for &o in &overloads {
        let t = spec.trip_time(o);
        println!("{o:>9.2} {:>12.1}", t.0);
        rows.push(vec![o, t.0]);
    }
    let path = write_csv("fig2_trip_curve.csv", "overload,trip_time_s", &rows);
    println!("\ncsv: {}", path.display());

    // Shape checks matching the figure.
    assert!(
        (spec.trip_time(1.25).0 - 150.0).abs() < 1e-6,
        "calibration point"
    );
    for w in rows.windows(2) {
        assert!(w[1][1] < w[0][1], "must be strictly decreasing");
    }
    // Nonlinearity: the drop from 1.05→1.25 dwarfs the drop from 3→6.
    let d_low = spec.trip_time(1.05).0 - spec.trip_time(1.25).0;
    let d_high = spec.trip_time(3.0).0 - spec.trip_time(6.0).0;
    assert!(d_low > 50.0 * d_high);
    println!(
        "recovery from near-trip: {}",
        spec.recovery_time_from(spec.trip_heat)
    );
}
