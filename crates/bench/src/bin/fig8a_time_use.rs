//! E7 — Fig. 8(a): normalized batch execution time vs deadline
//! (9 / 12 / 15 minutes).
//!
//! Paper claim: every policy meets the deadlines, but only SprintCon uses
//! the time before the deadline efficiently — its completion time sits
//! just under 1.0× the deadline, while the baselines finish batch work
//! unnecessarily fast (wasting power that interactive work or the UPS
//! could have kept).

use powersim::units::Seconds;
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    banner("Fig. 8(a) — normalized time use vs batch deadline");
    let deadlines = [9.0, 12.0, 15.0];
    // Deadline-major grid, every policy per deadline — matches the
    // campaign's scenario-major entry order below.
    let cases: Vec<(f64, PolicyKind)> = deadlines
        .iter()
        .flat_map(|&d| PolicyKind::ALL.iter().map(move |&k| (d, k)))
        .collect();
    let runs = Campaign::new()
        .with_grid(
            deadlines.map(|d| Scenario::paper_default(2019).with_deadline(Seconds::minutes(d))),
            &PolicyKind::ALL,
        )
        .with_exec(args.exec)
        .run();
    let results: Vec<(f64, PolicyKind, simkit::RunSummary)> = cases
        .iter()
        .zip(runs)
        .map(|(&(d, kind), run)| (d, kind, run.output.summary))
        .collect();

    println!(
        "{:>9} {:>10} {:>12} {:>12}",
        "deadline", "policy", "t_use", "deadlines"
    );
    let mut rows = Vec::new();
    for (d, kind, s) in &results {
        println!(
            "{:>8}m {:>10} {:>12.3} {:>9}/{}",
            d,
            kind.name(),
            s.normalized_time_use,
            s.deadlines_met,
            s.deadlines_total
        );
        rows.push(vec![
            *d,
            PolicyKind::ALL.iter().position(|k| k == kind).unwrap() as f64,
            s.normalized_time_use,
            s.deadlines_met as f64,
        ]);
    }
    let path = write_csv(
        "fig8a_time_use.csv",
        "deadline_min,policy_idx,normalized_time_use,deadlines_met",
        &rows,
    );
    println!(
        "\ncsv: {}  (policy_idx: 0=SprintCon 1=SGCT 2=V1 3=V2)",
        path.display()
    );
    println!("paper: all meet deadlines; SprintCon's time use closest to 1.0.");

    for (d, kind, s) in &results {
        match kind {
            // SGCT browns out mid-run; for the 15-minute deadline some of
            // its first completions are cut off by the outage — exactly
            // the Fig. 5 pathology, so exempt it from the deadline check.
            PolicyKind::Sgct => {}
            _ => {
                assert_eq!(
                    s.deadlines_met,
                    s.deadlines_total,
                    "{} must meet all {d}-minute deadlines",
                    kind.name()
                );
                assert!(s.normalized_time_use <= 1.0 + 1e-9);
            }
        }
    }
    // SprintCon uses the deadline window most fully at every deadline.
    for &d in &deadlines {
        let of = |k: PolicyKind| {
            results
                .iter()
                .find(|(dd, kk, _)| *dd == d && *kk == k)
                .unwrap()
                .2
                .normalized_time_use
        };
        let sc = of(PolicyKind::SprintCon);
        assert!(sc > of(PolicyKind::SgctV1), "deadline {d}m");
        assert!(sc > of(PolicyKind::SgctV2), "deadline {d}m");
        // Tight deadlines: just under 1.0. Loose deadlines: somewhat
        // earlier, because the allocator still spends *free* CB-overload
        // headroom on batch (running slower there would waste it without
        // saving any UPS energy) — see EXPERIMENTS.md.
        assert!(sc > 0.75, "SprintCon should use most of the window: {sc}");
    }
    {
        let of9 = |k: PolicyKind| {
            results
                .iter()
                .find(|(dd, kk, _)| *dd == 9.0 && *kk == k)
                .unwrap()
                .2
                .normalized_time_use
        };
        assert!(
            of9(PolicyKind::SprintCon) > 0.95,
            "at the tightest deadline SprintCon must cut it close"
        );
    }
}
