//! Grid-responsive scenario benchmark: proves the PR-level claims about
//! the curtailment / price / regulation event layer and emits them as
//! `BENCH_grid.json`.
//!
//! 1. **Transparency** — an explicitly wired `GridPlan::none()`
//!    reproduces all five committed golden digests bit for bit (the
//!    injector is zero-RNG and telemetry-silent when the plan is empty).
//! 2. **Determinism** — campaigns with active grid + fault plans, and
//!    datacenter runs with a feeder-curtailing plan, are bit-identical
//!    between sequential and parallel execution.
//! 3. **Compliance** — under SprintCon, grid-side draw (breaker power)
//!    is at or under a curtailed cap from the response deadline until
//!    the event clears, with zero breaker trips and a zero
//!    `grid.compliance_violations` count.
//! 4. **Separation** — during a curtailment overlapping an open-loop
//!    flash crowd, SprintCon's deadline-aware triage and hot-queue
//!    guard must still beat frequency-throttling SGCT on request p99.
//!
//! Flags: `--secs N` simulated seconds for the separation run (default
//! 240), `--seed N` (default 2019), `--out PATH` (default
//! `BENCH_grid.json`), `--check` CI gate mode (exit 1 on any failure).

use powersim::datacenter::DatacenterTopology;
use powersim::faults::{FaultKind, FaultPlan, StochasticFault};
use powersim::units::{Seconds, Watts};
use simkit::{
    qos_report, run_datacenter, run_digest, run_policy, Campaign, DcScenario, ExecConfig,
    GridEventKind, GridPlan, PolicyKind, Scenario, WorkloadSource,
};
use std::time::Instant;

struct Args {
    secs: f64,
    seed: u64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 240.0,
        seed: 2019,
        out: "BENCH_grid.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed expects an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_grid [--secs N] [--seed N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs >= 200.0, "--secs must cover the event schedule");
    args
}

/// The committed golden digests of `tests/soa_substrate.rs`, duplicated
/// by value so this binary gates against the pinned history, not a
/// shared constant that could drift with it.
const GOLDEN_DIGESTS: [(&str, u64); 5] = [
    ("sprintcon_seed42_180s", 0xdc54fcfe56a09238),
    ("sgctv2_seed7_180s", 0x156f96be14939a36),
    ("sgct_seed3_120s", 0x7df9c1e370ccfc0c),
    ("sprintcon_faults_seed11_240s", 0xd2977a8f6598214e),
    ("sgctv1_faults_seed5_240s", 0x7a8855ae0bac74db),
];

fn golden_fault_plan() -> FaultPlan {
    FaultPlan::none()
        .with_event(Seconds(40.0), Seconds(30.0), FaultKind::MonitorStuckAt)
        .with_event(
            Seconds(90.0),
            Seconds(45.0),
            FaultKind::ActuatorLag { tau: Seconds(4.0) },
        )
        .with_event(
            Seconds(150.0),
            Seconds(30.0),
            FaultKind::ServerCrash { server: 3 },
        )
        .with_stochastic(StochasticFault {
            kind: FaultKind::MonitorDropout,
            start_rate: 40.0 / 3600.0,
            mean_duration: Seconds(5.0),
        })
}

fn golden_case(label: &str) -> (Scenario, PolicyKind) {
    let (seed, secs, deadline, faults, kind) = match label {
        "sprintcon_seed42_180s" => (42, 180.0, 150.0, false, PolicyKind::SprintCon),
        "sgctv2_seed7_180s" => (7, 180.0, 150.0, false, PolicyKind::SgctV2),
        "sgct_seed3_120s" => (3, 120.0, 100.0, false, PolicyKind::Sgct),
        "sprintcon_faults_seed11_240s" => (11, 240.0, 200.0, true, PolicyKind::SprintCon),
        "sgctv1_faults_seed5_240s" => (5, 240.0, 200.0, true, PolicyKind::SgctV1),
        other => panic!("unknown golden case {other}"),
    };
    let mut b = Scenario::builder(seed)
        .duration(Seconds(secs))
        .deadline(Seconds(deadline))
        .grid(GridPlan::none());
    if faults {
        b = b.faults(golden_fault_plan());
    }
    (b.build().expect("golden scenario is valid"), kind)
}

/// One curtailment plus a price spike and a regulation pulse.
fn busy_grid_plan() -> GridPlan {
    GridPlan::curtailment(Seconds(60.0), Seconds(120.0), Watts(3000.0), Seconds(30.0))
        .with_event(
            Seconds(20.0),
            Seconds(40.0),
            GridEventKind::PriceSpike { multiplier: 3.0 },
        )
        .with_event(
            Seconds(200.0),
            Seconds(30.0),
            GridEventKind::FreqRegulation {
                delta_w: Watts(-150.0),
                duration_s: Seconds(20.0),
            },
        )
}

/// Gate 1: the empty plan reproduces every pinned golden digest.
fn transparency_gate() -> Result<(), String> {
    for (label, want) in GOLDEN_DIGESTS {
        let (sc, kind) = golden_case(label);
        let got = run_digest(&run_policy(&sc, kind));
        if got != want {
            return Err(format!(
                "{label}: digest 0x{got:016x} != golden 0x{want:016x}"
            ));
        }
    }
    Ok(())
}

/// Gate 2: active grid + fault plans shard bit-identically, at the rack
/// campaign level and through the datacenter market.
fn determinism_gate(seed: u64) -> Result<(), String> {
    let gridded = Scenario::builder(seed)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(busy_grid_plan())
        .faults(golden_fault_plan())
        .build()
        .map_err(|e| e.to_string())?;
    let mut c = Campaign::new();
    c.add(gridded.clone(), PolicyKind::SprintCon);
    c.add(gridded.clone(), PolicyKind::Sgct);
    c.add(gridded, PolicyKind::SgctV2);
    let seq = c.run_sequential();
    for jobs in [2usize, 4, 0] {
        let par = c.run_with(ExecConfig::jobs(jobs));
        for (p, s) in par.iter().zip(&seq) {
            if p.digest() != s.digest() {
                return Err(format!(
                    "jobs={jobs}: {} digest 0x{:016x} != sequential 0x{:016x}",
                    p.label,
                    p.digest(),
                    s.digest()
                ));
            }
        }
    }

    // Datacenter path: a feeder-curtailing plan through the market.
    let mut base = Scenario::paper_default(seed.wrapping_add(1));
    base.duration = Seconds(90.0);
    base.grid = GridPlan::curtailment(Seconds(0.0), Seconds(90.0), Watts(3300.0), Seconds(30.0));
    let topo = DatacenterTopology::uniform(
        2,
        2,
        Watts(2.0 * 3200.0 + 800.0),
        Watts(4.0 * 3200.0 + 1600.0),
    )
    .map_err(|e| e.to_string())?;
    let dc = DcScenario::new(base, topo).map_err(|e| e.to_string())?;
    let dseq = run_datacenter(&dc, ExecConfig::sequential()).map_err(|e| e.to_string())?;
    for jobs in [2usize, 4] {
        let dpar = run_datacenter(&dc, ExecConfig::jobs(jobs)).map_err(|e| e.to_string())?;
        if dpar.digest != dseq.digest {
            return Err(format!(
                "dc jobs={jobs}: digest 0x{:016x} != sequential 0x{:016x}",
                dpar.digest, dseq.digest
            ));
        }
    }
    // And the curtailment actually reached the feeder budget.
    for round in &dseq.rounds {
        if round.budget.0 > 400.0 + 1e-9 {
            return Err(format!(
                "epoch {}: curtailed feeder budget {} above 4*3300-4*3200 = 400 W",
                round.epoch, round.budget
            ));
        }
    }
    Ok(())
}

struct Compliance {
    peak_cb_post_deadline: f64,
    violations: u64,
    trips: usize,
}

/// Gate 3: grid-side draw obeys the cap from the deadline on, tripless.
fn compliance_gate(seed: u64) -> Result<Compliance, String> {
    let sc = Scenario::builder(seed)
        .duration(Seconds(240.0))
        .deadline(Seconds(200.0))
        .grid(GridPlan::curtailment(
            Seconds(60.0),
            Seconds(120.0),
            Watts(3000.0),
            Seconds(30.0),
        ))
        .build()
        .map_err(|e| e.to_string())?;
    let out = run_policy(&sc, PolicyKind::SprintCon);
    let trips = out.recorder.samples().iter().filter(|s| s.tripped).count();
    if trips != 0 {
        return Err(format!("{trips} breaker trips during curtailment"));
    }
    let mut peak = 0.0f64;
    for s in out.recorder.samples() {
        if s.t.0 > 91.0 && s.t.0 <= 180.0 {
            peak = peak.max(s.cb_power.0);
        }
    }
    if peak > 3000.0 + 1e-6 {
        return Err(format!(
            "post-deadline grid-side draw {peak:.1} W > 3000 W cap"
        ));
    }
    let violations = out.metrics.counter("grid.compliance_violations");
    if violations != 0 {
        return Err(format!("{violations} engine-counted compliance violations"));
    }
    Ok(Compliance {
        peak_cb_post_deadline: peak,
        violations,
        trips,
    })
}

/// A flash crowd overlapping the curtailment window, offered hot enough
/// (ρ > 1 at demand peaks) that queues form whenever interactive cores
/// are throttled — the regime the hot-queue guard exists for.
fn curtailed_flash_crowd(seed: u64, secs: f64) -> Scenario {
    let mut sc = Scenario::paper_default(seed);
    let mut src = WorkloadSource::open_loop_flash_crowd();
    if let WorkloadSource::OpenLoop { arrivals, .. } = &mut src {
        arrivals.peak_rps_per_core = 60.0;
    }
    sc.workload = src;
    sc.duration = Seconds(secs);
    sc.grid = GridPlan::curtailment(Seconds(60.0), Seconds(120.0), Watts(3000.0), Seconds(30.0));
    sc
}

struct Separation {
    sprintcon_p99: f64,
    sgct_p99: f64,
}

/// Gate 4: the hot-queue guard keeps SprintCon's request tail ahead of
/// SGCT's even while both racks ride through the curtailment.
fn separation_gate(seed: u64, secs: f64) -> Result<Separation, String> {
    let a = run_policy(&curtailed_flash_crowd(seed, secs), PolicyKind::SprintCon);
    let b = run_policy(&curtailed_flash_crowd(seed, secs), PolicyKind::Sgct);
    let qa = qos_report(&a.recorder, &[0.1, 0.25, 1.0]);
    let qb = qos_report(&b.recorder, &[0.1, 0.25, 1.0]);
    let pa = qa.request_p99_s.ok_or("SprintCon run has no tail")?;
    let pb = qb.request_p99_s.ok_or("SGCT run has no tail")?;
    if pa >= pb {
        return Err(format!(
            "no p99 separation under curtailment: SprintCon {pa:.4}s vs SGCT {pb:.4}s"
        ));
    }
    Ok(Separation {
        sprintcon_p99: pa,
        sgct_p99: pb,
    })
}

fn main() {
    let args = parse_args();
    println!("bench_grid: seed {} x {}s", args.seed, args.secs);
    let t0 = Instant::now();

    println!("transparency gate (empty plan vs 5 golden digests)...");
    if let Err(e) = transparency_gate() {
        eprintln!("TRANSPARENCY VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: empty grid plans are bit-transparent");

    println!("determinism gate (grid+faults campaign, dc market, seq vs workers)...");
    if let Err(e) = determinism_gate(args.seed) {
        eprintln!("DETERMINISM VIOLATION: {e}");
        std::process::exit(1);
    }
    println!("  ok: active-plan digests bit-identical across worker counts");

    println!("compliance gate (3 kW cap, 30 s deadline, SprintCon)...");
    let compliance = match compliance_gate(args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("COMPLIANCE VIOLATION: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "  ok: post-deadline peak {:.1} W <= 3000 W, {} trips",
        compliance.peak_cb_post_deadline, compliance.trips
    );

    println!("separation gate (curtailment x flash crowd, SprintCon vs SGCT)...");
    let separation = match separation_gate(args.seed, args.secs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SEPARATION VIOLATION: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "  ok: p99 {:.4}s (SprintCon) < {:.4}s (SGCT)",
        separation.sprintcon_p99, separation.sgct_p99
    );

    let wall = t0.elapsed().as_secs_f64();
    let json = format!(
        "{{\n  \"seed\": {},\n  \"secs\": {},\n  \"wall_secs\": {:.3},\n  \
         \"transparency\": \"pass\",\n  \"determinism\": \"pass\",\n  \
         \"compliance\": {{\n    \"cap_w\": 3000.0,\n    \
         \"peak_cb_post_deadline_w\": {:.3},\n    \"violations\": {},\n    \
         \"trips\": {}\n  }},\n  \"separation\": {{\n    \
         \"sprintcon_p99_s\": {:.6},\n    \"sgct_p99_s\": {:.6}\n  }}\n}}\n",
        args.seed,
        args.secs,
        wall,
        compliance.peak_cb_post_deadline,
        compliance.violations,
        compliance.trips,
        separation.sprintcon_p99,
        separation.sgct_p99,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("json: {}", args.out);
    if args.check_only {
        println!("bench_grid --check: all gates passed");
    }
}
