//! E4 — Fig. 5: uncontrolled computational sprinting (SGCT).
//!
//! Paper narrative: SGCT does not rigorously control the sprinting power
//! to its budget, trips the circuit breaker within the first overload
//! window, then runs the entire rack off the UPS; the battery runs out a
//! few minutes later, and with the breaker still recovering the servers
//! lose power entirely — frequencies drop to zero (Fig. 5(b); average
//! frequency 0.64 interactive / 0.71 batch over the window).

use simkit::ascii_plot::multi_chart;
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    banner("Fig. 5 — uncontrolled sprinting (SGCT): power and frequency curves");
    let scenario = Scenario::paper_default(2019);
    let mut runs = Campaign::new()
        .with_run(scenario, PolicyKind::Sgct)
        .with_exec(args.exec)
        .run();
    let run = runs.remove(0).output;
    let (rec, summary) = (&run.recorder, &run.summary);

    let cb: Vec<f64> = rec.samples().iter().map(|s| s.cb_power.0).collect();
    let total: Vec<f64> = rec.samples().iter().map(|s| s.p_total.0).collect();
    let ups: Vec<f64> = rec.samples().iter().map(|s| s.ups_power.0).collect();
    let budget: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.p_cb_target.map_or(0.0, |w| w.0))
        .collect();
    println!(
        "{}",
        multi_chart(
            "Fig.5(a) power (W)",
            &[
                ("CB actual", &cb),
                ("Total", &total),
                ("UPS", &ups),
                ("CB budget", &budget)
            ],
            76,
            12,
        )
    );
    let fi: Vec<f64> = rec
        .samples()
        .iter()
        .map(|s| s.mean_freq_interactive)
        .collect();
    let fb: Vec<f64> = rec.samples().iter().map(|s| s.mean_freq_batch).collect();
    println!(
        "{}",
        multi_chart(
            "Fig.5(b) normalized frequency",
            &[("Interactive", &fi), ("Batch", &fb)],
            76,
            10,
        )
    );

    let rows: Vec<Vec<f64>> = rec
        .samples()
        .iter()
        .map(|s| {
            vec![
                s.t.0,
                s.p_total.0,
                s.cb_power.0,
                s.ups_power.0,
                s.p_cb_target.map_or(f64::NAN, |w| w.0),
                s.mean_freq_interactive,
                s.mean_freq_batch,
                s.ups_soc,
            ]
        })
        .collect();
    let path = write_csv(
        "fig5_uncontrolled.csv",
        "t_s,p_total_w,cb_w,ups_w,cb_budget_w,freq_interactive,freq_batch,ups_soc",
        &rows,
    );
    println!("csv: {}", path.display());

    println!(
        "\ntrips: {}   UPS exhausted/shutdown at: {:?}   avg freq interactive {:.2} batch {:.2}",
        summary.trips, summary.shutdown_at, summary.avg_freq_interactive, summary.avg_freq_batch
    );
    println!("paper: trips in ~150 s; UPS out after the 11th minute; avg 0.64 / 0.71");

    // The paper's qualitative structure, asserted.
    assert!(summary.trips >= 1, "SGCT must trip the breaker");
    let first_trip = rec.samples().iter().position(|s| s.tripped).unwrap();
    assert!(first_trip <= 150, "trips inside the first overload window");
    assert!(summary.shutdown, "UPS exhaustion must shut the rack down");
    let down = summary.shutdown_at.unwrap();
    assert!(
        (8.0..=13.0).contains(&down.as_minutes()),
        "shutdown around the paper's 11th minute, got {down}"
    );
    // Frequencies are zero after the shutdown.
    let last = rec.samples().last().unwrap();
    assert_eq!(last.mean_freq_interactive, 0.0);
    assert_eq!(last.mean_freq_batch, 0.0);
}
