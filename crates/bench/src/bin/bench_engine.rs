//! Execution-engine benchmark: proves the two PR-level performance
//! claims and emits them as `BENCH_engine.json`.
//!
//! 1. **Campaign parallelism** — wall-clock of a 16-run campaign
//!    (4 seeds × 4 policies) sequentially vs under 1/2/4/8 worker
//!    threads, with a digest comparison proving every parallel pass is
//!    bit-identical to the sequential one. Speedup scales with the
//!    host's core count (the JSON records `cpus` so a 1-core CI runner's
//!    ~1.0× is interpretable); the determinism check is the invariant
//!    that must hold everywhere.
//! 2. **MPC hot path** — mean ns per control period for the
//!    pre-refactor allocating path (fresh `Mat` + bounds +
//!    `QpProblem::new` + `solve` every period, replicated here
//!    verbatim) vs the current in-place path
//!    (`MpcController::compute`: preallocated problem + `QpWorkspace`,
//!    `solve_with`).
//!
//! Flags: `--secs N` scenario length (default 120), `--out PATH`
//! (default `BENCH_engine.json`), `--check` determinism-only mode for
//! CI (small campaign, no timing sweep, exit 1 on digest mismatch).

use powersim::units::Seconds;
use simkit::{Campaign, ExecConfig, PolicyKind, Scenario};
use sprint_control::linalg::Mat;
use sprint_control::mpc::{MpcConfig, MpcController};
use sprint_control::qp::QpProblem;
use std::time::Instant;

struct Args {
    secs: f64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 120.0,
        out: "BENCH_engine.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_engine [--secs N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// The 16-run campaign: 4 seeds × every §VII policy.
fn campaign(secs: f64) -> Campaign {
    let scenarios = (0..4).map(move |i| {
        let mut sc = Scenario::paper_default(2019 + i);
        sc.duration = Seconds(secs);
        sc
    });
    Campaign::new().with_grid(scenarios, &PolicyKind::ALL)
}

/// Compare digests run-by-run; returns the mismatched labels.
fn digest_mismatches(
    seq: &[simkit::CampaignResult],
    par: &[simkit::CampaignResult],
) -> Vec<String> {
    assert_eq!(seq.len(), par.len(), "result counts must agree");
    seq.iter()
        .zip(par)
        .filter(|(a, b)| a.digest() != b.digest())
        .map(|(a, _)| a.label.clone())
        .collect()
}

/// One control period of the *pre-refactor* MPC: fresh Hessian, fresh
/// gradient, fresh bound vectors, fresh `QpProblem`, allocating FISTA
/// buffers inside `solve` — the per-period construction this PR removed,
/// replicated operation-for-operation as the "before" measurement.
#[allow(clippy::too_many_arguments)] // mirrors the old controller state field-for-field
fn compute_allocating(
    cfg: &MpcConfig,
    gains: &[f64],
    r: &[f64],
    r_floor: f64,
    fmin: &[f64],
    fmax: &[f64],
    p_fb: f64,
    target: f64,
    f_now: &[f64],
) -> f64 {
    let n = gains.len();
    let (lp, lc) = (cfg.lp, cfg.lc);
    let dim = n * lc;
    let mut h = Mat::zeros(dim, dim);
    let mut g = vec![0.0; dim];
    let kf: f64 = gains.iter().zip(f_now).map(|(k, f)| k * f).sum();
    for step in 1..=lp {
        let b = step.min(lc) - 1;
        let decay = (-(step as f64) * cfg.period / cfg.tau_r).exp();
        let reference = target - decay * (target - p_fb);
        let bn = reference - p_fb + kf;
        for j in 0..n {
            let kj = gains[j];
            g[b * n + j] += -2.0 * cfg.q * bn * kj;
            for i in 0..n {
                h[(b * n + j, b * n + i)] += 2.0 * cfg.q * kj * gains[i];
            }
        }
    }
    for b in 0..lc {
        let steps_fed = if b + 1 < lc { 1 } else { lp - (lc - 1) };
        let share = steps_fed as f64 / lp as f64;
        for j in 0..n {
            let rj = cfg.r_scale * r[j].max(r_floor) * share;
            h[(b * n + j, b * n + j)] += 2.0 * rj;
            g[b * n + j] += -2.0 * rj * fmax[j];
        }
    }
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..lc {
        lo.extend_from_slice(fmin);
        hi.extend_from_slice(fmax);
    }
    let qp = QpProblem::new(h, g, lo, hi).solve(1e-7, 2_000);
    qp.x[0]
}

/// Deterministic feedback sequence shared by both measured paths.
fn feedback(i: usize) -> f64 {
    1500.0 + 80.0 * ((i as f64) * 0.37).sin()
}

fn bench_mpc_paths(channels: usize, periods: usize) -> (f64, f64) {
    let cfg = MpcConfig::paper_default();
    let gains = vec![15.0; channels];
    let fmin = vec![0.2; channels];
    let fmax = vec![1.0; channels];
    let r = vec![1.0; channels];
    let f_now = vec![0.6; channels];
    let target = 1700.0;

    let mut ctrl = MpcController::new(cfg, gains.clone(), fmin.clone(), fmax.clone());
    let r_floor = ctrl.r_floor;
    let mut sink = 0.0;

    // Warm up both paths (page in, branch-train) before timing.
    for i in 0..10 {
        sink += ctrl.compute(feedback(i), target, &f_now).freqs[0];
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }

    let t0 = Instant::now();
    for i in 0..periods {
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }
    let before_ns = t0.elapsed().as_nanos() as f64 / periods as f64;

    let t1 = Instant::now();
    for i in 0..periods {
        sink += ctrl.compute(feedback(i), target, &f_now).freqs[0];
    }
    let after_ns = t1.elapsed().as_nanos() as f64 / periods as f64;

    std::hint::black_box(sink);
    (before_ns, after_ns)
}

fn main() {
    let args = parse_args();
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    if args.check_only {
        // CI determinism gate: a small campaign, sequential vs 4 workers,
        // digest-compared run by run.
        let c = campaign(args.secs.min(30.0));
        let seq = c.run_sequential();
        let par = c.run_with(ExecConfig::jobs(4));
        let bad = digest_mismatches(&seq, &par);
        if bad.is_empty() {
            println!(
                "determinism check passed: {} runs bit-identical (seq vs 4 workers)",
                seq.len()
            );
            return;
        }
        eprintln!("DETERMINISM VIOLATION in {} runs: {bad:?}", bad.len());
        std::process::exit(1);
    }

    println!("bench_engine: {cpus}-core host, {}s scenarios", args.secs);
    let c = campaign(args.secs);

    println!("sequential pass ({} runs)...", c.len());
    let t0 = Instant::now();
    let seq = c.run_sequential();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {seq_ms:.0} ms");

    let widths = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut all_match = true;
    for &jobs in &widths {
        println!("parallel pass, {jobs} worker(s)...");
        let t = Instant::now();
        let par = c.run_with(ExecConfig::jobs(jobs));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let bad = digest_mismatches(&seq, &par);
        all_match &= bad.is_empty();
        if !bad.is_empty() {
            eprintln!("  DETERMINISM VIOLATION: {bad:?}");
        }
        println!("  {ms:.0} ms  (speedup {:.2}x)", seq_ms / ms);
        rows.push((jobs, ms));
    }

    println!("MPC hot path, 64 channels x 200 periods...");
    let (before_ns, after_ns) = bench_mpc_paths(64, 200);
    println!(
        "  before (alloc per period): {:.0} ns/period\n  after  (workspace reuse) : {:.0} ns/period  ({:.2}x)",
        before_ns,
        after_ns,
        before_ns / after_ns
    );

    let jobs_json: Vec<String> = rows
        .iter()
        .map(|(j, ms)| {
            format!(
                "{{\"jobs\": {j}, \"wall_ms\": {ms:.1}, \"speedup\": {:.3}}}",
                seq_ms / ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"host\": {{\"cpus\": {cpus}}},\n  \"campaign\": {{\"runs\": {}, \"scenario_secs\": {}}},\n  \"wall_clock\": {{\"seq_ms\": {seq_ms:.1}, \"parallel\": [\n    {}\n  ]}},\n  \"determinism\": {{\"checked\": true, \"bit_identical\": {all_match}}},\n  \"mpc_hot_path\": {{\"channels\": 64, \"periods\": 200, \"before_ns_per_period\": {before_ns:.0}, \"after_ns_per_period\": {after_ns:.0}, \"improvement\": {:.3}}}\n}}\n",
        c.len(),
        args.secs,
        jobs_json.join(",\n    "),
        before_ns / after_ns,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_engine.json");
    println!("wrote {}", args.out);

    if !all_match {
        eprintln!("determinism check FAILED");
        std::process::exit(1);
    }
}
