//! Execution-engine benchmark: proves the two PR-level performance
//! claims and emits them as `BENCH_engine.json`.
//!
//! 1. **Campaign parallelism** — wall-clock of a 16-run campaign
//!    (4 seeds × 4 policies) sequentially vs under 1/2/4/8 worker
//!    threads, with a digest comparison proving every parallel pass is
//!    bit-identical to the sequential one. Speedup scales with the
//!    host's core count; on a 1-core host the JSON carries
//!    `"speedup_meaningful": false` and no speedup claims are printed
//!    (the numbers are pure scheduling noise there). The determinism
//!    check is the invariant that must hold everywhere.
//! 2. **MPC hot path** — mean ns per control period at 64 channels for
//!    three generations of the solve: the pre-workspace allocating path
//!    (fresh `Mat` + bounds + `QpProblem::new` + `solve` every period,
//!    replicated here verbatim), the dense FISTA workspace path
//!    (`MpcBackend::DenseFista`), and the structured
//!    diagonal-plus-rank-one path (`MpcBackend::Structured`, the
//!    production default). An **agreement gate** runs both backends over
//!    the same feedback sequence and requires the decision vectors to
//!    match within 1e-6 with both KKT-certified.
//!
//! Flags: `--secs N` scenario length (default 120), `--out PATH`
//! (default `BENCH_engine.json`), `--check` CI gate mode (small
//! campaign, no wall-clock sweep; exit 1 on digest mismatch, on
//! dense-vs-structured disagreement > 1e-6, or on a structured path
//! slower than the dense one).

use powersim::units::Seconds;
use simkit::{Campaign, ExecConfig, PolicyKind, Scenario};
use sprint_control::linalg::Mat;
use sprint_control::mpc::{MpcBackend, MpcConfig, MpcController};
use sprint_control::qp::QpProblem;
use std::time::Instant;

struct Args {
    secs: f64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 120.0,
        out: "BENCH_engine.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_engine [--secs N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// The 16-run campaign: 4 seeds × every §VII policy.
fn campaign(secs: f64) -> Campaign {
    let scenarios = (0..4).map(move |i| {
        let mut sc = Scenario::paper_default(2019 + i);
        sc.duration = Seconds(secs);
        sc
    });
    Campaign::new().with_grid(scenarios, &PolicyKind::ALL)
}

/// Compare digests run-by-run; returns the mismatched labels.
fn digest_mismatches(
    seq: &[simkit::CampaignResult],
    par: &[simkit::CampaignResult],
) -> Vec<String> {
    assert_eq!(seq.len(), par.len(), "result counts must agree");
    seq.iter()
        .zip(par)
        .filter(|(a, b)| a.digest() != b.digest())
        .map(|(a, _)| a.label.clone())
        .collect()
}

/// One control period of the *pre-refactor* MPC: fresh Hessian, fresh
/// gradient, fresh bound vectors, fresh `QpProblem`, allocating FISTA
/// buffers inside `solve` — the per-period construction this PR removed,
/// replicated operation-for-operation as the "before" measurement.
#[allow(clippy::too_many_arguments)] // mirrors the old controller state field-for-field
fn compute_allocating(
    cfg: &MpcConfig,
    gains: &[f64],
    r: &[f64],
    r_floor: f64,
    fmin: &[f64],
    fmax: &[f64],
    p_fb: f64,
    target: f64,
    f_now: &[f64],
) -> f64 {
    let n = gains.len();
    let (lp, lc) = (cfg.lp, cfg.lc);
    let dim = n * lc;
    let mut h = Mat::zeros(dim, dim);
    let mut g = vec![0.0; dim];
    let kf: f64 = gains.iter().zip(f_now).map(|(k, f)| k * f).sum();
    for step in 1..=lp {
        let b = step.min(lc) - 1;
        let decay = (-(step as f64) * cfg.period / cfg.tau_r).exp();
        let reference = target - decay * (target - p_fb);
        let bn = reference - p_fb + kf;
        for j in 0..n {
            let kj = gains[j];
            g[b * n + j] += -2.0 * cfg.q * bn * kj;
            for i in 0..n {
                h[(b * n + j, b * n + i)] += 2.0 * cfg.q * kj * gains[i];
            }
        }
    }
    for b in 0..lc {
        let steps_fed = if b + 1 < lc { 1 } else { lp - (lc - 1) };
        let share = steps_fed as f64 / lp as f64;
        for j in 0..n {
            let rj = cfg.r_scale * r[j].max(r_floor) * share;
            h[(b * n + j, b * n + j)] += 2.0 * rj;
            g[b * n + j] += -2.0 * rj * fmax[j];
        }
    }
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..lc {
        lo.extend_from_slice(fmin);
        hi.extend_from_slice(fmax);
    }
    let qp = QpProblem::new(h, g, lo, hi).solve(1e-7, 2_000);
    qp.x[0]
}

/// Deterministic feedback sequence shared by every measured path.
fn feedback(i: usize) -> f64 {
    1500.0 + 80.0 * ((i as f64) * 0.37).sin()
}

/// Per-period cost of the three MPC generations, ns.
struct MpcTimings {
    alloc_ns: f64,
    dense_ns: f64,
    structured_ns: f64,
}

/// Worst-case dense-vs-structured deviation over a feedback sweep.
struct Agreement {
    max_solution_dev: f64,
    max_kkt_residual: f64,
}

impl Agreement {
    fn pass(&self, tol: f64) -> bool {
        self.max_solution_dev <= tol && self.max_kkt_residual <= tol
    }
}

fn mk_controller(channels: usize, backend: MpcBackend) -> MpcController {
    MpcController::with_backend(
        MpcConfig::paper_default(),
        vec![15.0; channels],
        vec![0.2; channels],
        vec![1.0; channels],
        backend,
    )
}

/// The agreement gate: both backends on identical inputs, every period.
/// Decision vectors must track within `1e-6` and both solves must stay
/// KKT-certified — this is what licenses shipping the structured path as
/// the default.
fn check_agreement(channels: usize, periods: usize) -> Agreement {
    let mut dense = mk_controller(channels, MpcBackend::DenseFista);
    let mut structured = mk_controller(channels, MpcBackend::Structured);
    let f_now = vec![0.6; channels];
    let target = 1700.0;
    let mut agg = Agreement {
        max_solution_dev: 0.0,
        max_kkt_residual: 0.0,
    };
    for i in 0..periods {
        let a = dense.compute(feedback(i), target, &f_now);
        let b = structured.compute(feedback(i), target, &f_now);
        assert!(a.qp.converged && b.qp.converged, "period {i} diverged");
        for (x, y) in a.qp.x.iter().zip(&b.qp.x) {
            agg.max_solution_dev = agg.max_solution_dev.max((x - y).abs());
        }
        agg.max_kkt_residual = agg
            .max_kkt_residual
            .max(a.qp.kkt_residual)
            .max(b.qp.kkt_residual);
    }
    agg
}

fn bench_mpc_paths(channels: usize, periods: usize) -> MpcTimings {
    let cfg = MpcConfig::paper_default();
    let gains = vec![15.0; channels];
    let fmin = vec![0.2; channels];
    let fmax = vec![1.0; channels];
    let r = vec![1.0; channels];
    let f_now = vec![0.6; channels];
    let target = 1700.0;

    let mut dense = mk_controller(channels, MpcBackend::DenseFista);
    let mut structured = mk_controller(channels, MpcBackend::Structured);
    let r_floor = dense.r_floor;
    let mut sink = 0.0;

    // Warm up all paths (page in, branch-train) before timing.
    for i in 0..10 {
        sink += dense.compute(feedback(i), target, &f_now).freqs[0];
        sink += structured.compute(feedback(i), target, &f_now).freqs[0];
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }

    let t0 = Instant::now();
    for i in 0..periods {
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }
    let alloc_ns = t0.elapsed().as_nanos() as f64 / periods as f64;

    let t1 = Instant::now();
    for i in 0..periods {
        sink += dense.compute(feedback(i), target, &f_now).freqs[0];
    }
    let dense_ns = t1.elapsed().as_nanos() as f64 / periods as f64;

    // The structured path is orders of magnitude cheaper; run 50× the
    // periods so the measurement isn't timer-resolution noise.
    let structured_periods = periods * 50;
    let t2 = Instant::now();
    for i in 0..structured_periods {
        sink += structured.compute(feedback(i), target, &f_now).freqs[0];
    }
    let structured_ns = t2.elapsed().as_nanos() as f64 / structured_periods as f64;

    std::hint::black_box(sink);
    MpcTimings {
        alloc_ns,
        dense_ns,
        structured_ns,
    }
}

fn main() {
    let args = parse_args();
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    if args.check_only {
        // CI gate 1: determinism — a small campaign, sequential vs 4
        // workers, digest-compared run by run (under the default
        // structured MPC backend, so the gate also proves the new solver
        // is seed-deterministic).
        let c = campaign(args.secs.min(30.0));
        let seq = c.run_sequential();
        let par = c.run_with(ExecConfig::jobs(4));
        let bad = digest_mismatches(&seq, &par);
        if !bad.is_empty() {
            eprintln!("DETERMINISM VIOLATION in {} runs: {bad:?}", bad.len());
            std::process::exit(1);
        }
        println!(
            "determinism check passed: {} runs bit-identical (seq vs 4 workers)",
            seq.len()
        );
        // CI gate 2: backend agreement — dense and structured must stay
        // within 1e-6 of each other, KKT-certified.
        let agreement = check_agreement(64, 50);
        if !agreement.pass(1e-6) {
            eprintln!(
                "BACKEND DISAGREEMENT: max solution dev {:.3e}, max KKT residual {:.3e} (gate 1e-6)",
                agreement.max_solution_dev, agreement.max_kkt_residual
            );
            std::process::exit(1);
        }
        println!(
            "agreement check passed: dense vs structured within {:.3e} (KKT ≤ {:.3e})",
            agreement.max_solution_dev, agreement.max_kkt_residual
        );
        // CI gate 3: the structured path must actually be the fast one.
        let t = bench_mpc_paths(64, 50);
        if t.structured_ns >= t.dense_ns {
            eprintln!(
                "PERF REGRESSION: structured {:.0} ns/period ≥ dense {:.0} ns/period",
                t.structured_ns, t.dense_ns
            );
            std::process::exit(1);
        }
        println!(
            "perf check passed: structured {:.0} ns/period vs dense {:.0} ns/period ({:.1}x)",
            t.structured_ns,
            t.dense_ns,
            t.dense_ns / t.structured_ns
        );
        return;
    }

    // Wall-clock speedups are only a claim worth making with real
    // parallel hardware underneath; on a 1-core host the parallel passes
    // still run (the determinism gate matters everywhere) but the ratios
    // are scheduling noise, so we neither print nor emphasize them.
    let speedup_meaningful = cpus > 1;

    println!("bench_engine: {cpus}-core host, {}s scenarios", args.secs);
    let c = campaign(args.secs);

    println!("sequential pass ({} runs)...", c.len());
    let t0 = Instant::now();
    let seq = c.run_sequential();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {seq_ms:.0} ms");

    let widths = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut all_match = true;
    for &jobs in &widths {
        println!("parallel pass, {jobs} worker(s)...");
        let t = Instant::now();
        let par = c.run_with(ExecConfig::jobs(jobs));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let bad = digest_mismatches(&seq, &par);
        all_match &= bad.is_empty();
        if !bad.is_empty() {
            eprintln!("  DETERMINISM VIOLATION: {bad:?}");
        }
        if speedup_meaningful {
            println!("  {ms:.0} ms  (speedup {:.2}x)", seq_ms / ms);
        } else {
            println!("  {ms:.0} ms  (1-core host; speedup not meaningful)");
        }
        rows.push((jobs, ms));
    }

    println!("MPC agreement gate, 64 channels x 200 periods...");
    let agreement = check_agreement(64, 200);
    let agreement_ok = agreement.pass(1e-6);
    println!(
        "  max solution dev {:.3e}, max KKT residual {:.3e}  ({})",
        agreement.max_solution_dev,
        agreement.max_kkt_residual,
        if agreement_ok { "pass" } else { "FAIL" }
    );

    println!("MPC hot path, 64 channels x 200 periods...");
    let t = bench_mpc_paths(64, 200);
    println!(
        "  allocating (pre-workspace) : {:.0} ns/period\n  dense FISTA (workspace)    : {:.0} ns/period\n  structured rank-one (default): {:.0} ns/period  ({:.1}x vs dense)",
        t.alloc_ns,
        t.dense_ns,
        t.structured_ns,
        t.dense_ns / t.structured_ns
    );

    let jobs_json: Vec<String> = rows
        .iter()
        .map(|(j, ms)| {
            format!(
                "{{\"jobs\": {j}, \"wall_ms\": {ms:.1}, \"speedup\": {:.3}}}",
                seq_ms / ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"host\": {{\"cpus\": {cpus}}},\n  \"campaign\": {{\"runs\": {}, \"scenario_secs\": {}}},\n  \"wall_clock\": {{\"seq_ms\": {seq_ms:.1}, \"speedup_meaningful\": {speedup_meaningful}, \"parallel\": [\n    {}\n  ]}},\n  \"determinism\": {{\"checked\": true, \"bit_identical\": {all_match}}},\n  \"mpc_hot_path\": {{\"channels\": 64, \"periods\": 200, \"alloc_ns_per_period\": {:.0}, \"dense_ns_per_period\": {:.0}, \"structured_ns_per_period\": {:.0}, \"speedup_structured_vs_dense\": {:.1}, \"agreement\": {{\"max_solution_dev\": {:.3e}, \"max_kkt_residual\": {:.3e}, \"pass\": {agreement_ok}}}}}\n}}\n",
        c.len(),
        args.secs,
        jobs_json.join(",\n    "),
        t.alloc_ns,
        t.dense_ns,
        t.structured_ns,
        t.dense_ns / t.structured_ns,
        agreement.max_solution_dev,
        agreement.max_kkt_residual,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_engine.json");
    println!("wrote {}", args.out);

    if !all_match {
        eprintln!("determinism check FAILED");
        std::process::exit(1);
    }
    if !agreement_ok {
        eprintln!("agreement check FAILED");
        std::process::exit(1);
    }
}
