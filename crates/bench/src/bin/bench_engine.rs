//! Execution-engine benchmark: proves the two PR-level performance
//! claims and emits them as `BENCH_engine.json`.
//!
//! 1. **Campaign parallelism** — wall-clock of a 16-run campaign
//!    (4 seeds × 4 policies) sequentially vs under 1/2/4/8 worker
//!    threads, with a digest comparison proving every parallel pass is
//!    bit-identical to the sequential one. Speedup scales with the
//!    host's core count; on a 1-core host the JSON carries
//!    `"speedup_meaningful": false` and no speedup claims are printed
//!    (the numbers are pure scheduling noise there). The determinism
//!    check is the invariant that must hold everywhere.
//! 2. **MPC hot path** — mean ns per control period at 64 channels for
//!    three generations of the solve: the pre-workspace allocating path
//!    (fresh `Mat` + bounds + `QpProblem::new` + `solve` every period,
//!    replicated here verbatim), the dense FISTA workspace path
//!    (`MpcBackend::DenseFista`), and the structured
//!    diagonal-plus-rank-one path (`MpcBackend::Structured`, the
//!    production default). An **agreement gate** runs both backends over
//!    the same feedback sequence and requires the decision vectors to
//!    match within 1e-6 with both KKT-certified. Also reports the dense
//!    oracle's kernel speedup: the digest-frozen scalar `Mat::matvec`
//!    vs the unrolled `Mat::matvec_into` the oracle's FISTA gradient
//!    runs now, agreement-gated at 1e-9 relative.
//! 3. **Rack substrate** — ns per plant tick at the paper-default rack
//!    (16 servers × 8 cores), single-threaded, for the pre-rework
//!    AoS substrate (`Rack { servers: Vec<Server> }` with allocating
//!    per-`CoreId` access, replicated here verbatim) vs the SoA slab
//!    substrate, driven by an identical deterministic stimulus. A
//!    model-agreement gate requires both substrates to produce
//!    bit-identical power/frequency accumulations — the speedup is only
//!    a claim if the two compute the same plant. Also measures the
//!    whole-engine `server_ticks_per_sec` and compares against the
//!    committed pre-rework full-loop baseline.
//!
//! Flags: `--secs N` scenario length (default 120), `--out PATH`
//! (default `BENCH_engine.json`), `--check` CI gate mode (small
//! campaign, no wall-clock sweep; exit 1 on digest mismatch, on
//! dense-vs-structured disagreement > 1e-6, on a structured path
//! slower than the dense one, on substrate model disagreement, on a
//! substrate speedup under the floor, or on a full loop slower than
//! the committed pre-rework baseline).

use powersim::cpu::CoreRole;
use powersim::rack::Rack;
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use simkit::policy::tests_support::FixedPolicy;
use simkit::{Campaign, ExecConfig, PolicyKind, Scenario};
use sprint_control::linalg::Mat;
use sprint_control::mpc::{MpcBackend, MpcConfig, MpcController};
use sprint_control::qp::QpProblem;
use std::time::Instant;

struct Args {
    secs: f64,
    out: String,
    check_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 120.0,
        out: "BENCH_engine.json".to_string(),
        check_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check_only = true,
            "--secs" => {
                let v = it.next().expect("--secs needs a value");
                args.secs = v.parse().expect("--secs expects seconds");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_engine [--secs N] [--out PATH] [--check]");
                std::process::exit(2);
            }
        }
    }
    assert!(args.secs > 0.0, "--secs must be positive");
    args
}

/// The 16-run campaign: 4 seeds × every §VII policy.
fn campaign(secs: f64) -> Campaign {
    let scenarios = (0..4).map(move |i| {
        let mut sc = Scenario::paper_default(2019 + i);
        sc.duration = Seconds(secs);
        sc
    });
    Campaign::new().with_grid(scenarios, &PolicyKind::ALL)
}

/// Compare digests run-by-run; returns the mismatched labels.
fn digest_mismatches(
    seq: &[simkit::CampaignResult],
    par: &[simkit::CampaignResult],
) -> Vec<String> {
    assert_eq!(seq.len(), par.len(), "result counts must agree");
    seq.iter()
        .zip(par)
        .filter(|(a, b)| a.digest() != b.digest())
        .map(|(a, _)| a.label.clone())
        .collect()
}

/// One control period of the *pre-refactor* MPC: fresh Hessian, fresh
/// gradient, fresh bound vectors, fresh `QpProblem`, allocating FISTA
/// buffers inside `solve` — the per-period construction this PR removed,
/// replicated operation-for-operation as the "before" measurement.
#[allow(clippy::too_many_arguments)] // mirrors the old controller state field-for-field
fn compute_allocating(
    cfg: &MpcConfig,
    gains: &[f64],
    r: &[f64],
    r_floor: f64,
    fmin: &[f64],
    fmax: &[f64],
    p_fb: f64,
    target: f64,
    f_now: &[f64],
) -> f64 {
    let n = gains.len();
    let (lp, lc) = (cfg.lp, cfg.lc);
    let dim = n * lc;
    let mut h = Mat::zeros(dim, dim);
    let mut g = vec![0.0; dim];
    let kf: f64 = gains.iter().zip(f_now).map(|(k, f)| k * f).sum();
    for step in 1..=lp {
        let b = step.min(lc) - 1;
        let decay = (-(step as f64) * cfg.period / cfg.tau_r).exp();
        let reference = target - decay * (target - p_fb);
        let bn = reference - p_fb + kf;
        for j in 0..n {
            let kj = gains[j];
            g[b * n + j] += -2.0 * cfg.q * bn * kj;
            for i in 0..n {
                h[(b * n + j, b * n + i)] += 2.0 * cfg.q * kj * gains[i];
            }
        }
    }
    for b in 0..lc {
        let steps_fed = if b + 1 < lc { 1 } else { lp - (lc - 1) };
        let share = steps_fed as f64 / lp as f64;
        for j in 0..n {
            let rj = cfg.r_scale * r[j].max(r_floor) * share;
            h[(b * n + j, b * n + j)] += 2.0 * rj;
            g[b * n + j] += -2.0 * rj * fmax[j];
        }
    }
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for _ in 0..lc {
        lo.extend_from_slice(fmin);
        hi.extend_from_slice(fmax);
    }
    let qp = QpProblem::new(h, g, lo, hi).solve(1e-7, 2_000);
    qp.x[0]
}

/// Deterministic feedback sequence shared by every measured path.
fn feedback(i: usize) -> f64 {
    1500.0 + 80.0 * ((i as f64) * 0.37).sin()
}

/// Per-period cost of the three MPC generations, ns.
struct MpcTimings {
    alloc_ns: f64,
    dense_ns: f64,
    structured_ns: f64,
}

/// Worst-case dense-vs-structured deviation over a feedback sweep.
struct Agreement {
    max_solution_dev: f64,
    max_kkt_residual: f64,
}

impl Agreement {
    fn pass(&self, tol: f64) -> bool {
        self.max_solution_dev <= tol && self.max_kkt_residual <= tol
    }
}

fn mk_controller(channels: usize, backend: MpcBackend) -> MpcController {
    MpcController::with_backend(
        MpcConfig::paper_default(),
        vec![15.0; channels],
        vec![0.2; channels],
        vec![1.0; channels],
        backend,
    )
}

/// The agreement gate: both backends on identical inputs, every period.
/// Decision vectors must track within `1e-6` and both solves must stay
/// KKT-certified — this is what licenses shipping the structured path as
/// the default.
fn check_agreement(channels: usize, periods: usize) -> Agreement {
    let mut dense = mk_controller(channels, MpcBackend::DenseFista);
    let mut structured = mk_controller(channels, MpcBackend::Structured);
    let f_now = vec![0.6; channels];
    let target = 1700.0;
    let mut agg = Agreement {
        max_solution_dev: 0.0,
        max_kkt_residual: 0.0,
    };
    for i in 0..periods {
        let a = dense.compute(feedback(i), target, &f_now);
        let b = structured.compute(feedback(i), target, &f_now);
        assert!(a.qp.converged && b.qp.converged, "period {i} diverged");
        for (x, y) in a.qp.x.iter().zip(&b.qp.x) {
            agg.max_solution_dev = agg.max_solution_dev.max((x - y).abs());
        }
        agg.max_kkt_residual = agg
            .max_kkt_residual
            .max(a.qp.kkt_residual)
            .max(b.qp.kkt_residual);
    }
    agg
}

/// The dense oracle's hot kernel before and after the unrolled rework:
/// the FISTA gradient is one `H·x` per iteration, so the oracle's cost
/// is the matvec's. "Naive" is the digest-frozen scalar [`Mat::matvec`]
/// (the op the oracle ran per gradient before this PR, fresh `Vec`
/// included); "unrolled" is the 4-accumulator write-into
/// [`Mat::matvec_into`] the oracle runs now. Interleaved best-of-3 at
/// the 64-channel dense Hessian size.
struct OracleKernel {
    dim: usize,
    naive_ns: f64,
    unrolled_ns: f64,
    speedup: f64,
    max_rel_dev: f64,
}

fn bench_oracle_kernel(dim: usize, iters: usize) -> OracleKernel {
    let mut h = Mat::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            h[(i, j)] = 0.01 * (((i * 31 + j * 17) % 101) as f64 - 50.0) / 50.0;
        }
        h[(i, i)] += 2.0;
    }
    let x: Vec<f64> = (0..dim)
        .map(|i| ((i * 13) % 7) as f64 / 7.0 - 0.4)
        .collect();
    let mut y = vec![0.0; dim];

    // Agreement: the unrolled kernel re-associates the dot-product sum,
    // so it is *not* bitwise-equal to the naive one — require 1e-12
    // relative instead (the same tolerance class as the lib-level gate).
    let reference = h.matvec(&x);
    h.matvec_into(&x, &mut y);
    let mut max_rel_dev = 0.0f64;
    for (a, b) in reference.iter().zip(&y) {
        max_rel_dev = max_rel_dev.max((a - b).abs() / a.abs().max(1.0));
    }

    let (mut naive_ns, mut unrolled_ns) = (f64::INFINITY, f64::INFINITY);
    let mut sink = 0.0;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink += h.matvec(&x)[0];
        }
        naive_ns = naive_ns.min(t0.elapsed().as_nanos() as f64 / iters as f64);

        let t1 = Instant::now();
        for _ in 0..iters {
            h.matvec_into(&x, &mut y);
            sink += y[0];
        }
        unrolled_ns = unrolled_ns.min(t1.elapsed().as_nanos() as f64 / iters as f64);
    }
    std::hint::black_box(sink);
    OracleKernel {
        dim,
        naive_ns,
        unrolled_ns,
        speedup: naive_ns / unrolled_ns,
        max_rel_dev,
    }
}

fn bench_mpc_paths(channels: usize, periods: usize) -> MpcTimings {
    let cfg = MpcConfig::paper_default();
    let gains = vec![15.0; channels];
    let fmin = vec![0.2; channels];
    let fmax = vec![1.0; channels];
    let r = vec![1.0; channels];
    let f_now = vec![0.6; channels];
    let target = 1700.0;

    let mut dense = mk_controller(channels, MpcBackend::DenseFista);
    let mut structured = mk_controller(channels, MpcBackend::Structured);
    let r_floor = dense.r_floor;
    let mut sink = 0.0;

    // Warm up all paths (page in, branch-train) before timing.
    for i in 0..10 {
        sink += dense.compute(feedback(i), target, &f_now).freqs[0];
        sink += structured.compute(feedback(i), target, &f_now).freqs[0];
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }

    let t0 = Instant::now();
    for i in 0..periods {
        sink += compute_allocating(
            &cfg,
            &gains,
            &r,
            r_floor,
            &fmin,
            &fmax,
            feedback(i),
            target,
            &f_now,
        );
    }
    let alloc_ns = t0.elapsed().as_nanos() as f64 / periods as f64;

    let t1 = Instant::now();
    for i in 0..periods {
        sink += dense.compute(feedback(i), target, &f_now).freqs[0];
    }
    let dense_ns = t1.elapsed().as_nanos() as f64 / periods as f64;

    // The structured path is orders of magnitude cheaper; run 50× the
    // periods so the measurement isn't timer-resolution noise.
    let structured_periods = periods * 50;
    let t2 = Instant::now();
    for i in 0..structured_periods {
        sink += structured.compute(feedback(i), target, &f_now).freqs[0];
    }
    let structured_ns = t2.elapsed().as_nanos() as f64 / structured_periods as f64;

    std::hint::black_box(sink);
    MpcTimings {
        alloc_ns,
        dense_ns,
        structured_ns,
    }
}

/// The pre-rework AoS rack substrate, replicated operation-for-operation
/// from the last commit before the SoA rework: `Rack` was a
/// `Vec<Server>` (the `Server`/`CoreState` AoS types survive unchanged
/// for model calibration, so they are reused directly), every rack-wide
/// access went through a freshly allocated `Vec<CoreId>`, and the power
/// sum walked the nested structs server by server. This is the "before"
/// measurement of the substrate claim.
mod prework {
    use powersim::cpu::CoreRole;
    use powersim::server::{Server, ServerSpec};
    use powersim::units::{NormFreq, Watts};

    #[derive(Clone, Copy)]
    pub struct CoreId {
        pub server: usize,
        pub core: usize,
    }

    pub struct Rack {
        pub servers: Vec<Server>,
    }

    impl Rack {
        /// The paper's rack: 16 servers, 8 cores each, 4 interactive.
        pub fn paper_default() -> Self {
            Rack {
                servers: (0..16)
                    .map(|_| Server::new(ServerSpec::paper_default(), 4))
                    .collect(),
            }
        }

        /// All cores of a role, in deterministic order — allocates a
        /// fresh id vector on every call, as the old substrate did.
        pub fn cores_with_role(&self, role: CoreRole) -> Vec<CoreId> {
            let mut out = Vec::new();
            for (si, s) in self.servers.iter().enumerate() {
                for ci in s.cores_with_role(role) {
                    out.push(CoreId {
                        server: si,
                        core: ci,
                    });
                }
            }
            out
        }

        pub fn set_freq(&mut self, id: CoreId, f: NormFreq) {
            self.servers[id.server].set_core_freq(id.core, f);
        }

        pub fn freq(&self, id: CoreId) -> NormFreq {
            self.servers[id.server].cores[id.core].freq
        }

        /// Total power: per-server nested-struct walk.
        pub fn power(&self) -> Watts {
            self.servers.iter().map(|s| s.power()).sum()
        }
    }
}

/// Full-loop throughput of the last pre-rework commit on the reference
/// host (best of 3, same chunked-run methodology as
/// [`bench_full_loop`]). The full-loop gate: today's engine must never
/// fall below what the AoS engine delivered.
const PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC: f64 = 3_183_991.0;

/// CI floor for the substrate speedup. The headline claim is ≥5×; the
/// gate leaves slack for host variance and noisy CI runners.
const SUBSTRATE_SPEEDUP_FLOOR: f64 = 4.0;

/// Batch cores report this utilization while a job runs (mirrors the
/// engine's write-back; both substrates store the identical value).
const BATCH_BUSY_UTIL: f64 = 0.95;

/// Deterministic per-tick stimulus shared by both substrate
/// implementations: rotating batch DVFS commands and per-server
/// interactive loads. Precomputed so the timed loops measure the
/// substrate, not the stimulus generation.
struct Stimulus {
    batch_cmds: Vec<Vec<f64>>,
    loads: Vec<Vec<f64>>,
}

impl Stimulus {
    fn new(batch_lanes: usize, servers: usize) -> Self {
        let patterns = 8;
        let batch_cmds = (0..patterns)
            .map(|k| {
                (0..batch_lanes)
                    .map(|l| 0.2 + 0.8 * (((l * 7 + k * 13) % 17) as f64 / 16.0))
                    .collect()
            })
            .collect();
        let loads = (0..patterns)
            .map(|k| {
                (0..servers)
                    .map(|s| 0.05 + 0.9 * (((s * 5 + k * 3) % 11) as f64 / 10.0))
                    .collect()
            })
            .collect();
        Stimulus { batch_cmds, loads }
    }

    fn at(&self, t: usize) -> (&[f64], &[f64]) {
        let k = t % self.batch_cmds.len();
        (&self.batch_cmds[k], &self.loads[k])
    }
}

/// One plant tick on the pre-rework substrate: the exact operation
/// sequence the old engine performed against the rack each step —
/// DVFS actuation through a fresh id list, per-server interactive mean
/// frequency (allocating), tier load write-back through collected role
/// indices, batch frequency reads + utilization write-back through a
/// second fresh id list, the nested power sum, and the two allocating
/// effective-mean-frequency scans. Returns an accumulation of every
/// value read, so the model-agreement gate can compare substrates.
fn prework_tick(
    rack: &mut prework::Rack,
    powered: &[bool],
    cmd: &[f64],
    loads: &[f64],
    t: usize,
) -> f64 {
    let mut acc = 0.0;
    // Policy view: the old `SimView::batch_freqs()` — a fresh id vector
    // plus a fresh f64 vector through per-id getters, every period. One
    // rotating element feeds the accumulator; full-lane agreement is
    // carried by the power and mean-frequency folds below.
    let freqs: Vec<f64> = rack
        .cores_with_role(CoreRole::Batch)
        .iter()
        .map(|&id| rack.freq(id).0)
        .collect();
    acc += freqs[(t * 7) % freqs.len()];
    // DVFS actuation: interactive role-wide set (filter walk + quantize
    // per server), then per-id batch sets through a fresh id list.
    for s in rack.servers.iter_mut() {
        s.set_role_freq(CoreRole::Interactive, NormFreq::PEAK);
    }
    let ids = rack.cores_with_role(CoreRole::Batch);
    for (id, &f) in ids.iter().zip(cmd) {
        rack.set_freq(*id, NormFreq(f));
    }
    let inter: Vec<NormFreq> = rack
        .servers
        .iter()
        .map(|s| s.mean_freq(CoreRole::Interactive).unwrap_or(NormFreq::PEAK))
        .collect();
    acc += inter[t % inter.len()].0;
    for (s, &u) in loads.iter().enumerate() {
        for ci in rack.servers[s]
            .cores_with_role(CoreRole::Interactive)
            .collect::<Vec<_>>()
        {
            rack.servers[s].cores[ci].util = Utilization(u);
        }
    }
    // Per-server row subtotals folded into the accumulator — the same
    // chain shape as the SoA side, so the agreement gate stays
    // bit-exact without an artificial 64-add serial chain on either
    // side (the substrate ops — one getter and one util store per id —
    // are unchanged).
    let ids = rack.cores_with_role(CoreRole::Batch);
    let bpc = ids.len() / rack.servers.len();
    for (s, chunk) in ids.chunks(bpc).enumerate() {
        let mut row_acc = 0.0;
        for (j, id) in chunk.iter().enumerate() {
            let on = powered[id.server];
            row_acc += if on { rack.freq(*id).0 } else { 0.0 };
            let busy = !(s * bpc + j + t).is_multiple_of(16);
            rack.servers[id.server].cores[id.core].util =
                Utilization(if busy { BATCH_BUSY_UTIL } else { 0.0 });
        }
        acc += row_acc;
    }
    // Controller feedback input: per-server interactive utilization
    // (the Eq. (5) `U` vector), via the old allocating role scan.
    let utils: Vec<Utilization> = rack
        .servers
        .iter()
        .map(|s| {
            s.mean_util(CoreRole::Interactive)
                .unwrap_or(Utilization::IDLE)
        })
        .collect();
    acc += utils[t % utils.len()].0;
    acc += rack.power().0;
    for role in [CoreRole::Interactive, CoreRole::Batch] {
        let ids = rack.cores_with_role(role);
        let sum: f64 = ids
            .iter()
            .map(|&id| {
                if powered[id.server] {
                    rack.freq(id).0
                } else {
                    0.0
                }
            })
            .sum();
        acc += sum / ids.len() as f64;
    }
    acc
}

/// The same plant tick on the SoA substrate, using the batched slab
/// operations the engine uses today. The SoA side additionally steps
/// the thermal slab — extra work the AoS substrate never modeled, kept
/// in the timed loop so the comparison cannot flatter the new code.
fn soa_tick(
    rack: &mut Rack,
    powered: &[bool],
    cmd: &[f64],
    loads: &[f64],
    t: usize,
    inter_buf: &mut Vec<NormFreq>,
    util_buf: &mut Vec<Utilization>,
) -> f64 {
    let mut acc = 0.0;
    // Policy view: today's `SimView::batch_freqs()` is a zero-copy slice.
    {
        let freqs = rack.role(CoreRole::Batch).freqs;
        acc += freqs[(t * 7) % freqs.len()];
    }
    // DVFS actuation: one fill, one batched quantize-and-store pass.
    rack.set_role_freq(CoreRole::Interactive, NormFreq::PEAK);
    rack.role_mut(CoreRole::Batch).set_freqs(cmd);
    rack.interactive_freqs_into(inter_buf);
    acc += inter_buf[t % inter_buf.len()].0;
    let ipc = rack.interactive_cores_per_server();
    {
        let iv = rack.role_mut(CoreRole::Interactive);
        for (row, &u) in iv.utils.chunks_exact_mut(ipc).zip(loads) {
            row.fill(u);
        }
    }
    let bpc = rack.batch_cores_per_server();
    {
        let bv = rack.role_mut(CoreRole::Batch);
        let rows = bv
            .freqs
            .chunks_exact(bpc)
            .zip(bv.utils.chunks_exact_mut(bpc));
        for (s, (frow, urow)) in rows.enumerate() {
            let on = powered[s];
            let mut row_acc = 0.0;
            for (j, (&f, u)) in frow.iter().zip(urow.iter_mut()).enumerate() {
                row_acc += if on { f } else { 0.0 };
                let busy = !(s * bpc + j + t).is_multiple_of(16);
                *u = if busy { BATCH_BUSY_UTIL } else { 0.0 };
            }
            acc += row_acc;
        }
    }
    // Controller feedback input: one batched read into a reused buffer.
    rack.interactive_utils_into(util_buf);
    acc += util_buf[t % util_buf.len()].0;
    acc += rack.update_server_powers(Some(powered)).0;
    rack.step_thermal(Seconds(1.0));
    for role in [CoreRole::Interactive, CoreRole::Batch] {
        let v = rack.role(role);
        let per = v.per_server();
        let mut sum = 0.0;
        for (s, row) in v.freqs.chunks_exact(per).enumerate() {
            let on = powered[s];
            for &f in row {
                sum += if on { f } else { 0.0 };
            }
        }
        acc += sum / v.len() as f64;
    }
    acc
}

struct SubstrateResult {
    prework_ns_per_tick: f64,
    soa_ns_per_tick: f64,
    speedup: f64,
    model_bit_identical: bool,
}

/// Best-of-`reps` mean ns/tick for one substrate.
fn time_ticks<F: FnMut(usize) -> f64>(ticks: usize, reps: usize, mut tick: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for r in 0..reps {
        let t0 = Instant::now();
        for t in 0..ticks {
            sink += tick(r * ticks + t);
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / ticks as f64);
    }
    std::hint::black_box(sink);
    best
}

/// The substrate comparison: identical stimulus through both
/// implementations, bit-compared accumulations, then timed separately
/// (single-threaded, paper-default rack).
fn bench_substrate(agree_ticks: usize, prework_ticks: usize, soa_ticks: usize) -> SubstrateResult {
    let mut old = prework::Rack::paper_default();
    let mut new = Rack::builder()
        .server(powersim::server::ServerSpec::paper_default())
        .num_servers(16)
        .interactive_cores_per_server(4)
        .build()
        .expect("paper config is a valid rack");
    let powered = vec![true; 16];
    let stim = Stimulus::new(new.count_role(CoreRole::Batch), 16);
    let mut inter_buf = Vec::new();
    let mut util_buf = Vec::new();

    // Model-agreement gate: every frequency read and every power sum,
    // accumulated over `agree_ticks`, must be bit-identical — the SoA
    // slabs must compute the same plant in the same FP order.
    let (mut acc_old, mut acc_new) = (0.0, 0.0);
    for t in 0..agree_ticks {
        let (cmd, loads) = stim.at(t);
        acc_old += prework_tick(&mut old, &powered, cmd, loads, t);
        acc_new += soa_tick(
            &mut new,
            &powered,
            cmd,
            loads,
            t,
            &mut inter_buf,
            &mut util_buf,
        );
    }
    let model_bit_identical = acc_old.to_bits() == acc_new.to_bits();
    if !model_bit_identical {
        eprintln!("substrate model disagreement: prework acc {acc_old:.17e} vs soa {acc_new:.17e}");
    }

    // Interleave the timing reps so both substrates sample the same
    // distribution of CPU clock states (boost decay, thermal drift)
    // instead of one side monopolizing the cold boosted window.
    let (mut prework_ns, mut soa_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        prework_ns = prework_ns.min(time_ticks(prework_ticks, 1, |t| {
            let (cmd, loads) = stim.at(t);
            prework_tick(&mut old, &powered, cmd, loads, t)
        }));
        soa_ns = soa_ns.min(time_ticks(soa_ticks, 1, |t| {
            let (cmd, loads) = stim.at(t);
            soa_tick(
                &mut new,
                &powered,
                cmd,
                loads,
                t,
                &mut inter_buf,
                &mut util_buf,
            )
        }));
    }
    SubstrateResult {
        prework_ns_per_tick: prework_ns,
        soa_ns_per_tick: soa_ns,
        speedup: prework_ns / soa_ns,
        model_bit_identical,
    }
}

/// Whole-engine throughput in server-ticks/sec: the paper-default
/// scenario under a fixed policy (pure plant + workloads, no MPC cost),
/// best of `reps` runs of ~`budget_secs` wall each — the same
/// methodology that produced the committed pre-rework baseline.
fn bench_full_loop(budget_secs: f64, reps: usize) -> f64 {
    let sc = Scenario::builder(1234)
        .duration(Seconds::minutes(15.0))
        .build()
        .expect("default scenario is valid");
    let servers = 16u64;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut sim = sc.build();
        let mut pol = FixedPolicy::new(NormFreq::PEAK, 0.7, Watts(400.0));
        let t0 = Instant::now();
        let mut ticks = 0u64;
        while t0.elapsed().as_secs_f64() < budget_secs {
            let rec = sim.run(&mut pol, Seconds(60.0));
            ticks += rec.len() as u64;
            if sim.is_shutdown() || sim.now().0 > 850.0 {
                sim = sc.build();
            }
        }
        best = best.max(ticks as f64 * servers as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    if args.check_only {
        // CI gate 1: determinism — a small campaign, sequential vs 4
        // workers, digest-compared run by run (under the default
        // structured MPC backend, so the gate also proves the new solver
        // is seed-deterministic).
        let c = campaign(args.secs.min(30.0));
        let seq = c.run_sequential();
        let par = c.run_with(ExecConfig::jobs(4));
        let bad = digest_mismatches(&seq, &par);
        if !bad.is_empty() {
            eprintln!("DETERMINISM VIOLATION in {} runs: {bad:?}", bad.len());
            std::process::exit(1);
        }
        println!(
            "determinism check passed: {} runs bit-identical (seq vs 4 workers)",
            seq.len()
        );
        // CI gate 2: backend agreement — dense and structured must stay
        // within 1e-6 of each other, KKT-certified.
        let agreement = check_agreement(64, 50);
        if !agreement.pass(1e-6) {
            eprintln!(
                "BACKEND DISAGREEMENT: max solution dev {:.3e}, max KKT residual {:.3e} (gate 1e-6)",
                agreement.max_solution_dev, agreement.max_kkt_residual
            );
            std::process::exit(1);
        }
        println!(
            "agreement check passed: dense vs structured within {:.3e} (KKT ≤ {:.3e})",
            agreement.max_solution_dev, agreement.max_kkt_residual
        );
        // CI gate 3: the structured path must actually be the fast one.
        let t = bench_mpc_paths(64, 50);
        if t.structured_ns >= t.dense_ns {
            eprintln!(
                "PERF REGRESSION: structured {:.0} ns/period ≥ dense {:.0} ns/period",
                t.structured_ns, t.dense_ns
            );
            std::process::exit(1);
        }
        println!(
            "perf check passed: structured {:.0} ns/period vs dense {:.0} ns/period ({:.1}x)",
            t.structured_ns,
            t.dense_ns,
            t.dense_ns / t.structured_ns
        );
        // CI gate 3b: the unrolled oracle kernel must still compute the
        // oracle's matvec (1e-9 relative; speedup is reported, not
        // gated — 1-core CI jitter would make a ratio gate flaky).
        let ok = bench_oracle_kernel(128, 2_000);
        if ok.max_rel_dev > 1e-9 {
            eprintln!(
                "ORACLE KERNEL DISAGREEMENT: unrolled matvec off by {:.3e} relative",
                ok.max_rel_dev
            );
            std::process::exit(1);
        }
        println!(
            "oracle kernel check passed: unrolled {:.0} ns vs naive {:.0} ns at dim {} ({:.1}x, dev {:.1e})",
            ok.unrolled_ns, ok.naive_ns, ok.dim, ok.speedup, ok.max_rel_dev
        );
        // CI gate 4: the SoA substrate must compute the identical plant
        // and beat the pre-rework AoS substrate by at least the floor.
        let sub = bench_substrate(1024, 10_000, 80_000);
        if !sub.model_bit_identical {
            eprintln!("SUBSTRATE MODEL DISAGREEMENT: AoS and SoA plants diverged");
            std::process::exit(1);
        }
        if sub.speedup < SUBSTRATE_SPEEDUP_FLOOR {
            eprintln!(
                "PERF REGRESSION: substrate speedup {:.2}x < floor {SUBSTRATE_SPEEDUP_FLOOR}x (prework {:.0} ns/tick, soa {:.0} ns/tick)",
                sub.speedup, sub.prework_ns_per_tick, sub.soa_ns_per_tick
            );
            std::process::exit(1);
        }
        println!(
            "substrate check passed: soa {:.0} ns/tick vs prework {:.0} ns/tick ({:.1}x, bit-identical plant)",
            sub.soa_ns_per_tick, sub.prework_ns_per_tick, sub.speedup
        );
        // CI gate 5: whole-engine throughput must not fall below what
        // the pre-rework engine delivered on the reference host.
        let full_loop = bench_full_loop(0.6, 2);
        if full_loop < PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC {
            eprintln!(
                "PERF REGRESSION: full loop {full_loop:.0} server_ticks/sec < committed pre-rework baseline {PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC:.0}"
            );
            std::process::exit(1);
        }
        println!(
            "full-loop check passed: {full_loop:.0} server_ticks/sec ({:.1}x the pre-rework baseline)",
            full_loop / PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC
        );
        return;
    }

    // Wall-clock speedups are only a claim worth making with real
    // parallel hardware underneath; on a 1-core host the parallel passes
    // still run (the determinism gate matters everywhere) but the ratios
    // are scheduling noise, so we neither print nor emphasize them.
    let speedup_meaningful = cpus > 1;

    println!("bench_engine: {cpus}-core host, {}s scenarios", args.secs);
    let c = campaign(args.secs);

    println!("sequential pass ({} runs)...", c.len());
    let t0 = Instant::now();
    let seq = c.run_sequential();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {seq_ms:.0} ms");

    let widths = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut all_match = true;
    for &jobs in &widths {
        println!("parallel pass, {jobs} worker(s)...");
        let t = Instant::now();
        let par = c.run_with(ExecConfig::jobs(jobs));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let bad = digest_mismatches(&seq, &par);
        all_match &= bad.is_empty();
        if !bad.is_empty() {
            eprintln!("  DETERMINISM VIOLATION: {bad:?}");
        }
        if speedup_meaningful {
            println!("  {ms:.0} ms  (speedup {:.2}x)", seq_ms / ms);
        } else {
            println!("  {ms:.0} ms  (1-core host; speedup not meaningful)");
        }
        rows.push((jobs, ms));
    }

    println!("MPC agreement gate, 64 channels x 200 periods...");
    let agreement = check_agreement(64, 200);
    let agreement_ok = agreement.pass(1e-6);
    println!(
        "  max solution dev {:.3e}, max KKT residual {:.3e}  ({})",
        agreement.max_solution_dev,
        agreement.max_kkt_residual,
        if agreement_ok { "pass" } else { "FAIL" }
    );

    println!("MPC hot path, 64 channels x 200 periods...");
    let t = bench_mpc_paths(64, 200);
    println!(
        "  allocating (pre-workspace) : {:.0} ns/period\n  dense FISTA (workspace)    : {:.0} ns/period\n  structured rank-one (default): {:.0} ns/period  ({:.1}x vs dense)",
        t.alloc_ns,
        t.dense_ns,
        t.structured_ns,
        t.dense_ns / t.structured_ns
    );

    println!("dense-oracle kernel, 128x128 Hessian...");
    let ok = bench_oracle_kernel(128, 20_000);
    println!(
        "  naive matvec   : {:.0} ns\n  unrolled matvec: {:.0} ns  ({:.1}x, max rel dev {:.1e})",
        ok.naive_ns, ok.unrolled_ns, ok.speedup, ok.max_rel_dev
    );

    println!("rack substrate, paper-default rack, single thread...");
    let sub = bench_substrate(4096, 50_000, 400_000);
    println!(
        "  prework AoS : {:.0} ns/tick\n  SoA slabs   : {:.0} ns/tick  ({:.1}x, plant {})",
        sub.prework_ns_per_tick,
        sub.soa_ns_per_tick,
        sub.speedup,
        if sub.model_bit_identical {
            "bit-identical"
        } else {
            "DISAGREES"
        }
    );
    println!("full engine loop, fixed policy...");
    let full_loop = bench_full_loop(1.0, 3);
    println!(
        "  {full_loop:.0} server_ticks/sec  ({:.1}x the committed pre-rework baseline {PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC:.0})",
        full_loop / PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC
    );

    let jobs_json: Vec<String> = rows
        .iter()
        .map(|(j, ms)| {
            format!(
                "{{\"jobs\": {j}, \"wall_ms\": {ms:.1}, \"speedup\": {:.3}}}",
                seq_ms / ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"host\": {{\"cpus\": {cpus}}},\n  \"campaign\": {{\"runs\": {}, \"scenario_secs\": {}}},\n  \"wall_clock\": {{\"seq_ms\": {seq_ms:.1}, \"speedup_meaningful\": {speedup_meaningful}, \"parallel\": [\n    {}\n  ]}},\n  \"determinism\": {{\"checked\": true, \"bit_identical\": {all_match}}},\n  \"mpc_hot_path\": {{\"channels\": 64, \"periods\": 200, \"alloc_ns_per_period\": {:.0}, \"dense_ns_per_period\": {:.0}, \"structured_ns_per_period\": {:.0}, \"speedup_structured_vs_dense\": {:.1}, \"agreement\": {{\"max_solution_dev\": {:.3e}, \"max_kkt_residual\": {:.3e}, \"pass\": {agreement_ok}}}, \"oracle_kernel\": {{\"dim\": {}, \"naive_matvec_ns\": {:.0}, \"unrolled_matvec_ns\": {:.0}, \"speedup\": {:.2}, \"max_rel_dev\": {:.3e}}}}},\n  \"server_ticks\": {{\"full_loop_per_sec\": {full_loop:.0}, \"prework_full_loop_per_sec\": {PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC:.0}, \"full_loop_speedup\": {:.2}, \"substrate\": {{\"prework_ns_per_tick\": {:.0}, \"soa_ns_per_tick\": {:.0}, \"speedup\": {:.2}, \"model_bit_identical\": {}}}}}\n}}\n",
        c.len(),
        args.secs,
        jobs_json.join(",\n    "),
        t.alloc_ns,
        t.dense_ns,
        t.structured_ns,
        t.dense_ns / t.structured_ns,
        agreement.max_solution_dev,
        agreement.max_kkt_residual,
        ok.dim,
        ok.naive_ns,
        ok.unrolled_ns,
        ok.speedup,
        ok.max_rel_dev,
        full_loop / PREWORK_FULL_LOOP_SERVER_TICKS_PER_SEC,
        sub.prework_ns_per_tick,
        sub.soa_ns_per_tick,
        sub.speedup,
        sub.model_bit_identical,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_engine.json");
    println!("wrote {}", args.out);

    if !all_match {
        eprintln!("determinism check FAILED");
        std::process::exit(1);
    }
    if !agreement_ok {
        eprintln!("agreement check FAILED");
        std::process::exit(1);
    }
    if !sub.model_bit_identical {
        eprintln!("substrate model agreement FAILED");
        std::process::exit(1);
    }
}
