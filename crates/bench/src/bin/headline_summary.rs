//! E9 — the headline comparison (abstract, §VII-C/D): run the full
//! 15-minute sprinting process under all four policies and report the
//! computing-capacity improvement and the energy-storage savings.
//!
//! Paper values: SprintCon improves interactive computing capacity by
//! 6–56% over the SGCT family, uses up to 87% less stored energy, and is
//! the only policy that neither trips the breaker nor drains the UPS.

use simkit::{summary_table, Campaign, Scenario};
use sprintcon_bench::{banner, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    let scenario = Scenario::paper_default(2019);
    banner("Headline: 15-minute sprint, 12-minute batch deadline");
    let results = Campaign::new()
        .with_all_policies(scenario)
        .with_exec(args.exec)
        .run();
    let summaries: Vec<_> = results.iter().map(|r| r.summary().clone()).collect();
    println!("{}", summary_table(&summaries));

    let sprintcon = &summaries[0];
    banner("Derived headline numbers (paper: 6-56% capacity, <=87% less storage)");
    for s in &summaries[1..] {
        let gain = sprintcon.interactive_capacity_gain_over(s) * 100.0;
        let storage = if s.ups_energy_wh > 0.0 {
            (1.0 - sprintcon.ups_energy_wh / s.ups_energy_wh) * 100.0
        } else {
            0.0
        };
        println!(
            "vs {:<8}: computing capacity {gain:+6.1}%   energy-storage demand {storage:+6.1}% less",
            s.policy
        );
    }
    println!(
        "\nSprintCon trips: {}   SGCT trips: {}   SprintCon shutdown: {}   SGCT shutdown: {:?}",
        summaries[0].trips, summaries[1].trips, summaries[0].shutdown, summaries[1].shutdown_at
    );
}
