//! A5 — ablation: raw deadbeat UPS control (the paper's law) vs
//! Kalman-filtered measurements in front of it.
//!
//! The duty-cycled discharge circuit of \[24\] switches on every command
//! change; noisy measurements therefore translate into actuator wear and
//! duty chatter. A Kalman filter suppresses the chatter at the cost of
//! one-filter-lag exposure of the breaker to fast power rises. This
//! bench replays the same noisy scenario through both configurations and
//! reports duty travel (total |Δcommand|), breaker-overshoot exposure,
//! and trips.

use powersim::breaker::{BreakerSpec, CircuitBreaker};
use powersim::noise::NoiseSource;
use powersim::units::{Seconds, Watts};
use sprintcon::UpsPowerController;
use sprintcon_bench::{banner, write_csv};

struct Outcome {
    duty_travel: f64,
    overshoot_heat: f64,
    trips: usize,
}

fn run(mut ctrl: UpsPowerController, seed: u64) -> Outcome {
    let mut noise = NoiseSource::new(seed);
    let mut wobble = 0.0;
    let mut cb = CircuitBreaker::new(BreakerSpec::paper_default());
    let target = Watts(3200.0 * 0.99);
    let mut duty_travel = 0.0;
    let mut overshoot_heat = 0.0;
    let mut last_cmd = 0.0;
    let mut trips = 0;
    let mut p_prev = 3600.0;
    for k in 0..900 {
        // True rack power: slow wander + occasional step + measurement
        // noise on top.
        wobble = 0.95 * wobble + 30.0 * noise.gaussian();
        let step_up = if k % 300 == 120 { 250.0 } else { 0.0 };
        let p_true =
            (3600.0 + 200.0 * ((k as f64) * 0.01).sin() + wobble + step_up).clamp(3000.0, 4400.0);
        let measured = p_true + 25.0 * noise.gaussian();
        // One-period delay like the engine: act on the previous sample.
        let cmd = ctrl.control(Watts(p_prev), target);
        p_prev = measured;
        duty_travel += (cmd.0 - last_cmd).abs();
        last_cmd = cmd.0;
        let cb_load = (p_true - cmd.0).max(0.0);
        if cb_load > 3200.0 {
            overshoot_heat += (cb_load / 3200.0).powi(2) - 1.0;
        }
        if cb.step(Watts(cb_load), Seconds(1.0)).tripped {
            trips += 1;
        }
    }
    Outcome {
        duty_travel,
        overshoot_heat,
        trips,
    }
}

fn main() {
    banner("Ablation A5 — raw deadbeat vs Kalman-filtered UPS control");
    let raw = run(UpsPowerController::new(0.0), 42);
    let filt = run(UpsPowerController::new(0.0).with_filter(16.0, 625.0), 42);
    println!(
        "{:<10} {:>14} {:>18} {:>6}",
        "variant", "duty travel W", "overshoot heat", "trips"
    );
    println!(
        "{:<10} {:>14.0} {:>18.2} {:>6}",
        "raw", raw.duty_travel, raw.overshoot_heat, raw.trips
    );
    println!(
        "{:<10} {:>14.0} {:>18.2} {:>6}",
        "kalman", filt.duty_travel, filt.overshoot_heat, filt.trips
    );
    write_csv(
        "ablation_ups_filter.csv",
        "variant,duty_travel,overshoot_heat,trips",
        &[
            vec![0.0, raw.duty_travel, raw.overshoot_heat, raw.trips as f64],
            vec![
                1.0,
                filt.duty_travel,
                filt.overshoot_heat,
                filt.trips as f64,
            ],
        ],
    );

    assert_eq!(raw.trips + filt.trips, 0, "neither variant may trip");
    assert!(
        filt.duty_travel < raw.duty_travel * 0.5,
        "filtering must cut duty chatter: {:.0} vs {:.0}",
        filt.duty_travel,
        raw.duty_travel
    );
    // The price: somewhat more thermal exposure from lag — bounded.
    assert!(
        filt.overshoot_heat < raw.overshoot_heat * 10.0 + 5.0,
        "lag exposure must stay bounded"
    );
    println!("\nfiltering trades a little breaker exposure for much calmer actuation;");
    println!("both stay safely inside the trip curve.");
}
