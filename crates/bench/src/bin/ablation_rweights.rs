//! A3 — ablation: the progress-based control-penalty weights `R_ij`
//! (§V-B) on vs off.
//!
//! Scenario: a tight power budget and one job per server that has fallen
//! far behind (it was starved earlier). With the paper's weights, the
//! lagging jobs get disproportionate frequency and catch up; with uniform
//! weights the optimizer spreads power evenly and the laggards miss.

use powersim::cpu::CoreRole;
use powersim::rack::Rack;
use powersim::units::{NormFreq, Seconds, Utilization, Watts};
use sprintcon::{ServerPowerController, SprintConConfig};
use sprintcon_bench::{banner, write_csv};
use workloads::batch::BatchJob;
use workloads::progress_model::ProgressModel;

fn setup(cfg: &SprintConConfig) -> (Rack, Vec<BatchJob>) {
    let mut rk = Rack::builder()
        .server(cfg.server.clone())
        .num_servers(cfg.num_servers)
        .interactive_cores_per_server(cfg.interactive_cores_per_server)
        .build()
        .expect("paper config is a valid rack");
    for id in rk.cores_with_role(CoreRole::Interactive) {
        rk.set_util(id, Utilization(0.6));
    }
    for id in rk.cores_with_role(CoreRole::Batch) {
        rk.set_util(id, Utilization(0.95));
    }
    let m = cfg.batch_cores_per_server();
    let mut jobs = Vec::new();
    for s in 0..cfg.num_servers {
        for c in 0..m {
            let mut j = BatchJob::new(
                format!("job-{s}-{c}"),
                ProgressModel::new(0.25),
                540.0,
                Seconds(720.0),
            );
            // Core 0 of each server was starved for the first 300 s; the
            // others ran comfortably.
            let f0 = if c == 0 { 0.2 } else { 0.8 };
            for _ in 0..300 {
                j.step(f0, Seconds(1.0));
            }
            jobs.push(j);
        }
    }
    (rk, jobs)
}

fn interactive_utils(rk: &Rack) -> Vec<Utilization> {
    let mut utils = Vec::new();
    rk.interactive_utils_into(&mut utils);
    utils
}

fn run(cfg: &SprintConConfig, use_weights: bool) -> (usize, f64, f64) {
    let mut ctrl = ServerPowerController::new(cfg);
    let (mut rk, mut jobs) = setup(cfg);
    let utils = interactive_utils(&rk);
    let budget = Watts(1550.0); // tight: cannot run everyone fast
    let mut freqs: Vec<f64> = rk
        .cores_with_role(CoreRole::Batch)
        .iter()
        .map(|&id| rk.freq(id).0)
        .collect();
    for t in 300..720 {
        let now = Seconds(t as f64);
        if use_weights {
            ctrl.update_weights(now, &jobs);
        } // else: keep the uniform default weights
        let d = ctrl.control(rk.power(), &utils, budget, &freqs);
        let ids = rk.cores_with_role(CoreRole::Batch);
        for (id, &f) in ids.iter().zip(&d.freqs) {
            rk.set_freq(*id, NormFreq(f));
        }
        freqs = d.freqs;
        for (idx, id) in ids.iter().enumerate() {
            let f = rk.freq(*id).0;
            jobs[idx].step(f, Seconds(1.0));
        }
    }
    let met = jobs
        .iter()
        .filter(|j| matches!(j.first_completion, Some(t) if t.0 <= j.deadline.0))
        .count();
    let lag_progress: Vec<f64> = jobs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == 0)
        .map(|(_, j)| j.progress())
        .collect();
    let min_lag = lag_progress.iter().cloned().fold(1.0_f64, f64::min);
    let spread = jobs
        .iter()
        .map(|j| j.progress())
        .fold(f64::NEG_INFINITY, f64::max)
        - jobs
            .iter()
            .map(|j| j.progress())
            .fold(f64::INFINITY, f64::min);
    (met, min_lag, spread)
}

fn main() {
    banner("Ablation A3 — progress-balancing R weights on vs off");
    let cfg = SprintConConfig::paper_default();
    let (met_on, lag_on, spread_on) = run(&cfg, true);
    let (met_off, lag_off, spread_off) = run(&cfg, false);
    println!(
        "{:<10} {:>14} {:>22} {:>16}",
        "weights", "deadlines met", "laggard min progress", "progress spread"
    );
    println!(
        "{:<10} {:>11}/64 {:>22.3} {:>16.3}",
        "on", met_on, lag_on, spread_on
    );
    println!(
        "{:<10} {:>11}/64 {:>22.3} {:>16.3}",
        "off", met_off, lag_off, spread_off
    );
    let path = write_csv(
        "ablation_rweights.csv",
        "weights_on,deadlines_met,laggard_min_progress,progress_spread",
        &[
            vec![1.0, met_on as f64, lag_on, spread_on],
            vec![0.0, met_off as f64, lag_off, spread_off],
        ],
    );
    println!("csv: {}", path.display());

    // The paper's claim: weights let the behind/urgent jobs speed up.
    assert!(
        lag_on > lag_off + 0.02,
        "weights must speed up the laggards: {lag_on} vs {lag_off}"
    );
    assert!(met_on >= met_off, "weights must not cost deadlines");
    assert!(
        spread_on < spread_off,
        "weights must shrink the progress spread"
    );
}
