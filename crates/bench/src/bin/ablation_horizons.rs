//! A2 — ablation: MPC tuning — reference time constant `τ_r`, horizons
//! `Lp`/`Lc` — plus the §V-C timing contract (allocator period vs
//! controller settling time) and the closed-loop gain margin.
//!
//! The grid runs on the default `MpcBackend::Structured` path, whose
//! O(n·Lc) per-solve cost is what makes the long-horizon rows
//! (`Lp` up to 64) affordable here; a sampled subset of rows is
//! re-run against the dense FISTA oracle to pin the two backends to the
//! same step response.

use powersim::cpu::CoreRole;
use powersim::rack::Rack;
use powersim::units::{NormFreq, Utilization, Watts};
use sprint_control::reference::discrete_settling_periods;
use sprint_control::stability::{max_gain_ratio, scalar_pole, LoopParams};
use sprintcon::{MpcBackend, ServerPowerController, SprintConConfig};
use sprintcon_bench::{banner, write_csv};

fn rack(cfg: &SprintConConfig) -> Rack {
    let mut rk = Rack::builder()
        .server(cfg.server.clone())
        .num_servers(cfg.num_servers)
        .interactive_cores_per_server(cfg.interactive_cores_per_server)
        .build()
        .expect("paper config is a valid rack");
    for id in rk.cores_with_role(CoreRole::Interactive) {
        rk.set_util(id, Utilization(0.6));
    }
    for id in rk.cores_with_role(CoreRole::Batch) {
        rk.set_util(id, Utilization(0.95));
    }
    rk
}

fn interactive_utils(rk: &Rack) -> Vec<Utilization> {
    let mut utils = Vec::new();
    rk.interactive_utils_into(&mut utils);
    utils
}

/// Run a 1.3→1.9 kW step and report (settling steps to 5%, overshoot W).
fn step_response(cfg: &SprintConConfig) -> (usize, f64) {
    let mut ctrl = ServerPowerController::new(cfg);
    let mut rk = rack(cfg);
    let utils = interactive_utils(&rk);
    let mut freqs: Vec<f64> = rk
        .cores_with_role(CoreRole::Batch)
        .iter()
        .map(|&id| rk.freq(id).0)
        .collect();
    // Settle at 1300 W first.
    for _ in 0..60 {
        let d = ctrl.control(rk.power(), &utils, Watts(1300.0), &freqs);
        let ids = rk.cores_with_role(CoreRole::Batch);
        for (id, &f) in ids.iter().zip(&d.freqs) {
            rk.set_freq(*id, NormFreq(f));
        }
        freqs = d.freqs;
    }
    let target = 1900.0;
    let mut settle = 60;
    let mut overshoot: f64 = 0.0;
    for t in 0..60 {
        let p_fb = ctrl.feedback_power(rk.power(), &utils);
        overshoot = overshoot.max(p_fb.0 - target);
        if (p_fb.0 - target).abs() < 0.05 * target && settle == 60 {
            settle = t;
        }
        let d = ctrl.control(rk.power(), &utils, Watts(target), &freqs);
        let ids = rk.cores_with_role(CoreRole::Batch);
        for (id, &f) in ids.iter().zip(&d.freqs) {
            rk.set_freq(*id, NormFreq(f));
        }
        freqs = d.freqs;
    }
    (settle, overshoot)
}

/// The τ_r / Lp / Lc grid. The long-horizon tail (Lp ≥ 24) exists
/// because the structured backend solves each period in O(n·Lc); the
/// dense oracle would make those rows the dominant cost of the whole
/// ablation.
const GRID: [(f64, usize, usize); 12] = [
    (1.0, 8, 2),
    (2.0, 8, 2),
    (4.0, 8, 2), // the paper-default row
    (8.0, 8, 2),
    (16.0, 8, 2),
    (4.0, 2, 1),
    (4.0, 4, 2),
    (4.0, 16, 4),
    (4.0, 24, 6),
    (4.0, 32, 8),
    (4.0, 48, 12),
    (4.0, 64, 16),
];

/// Rows re-run on the dense FISTA oracle: the paper default, one short
/// and one long horizon. Both backends solve the same QP to the same
/// tolerance, so the *sampled* step responses must agree; running the
/// oracle on every row would defeat the point of the structured path.
const DENSE_ORACLE_ROWS: [usize; 3] = [2, 6, 9];

fn grid_config(tau: f64, lp: usize, lc: usize) -> SprintConConfig {
    let mut cfg = SprintConConfig::paper_default();
    cfg.mpc.tau_r = tau;
    cfg.mpc.lp = lp;
    cfg.mpc.lc = lc.min(lp);
    cfg
}

fn main() {
    banner("Ablation A2 — τ_r / Lp / Lc sensitivity");
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>4} {:>4} {:>12} {:>12}",
        "tau_r", "Lp", "Lc", "settle s", "overshoot W"
    );
    for (tau, lp, lc) in GRID {
        let cfg = grid_config(tau, lp, lc);
        assert_eq!(cfg.mpc_backend, MpcBackend::Structured, "grid runs O(n·Lc)");
        let (settle, overshoot) = step_response(&cfg);
        println!("{tau:>6.1} {lp:>4} {lc:>4} {settle:>12} {overshoot:>12.1}");
        rows.push(vec![tau, lp as f64, lc as f64, settle as f64, overshoot]);
    }
    let path = write_csv(
        "ablation_horizons.csv",
        "tau_r,lp,lc,settle_s,overshoot_w",
        &rows,
    );
    println!("csv: {}", path.display());

    banner("dense-oracle agreement (sampled rows)");
    for &i in &DENSE_ORACLE_ROWS {
        let (tau, lp, lc) = GRID[i];
        let mut cfg = grid_config(tau, lp, lc);
        cfg.mpc_backend = MpcBackend::DenseFista;
        let (settle_d, overshoot_d) = step_response(&cfg);
        let (settle_s, overshoot_s) = (rows[i][3] as usize, rows[i][4]);
        println!(
            "tau={tau} Lp={lp} Lc={lc}: structured ({settle_s}, {overshoot_s:.1}) \
             vs dense ({settle_d}, {overshoot_d:.1})"
        );
        assert!(
            settle_s.abs_diff(settle_d) <= 1,
            "backends disagree on settling: {settle_s} vs {settle_d}"
        );
        assert!(
            (overshoot_s - overshoot_d).abs() <= 5.0,
            "backends disagree on overshoot: {overshoot_s} vs {overshoot_d}"
        );
    }

    // Eq.(7) intuition: larger τ_r → smaller overshoot, slower settling.
    let fast = &rows[0]; // tau 1
    let slow = &rows[4]; // tau 16
    assert!(
        slow[4] <= fast[4] + 30.0,
        "larger tau must not overshoot more"
    );
    assert!(slow[3] >= fast[3], "larger tau must not settle faster");

    banner("§V-C analysis: closed-loop pole, gain margin, timing contract");
    let cfg = SprintConConfig::paper_default();
    let kappa = 60.0 * cfg.num_servers as f64; // aggregate model gain
    let params = LoopParams {
        lp: cfg.mpc.lp,
        q: cfg.mpc.q,
        r: cfg.mpc.r_scale,
        kappa,
        alpha: (-cfg.control_period.0 / cfg.mpc.tau_r).exp(),
    };
    let pole = scalar_pole(params, 1.0);
    let gmax = max_gain_ratio(params);
    let settle_periods = discrete_settling_periods(pole, 0.02).expect("stable loop");
    println!("nominal closed-loop pole: {pole:.3}");
    println!("allowed plant/model gain ratio: (0, {gmax:.2})");
    println!(
        "settling: {settle_periods} control periods ({}s) << allocator period {}s",
        settle_periods as f64 * cfg.control_period.0,
        cfg.allocator_period.0
    );
    assert!(pole.abs() < 1.0);
    assert!(gmax > 1.5, "must tolerate sizeable model error");
    assert!(
        (settle_periods as f64) * cfg.control_period.0 <= cfg.allocator_period.0 / 2.0,
        "the paper's timing contract: allocator much slower than settling"
    );
}
