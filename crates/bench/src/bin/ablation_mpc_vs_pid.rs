//! A1 — ablation: the paper's MPC server power controller vs a classical
//! PID, both tracking `P_batch` on the *nonlinear* plant.
//!
//! The paper argues for MPC (§V-B) because it handles the MIMO problem
//! with constraints and survives model error (§V-C). This bench
//! quantifies that: both controllers chase the same step-changing budget
//! on the same rack; we compare tracking RMS after settling, worst
//! overshoot, and the per-core balance only MPC can do (PID can only
//! scale all cores uniformly).

use powersim::cpu::CoreRole;
use powersim::rack::Rack;
use powersim::units::{NormFreq, Utilization, Watts};
use sprint_control::pid::{Pid, PidConfig};
use sprintcon::{ServerPowerController, SprintConConfig};
use sprintcon_bench::{banner, write_csv};

fn rack(cfg: &SprintConConfig) -> Rack {
    let mut rk = Rack::builder()
        .server(cfg.server.clone())
        .num_servers(cfg.num_servers)
        .interactive_cores_per_server(cfg.interactive_cores_per_server)
        .build()
        .expect("paper config is a valid rack");
    for id in rk.cores_with_role(CoreRole::Interactive) {
        rk.set_util(id, Utilization(0.6));
    }
    for id in rk.cores_with_role(CoreRole::Batch) {
        rk.set_util(id, Utilization(0.95));
    }
    rk
}

fn interactive_utils(rk: &Rack) -> Vec<Utilization> {
    let mut utils = Vec::new();
    rk.interactive_utils_into(&mut utils);
    utils
}

fn batch_freqs(rk: &Rack) -> Vec<f64> {
    rk.cores_with_role(CoreRole::Batch)
        .iter()
        .map(|&id| rk.freq(id).0)
        .collect()
}

/// Budget profile: step changes every 100 s (like the allocator's phase
/// transitions), expressed as fractions of the achievable feedback-power
/// range so every level is actually reachable.
fn budget(t: usize, lo: f64, hi: f64) -> f64 {
    let frac = match (t / 100) % 4 {
        0 => 0.35,
        1 => 0.80,
        2 => 0.20,
        _ => 0.60,
    };
    lo + frac * (hi - lo)
}

fn main() {
    banner("Ablation A1 — MPC vs PID for the server power controller");
    let cfg = SprintConConfig::paper_default();
    let horizon = 400;

    // Probe the achievable feedback-power range on the real plant.
    let probe_ctrl = ServerPowerController::new(&cfg);
    let (lo, hi) = {
        let mut rk = rack(&cfg);
        let utils = interactive_utils(&rk);
        rk.set_role_freq(CoreRole::Batch, NormFreq(0.2));
        let lo = probe_ctrl.feedback_power(rk.power(), &utils).0;
        rk.set_role_freq(CoreRole::Batch, NormFreq(1.0));
        let hi = probe_ctrl.feedback_power(rk.power(), &utils).0;
        (lo, hi)
    };
    println!("achievable feedback-power range: {lo:.0} .. {hi:.0} W");

    // --- MPC (the paper's design) ---
    let mut ctrl = ServerPowerController::new(&cfg);
    let mut rk = rack(&cfg);
    let utils = interactive_utils(&rk);
    let mut mpc_err = Vec::new();
    let mut rows = Vec::new();
    for t in 0..horizon {
        let target = budget(t, lo, hi);
        let p_fb = ctrl.feedback_power(rk.power(), &utils);
        let d = ctrl.control(rk.power(), &utils, Watts(target), &batch_freqs(&rk));
        let ids = rk.cores_with_role(CoreRole::Batch);
        for (id, &f) in ids.iter().zip(&d.freqs) {
            rk.set_freq(*id, NormFreq(f));
        }
        mpc_err.push(p_fb.0 - target);
        rows.push(vec![t as f64, target, p_fb.0, f64::NAN]);
    }

    // --- PID (uniform frequency scaling) ---
    let ctrl2 = ServerPowerController::new(&cfg);
    let mut rk = rack(&cfg);
    let mut pid = Pid::new(PidConfig {
        kp: 0.0002,
        ki: 0.0006,
        kd: 0.0,
        out_min: 0.2,
        out_max: 1.0,
        period: 1.0,
    });
    let mut pid_err = Vec::new();
    for (t, row) in rows.iter_mut().enumerate().take(horizon) {
        let target = budget(t, lo, hi);
        let p_fb = ctrl2.feedback_power(rk.power(), &utils);
        let f = pid.step(target, p_fb.0);
        rk.set_role_freq(CoreRole::Batch, NormFreq(f));
        pid_err.push(p_fb.0 - target);
        row[3] = p_fb.0;
    }

    let path = write_csv(
        "ablation_mpc_vs_pid.csv",
        "t_s,target_w,mpc_p_fb_w,pid_p_fb_w",
        &rows,
    );
    println!("csv: {}", path.display());

    // Compare RMS error excluding the first 20 s after each step.
    let settled_rms = |err: &[f64]| {
        let vals: Vec<f64> = err
            .iter()
            .enumerate()
            .filter(|(t, _)| t % 100 >= 20)
            .map(|(_, e)| e * e)
            .collect();
        (vals.iter().sum::<f64>() / vals.len() as f64).sqrt()
    };
    // Settling: steps to come within 5% of target after each change.
    let settle = |err: &[f64]| {
        let mut worst = 0usize;
        for step in 0..horizon / 100 {
            let base = step * 100;
            let target = budget(base, lo, hi);
            let mut t = 100;
            for k in 0..100 {
                if err[base + k].abs() < 0.05 * target {
                    t = k;
                    break;
                }
            }
            worst = worst.max(t);
        }
        worst
    };
    let (m_rms, p_rms) = (settled_rms(&mpc_err), settled_rms(&pid_err));
    let (m_set, p_set) = (settle(&mpc_err), settle(&pid_err));
    println!(
        "\n{:<6} {:>14} {:>16}",
        "ctrl", "settled RMS W", "worst settle s"
    );
    println!("{:<6} {:>14.1} {:>16}", "MPC", m_rms, m_set);
    println!("{:<6} {:>14.1} {:>16}", "PID", p_rms, p_set);
    println!("\nMPC additionally allocates per-core by progress weights (see ablation_rweights);");
    println!("PID can only scale every batch core uniformly.");

    // The trade the paper banks on: MPC's reference trajectory settles a
    // touch more deliberately (Eq. (7) shapes the approach) but its
    // settled accuracy — with the error-diffusion P-state mix only a
    // multi-channel controller can command — is far tighter than a PID
    // driving one uniform frequency.
    assert!(m_set <= p_set + 15, "MPC settling must stay comparable");
    assert!(
        m_rms < p_rms * 0.5,
        "MPC settled tracking must be much tighter: {m_rms} vs {p_rms}"
    );
}
