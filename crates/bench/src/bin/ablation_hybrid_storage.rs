//! A4 — ablation: plain battery vs the hybrid battery + supercapacitor
//! of \[24\] behind SprintCon's UPS discharge commands.
//!
//! SprintCon's UPS power controller emits a fluctuating discharge demand
//! (it covers exactly the gap between the wandering total power and the
//! breaker target). A supercapacitor absorbs the fast component of that
//! demand, cutting the LFP battery's energy throughput and depth of
//! discharge — which §VII-D turns directly into replacement costs.

use powersim::battery_life::LfpCycleLife;
use powersim::supercap::{HybridStorage, Supercap, SupercapSpec};
use powersim::units::{Seconds, Watts};
use powersim::ups::{UpsBattery, UpsSpec};
use simkit::{Campaign, PolicyKind, Scenario};
use sprintcon_bench::{banner, write_csv, EngineArgs};

fn main() {
    let args = EngineArgs::parse();
    banner("Ablation A4 — plain battery vs hybrid battery+supercap storage");
    // Record the UPS discharge demand SprintCon actually produced over
    // the 15-minute run...
    let scenario = Scenario::paper_default(2019);
    let mut runs = Campaign::new()
        .with_run(scenario, PolicyKind::SprintCon)
        .with_exec(args.exec)
        .run();
    let run = runs.remove(0).output;
    let demand: Vec<f64> = run
        .recorder
        .samples()
        .iter()
        .map(|s| s.ups_power.0)
        .collect();

    // ...and replay it into both storage configurations.
    let mut plain = UpsBattery::full(UpsSpec::paper_default());
    let mut hybrid = HybridStorage::new(
        UpsBattery::full(UpsSpec::paper_default()),
        Supercap::full(SupercapSpec::paper_default()),
    );
    for &d in &demand {
        plain.discharge(Watts(d), Seconds(1.0));
        hybrid.discharge(Watts(d), Seconds(1.0));
    }

    let plain_throughput = plain.total_cell_energy_out.0;
    let hyb_bat = hybrid.battery.total_cell_energy_out.0;
    let hyb_cap = hybrid.cap.total_out.0;
    println!("{:<22} {:>14} {:>10}", "storage", "battery Wh", "max DoD");
    println!(
        "{:<22} {:>14.1} {:>9.1}%",
        "battery only",
        plain_throughput,
        plain.max_dod * 100.0
    );
    println!(
        "{:<22} {:>14.1} {:>9.1}%   (+{:.1} Wh through the supercap)",
        "battery + supercap",
        hyb_bat,
        hybrid.battery.max_dod * 100.0,
        hyb_cap
    );

    let life = LfpCycleLife::paper_default();
    let c_plain = life.cycles_at(plain.max_dod.max(0.01));
    let c_hyb = life.cycles_at(hybrid.battery.max_dod.max(0.01));
    println!(
        "\nLFP cycle life at that DoD: {:.0} (plain) vs {:.0} (hybrid) cycles",
        c_plain, c_hyb
    );

    write_csv(
        "ablation_hybrid_storage.csv",
        "config,battery_wh,max_dod,cycles",
        &[
            vec![0.0, plain_throughput, plain.max_dod, c_plain],
            vec![1.0, hyb_bat, hybrid.battery.max_dod, c_hyb],
        ],
    );

    assert!(
        hyb_bat < plain_throughput,
        "the supercap must offload battery throughput"
    );
    assert!(hybrid.battery.max_dod <= plain.max_dod + 1e-9);
    assert!(c_hyb >= c_plain);
    println!("\nthe fast half of SprintCon's UPS duty belongs on a supercap.");
}
