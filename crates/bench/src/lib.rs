//! # sprintcon-bench — figure regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §4's experiment index);
//! each prints the series/rows as aligned text and writes CSV under
//! `target/figures/`. The criterion benches in `benches/` measure the
//! hot paths (QP/MPC solves, simulation ticks, end-to-end runs).

#![forbid(unsafe_code)]

use std::path::PathBuf;

/// Directory where figure binaries drop their CSV output.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write a simple CSV from a header and rows of f64 columns.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    use std::io::Write;
    let path = figures_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{header}").unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
    path
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}
