//! # sprintcon-bench — figure regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §4's experiment index);
//! each prints the series/rows as aligned text and writes CSV under
//! `target/figures/`. The criterion benches in `benches/` measure the
//! hot paths (QP/MPC solves, simulation ticks, end-to-end runs).

#![forbid(unsafe_code)]

use simkit::ExecConfig;
use std::path::PathBuf;

/// Shared execution CLI for every figure/ablation/robustness binary.
///
/// All simulation-running bins accept the same two flags and hand the
/// resulting [`ExecConfig`] to a [`simkit::Campaign`]:
///
/// * `--jobs N` — run on `N` worker threads (`0` = one per core, the
///   default);
/// * `--seq` — force sequential execution on the calling thread
///   (shorthand for `--jobs 1`).
///
/// Results are deterministic and input-ordered either way; the flags
/// only change wall-clock time (see `DESIGN.md` §execution layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineArgs {
    pub exec: ExecConfig,
}

impl EngineArgs {
    /// Parse from the process arguments; prints usage and exits on
    /// unknown flags so every bin fails the same way.
    pub fn parse() -> Self {
        match Self::from_args(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: [--jobs N | --seq]   (N = worker threads, 0 = per-core)");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`EngineArgs::parse`]).
    pub fn from_args<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut exec = ExecConfig::parallel();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seq" => exec = ExecConfig::sequential(),
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    exec = ExecConfig::jobs(parse_jobs(&v)?);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        exec = ExecConfig::jobs(parse_jobs(v)?);
                    } else {
                        return Err(format!("unknown argument: {other}"));
                    }
                }
            }
        }
        Ok(EngineArgs { exec })
    }
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    v.parse()
        .map_err(|_| format!("--jobs expects a non-negative integer, got {v:?}"))
}

/// Directory where figure binaries drop their CSV output.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Write a simple CSV from a header and rows of f64 columns.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    use std::io::Write;
    let path = figures_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{header}").unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
    path
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<EngineArgs, String> {
        EngineArgs::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn engine_args_parse_forms() {
        assert_eq!(args(&[]).unwrap().exec, ExecConfig::parallel());
        assert_eq!(args(&["--seq"]).unwrap().exec, ExecConfig::sequential());
        assert_eq!(args(&["--jobs", "4"]).unwrap().exec, ExecConfig::jobs(4));
        assert_eq!(args(&["--jobs=2"]).unwrap().exec, ExecConfig::jobs(2));
        assert_eq!(args(&["--jobs", "0"]).unwrap().exec, ExecConfig::parallel());
        // Last flag wins, so scripts can append overrides.
        assert_eq!(
            args(&["--jobs", "4", "--seq"]).unwrap().exec,
            ExecConfig::sequential()
        );
    }

    #[test]
    fn engine_args_reject_garbage() {
        assert!(args(&["--jobs"]).is_err());
        assert!(args(&["--jobs", "x"]).is_err());
        assert!(args(&["--jobs=-1"]).is_err());
        assert!(args(&["--frobnicate"]).is_err());
    }
}
