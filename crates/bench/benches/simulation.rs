//! Criterion benches for the simulation substrate: trace generation,
//! scenario assembly, single ticks per policy, and short end-to-end runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use powersim::units::Seconds;
use simkit::{PolicyKind, Recorder, Scenario};
use workloads::wiki_trace::WikiTraceConfig;

fn bench_workloads(c: &mut Criterion) {
    c.bench_function("wiki_trace/generate_15min", |b| {
        let cfg = WikiTraceConfig::paper_default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(cfg.generate(seed).mean())
        })
    });
    c.bench_function("scenario/build", |b| {
        let sc = Scenario::paper_default(1);
        b.iter(|| black_box(sc.build().rack.num_servers()))
    });
}

fn bench_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_tick");
    for kind in PolicyKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let sc = Scenario::paper_default(3);
                    (sc.build(), kind.build(), Recorder::with_capacity(16))
                },
                |(mut sim, mut policy, mut rec)| {
                    for _ in 0..5 {
                        sim.step(policy.as_mut(), &mut rec);
                    }
                    black_box(rec.len())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_2min");
    group.sample_size(10);
    for kind in [PolicyKind::SprintCon, PolicyKind::SgctV1] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let mut sc = Scenario::paper_default(3);
                    sc.duration = Seconds::minutes(2.0);
                    (sc.clone(), sc.build(), kind.build())
                },
                |(sc, mut sim, mut policy)| {
                    let rec = sim.run(policy.as_mut(), sc.duration);
                    black_box(rec.ups_energy_wh())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_ticks, bench_end_to_end);
criterion_main!(benches);
