//! Criterion benches for the control-path hot spots: the MPC solve that
//! runs every control period on 64 channels, the underlying QP solvers,
//! and the cheaper loops around them.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use powersim::units::{Seconds, Utilization, Watts};
use sprint_control::linalg::Mat;
use sprint_control::mpc::{MpcBackend, MpcConfig, MpcController};
use sprint_control::pid::{Pid, PidConfig};
use sprint_control::qp::QpProblem;
use sprint_control::stability::mimo_spectral_radius;
use sprint_control::GainEstimator;
use sprintcon::{PowerLoadAllocator, ServerPowerController, SprintConConfig};
use workloads::batch::BatchJob;
use workloads::progress_model::ProgressModel;

fn qp_instance(n: usize) -> QpProblem {
    // The MPC's Hessian shape: rank-heavy kkᵀ blocks plus a diagonal.
    let mut h = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = 2.0 * 15.0 * 15.0;
        }
        h[(i, i)] += 16.0;
    }
    let g: Vec<f64> = (0..n).map(|i| -30.0 - (i as f64 % 7.0)).collect();
    QpProblem::new(h, g, vec![0.2; n], vec![1.0; n])
}

fn bench_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp");
    for &n in &[16usize, 64, 128] {
        let p = qp_instance(n);
        group.bench_function(format!("fista_{n}"), |b| {
            b.iter(|| black_box(p.solve(1e-7, 2_000).x[0]))
        });
        let p2 = qp_instance(n);
        group.bench_function(format!("coordinate_descent_{n}"), |b| {
            b.iter(|| black_box(p2.solve_coordinate_descent(1e-7, 2_000).x[0]))
        });
    }
    group.finish();
}

fn bench_mpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc");
    for &n in &[8usize, 64] {
        for (tag, backend) in [
            ("structured", MpcBackend::Structured),
            ("dense", MpcBackend::DenseFista),
        ] {
            let mut ctrl = MpcController::with_backend(
                MpcConfig::paper_default(),
                vec![15.0; n],
                vec![0.2; n],
                vec![1.0; n],
                backend,
            );
            let f_now = vec![0.6; n];
            group.bench_function(format!("compute_{tag}_{n}ch"), |b| {
                b.iter(|| black_box(ctrl.compute(1500.0, 1700.0, &f_now).freqs[0]))
            });
        }
    }
    group.finish();
}

fn bench_server_controller(c: &mut Criterion) {
    let cfg = SprintConConfig::paper_default();
    let mut ctrl = ServerPowerController::new(&cfg);
    let utils = vec![Utilization(0.6); cfg.num_servers];
    let freqs = vec![0.6; ctrl.num_channels()];
    c.bench_function("server_controller/control_period", |b| {
        b.iter(|| {
            black_box(
                ctrl.control(Watts(3800.0), &utils, Watts(1700.0), &freqs)
                    .freqs[0],
            )
        })
    });
    c.bench_function("server_controller/fit_models", |b| {
        b.iter(|| black_box(ServerPowerController::new(&cfg).num_channels()))
    });
}

fn bench_allocator(c: &mut Criterion) {
    let cfg = SprintConConfig::paper_default();
    let ctrl = ServerPowerController::new(&cfg);
    let jobs: Vec<BatchJob> = (0..cfg.total_batch_cores())
        .map(|i| {
            BatchJob::new(
                format!("j{i}"),
                ProgressModel::new(0.25),
                400.0,
                Seconds(720.0),
            )
        })
        .collect();
    c.bench_function("allocator/advance_with_update", |b| {
        b.iter_batched(
            || PowerLoadAllocator::new(&cfg, ctrl.batch_models().to_vec()),
            |mut alloc| {
                alloc.observe_interactive_power(Watts(2100.0));
                alloc.advance(Seconds(0.0), Seconds(1.0), 0.1, &jobs);
                black_box(alloc.targets().p_batch)
            },
            BatchSize::SmallInput,
        )
    });
}

/// The tentpole guarantee: instrumentation on the server-controller hot
/// path costs nothing measurable when telemetry is disabled, and stays
/// within noise (< 2%) with a null-sink collector installed. Compare the
/// three printed means.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let cfg = SprintConConfig::paper_default();
    let mut ctrl = ServerPowerController::new(&cfg);
    let utils = vec![Utilization(0.6); cfg.num_servers];
    let freqs = vec![0.6; ctrl.num_channels()];
    let mut hot = |b: &mut criterion::Bencher| {
        b.iter(|| {
            black_box(
                ctrl.control(Watts(3800.0), &utils, Watts(1700.0), &freqs)
                    .freqs[0],
            )
        })
    };

    // Baseline: no collector installed — every telemetry call short-circuits.
    c.bench_function("telemetry/server_control_disabled", &mut hot);

    // Null sink: metrics are recorded, sink records are dropped.
    let null = std::sync::Arc::new(telemetry::Collector::new(Box::new(telemetry::NullSink)));
    telemetry::with_collector(std::sync::Arc::clone(&null), || {
        c.bench_function("telemetry/server_control_null_sink", &mut hot);
    });

    // Memory ring sink: the most a bounded in-process sink can cost.
    let ring = std::sync::Arc::new(telemetry::Collector::new(Box::new(
        telemetry::MemorySink::new(4096),
    )));
    telemetry::with_collector(ring, || {
        c.bench_function("telemetry/server_control_memory_sink", &mut hot);
    });
}

fn bench_small_loops(c: &mut Criterion) {
    c.bench_function("pid/step", |b| {
        let mut pid = Pid::new(PidConfig {
            kp: 0.005,
            ki: 0.01,
            kd: 0.0,
            out_min: 0.2,
            out_max: 1.0,
            period: 1.0,
        });
        b.iter(|| black_box(pid.step(1700.0, 1650.0)))
    });
    c.bench_function("rls/gain_update", |b| {
        let mut est = GainEstimator::new(50.0, 5.0, 300.0);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            est.observe(0.05 * ((k as f64) * 0.7).sin(), 3.0);
            black_box(est.kappa())
        })
    });
    c.bench_function("stability/mimo_radius_16ch", |b| {
        let km = vec![15.0; 16];
        let r = vec![8.0; 16];
        b.iter(|| black_box(mimo_spectral_radius(&km, &km, &r, 8, 1.0, 0.78)))
    });
}

criterion_group!(
    benches,
    bench_qp,
    bench_mpc,
    bench_server_controller,
    bench_telemetry_overhead,
    bench_allocator,
    bench_small_loops
);
criterion_main!(benches);
