//! Small dense linear algebra.
//!
//! The MPC and stability machinery needs matrices of a few hundred
//! elements at most (decision dimension = batch cores × control horizon).
//! No offline linalg crate is available, so this module provides exactly
//! what the rest of the crate uses: row-major dense matrices, the usual
//! products, Cholesky factorization for SPD solves, and Frobenius norms.
//! Everything is `f64`, allocation-explicit, and panics on shape errors —
//! shape bugs are programmer errors, not runtime conditions.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows; all rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty());
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Mat {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Diagonal matrix from a slice.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Iterate over the rows as contiguous slices (row-major layout).
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec shape mismatch");
        let mut y = vec![0.0; self.rows];
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `self.transpose().matvec(x)` without materializing the transpose.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "matvec_t shape mismatch");
        let mut y = vec![0.0; self.cols];
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            for (yj, rj) in y.iter_mut().zip(row) {
                *yj += rj * xi;
            }
        }
        y
    }

    /// Write-into matrix–vector product over the unrolled
    /// [`dot_unrolled`] kernel: no allocation, four independent
    /// accumulators per row so the compiler can keep the dot product in
    /// SIMD lanes. Numerically equivalent to [`Mat::matvec`] but *not*
    /// bit-identical (the accumulation order differs) — use it on
    /// tolerance-compared paths (the `DenseFista` oracle), never on
    /// digest-frozen ones (the estimator pipeline stays on `matvec`).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(self.cols, x.len(), "matvec shape mismatch");
        assert_eq!(self.rows, y.len(), "matvec output shape mismatch");
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *yi = dot_unrolled(row, x);
        }
    }

    /// Write-into transposed product over the unrolled [`axpy_unrolled`]
    /// kernel; the transpose analogue of [`Mat::matvec_into`] with the
    /// same tolerance-only equivalence caveat versus [`Mat::matvec_t`].
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(self.rows, x.len(), "matvec_t shape mismatch");
        assert_eq!(self.cols, y.len(), "matvec_t output shape mismatch");
        y.fill(0.0);
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            axpy_unrolled(*xi, row, y);
        }
    }

    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower factor, or `None` if the matrix is not
    /// (numerically) SPD.
    pub fn cholesky(&self) -> Option<Mat> {
        assert!(self.is_square(), "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-14 {
                        return None;
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `A·x = b` for SPD `A` via Cholesky; `None` if not SPD.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, b.len(), "solve shape mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back substitution Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Some(x)
    }

    /// Largest eigenvalue magnitude (spectral radius) estimate via the
    /// normalized-power-of-the-matrix method: `ρ(A) ≈ ‖Aᵏ·v‖` growth rate.
    /// Deterministic; accurate to a few percent for the small systems the
    /// stability analysis checks, including complex-pair spectra.
    pub fn spectral_radius_estimate(&self, iterations: usize) -> f64 {
        assert!(self.is_square());
        let n = self.rows;
        // Deterministic pseudo-random start vector with all components
        // nonzero (avoids starting orthogonal to the dominant subspace).
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.3 * ((i as f64) * 1.7).sin())
            .collect();
        let norm0 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in v.iter_mut() {
            *x /= norm0;
        }
        let mut log_growth = 0.0;
        let iters = iterations.max(8);
        for _ in 0..iters {
            let w = self.matvec(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return 0.0;
            }
            log_growth += norm.ln();
            v = w.into_iter().map(|x| x / norm).collect();
        }
        (log_growth / iters as f64).exp()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Mul<&Mat> for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add<&Mat> for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "shape mismatch"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Mat> for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "shape mismatch"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot shape mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product with four independent accumulators. Breaking the serial
/// add chain lets the compiler vectorize and the CPU pipeline the FMAs
/// — worth ~2–4× on the MPC-sized rows the dense oracle multiplies.
/// Not bit-identical to [`dot`] (different accumulation order).
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot shape mismatch");
    let mut qa = a.chunks_exact(4);
    let mut qb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    for (ca, cb) in (&mut qa).zip(&mut qb) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let mut s = (s0 + s2) + (s1 + s3);
    for (x, y) in qa.remainder().iter().zip(qb.remainder()) {
        s += x * y;
    }
    s
}

/// `y ← y + alpha·x` with a 4-wide unrolled body — the vectorizable
/// sibling of [`axpy`] (bit-identical here, since axpy has no cross-lane
/// accumulation; the unroll only removes bounds checks and serializing
/// loop overhead).
pub fn axpy_unrolled(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy shape mismatch");
    let mut qx = x.chunks_exact(4);
    let mut qy = y.chunks_exact_mut(4);
    for (cx, cy) in (&mut qx).zip(&mut qy) {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
    }
    for (xi, yi) in qx.remainder().iter().zip(qy.into_remainder()) {
        *yi += alpha * xi;
    }
}

/// `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy shape mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Project `x` onto the box `[lo, hi]` elementwise (in place).
pub fn project_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert!(
        x.len() == lo.len() && x.len() == hi.len(),
        "box shape mismatch"
    );
    for ((xi, l), h) in x.iter_mut().zip(lo).zip(hi) {
        *xi = xi.clamp(*l, *h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = &a * &b;
        assert_eq!(c, Mat::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]));
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec(&x), vec![-1.0, -1.0, -1.0]);
        let y = vec![1.0, 0.0, 2.0];
        assert_eq!(a.matvec_t(&y), a.transpose().matvec(&y));
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(&a + &b, Mat::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(&b - &a, Mat::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.scale(3.0), Mat::from_rows(&[vec![3.0, 6.0]]));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Mat::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.5],
            vec![0.6, 1.5, 2.8],
        ]);
        let l = a.cholesky().expect("SPD");
        let back = &l * &l.transpose();
        assert!((&back - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eig −1, 3
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn spd_solve_matches_known_solution() {
        let a = Mat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let b = vec![1.0, 2.0];
        let x = a.solve_spd(&b).unwrap();
        let back = a.matvec(&x);
        assert!((back[0] - 1.0).abs() < 1e-12 && (back[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diag_builder() {
        let d = Mat::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let a = Mat::diag(&[0.3, -0.9, 0.5]);
        let r = a.spectral_radius_estimate(200);
        assert!((r - 0.9).abs() < 0.02, "r={r}");
    }

    #[test]
    fn spectral_radius_of_rotation_scaled() {
        // 0.8 × rotation: complex pair with |λ| = 0.8 — the case plain
        // power iteration mishandles.
        let c = 0.8 * (0.7_f64).cos();
        let s = 0.8 * (0.7_f64).sin();
        let a = Mat::from_rows(&[vec![c, -s], vec![s, c]]);
        let r = a.spectral_radius_estimate(400);
        assert!((r - 0.8).abs() < 0.02, "r={r}");
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn unrolled_kernels_match_naive_within_fp_tolerance() {
        // Deterministic awkward sizes: exercise the 4-chunk body and
        // every remainder length 0..=3.
        for n in [1usize, 3, 4, 5, 8, 11, 16, 19] {
            let m = 7;
            let mut a = Mat::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    a[(i, j)] = ((i * n + j) as f64 * 0.7).sin() * 3.0;
                }
            }
            let x: Vec<f64> = (0..n).map(|j| ((j as f64) * 1.3).cos() * 2.0).collect();
            let xt: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.4).sin() - 0.5).collect();

            let naive = a.matvec(&x);
            let mut fast = vec![0.0; m];
            a.matvec_into(&x, &mut fast);
            for (u, v) in naive.iter().zip(&fast) {
                assert!((u - v).abs() <= 1e-12 * (1.0 + u.abs()), "{u} vs {v}");
            }

            let naive_t = a.matvec_t(&xt);
            let mut fast_t = vec![0.0; n];
            a.matvec_t_into(&xt, &mut fast_t);
            for (u, v) in naive_t.iter().zip(&fast_t) {
                assert!((u - v).abs() <= 1e-12 * (1.0 + u.abs()), "{u} vs {v}");
            }

            assert!(
                (dot_unrolled(&x, &x) - dot(&x, &x)).abs() <= 1e-12 * (1.0 + dot(&x, &x).abs())
            );
            let mut y1: Vec<f64> = (0..n).map(|j| j as f64 * 0.1).collect();
            let mut y2 = y1.clone();
            axpy(1.7, &x, &mut y1);
            axpy_unrolled(1.7, &x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                assert_eq!(u.to_bits(), v.to_bits(), "axpy unroll must be exact");
            }
        }
    }

    #[test]
    fn project_box_clamps_elementwise() {
        let mut x = vec![-2.0, 0.5, 3.0];
        project_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = &a * &b;
    }
}
