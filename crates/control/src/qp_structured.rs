//! Structured solver for diagonal-plus-rank-one box QPs.
//!
//! The Eq. (8) MPC Hessian is block-diagonal across control blocks
//! (tracking couples channels *within* a block, never across), and each
//! block has the form `c·kkᵀ + diag(d)`: a rank-one coupling through the
//! shared gain vector `k` plus the diagonal progress penalties. A block
//! therefore minimizes
//!
//! ```text
//! ½·Σⱼ dⱼ·yⱼ² + (c/2)·(kᵀy)² + gᵀy     subject to   lo ≤ y ≤ hi
//! ```
//!
//! which is a continuous-quadratic-knapsack-style problem: fix the
//! coupling scalar `u = kᵀy` and the coordinates decouple into closed
//! forms
//!
//! ```text
//! yⱼ(u) = clamp(−(gⱼ + c·u·kⱼ)/dⱼ, loⱼ, hiⱼ)
//! ```
//!
//! Every term `kⱼ·yⱼ(u)` is non-increasing in `u` (the unclamped slope is
//! `−c·kⱼ²/dⱼ ≤ 0` and clamping only flattens it), so
//! `φ(u) = kᵀy(u) − u` is strictly decreasing with `φ' ≤ −1` and has a
//! unique root `u*` inside the bracket `[min kᵀy, max kᵀy]`. The solver
//! finds `u*` by bracketed bisection with a Newton polish — each
//! evaluation is O(n), and Newton contracts the bracket to machine
//! precision in a handful of evaluations — then reads the optimum off the
//! closed forms. Against the dense FISTA path this replaces O((n·Lc)²)
//! matvecs per iteration with O(n·Lc) total work per control period.
//!
//! [`RankOneDiagQp`] is one block; [`solve_blocks_into`] runs the Lc
//! independent blocks of the MPC problem back to back. Both write into
//! caller-provided slices and allocate nothing.

use crate::linalg::Mat;

/// One diagonal-plus-rank-one box QP block:
/// `minimize ½·Σ dⱼyⱼ² + (c/2)(kᵀy)² + gᵀy` over `lo ≤ y ≤ hi`.
///
/// Requirements (checked by [`Self::validate`] / debug asserts): finite
/// inputs, `c ≥ 0`, `dⱼ ≥ 0` with `dⱼ > 0` wherever the problem must be
/// strictly convex in `yⱼ`, and `lo ≤ hi` elementwise. `dⱼ = 0` is
/// tolerated (the coordinate becomes a bang-bang choice between its
/// bounds), which keeps the solver total even for degenerate penalty
/// configurations.
#[derive(Debug, Clone, Copy)]
pub struct RankOneDiagQp<'a> {
    /// Rank-one coupling weight (`2q·steps` in the MPC assembly).
    pub c: f64,
    /// Shared gain vector `k`.
    pub k: &'a [f64],
    /// Diagonal `d` (strictly convex part).
    pub d: &'a [f64],
    /// Linear term `g`.
    pub g: &'a [f64],
    /// Elementwise lower bounds.
    pub lo: &'a [f64],
    /// Elementwise upper bounds.
    pub hi: &'a [f64],
}

/// Diagnostics from one block solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSolve {
    /// The coupling scalar `u* = kᵀy*` at the solution.
    pub u: f64,
    /// Number of O(n) root-find evaluations performed.
    pub evals: usize,
    /// Whether the root find met its tolerance (it essentially always
    /// does; `false` only after `max_evals` with a still-wide bracket).
    pub converged: bool,
}

impl<'a> RankOneDiagQp<'a> {
    /// Panic on shape or domain errors; call once per assembly, not per
    /// evaluation.
    pub fn validate(&self) {
        let n = self.k.len();
        assert!(n > 0, "empty block");
        assert!(
            self.d.len() == n && self.g.len() == n && self.lo.len() == n && self.hi.len() == n,
            "block shape mismatch"
        );
        assert!(self.c >= 0.0 && self.c.is_finite(), "c must be ≥ 0");
        assert!(
            self.d.iter().all(|&d| d >= 0.0 && d.is_finite()),
            "diagonal must be ≥ 0"
        );
        assert!(
            self.lo.iter().zip(self.hi).all(|(l, u)| l <= u),
            "lower bound exceeds upper bound"
        );
    }

    /// Evaluate the closed-form minimizer `y(u)` at a fixed coupling
    /// scalar, returning `(φ, φ')` with `φ(u) = kᵀy(u) − u`. `y` is
    /// overwritten with `y(u)`.
    fn eval(&self, u: f64, y: &mut [f64]) -> (f64, f64) {
        let mut ky = 0.0;
        let mut slope = -1.0;
        for (j, out) in y.iter_mut().enumerate() {
            let s = self.g[j] + self.c * u * self.k[j];
            let yj = if self.d[j] > 0.0 {
                let raw = -s / self.d[j];
                if raw <= self.lo[j] {
                    self.lo[j]
                } else if raw >= self.hi[j] {
                    self.hi[j]
                } else {
                    slope -= self.c * self.k[j] * self.k[j] / self.d[j];
                    raw
                }
            } else if s > 0.0 {
                // No curvature: the coordinate rides its cheaper bound.
                self.lo[j]
            } else if s < 0.0 {
                self.hi[j]
            } else {
                0.0_f64.clamp(self.lo[j], self.hi[j])
            };
            *out = yj;
            ky += self.k[j] * yj;
        }
        (ky - u, slope)
    }

    /// Solve the block into `y` (length `n`). `tol` is the target
    /// projected-KKT accuracy of the returned point; `max_evals` bounds
    /// the root-find evaluations (each O(n)). No allocation.
    pub fn solve_into(&self, y: &mut [f64], tol: f64, max_evals: usize) -> BlockSolve {
        self.solve_into_warm(y, tol, max_evals, None)
    }

    /// [`Self::solve_into`] with an optional warm-start hint for the
    /// coupling scalar `u = kᵀy` — typically the previous control
    /// period's root. The hint is only trusted if it lies strictly inside
    /// the freshly computed bracket `(min kᵀy, max kᵀy)` (the stale-
    /// bracket guard): a hint from a problem whose bounds, gains, or
    /// linear term have since shifted the bracket falls back to the
    /// midpoint start, so a stale hint can never slow the solve below
    /// the cold path's bisection guarantee, and the returned point meets
    /// the same `tol` certificate either way.
    pub fn solve_into_warm(
        &self,
        y: &mut [f64],
        tol: f64,
        max_evals: usize,
        warm: Option<f64>,
    ) -> BlockSolve {
        debug_assert_eq!(y.len(), self.k.len());
        assert!(tol > 0.0 && max_evals > 0);

        // Decoupled fast path: with no rank-one term the closed forms are
        // exact at any u; one evaluation finishes the block.
        let coupled = self.c > 0.0 && self.k.iter().any(|&k| k != 0.0);
        if !coupled {
            let (phi, _) = self.eval(0.0, y);
            // φ(0) = kᵀy(0); report the actual coupling value.
            return BlockSolve {
                u: phi,
                evals: 1,
                converged: true,
            };
        }

        // Bracket u* by the range of kᵀy over the box: φ(a) ≥ 0, φ(b) ≤ 0.
        let mut a = 0.0;
        let mut b = 0.0;
        for ((&k, &l), &h) in self.k.iter().zip(self.lo).zip(self.hi) {
            a += (k * l).min(k * h);
            b += (k * l).max(k * h);
        }
        // A φ-residual of δ perturbs the gradient by at most c·‖k‖∞·δ,
        // so aim the root find below the caller's KKT tolerance.
        let k_inf = self.k.iter().fold(0.0_f64, |m, &k| m.max(k.abs()));
        let tol_u = tol / (self.c * k_inf).max(1.0);

        // Warm start: reuse the previous root if it is still strictly
        // bracketed; otherwise fall back to the bisection midpoint.
        let mut u = match warm {
            Some(w) if w.is_finite() && w > a && w < b => w,
            _ => 0.5 * (a + b),
        };
        let mut evals = 0;
        let mut converged = false;
        while evals < max_evals {
            let (phi, slope) = self.eval(u, y);
            evals += 1;
            if phi.abs() <= tol_u {
                converged = true;
                break;
            }
            if phi > 0.0 {
                a = u;
            } else {
                b = u;
            }
            // Machine-precision bracket: nothing left to resolve (only
            // reachable when a zero-diagonal coordinate makes φ jump).
            if b - a <= f64::EPSILON * (a.abs().max(b.abs()).max(1.0)) {
                converged = true;
                break;
            }
            // Newton polish inside the bracket (φ' ≤ −1, so the step is
            // always well defined); fall back to bisection outside it.
            let newton = u - phi / slope;
            u = if newton > a && newton < b {
                newton
            } else {
                0.5 * (a + b)
            };
        }
        BlockSolve {
            u,
            evals,
            converged,
        }
    }

    /// Objective value `½·Σ dⱼyⱼ² + (c/2)(kᵀy)² + gᵀy`.
    pub fn objective(&self, y: &[f64]) -> f64 {
        let ky = crate::linalg::dot(self.k, y);
        let mut v = 0.5 * self.c * ky * ky;
        for (j, &yj) in y.iter().enumerate() {
            v += 0.5 * self.d[j] * yj * yj + self.g[j] * yj;
        }
        v
    }

    /// Projected-KKT residual `‖y − Π(y − ∇)‖∞` with
    /// `∇ⱼ = dⱼyⱼ + c·(kᵀy)·kⱼ + gⱼ` — the same certificate
    /// [`crate::qp::QpProblem::kkt_residual`] uses, computed in O(n).
    pub fn kkt_residual(&self, y: &[f64]) -> f64 {
        let ky = crate::linalg::dot(self.k, y);
        let mut res = 0.0_f64;
        for (j, &yj) in y.iter().enumerate() {
            let grad = self.d[j] * yj + self.c * ky * self.k[j] + self.g[j];
            let moved = (yj - grad).clamp(self.lo[j], self.hi[j]);
            res = res.max((yj - moved).abs());
        }
        res
    }

    /// Materialize the dense Hessian `c·kkᵀ + diag(d)` — for
    /// cross-validation against the dense solvers only; the hot path
    /// never builds it.
    pub fn dense_hessian(&self) -> Mat {
        let n = self.k.len();
        let mut h = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                h[(j, i)] = self.c * self.k[j] * self.k[i];
            }
            h[(j, j)] += self.d[j];
        }
        h
    }
}

/// Solve `blocks` independent [`RankOneDiagQp`] blocks laid out
/// contiguously in `d`/`g`/`lo`/`hi`/`x` (block `b` owns
/// `[b·n, (b+1)·n)`), all sharing the gain vector `k`. Returns the
/// summed evaluation count, the worst per-block convergence flag, and the
/// overall projected-KKT residual of `x`. This is the MPC hot path:
/// O(n·blocks) total, zero allocation.
#[allow(clippy::too_many_arguments)] // the six problem slices mirror the MPC assembly layout
pub fn solve_blocks_into(
    c: &[f64],
    k: &[f64],
    d: &[f64],
    g: &[f64],
    lo: &[f64],
    hi: &[f64],
    x: &mut [f64],
    tol: f64,
    max_evals: usize,
) -> (usize, bool, f64) {
    solve_blocks_into_warm(c, k, d, g, lo, hi, x, tol, max_evals, None)
}

/// [`solve_blocks_into`] with per-block warm-start state: `warm[b]` holds
/// the coupling-scalar hint for block `b` on entry (NaN = cold) and is
/// overwritten with the block's converged root on exit, so a caller that
/// keeps the slice alive across control periods warm-starts every solve.
/// Each hint goes through the stale-bracket guard of
/// [`RankOneDiagQp::solve_into_warm`], so the returned point carries the
/// same `tol` KKT certificate as the cold path.
#[allow(clippy::too_many_arguments)] // the six problem slices mirror the MPC assembly layout
pub fn solve_blocks_into_warm(
    c: &[f64],
    k: &[f64],
    d: &[f64],
    g: &[f64],
    lo: &[f64],
    hi: &[f64],
    x: &mut [f64],
    tol: f64,
    max_evals: usize,
    mut warm: Option<&mut [f64]>,
) -> (usize, bool, f64) {
    let n = k.len();
    let blocks = c.len();
    assert!(n > 0 && blocks > 0, "empty structured problem");
    let dim = n * blocks;
    assert!(
        d.len() == dim && g.len() == dim && lo.len() == dim && hi.len() == dim && x.len() == dim,
        "structured problem shape mismatch"
    );
    if let Some(w) = warm.as_deref() {
        assert_eq!(w.len(), blocks, "warm-start state shape mismatch");
    }
    let mut evals = 0;
    let mut converged = true;
    let mut res = 0.0_f64;
    for (b, &cb) in c.iter().enumerate() {
        let r = b * n..(b + 1) * n;
        let block = RankOneDiagQp {
            c: cb,
            k,
            d: &d[r.clone()],
            g: &g[r.clone()],
            lo: &lo[r.clone()],
            hi: &hi[r.clone()],
        };
        block.validate();
        let hint = warm.as_deref().map(|w| w[b]);
        let s = block.solve_into_warm(&mut x[r.clone()], tol, max_evals, hint);
        if let Some(w) = warm.as_deref_mut() {
            w[b] = s.u;
        }
        evals += s.evals;
        converged &= s.converged;
        res = res.max(block.kkt_residual(&x[r]));
    }
    (evals, converged, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpProblem;

    fn xorshift(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    /// Random block with crossed activity at the solution: gains of both
    /// signs, uneven weights, bounds tight enough that some coordinates
    /// pin and some stay free.
    #[allow(clippy::type_complexity)]
    fn random_block(
        seed: u64,
        n: usize,
    ) -> (f64, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut r = xorshift(seed);
        let c = 0.1 + 3.0 * (r().abs());
        let k: Vec<f64> = (0..n).map(|_| 5.0 * r()).collect();
        let d: Vec<f64> = (0..n).map(|_| 0.05 + 4.0 * r().abs()).collect();
        let g: Vec<f64> = (0..n).map(|_| 6.0 * r()).collect();
        let lo: Vec<f64> = (0..n).map(|_| -1.0 + 0.5 * r()).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 0.2 + r().abs()).collect();
        (c, k, d, g, lo, hi)
    }

    #[test]
    fn agrees_with_dense_fista_on_random_blocks() {
        for seed in 0..30 {
            let n = 2 + (seed as usize % 7);
            let (c, k, d, g, lo, hi) = random_block(seed, n);
            let block = RankOneDiagQp {
                c,
                k: &k,
                d: &d,
                g: &g,
                lo: &lo,
                hi: &hi,
            };
            let mut y = vec![0.0; n];
            let s = block.solve_into(&mut y, 1e-9, 200);
            assert!(s.converged, "seed={seed}");
            assert!(block.kkt_residual(&y) < 1e-8, "seed={seed}");
            let p = QpProblem::new(block.dense_hessian(), g.clone(), lo.clone(), hi.clone());
            let dense = p.solve(1e-10, 100_000);
            assert!(dense.converged, "seed={seed}");
            for (a, b) in y.iter().zip(&dense.x) {
                assert!((a - b).abs() < 1e-6, "seed={seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unconstrained_matches_sherman_morrison() {
        // Wide-open box: the optimum solves (c·kkᵀ + D)y = −g, which
        // Sherman–Morrison gives in closed form.
        let k = vec![2.0, -1.0, 0.5, 3.0];
        let d = vec![1.0, 2.0, 0.5, 4.0];
        let g = vec![1.0, -2.0, 0.3, -1.5];
        let c = 0.7;
        let lo = vec![-1e9; 4];
        let hi = vec![1e9; 4];
        let block = RankOneDiagQp {
            c,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y = vec![0.0; 4];
        let s = block.solve_into(&mut y, 1e-12, 500);
        assert!(s.converged);
        // y = −D⁻¹g + (c·kᵀD⁻¹g / (1 + c·kᵀD⁻¹k))·D⁻¹k
        let ktdg: f64 = (0..4).map(|j| k[j] * g[j] / d[j]).sum();
        let ktdk: f64 = (0..4).map(|j| k[j] * k[j] / d[j]).sum();
        let alpha = c * ktdg / (1.0 + c * ktdk);
        for j in 0..4 {
            let exact = -g[j] / d[j] + alpha * k[j] / d[j];
            assert!((y[j] - exact).abs() < 1e-9, "j={j}: {} vs {exact}", y[j]);
        }
        assert!((s.u - crate::linalg::dot(&k, &y)).abs() < 1e-9);
    }

    #[test]
    fn all_pinned_box_returns_the_corner() {
        // Equal bounds pin every coordinate regardless of the objective.
        let k = vec![1.0, 2.0];
        let d = vec![1.0, 1.0];
        let g = vec![100.0, -100.0];
        let lo = vec![0.3, -0.4];
        let hi = lo.clone();
        let block = RankOneDiagQp {
            c: 5.0,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y = vec![0.0; 2];
        let s = block.solve_into(&mut y, 1e-10, 100);
        assert!(s.converged);
        assert_eq!(y, lo);
        assert!(block.kkt_residual(&y) < 1e-12);
    }

    #[test]
    fn zero_coupling_is_the_diagonal_closed_form() {
        let k = vec![3.0, 3.0, 3.0];
        let d = vec![2.0, 4.0, 8.0];
        let g = vec![-2.0, -2.0, -2.0];
        let lo = vec![0.0; 3];
        let hi = vec![10.0; 3];
        let block = RankOneDiagQp {
            c: 0.0,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y = vec![0.0; 3];
        let s = block.solve_into(&mut y, 1e-10, 100);
        assert_eq!(s.evals, 1);
        for (j, &yj) in y.iter().enumerate() {
            assert!((yj - 2.0 / d[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_diagonal_coordinate_goes_bang_bang() {
        // d₀ = 0: the coordinate has no curvature of its own and must
        // land on a bound (whichever the coupled gradient favors).
        let k = vec![1.0, 1.0];
        let d = vec![0.0, 1.0];
        let g = vec![0.5, -1.0];
        let lo = vec![-1.0, -1.0];
        let hi = vec![1.0, 1.0];
        let block = RankOneDiagQp {
            c: 0.25,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y = vec![0.0; 2];
        block.solve_into(&mut y, 1e-9, 200);
        assert!(y[0] == -1.0 || y[0] == 1.0, "y0={}", y[0]);
        // The dense reference agrees on the objective value.
        let p = QpProblem::new(block.dense_hessian(), g.clone(), lo.clone(), hi.clone());
        let dense = p.solve(1e-10, 50_000);
        assert!((block.objective(&y) - block.objective(&dense.x)).abs() < 1e-7);
    }

    #[test]
    fn multi_block_layout_solves_blocks_independently() {
        let n = 3;
        let k = vec![2.0, 1.0, 4.0];
        let c = [1.0, 0.5];
        let d = vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5];
        let g = vec![-1.0, 0.0, 2.0, 1.0, -2.0, 0.3];
        let lo = vec![-1.0; 6];
        let hi = vec![1.0; 6];
        let mut x = vec![0.0; 6];
        let (evals, converged, res) =
            solve_blocks_into(&c, &k, &d, &g, &lo, &hi, &mut x, 1e-9, 200);
        assert!(converged && evals >= 2);
        assert!(res < 1e-8);
        // Each block matches its standalone solve.
        for (b, &cb) in c.iter().enumerate() {
            let r = b * n..(b + 1) * n;
            let block = RankOneDiagQp {
                c: cb,
                k: &k,
                d: &d[r.clone()],
                g: &g[r.clone()],
                lo: &lo[r.clone()],
                hi: &hi[r.clone()],
            };
            let mut y = vec![0.0; n];
            block.solve_into(&mut y, 1e-9, 200);
            for (a, bb) in x[r].iter().zip(&y) {
                assert!((a - bb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn newton_polish_converges_in_few_evals() {
        // MPC-shaped block (uniform positive gains, healthy diagonal):
        // the root find must be an order of magnitude under the budget a
        // dense FISTA iteration count would imply.
        let n = 64;
        let k = vec![15.0; n];
        let d = vec![2.0; n];
        let g: Vec<f64> = (0..n).map(|j| -30.0 - (j as f64 % 7.0)).collect();
        let lo = vec![0.2; n];
        let hi = vec![1.0; n];
        let block = RankOneDiagQp {
            c: 14.0,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y = vec![0.0; n];
        let s = block.solve_into(&mut y, 1e-9, 200);
        assert!(s.converged);
        assert!(s.evals <= 60, "evals={}", s.evals);
        assert!(block.kkt_residual(&y) < 1e-8);
    }

    #[test]
    fn warm_start_reuses_previous_root_and_keeps_the_certificate() {
        for seed in 0..20 {
            let n = 3 + (seed as usize % 5);
            let (c, k, d, g, lo, hi) = random_block(seed + 100, n);
            let block = RankOneDiagQp {
                c,
                k: &k,
                d: &d,
                g: &g,
                lo: &lo,
                hi: &hi,
            };
            let mut y_cold = vec![0.0; n];
            let cold = block.solve_into(&mut y_cold, 1e-9, 200);
            assert!(cold.converged);
            // Re-solving the same block from its own root must converge
            // at least as fast and land on the same point.
            let mut y_warm = vec![0.0; n];
            let warm = block.solve_into_warm(&mut y_warm, 1e-9, 200, Some(cold.u));
            assert!(warm.converged, "seed={seed}");
            assert!(warm.evals <= cold.evals, "seed={seed}");
            assert!(block.kkt_residual(&y_warm) < 1e-8, "seed={seed}");
            for (a, b) in y_cold.iter().zip(&y_warm) {
                assert!((a - b).abs() < 1e-7, "seed={seed}");
            }
        }
    }

    #[test]
    fn stale_warm_hint_falls_back_to_the_cold_path() {
        // Hints outside the fresh bracket (or non-finite) must be
        // rejected by the guard, reproducing the cold solve exactly.
        let (c, k, d, g, lo, hi) = random_block(7, 5);
        let block = RankOneDiagQp {
            c,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        };
        let mut y_cold = vec![0.0; 5];
        let cold = block.solve_into(&mut y_cold, 1e-9, 200);
        for bad in [1e12, -1e12, f64::NAN, f64::INFINITY] {
            let mut y = vec![0.0; 5];
            let s = block.solve_into_warm(&mut y, 1e-9, 200, Some(bad));
            assert!(s.converged);
            assert_eq!(s.evals, cold.evals, "hint={bad}");
            assert_eq!(y, y_cold, "hint={bad}");
        }
    }

    #[test]
    fn blocks_warm_state_round_trips_across_solves() {
        let n = 3;
        let k = vec![2.0, 1.0, 4.0];
        let c = [1.0, 0.5];
        let d = vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5];
        let g = vec![-1.0, 0.0, 2.0, 1.0, -2.0, 0.3];
        let lo = vec![-1.0; 6];
        let hi = vec![1.0; 6];
        let mut x_cold = vec![0.0; 6];
        let mut warm = vec![f64::NAN; 2];
        let (cold_evals, conv, res) = solve_blocks_into_warm(
            &c,
            &k,
            &d,
            &g,
            &lo,
            &hi,
            &mut x_cold,
            1e-9,
            200,
            Some(&mut warm),
        );
        assert!(conv && res < 1e-8);
        assert!(warm.iter().all(|u| u.is_finite()), "roots recorded");
        // Second solve of the identical problem starts at the root.
        let mut x_warm = vec![0.0; 6];
        let (warm_evals, conv2, res2) = solve_blocks_into_warm(
            &c,
            &k,
            &d,
            &g,
            &lo,
            &hi,
            &mut x_warm,
            1e-9,
            200,
            Some(&mut warm),
        );
        assert!(conv2 && res2 < 1e-8);
        assert!(warm_evals <= cold_evals);
        for (a, b) in x_cold.iter().zip(&x_warm) {
            assert!((a - b).abs() < 1e-7);
        }
        assert_eq!(x_cold.len(), n * c.len());
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn validate_rejects_crossed_bounds() {
        let k = [1.0];
        let d = [1.0];
        let g = [0.0];
        let lo = [1.0];
        let hi = [0.0];
        RankOneDiagQp {
            c: 1.0,
            k: &k,
            d: &d,
            g: &g,
            lo: &lo,
            hi: &hi,
        }
        .validate();
    }
}
