//! Box-constrained convex quadratic programming.
//!
//! The MPC optimization (Eq. (8) subject to Eq. (9)) reduces to
//!
//! ```text
//! minimize   ½·xᵀHx + gᵀx      subject to   lo ≤ x ≤ hi
//! ```
//!
//! with `H` symmetric positive definite. Two independent solvers live
//! here:
//!
//! * [`QpProblem::solve_with`] — accelerated projected gradient (FISTA
//!   with adaptive restart) running entirely inside a caller-provided
//!   [`QpWorkspace`]; the production hot path, O(n²) per iteration and
//!   **zero allocations per iteration** (the MPC reuses one workspace
//!   across control periods).
//! * [`QpProblem::solve`] — the same algorithm with per-call (and
//!   per-iteration) allocations; kept as the readable reference
//!   implementation and the "before" side of the `bench_engine`
//!   comparison. Bit-identical to `solve_with` by construction (the
//!   workspace path mirrors its operation order exactly; a test below
//!   asserts equality down to the last bit).
//! * [`QpProblem::solve_coordinate_descent`] — cyclic exact coordinate
//!   minimization; slower convergence per sweep but extremely robust.
//!   Kept as a cross-validation reference (property tests assert the two
//!   agree).
//!
//! Optimality is certified by the projected-KKT residual
//! `‖x − Π(x − ∇q(x))‖∞`, which is zero exactly at the constrained
//! minimizer of a convex problem.

use crate::linalg::{norm_inf, Mat};

/// A box-constrained QP instance.
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Symmetric positive-definite Hessian.
    pub h: Mat,
    /// Linear term.
    pub g: Vec<f64>,
    /// Elementwise lower bounds.
    pub lo: Vec<f64>,
    /// Elementwise upper bounds.
    pub hi: Vec<f64>,
}

/// Result of a QP solve.
#[derive(Debug, Clone)]
pub struct QpSolution {
    pub x: Vec<f64>,
    /// Projected-KKT residual at `x` (∞-norm); small ⇒ optimal.
    pub kkt_residual: f64,
    pub iterations: usize,
    pub converged: bool,
}

/// Record a finished solve into the active telemetry collector (if any):
/// iteration histogram plus total/non-converged counters. Shared with the
/// structured backend in [`crate::qp_structured`] via the MPC, so
/// `qp_solve_total` keeps counting every real solve regardless of path.
pub(crate) fn record_solve(sol: &QpSolution) {
    telemetry::counter_add("qp_solve_total", 1);
    telemetry::histogram_observe("qp_solve_iters", sol.iterations as f64);
    if !sol.converged {
        telemetry::counter_add("qp_solve_nonconverged", 1);
    }
}

/// Reusable scratch buffers for [`QpProblem::solve_with`]. Create once
/// (per controller), reuse across solves: after the first call at a given
/// dimension no further allocation happens, which is what removes the
/// per-control-period `Vec` churn from the MPC hot path.
#[derive(Debug, Clone, Default)]
pub struct QpWorkspace {
    x: Vec<f64>,
    y: Vec<f64>,
    x_next: Vec<f64>,
    grad: Vec<f64>,
    /// `H·x` scratch for objective evaluations.
    hx: Vec<f64>,
    /// Projected-step scratch for KKT residuals.
    moved: Vec<f64>,
}

impl QpWorkspace {
    pub fn new(dim: usize) -> Self {
        let mut ws = QpWorkspace::default();
        ws.ensure(dim);
        ws
    }

    /// Resize every buffer to `dim` (no-op once sized).
    fn ensure(&mut self, dim: usize) {
        for buf in [
            &mut self.x,
            &mut self.y,
            &mut self.x_next,
            &mut self.grad,
            &mut self.hx,
            &mut self.moved,
        ] {
            buf.resize(dim, 0.0);
        }
    }
}

/// `out = H·v` without allocating, over the unrolled 4-accumulator
/// kernel ([`Mat::matvec_into`]). Every Hessian product in this module
/// — `solve`, `solve_with`, and the public objective/gradient/residual
/// helpers — goes through here, so the reference and workspace paths
/// share one accumulation order and stay bit-identical to each other.
fn matvec_into(h: &Mat, v: &[f64], out: &mut [f64]) {
    h.matvec_into(v, out);
}

impl QpProblem {
    pub fn new(h: Mat, g: Vec<f64>, lo: Vec<f64>, hi: Vec<f64>) -> Self {
        let n = g.len();
        assert!(h.is_square() && h.rows() == n, "Hessian shape mismatch");
        assert!(lo.len() == n && hi.len() == n, "bound shape mismatch");
        assert!(
            lo.iter().zip(&hi).all(|(l, u)| l <= u),
            "lower bound exceeds upper bound"
        );
        QpProblem { h, g, lo, hi }
    }

    pub fn dim(&self) -> usize {
        self.g.len()
    }

    /// Objective value `½xᵀHx + gᵀx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let mut hx = vec![0.0; self.h.rows()];
        matvec_into(&self.h, x, &mut hx);
        0.5 * crate::linalg::dot(x, &hx) + crate::linalg::dot(&self.g, x)
    }

    /// Gradient `Hx + g`.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut grad = vec![0.0; self.h.rows()];
        matvec_into(&self.h, x, &mut grad);
        for (gi, g0) in grad.iter_mut().zip(&self.g) {
            *gi += g0;
        }
        grad
    }

    fn project(&self, x: &mut [f64]) {
        crate::linalg::project_box(x, &self.lo, &self.hi);
    }

    /// Projected-KKT residual at `x` with unit step:
    /// `‖x − Π(x − ∇)‖∞`. Zero iff `x` is the constrained optimum.
    pub fn kkt_residual(&self, x: &[f64]) -> f64 {
        let grad = self.gradient(x);
        let mut moved: Vec<f64> = x.iter().zip(&grad).map(|(xi, gi)| xi - gi).collect();
        self.project(&mut moved);
        let diff: Vec<f64> = x.iter().zip(&moved).map(|(a, b)| a - b).collect();
        norm_inf(&diff)
    }

    /// Upper bound on the Hessian's largest eigenvalue (∞-norm row sum;
    /// valid for symmetric `H`).
    fn lipschitz_bound(&self) -> f64 {
        let n = self.dim();
        let mut max_row = 0.0_f64;
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += self.h[(i, j)].abs();
            }
            max_row = max_row.max(s);
        }
        max_row.max(1e-12)
    }

    /// Accelerated projected-gradient solve (FISTA with restart).
    pub fn solve(&self, tol: f64, max_iters: usize) -> QpSolution {
        let _timer = telemetry::span("qp_solve_time");
        let _ = self.dim(); // shape validation
        let step = 1.0 / self.lipschitz_bound();
        // Start at the projected unconstrained-Newton-ish point: the box
        // midpoint is a safe, feasible start.
        let mut x: Vec<f64> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, u)| 0.5 * (l + u))
            .collect();
        let mut y = x.clone();
        let mut t = 1.0_f64;
        let mut last_obj = self.objective(&x);
        for iter in 1..=max_iters {
            let grad = self.gradient(&y);
            let mut x_next: Vec<f64> = y.iter().zip(&grad).map(|(yi, gi)| yi - step * gi).collect();
            self.project(&mut x_next);
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            y = x_next
                .iter()
                .zip(&x)
                .map(|(xn, xo)| xn + beta * (xn - xo))
                .collect();
            x = x_next;
            t = t_next;
            // Adaptive restart on objective increase (O'Donoghue–Candès).
            let obj = self.objective(&x);
            if obj > last_obj {
                y = x.clone();
                t = 1.0;
            }
            last_obj = obj;
            if iter % 8 == 0 {
                let res = self.kkt_residual(&x);
                if res < tol {
                    let sol = QpSolution {
                        x,
                        kkt_residual: res,
                        iterations: iter,
                        converged: true,
                    };
                    record_solve(&sol);
                    return sol;
                }
            }
        }
        let res = self.kkt_residual(&x);
        let sol = QpSolution {
            converged: res < tol,
            kkt_residual: res,
            iterations: max_iters,
            x,
        };
        record_solve(&sol);
        sol
    }

    /// Objective `½xᵀHx + gᵀx` evaluated through the workspace's `hx`
    /// scratch — same accumulation order as [`QpProblem::objective`].
    fn objective_ws(&self, x: &[f64], hx: &mut [f64]) -> f64 {
        matvec_into(&self.h, x, hx);
        0.5 * crate::linalg::dot(x, hx) + crate::linalg::dot(&self.g, x)
    }

    /// Projected-KKT residual through workspace buffers — same math and
    /// operation order as [`QpProblem::kkt_residual`].
    fn kkt_residual_ws(&self, x: &[f64], grad: &mut [f64], moved: &mut [f64]) -> f64 {
        matvec_into(&self.h, x, grad);
        for (gi, g0) in grad.iter_mut().zip(&self.g) {
            *gi += g0;
        }
        for ((m, xi), gi) in moved.iter_mut().zip(x).zip(grad.iter()) {
            *m = xi - gi;
        }
        for ((m, lo), hi) in moved.iter_mut().zip(&self.lo).zip(&self.hi) {
            *m = m.clamp(*lo, *hi);
        }
        let mut res = 0.0_f64;
        for (xi, m) in x.iter().zip(moved.iter()) {
            res = res.max((xi - m).abs());
        }
        res
    }

    /// Accelerated projected-gradient solve running entirely inside `ws`:
    /// the production hot path. Identical algorithm, operation order and
    /// therefore **bit-identical results** to [`QpProblem::solve`], but
    /// with zero allocations per iteration and none at all once `ws` has
    /// been sized (only the returned [`QpSolution::x`] is a fresh `Vec`).
    pub fn solve_with(&self, ws: &mut QpWorkspace, tol: f64, max_iters: usize) -> QpSolution {
        let _timer = telemetry::span("qp_solve_time");
        let dim = self.dim();
        ws.ensure(dim);
        let step = 1.0 / self.lipschitz_bound();
        // Same feasible start as `solve`: the box midpoint.
        for ((xi, l), u) in ws.x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *xi = 0.5 * (l + u);
        }
        ws.y.copy_from_slice(&ws.x);
        let mut t = 1.0_f64;
        let mut last_obj = {
            let (x, hx) = (&ws.x, &mut ws.hx);
            self.objective_ws(x, hx)
        };
        for iter in 1..=max_iters {
            // grad ← ∇q(y) = H·y + g
            matvec_into(&self.h, &ws.y, &mut ws.grad);
            for (gi, g0) in ws.grad.iter_mut().zip(&self.g) {
                *gi += g0;
            }
            // x_next ← Π(y − step·grad)
            for ((xn, yi), gi) in ws.x_next.iter_mut().zip(&ws.y).zip(&ws.grad) {
                *xn = yi - step * gi;
            }
            for ((xn, lo), hi) in ws.x_next.iter_mut().zip(&self.lo).zip(&self.hi) {
                *xn = xn.clamp(*lo, *hi);
            }
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            // y ← x_next + β(x_next − x)
            for ((yi, xn), xo) in ws.y.iter_mut().zip(&ws.x_next).zip(&ws.x) {
                *yi = xn + beta * (xn - xo);
            }
            // x ← x_next (buffer swap; old x is dead scratch next round)
            std::mem::swap(&mut ws.x, &mut ws.x_next);
            t = t_next;
            // Adaptive restart on objective increase (O'Donoghue–Candès).
            let obj = {
                let (x, hx) = (&ws.x, &mut ws.hx);
                self.objective_ws(x, hx)
            };
            if obj > last_obj {
                ws.y.copy_from_slice(&ws.x);
                t = 1.0;
            }
            last_obj = obj;
            if iter % 8 == 0 {
                let res = {
                    let QpWorkspace { x, grad, moved, .. } = ws;
                    self.kkt_residual_ws(x, grad, moved)
                };
                if res < tol {
                    let sol = QpSolution {
                        x: ws.x.clone(),
                        kkt_residual: res,
                        iterations: iter,
                        converged: true,
                    };
                    record_solve(&sol);
                    return sol;
                }
            }
        }
        let res = {
            let QpWorkspace { x, grad, moved, .. } = ws;
            self.kkt_residual_ws(x, grad, moved)
        };
        let sol = QpSolution {
            converged: res < tol,
            kkt_residual: res,
            iterations: max_iters,
            x: ws.x.clone(),
        };
        record_solve(&sol);
        sol
    }

    /// Cyclic exact coordinate descent — the reference solver.
    ///
    /// For a box QP each coordinate subproblem has the closed form
    /// `x_i ← clamp((−g_i − Σ_{j≠i} H_ij x_j) / H_ii, lo_i, hi_i)`;
    /// sweeping until no coordinate moves converges for SPD `H`.
    pub fn solve_coordinate_descent(&self, tol: f64, max_sweeps: usize) -> QpSolution {
        let _timer = telemetry::span("qp_solve_time");
        let n = self.dim();
        // The diagonal never changes between sweeps: validate it once
        // here instead of re-asserting every coordinate of every sweep.
        for i in 0..n {
            assert!(self.h[(i, i)] > 0.0, "Hessian diagonal must be positive");
        }
        let mut x: Vec<f64> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, u)| 0.5 * (l + u))
            .collect();
        for sweep in 1..=max_sweeps {
            let mut max_move = 0.0_f64;
            for i in 0..n {
                let hii = self.h[(i, i)];
                let mut s = self.g[i];
                for (j, xj) in x.iter().enumerate() {
                    if j != i {
                        s += self.h[(i, j)] * xj;
                    }
                }
                let xi = (-s / hii).clamp(self.lo[i], self.hi[i]);
                max_move = max_move.max((xi - x[i]).abs());
                x[i] = xi;
            }
            if max_move < tol * 0.1 {
                let res = self.kkt_residual(&x);
                if res < tol {
                    let sol = QpSolution {
                        x,
                        kkt_residual: res,
                        iterations: sweep,
                        converged: true,
                    };
                    record_solve(&sol);
                    return sol;
                }
            }
        }
        let res = self.kkt_residual(&x);
        let sol = QpSolution {
            converged: res < tol,
            kkt_residual: res,
            iterations: max_sweeps,
            x,
        };
        record_solve(&sol);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Mat {
        // A + Aᵀ + n·I is SPD for any A with entries in [−1, 1].
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
        }
        let mut m = &a + &a.transpose();
        for i in 0..n {
            m[(i, i)] += 2.0 * n as f64;
        }
        m
    }

    #[test]
    fn unconstrained_matches_linear_solve() {
        let h = spd(5, 3);
        let g = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        let lo = vec![-1e6; 5];
        let hi = vec![1e6; 5];
        let p = QpProblem::new(h.clone(), g.clone(), lo, hi);
        let sol = p.solve(1e-10, 20_000);
        assert!(sol.converged, "residual={}", sol.kkt_residual);
        // Optimum of the unconstrained problem solves H·x = −g.
        let neg_g: Vec<f64> = g.iter().map(|v| -v).collect();
        let exact = h.solve_spd(&neg_g).unwrap();
        for (a, b) in sol.x.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn active_constraints_clamp() {
        // minimize (x−5)² → x* = 5, but hi = 2 → clamps at 2.
        let h = Mat::diag(&[2.0]);
        let g = vec![-10.0];
        let p = QpProblem::new(h, g, vec![0.0], vec![2.0]);
        let sol = p.solve(1e-10, 1000);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!(sol.converged);
    }

    #[test]
    fn both_solvers_agree_on_random_problems() {
        for seed in 0..10 {
            let n = 3 + (seed as usize % 6);
            let h = spd(n, seed + 100);
            let g: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.3).sin() * 4.0).collect();
            let lo: Vec<f64> = (0..n).map(|i| -0.5 - (i % 3) as f64 * 0.2).collect();
            let hi: Vec<f64> = (0..n).map(|i| 0.4 + (i % 2) as f64 * 0.3).collect();
            let p = QpProblem::new(h, g, lo, hi);
            let a = p.solve(1e-9, 50_000);
            let b = p.solve_coordinate_descent(1e-9, 50_000);
            assert!(a.converged && b.converged, "seed={seed}");
            for (x, y) in a.x.iter().zip(&b.x) {
                assert!((x - y).abs() < 1e-5, "seed={seed}: {x} vs {y}");
            }
            // Objectives match too.
            assert!((p.objective(&a.x) - p.objective(&b.x)).abs() < 1e-8);
        }
    }

    #[test]
    fn workspace_solve_is_bit_identical_to_reference() {
        // `solve_with` must mirror `solve`'s operation order exactly:
        // equal down to the last bit, not merely within tolerance. One
        // shared workspace across problems also proves reuse is safe.
        let mut ws = QpWorkspace::default();
        for seed in 0..12 {
            let n = 2 + (seed as usize % 7);
            let h = spd(n, seed + 300);
            let g: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.9).cos() * 5.0).collect();
            let lo: Vec<f64> = (0..n).map(|i| -1.0 + (i % 2) as f64 * 0.3).collect();
            let hi: Vec<f64> = (0..n).map(|i| 0.5 + (i % 3) as f64 * 0.4).collect();
            let p = QpProblem::new(h, g, lo, hi);
            let a = p.solve(1e-9, 20_000);
            let b = p.solve_with(&mut ws, 1e-9, 20_000);
            assert_eq!(a.iterations, b.iterations, "seed={seed}");
            assert_eq!(a.converged, b.converged, "seed={seed}");
            assert_eq!(
                a.kkt_residual.to_bits(),
                b.kkt_residual.to_bits(),
                "seed={seed}"
            );
            for (x, y) in a.x.iter().zip(&b.x) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed={seed}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn workspace_resizes_between_dimensions() {
        let mut ws = QpWorkspace::new(1);
        let p4 = QpProblem::new(spd(4, 1), vec![1.0; 4], vec![-1.0; 4], vec![1.0; 4]);
        let p2 = QpProblem::new(spd(2, 2), vec![1.0; 2], vec![-1.0; 2], vec![1.0; 2]);
        let a = p4.solve_with(&mut ws, 1e-9, 10_000);
        let b = p2.solve_with(&mut ws, 1e-9, 10_000);
        assert!(a.converged && b.converged);
        assert_eq!(a.x.len(), 4);
        assert_eq!(b.x.len(), 2);
    }

    #[test]
    fn solution_always_feasible() {
        let h = spd(4, 9);
        let p = QpProblem::new(h, vec![10.0, -10.0, 3.0, -3.0], vec![0.0; 4], vec![1.0; 4]);
        let sol = p.solve(1e-8, 10_000);
        for (i, &x) in sol.x.iter().enumerate() {
            assert!((0.0..=1.0).contains(&x), "x[{i}]={x}");
        }
    }

    #[test]
    fn kkt_residual_zero_only_at_optimum() {
        let h = Mat::diag(&[1.0, 1.0]);
        let p = QpProblem::new(h, vec![-1.0, -1.0], vec![0.0; 2], vec![2.0; 2]);
        // Optimum at (1, 1).
        assert!(p.kkt_residual(&[1.0, 1.0]) < 1e-12);
        assert!(p.kkt_residual(&[0.0, 0.0]) > 0.5);
    }

    #[test]
    fn equal_bounds_pin_variables() {
        let h = spd(3, 77);
        let p = QpProblem::new(
            h,
            vec![1.0, 2.0, 3.0],
            vec![0.5, -1.0, 0.0],
            vec![0.5, 1.0, 0.0],
        );
        let sol = p.solve(1e-9, 20_000);
        assert!((sol.x[0] - 0.5).abs() < 1e-9);
        assert!((sol.x[2] - 0.0).abs() < 1e-9);
        assert!(sol.converged);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn rejects_crossed_bounds() {
        QpProblem::new(Mat::identity(1), vec![0.0], vec![1.0], vec![0.0]);
    }

    #[test]
    fn objective_and_gradient_consistent() {
        let h = spd(4, 5);
        let g = vec![0.3, -0.7, 1.1, 0.0];
        let p = QpProblem::new(h, g, vec![-10.0; 4], vec![10.0; 4]);
        let x = vec![0.1, 0.2, -0.3, 0.4];
        let grad = p.gradient(&x);
        // Finite-difference check.
        let eps = 1e-6;
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (p.objective(&xp) - p.objective(&x)) / eps;
            assert!(
                (fd - grad[i]).abs() < 1e-4,
                "coord {i}: fd={fd} g={}",
                grad[i]
            );
        }
    }
}
